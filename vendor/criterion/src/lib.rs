//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors the subset of the criterion 0.5 API its benches use: benchmark
//! groups, `bench_function` / `bench_with_input`, [`BenchmarkId`],
//! [`Throughput`], `sample_size`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up briefly,
//! then timed over `sample_size` samples whose per-sample iteration count is
//! auto-calibrated to a target sample duration. Median / min / max of the
//! per-iteration time are reported, plus throughput when configured. There
//! is no statistics engine, no HTML report and no baseline comparison —
//! numbers print to stdout.

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier `function_name/parameter` used by parameterized benchmarks.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Hint for how expensive `iter_batched` setup inputs are (accepted for
/// API parity; the measurement strategy does not change).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Iterations the measured closure must run this sample.
    iters: u64,
    /// Total elapsed time of the sample, filled by `iter`.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

#[derive(Clone, Debug)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_millis(1500),
            warm_up_time: Duration::from_millis(300),
            filter: None,
        }
    }
}

/// Top-level benchmark driver (a far smaller cousin of upstream's).
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Applies harness command-line arguments (`--bench` is ignored; any
    /// free argument becomes a substring filter, as with upstream).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--test" => {}
                "--sample-size" => {
                    if let Some(v) = args.next() {
                        if let Ok(n) = v.parse() {
                            self.settings.sample_size = n;
                        }
                    }
                }
                s if s.starts_with("--") => {
                    // Unknown harness flags (e.g. --verbose) are ignored;
                    // skip a value if one follows.
                    if args.peek().is_some_and(|v| !v.starts_with("--")) {
                        args.next();
                    }
                }
                other => self.settings.filter = Some(other.to_string()),
            }
        }
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.settings.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings.clone(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        let settings = self.settings.clone();
        run_benchmark(&id.id, &settings, None, f);
    }
}

/// Group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.settings.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, &self.settings, self.throughput, f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    full_id: &str,
    settings: &Settings,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if let Some(filter) = &settings.filter {
        if !full_id.contains(filter.as_str()) {
            return;
        }
    }

    // Warm-up + calibration: run single iterations until the warm-up budget
    // is spent, tracking the mean to size the measured samples.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    while warm_start.elapsed() < settings.warm_up_time || warm_iters == 0 {
        f(&mut bencher);
        warm_iters += 1;
        // Don't spin for minutes on very slow benchmarks.
        if warm_iters >= 3 && warm_start.elapsed() > settings.warm_up_time * 4 {
            break;
        }
    }
    let mean_estimate = warm_start.elapsed() / warm_iters.max(1) as u32;

    let samples = settings.sample_size.max(2);
    let per_sample_budget = settings.measurement_time / samples as u32;
    let iters_per_sample = if mean_estimate.is_zero() {
        1000
    } else {
        (per_sample_budget.as_nanos() / mean_estimate.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter[0];
    let hi = per_iter[per_iter.len() - 1];

    let mut line = format!(
        "{full_id:<50} time: [{} {} {}]",
        format_time(lo),
        format_time(median),
        format_time(hi)
    );
    match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            line.push_str(&format!("  thrpt: {:.3} Melem/s", n as f64 / median / 1e6));
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            line.push_str(&format!(
                "  thrpt: {:.3} MiB/s",
                n as f64 / median / (1 << 20) as f64
            ));
        }
        _ => {}
    }
    println!("{line}");
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_elapsed() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        let mut acc = 0u64;
        b.iter(|| acc = acc.wrapping_add(black_box(1)));
        assert!(b.elapsed > Duration::ZERO || acc == 100);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("matvec", 8).id, "matvec/8");
        assert_eq!(BenchmarkId::from_parameter("k2").id, "k2");
    }

    #[test]
    fn format_time_scales() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
