//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors the subset of proptest it uses: the [`proptest!`] macro, range /
//! tuple / [`Just`] / [`collection::vec`] / [`prop_oneof!`] strategies,
//! `prop_map`, and the `prop_assert*` family.
//!
//! Semantics differ from upstream in one deliberate way: **there is no
//! shrinking**. A failing case panics immediately and prints the generated
//! inputs; reproduce it by re-running the test (case seeds are derived
//! deterministically from the test name, so failures are stable across
//! runs).

pub mod collection;
pub mod runner;
pub mod strategy;

/// Boolean strategies (upstream `proptest::bool`).
pub mod bool {
    use crate::runner::TestRunner;
    use crate::strategy::Strategy;
    use rand::Rng;

    /// Uniform `true` / `false`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Upstream-compatible name: `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, runner: &mut TestRunner) -> bool {
            runner.rng().gen()
        }
    }
}

pub use runner::{ProptestConfig, TestRunner};
pub use strategy::{Just, Strategy};

pub mod prelude {
    pub use crate::collection;
    pub use crate::runner::{ProptestConfig, TestRunner};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Supports the upstream surface used in this
/// workspace: an optional `#![proptest_config(..)]` header and test
/// functions whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)) => {};
    (@with_config ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::runner::run_cases(&config, stringify!($name), |__rt| {
                $(
                    let __generated =
                        $crate::strategy::Strategy::generate(&($strat), __rt);
                    __rt.record(stringify!($arg), &__generated);
                    let $arg = __generated;
                )+
                $body
                true
            });
        }
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that reports the generated inputs on failure (via the runner).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($l:expr, $r:expr $(,)?) => { assert_eq!($l, $r) };
    ($l:expr, $r:expr, $($fmt:tt)+) => { assert_eq!($l, $r, $($fmt)+) };
}

/// `assert_ne!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($l:expr, $r:expr $(,)?) => { assert_ne!($l, $r) };
    ($l:expr, $r:expr, $($fmt:tt)+) => { assert_ne!($l, $r, $($fmt)+) };
}

/// Rejects the current case (it is regenerated and not counted).
/// Only valid inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return false;
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::strategy::boxed($strat)),+])
    };
}
