//! Collection strategies (`vec`).

use crate::runner::TestRunner;
use crate::strategy::Strategy;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Inclusive length bounds for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        let len = runner.rng().gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(runner)).collect()
    }
}

/// `proptest::collection::vec` — vectors of `element` with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
