//! Value-generation strategies (no shrinking; see crate docs).

use crate::runner::TestRunner;
use rand::{Rng, SampleUniform};
use std::ops::{Range, RangeInclusive};

/// Generates random values of an associated type from a [`TestRunner`].
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<F, U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Regenerates until `f` accepts (upstream rejects-and-shrinks; we
    /// resample, bounded to keep pathological filters from spinning).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).generate(runner)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        (**self).generate(runner)
    }
}

/// Boxes a strategy behind the object-safe [`Strategy`] trait (used by
/// [`crate::prop_oneof!`]).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.inner.generate(runner))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, runner: &mut TestRunner) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(runner);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive samples: {}",
            self.whence
        );
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        runner.rng().gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        runner.rng().gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Uniform choice among boxed strategies (see [`crate::prop_oneof!`]).
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        let i = runner.rng().gen_range(0..self.options.len());
        self.options[i].generate(runner)
    }
}

/// Builds a [`OneOf`] from boxed options.
pub fn one_of<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one option");
    OneOf { options }
}
