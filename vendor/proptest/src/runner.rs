//! Case loop: deterministic seeds, rejection accounting, failure reporting.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Subset of upstream `ProptestConfig` honoured by this stand-in.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each test runs.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections across the whole test.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Per-case context handed to strategies: the RNG plus a transcript of the
/// generated inputs, printed if the case fails.
pub struct TestRunner {
    rng: StdRng,
    transcript: String,
}

impl TestRunner {
    fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            transcript: String::new(),
        }
    }

    /// The RNG strategies draw from.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Records a generated input for failure reporting.
    pub fn record<T: std::fmt::Debug>(&mut self, name: &str, value: &T) {
        self.transcript.push_str(&format!("  {name} = {value:?}\n"));
    }
}

/// Stable per-test seed base so failures reproduce across runs.
fn seed_base(test_name: &str) -> u64 {
    // FNV-1a over the test name.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Runs `case` until `config.cases` cases are accepted. A `false` return
/// marks the case rejected (`prop_assume!`); a panic fails the test after
/// printing the generated inputs.
pub fn run_cases(
    config: &ProptestConfig,
    test_name: &str,
    mut case: impl FnMut(&mut TestRunner) -> bool,
) {
    let base = seed_base(test_name);
    let mut accepted: u32 = 0;
    let mut rejected: u32 = 0;
    let mut attempt: u64 = 0;
    while accepted < config.cases {
        let seed = base.wrapping_add(attempt.wrapping_mul(0x9E3779B97F4A7C15));
        attempt += 1;
        let mut runner = TestRunner::new(seed);
        match catch_unwind(AssertUnwindSafe(|| case(&mut runner))) {
            Ok(true) => accepted += 1,
            Ok(false) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "{test_name}: too many prop_assume! rejections \
                         ({rejected} > {})",
                        config.max_global_rejects
                    );
                }
            }
            Err(payload) => {
                eprintln!(
                    "proptest: `{test_name}` failed at case {accepted} \
                     (seed {seed:#x}) with inputs:\n{}",
                    runner.transcript
                );
                resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn runs_requested_number_of_cases() {
        let mut count = 0;
        run_cases(&ProptestConfig::with_cases(10), "counter", |_rt| {
            count += 1;
            true
        });
        assert_eq!(count, 10);
    }

    #[test]
    fn rejections_do_not_count_as_cases() {
        let mut accepted = 0;
        let mut calls = 0;
        run_cases(&ProptestConfig::with_cases(5), "rejector", |rt| {
            calls += 1;
            if rt.rng().next_parity() {
                return false;
            }
            accepted += 1;
            true
        });
        assert_eq!(accepted, 5);
        assert!(calls >= 5);
    }

    trait Parity {
        fn next_parity(&mut self) -> bool;
    }
    impl Parity for rand::rngs::StdRng {
        fn next_parity(&mut self) -> bool {
            use rand::RngCore;
            self.next_u64() & 1 == 0
        }
    }

    #[test]
    fn strategies_are_deterministic_per_seed() {
        let strat = (0u32..100, 0.0..1.0f64);
        let mut a = TestRunner::new(7);
        let mut b = TestRunner::new(7);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
