//! Minimal, dependency-free stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the thin slice of `rand` it actually uses:
//!
//! * [`SeedableRng::seed_from_u64`] construction,
//! * [`Rng::gen`] for `f64`/`f32`/`bool` and unsigned integers,
//! * [`Rng::gen_range`] over half-open and inclusive integer/float ranges,
//! * [`rngs::StdRng`], here a xoshiro256++ generator (not ChaCha — stream
//!   values differ from upstream `rand`, which only matters for tests that
//!   hard-code upstream sequences; this workspace has none).
//!
//! Determinism per seed is guaranteed, which is all the workspace relies on.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from their "standard" distribution
/// (`[0, 1)` for floats, full range for integers).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform sampling over a bounded range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)` if `!inclusive`, `[lo, hi]` otherwise.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty inclusive range");
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                }
                // Width as u64; all workspace ranges are far below 2^64 so
                // the widening is exact (an inclusive full-u64 range would
                // wrap, which we simply don't support).
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                debug_assert!(span > 0 && span <= u64::MAX as u128);
                let span = span as u64;
                // Debiased multiply-shift (Lemire): reject the short biased
                // tail where the low product word falls below (2^64 - span)
                // mod span.
                let threshold = span.wrapping_neg() % span;
                loop {
                    let wide = (rng.next_u64() as u128) * (span as u128);
                    if wide as u64 >= threshold {
                        return (lo as i128 + (wide >> 64) as i128) as $t;
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo < hi, "gen_range: empty float range");
                let unit = <$t as Standard>::sample(rng);
                let v = lo + (hi - lo) * unit;
                // Guard against rounding up to the open bound.
                if v >= hi { lo } else { v }
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Fast, 256-bit state, passes BigCrush — more than enough
    /// for synthetic-graph generation and randomized rounding.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API parity with upstream `rand`.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        use super::RngCore;
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(0u32..=5);
            assert!(j <= 5);
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let g = rng.gen_range(-1.5f64..=1.5);
            assert!((-1.5..=1.5).contains(&g));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from 10k"
            );
        }
    }

    #[test]
    fn works_through_mut_references() {
        fn sample<R: Rng>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(4);
        let r = &mut rng;
        let a = sample(r);
        let b = sample(&mut &mut *r);
        assert!(a.is_finite() && b.is_finite());
    }
}
