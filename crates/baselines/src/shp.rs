//! SHP — Social-Hash-Partitioner-style local search (Kabiljo et al.,
//! VLDB'17; paper §4).
//!
//! A Kernighan–Lin-flavoured swap heuristic: vertices compute the gain of
//! moving to the other side, and the two sides exchange equal numbers of
//! highest-gain movers so the *combined* balance dimension stays put. As in
//! the paper, SHP balances only one combined dimension — a weighted sum of
//! degree (high coefficient) and vertex count (low coefficient) — so its
//! per-dimension multi-dimensional balance is not guaranteed (Figure 4).

use mdbgp_graph::{
    partition::validate_inputs, Graph, InducedSubgraph, Partition, PartitionError, Partitioner,
    VertexId, VertexWeights,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the SHP baseline.
#[derive(Clone, Debug)]
pub struct ShpPartitioner {
    /// Swap rounds per bisection.
    pub rounds: usize,
    /// Coefficient of the degree term in the combined dimension (the paper
    /// configures edges with the *higher* coefficient).
    pub edge_coefficient: f64,
    /// Coefficient of the vertex-count term (lower).
    pub vertex_coefficient: f64,
}

impl Default for ShpPartitioner {
    fn default() -> Self {
        Self {
            rounds: 20,
            edge_coefficient: 1.0,
            vertex_coefficient: 0.1,
        }
    }
}

impl ShpPartitioner {
    /// One bisection by swap-based local search. Returns side (0/1) per
    /// vertex.
    fn bisect(&self, graph: &Graph, rng: &mut StdRng) -> Vec<u8> {
        let n = graph.num_vertices();
        // Combined weight per vertex.
        let combined: Vec<f64> = (0..n)
            .map(|v| {
                self.edge_coefficient * graph.degree(v as VertexId) as f64 + self.vertex_coefficient
            })
            .collect();

        // Balanced greedy init on the combined dimension: shuffle, then
        // heavier side gets the next vertex.
        let mut order: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut side = vec![0u8; n];
        let (mut load0, mut load1) = (0.0f64, 0.0f64);
        for &v in &order {
            if load0 <= load1 {
                side[v as usize] = 0;
                load0 += combined[v as usize];
            } else {
                side[v as usize] = 1;
                load1 += combined[v as usize];
            }
        }

        // Swap rounds.
        for _ in 0..self.rounds {
            // gain(v) = neighbours across − neighbours on own side.
            let gain = |v: u32, side: &[u8]| -> i64 {
                let mut g = 0i64;
                for &u in graph.neighbors(v) {
                    if side[u as usize] != side[v as usize] {
                        g += 1;
                    } else {
                        g -= 1;
                    }
                }
                g
            };
            let mut movers0: Vec<(i64, u32)> = Vec::new();
            let mut movers1: Vec<(i64, u32)> = Vec::new();
            for v in 0..n as u32 {
                let g = gain(v, &side);
                if g >= 0 {
                    if side[v as usize] == 0 {
                        movers0.push((g, v));
                    } else {
                        movers1.push((g, v));
                    }
                }
            }
            movers0.sort_unstable_by(|a, b| b.cmp(a));
            movers1.sort_unstable_by(|a, b| b.cmp(a));
            let pairs = movers0.len().min(movers1.len());
            let mut swapped = 0usize;
            for i in 0..pairs {
                let (g0, v0) = movers0[i];
                let (g1, v1) = movers1[i];
                // Swapping adjacent movers double-counts their shared edge.
                let adjacency_penalty = if graph.has_edge(v0, v1) { 4 } else { 0 };
                if g0 + g1 - adjacency_penalty > 0 {
                    side[v0 as usize] = 1;
                    side[v1 as usize] = 0;
                    swapped += 1;
                } else {
                    break; // sorted: later pairs are no better
                }
            }
            if swapped == 0 {
                break;
            }
        }
        side
    }

    fn recurse(
        &self,
        graph: &Graph,
        subset: Vec<VertexId>,
        k: usize,
        part_offset: u32,
        rng: &mut StdRng,
        labels: &mut [u32],
    ) -> Result<(), PartitionError> {
        if k == 1 {
            for v in subset {
                labels[v as usize] = part_offset;
            }
            return Ok(());
        }
        if subset.len() < k {
            return Err(PartitionError::Infeasible(format!(
                "cannot split {} vertices into {k} parts",
                subset.len()
            )));
        }
        let sub = InducedSubgraph::extract(graph, &subset);
        let side = self.bisect(&sub.graph, rng);
        let mut left = Vec::new();
        let mut right = Vec::new();
        for (i, &s) in side.iter().enumerate() {
            if s == 0 {
                left.push(sub.original[i]);
            } else {
                right.push(sub.original[i]);
            }
        }
        let k_left = k.div_ceil(2);
        let k_right = k - k_left;
        if left.len() < k_left || right.len() < k_right {
            return Err(PartitionError::Infeasible(
                "degenerate SHP bisection".into(),
            ));
        }
        self.recurse(graph, left, k_left, part_offset, rng, labels)?;
        self.recurse(
            graph,
            right,
            k_right,
            part_offset + k_left as u32,
            rng,
            labels,
        )
    }
}

impl Partitioner for ShpPartitioner {
    fn name(&self) -> &str {
        "SHP"
    }

    fn partition(
        &self,
        graph: &Graph,
        weights: &VertexWeights,
        k: usize,
        seed: u64,
    ) -> Result<Partition, PartitionError> {
        validate_inputs(graph, weights, k)?;
        let n = graph.num_vertices();
        if k == 1 {
            return Ok(Partition::trivial(n, 1));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut labels = vec![0u32; n];
        let all: Vec<VertexId> = (0..n as VertexId).collect();
        self.recurse(graph, all, k, 0, &mut rng, &mut labels)?;
        Ok(Partition::new(labels, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::gen;

    #[test]
    fn locality_beats_hash_on_clustered_graph() {
        let cg = gen::community_graph(
            &gen::CommunityGraphConfig::social(2000),
            &mut StdRng::seed_from_u64(2),
        );
        let w = VertexWeights::vertex_edge(&cg.graph);
        let p = ShpPartitioner::default()
            .partition(&cg.graph, &w, 2, 3)
            .unwrap();
        let loc = p.edge_locality(&cg.graph);
        assert!(loc > 0.55, "swaps should uncover structure, got {loc}");
    }

    #[test]
    fn combined_dimension_roughly_balanced() {
        let g = gen::erdos_renyi(1000, 6000, &mut StdRng::seed_from_u64(4));
        let w = VertexWeights::build(&g, &[mdbgp_graph::WeightKind::Degree]);
        let p = ShpPartitioner::default().partition(&g, &w, 2, 5).unwrap();
        // Degree dominates the combined dimension, so degree balance holds
        // approximately on a uniform graph.
        assert!(p.max_imbalance(&w) < 0.15, "{}", p.max_imbalance(&w));
    }

    #[test]
    fn per_dimension_balance_not_guaranteed_on_skewed_graph() {
        let mut rng = StdRng::seed_from_u64(6);
        let degs = gen::power_law_sequence(3000, 1.9, 2.0, 500.0, &mut rng);
        let g = gen::chung_lu(&degs, &mut rng);
        let w = VertexWeights::vertex_edge(&g);
        let p = ShpPartitioner::default().partition(&g, &w, 2, 7).unwrap();
        assert!(
            p.max_imbalance(&w) > 0.02,
            "SHP balances a combined dim only; got {}",
            p.max_imbalance(&w)
        );
    }

    #[test]
    fn k_way_recursion_produces_k_parts() {
        let g = gen::grid(20, 20);
        let w = VertexWeights::unit(400);
        let p = ShpPartitioner::default().partition(&g, &w, 8, 1).unwrap();
        assert_eq!(p.num_parts(), 8);
        assert!(p.sizes().iter().all(|&s| s > 0), "no empty parts");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gen::cycle(80);
        let w = VertexWeights::unit(80);
        let shp = ShpPartitioner::default();
        assert_eq!(
            shp.partition(&g, &w, 2, 9).unwrap(),
            shp.partition(&g, &w, 2, 9).unwrap()
        );
    }
}
