// Tight numeric loops in this crate frequently index several parallel
// arrays at once; rewriting them with zipped iterators obscures the
// kernels, so this pedantic lint is disabled crate-wide (perf lints stay).
#![allow(clippy::needless_range_loop)]

//! # mdbgp-baselines — the comparison partitioners of the paper's evaluation
//!
//! Every algorithm the paper measures `GD` against, implemented from
//! scratch on the shared [`mdbgp_graph::Partitioner`] interface:
//!
//! * [`HashPartitioner`] — stateless hashing of vertex ids (Giraph's
//!   default; the baseline of Figures 1, 5–7),
//! * [`SpinnerPartitioner`] — label propagation with soft imbalance
//!   penalties (Martella et al.; no hard multi-dimensional balance, as
//!   Figure 4 shows),
//! * [`BlpPartitioner`] — balanced label propagation: size-constrained
//!   clustering into `c·k` clusters followed by a randomized merge into
//!   `k` multi-dimensionally balanced parts (Ugander–Backstrom +
//!   Meyerhenke et al.),
//! * [`ShpPartitioner`] — Social-Hash-style local search with pairwise
//!   swaps, balancing a single *combined* dimension (Kabiljo et al.),
//! * [`MetisPartitioner`] — a multilevel multi-constraint partitioner in
//!   the METIS mould (heavy-edge matching, greedy growing, FM refinement;
//!   Karypis–Kumar), the comparator of Table 3.

pub mod blp;
pub mod hash;
pub mod metis;
pub mod shp;
pub mod spinner;

pub use blp::BlpPartitioner;
pub use hash::HashPartitioner;
pub use metis::MetisPartitioner;
pub use shp::ShpPartitioner;
pub use spinner::SpinnerPartitioner;

// Re-export the shared interface so downstream users need one import.
pub use mdbgp_graph::{Partition, PartitionError, Partitioner};

/// Mixes a vertex id with a seed into a pseudo-random u64 (splitmix64
/// finalizer) — shared by the hash partitioner and the randomized inits.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_spreads_bits() {
        let a = mix64(0);
        let b = mix64(1);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 8, "avalanche expected");
    }
}
