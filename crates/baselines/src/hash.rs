//! Hash partitioning — Giraph's default strategy (paper §4).
//!
//! Stateless: each vertex goes to `hash(id, seed) mod k`. Expected locality
//! is exactly `1/k` and balance follows from concentration, which is why
//! the paper uses it as the baseline of every speedup figure.

use crate::mix64;
use mdbgp_graph::{
    partition::validate_inputs, Graph, Partition, PartitionError, Partitioner, VertexWeights,
};

/// The hash partitioner.
#[derive(Clone, Copy, Debug, Default)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn name(&self) -> &str {
        "Hash"
    }

    fn partition(
        &self,
        graph: &Graph,
        weights: &VertexWeights,
        k: usize,
        seed: u64,
    ) -> Result<Partition, PartitionError> {
        validate_inputs(graph, weights, k)?;
        let parts = (0..graph.num_vertices() as u64)
            .map(|v| (mix64(v ^ seed.rotate_left(17)) % k as u64) as u32)
            .collect();
        Ok(Partition::new(parts, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn locality_close_to_one_over_k() {
        let g = gen::erdos_renyi(5000, 40_000, &mut StdRng::seed_from_u64(1));
        let w = VertexWeights::unit(5000);
        for k in [2usize, 8] {
            let p = HashPartitioner.partition(&g, &w, k, 7).unwrap();
            let loc = p.edge_locality(&g);
            let expected = 1.0 / k as f64;
            assert!((loc - expected).abs() < 0.02, "k={k}: {loc} vs {expected}");
        }
    }

    #[test]
    fn near_balanced_on_both_dimensions() {
        let g = gen::rmat(
            gen::RmatConfig::graph500(14, 8),
            &mut StdRng::seed_from_u64(2),
        );
        let w = VertexWeights::vertex_edge(&g);
        let p = HashPartitioner.partition(&g, &w, 8, 3).unwrap();
        // Unit weights concentrate tightly (binomial, ≈2% std at this
        // size); degree weights fluctuate more on a skewed graph.
        let imb = p.imbalance(&w);
        assert!(imb[0] < 0.08, "vertex imbalance {}", imb[0]);
        assert!(imb[1] < 0.35, "degree imbalance {}", imb[1]);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let g = gen::path(100);
        let w = VertexWeights::unit(100);
        let a = HashPartitioner.partition(&g, &w, 4, 1).unwrap();
        let b = HashPartitioner.partition(&g, &w, 4, 1).unwrap();
        let c = HashPartitioner.partition(&g, &w, 4, 2).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rejects_bad_k() {
        let g = gen::path(3);
        let w = VertexWeights::unit(3);
        assert!(HashPartitioner.partition(&g, &w, 0, 0).is_err());
    }
}
