//! Balanced Label Propagation (paper §4, "BLP").
//!
//! Two stages, combining Ugander–Backstrom with Meyerhenke et al. exactly as
//! the paper describes:
//!
//! 1. **size-constrained clustering**: label propagation into `c·k`
//!    clusters where no cluster may exceed `|V|/(c·k)` vertices or
//!    `2|E|/(c·k)` total degree (the paper uses `c = 1024` at billion-edge
//!    scale; we default to a size-aware value),
//! 2. **merge**: clusters are shuffled and greedily packed into `k` parts,
//!    which yields multi-dimensional balance even though individual
//!    clusters differ in size.

use mdbgp_graph::{
    partition::validate_inputs, Graph, Partition, PartitionError, Partitioner, VertexId,
    VertexWeights,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the BLP baseline.
#[derive(Clone, Debug)]
pub struct BlpPartitioner {
    /// Cluster multiplier `c`: stage 1 caps clusters at `|V|/(c·k)`
    /// vertices. `None` auto-scales to `clamp(n/(16k), 8, 128)` so small
    /// graphs keep meaningful cluster sizes.
    pub cluster_factor: Option<usize>,
    /// Label-propagation sweeps of stage 1.
    pub iterations: usize,
}

impl Default for BlpPartitioner {
    fn default() -> Self {
        Self {
            cluster_factor: None,
            iterations: 25,
        }
    }
}

impl BlpPartitioner {
    fn effective_c(&self, n: usize, k: usize) -> usize {
        match self.cluster_factor {
            Some(c) => c.max(2),
            // Trade-off knob (paper §4.1): larger c ⇒ smaller clusters ⇒
            // tighter merge balance (≈ 1/c) but lower locality.
            None => (n / (64 * k)).clamp(8, 64),
        }
    }
}

impl Partitioner for BlpPartitioner {
    fn name(&self) -> &str {
        "BLP"
    }

    fn partition(
        &self,
        graph: &Graph,
        weights: &VertexWeights,
        k: usize,
        seed: u64,
    ) -> Result<Partition, PartitionError> {
        validate_inputs(graph, weights, k)?;
        let n = graph.num_vertices();
        let c = self.effective_c(n, k);
        let num_clusters = (c * k).min(n.max(1));
        let mut rng = StdRng::seed_from_u64(seed);

        // --- Stage 1: size-constrained clustering (Meyerhenke et al.):
        // start from singletons and let clusters grow by label propagation
        // up to the |V|/(c·k) vertex and 2|E|/(c·k) degree caps. ---
        let vertex_cap = (n as f64 / num_clusters as f64).ceil().max(2.0);
        let degree_cap = ((2 * graph.num_edges()) as f64 / num_clusters as f64)
            .ceil()
            .max(2.0);

        let mut cluster: Vec<u32> = (0..n as u32).collect();
        let mut cluster_vertices = vec![1.0f64; n];
        let mut cluster_degree: Vec<f64> =
            (0..n).map(|v| graph.degree(v as VertexId) as f64).collect();

        let mut counts = vec![0u32; n];
        let mut touched: Vec<u32> = Vec::new();
        let mut order: Vec<u32> = (0..n as u32).collect();
        for _ in 0..self.iterations {
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let mut moved = 0usize;
            for &v in &order {
                let deg = graph.degree(v) as f64;
                if deg == 0.0 {
                    continue;
                }
                touched.clear();
                for &u in graph.neighbors(v) {
                    let cl = cluster[u as usize];
                    if counts[cl as usize] == 0 {
                        touched.push(cl);
                    }
                    counts[cl as usize] += 1;
                }
                let current = cluster[v as usize];
                let mut best = current;
                let mut best_count = if touched.contains(&current) {
                    counts[current as usize]
                } else {
                    0
                };
                for &cl in &touched {
                    // Caps forbid moves into full clusters (the
                    // "size-constrained" part).
                    if cl != current
                        && counts[cl as usize] > best_count
                        && cluster_vertices[cl as usize] + 1.0 <= vertex_cap
                        && cluster_degree[cl as usize] + deg <= degree_cap
                    {
                        best = cl;
                        best_count = counts[cl as usize];
                    }
                }
                for &cl in &touched {
                    counts[cl as usize] = 0;
                }
                if best != current {
                    cluster[v as usize] = best;
                    cluster_vertices[current as usize] -= 1.0;
                    cluster_vertices[best as usize] += 1.0;
                    cluster_degree[current as usize] -= deg;
                    cluster_degree[best as usize] += deg;
                    moved += 1;
                }
            }
            if moved == 0 {
                break;
            }
        }

        // --- Stage 2: random greedy merge into k parts. ---
        let d = weights.dims();
        let mut cluster_loads = vec![vec![0.0f64; d]; n];
        for v in 0..n {
            let cl = cluster[v] as usize;
            for j in 0..d {
                cluster_loads[cl][j] += weights.weight(j, v as VertexId);
            }
        }
        // Singleton init means cluster ids live in 0..n; empty ids carry
        // zero load and are harmless no-ops in the packing below.
        let mut cluster_order: Vec<usize> = (0..n).collect();
        for i in (1..cluster_order.len()).rev() {
            cluster_order.swap(i, rng.gen_range(0..=i));
        }
        // Large clusters first (randomized within the shuffle this keeps
        // the packing tight), then assign each to the part with the lowest
        // resulting maximum normalized load.
        cluster_order.sort_by(|&a, &b| {
            let la: f64 = cluster_loads[a].iter().sum();
            let lb: f64 = cluster_loads[b].iter().sum();
            lb.partial_cmp(&la).unwrap()
        });
        let mut part_loads = vec![vec![0.0f64; d]; k];
        let mut part_of_cluster = vec![0u32; n];
        let avg: Vec<f64> = (0..d).map(|j| weights.total(j) / k as f64).collect();
        for &cl in &cluster_order {
            let mut best_part = 0usize;
            let mut best_score = f64::INFINITY;
            for part in 0..k {
                let mut score = 0.0f64;
                for j in 0..d {
                    score = score.max((part_loads[part][j] + cluster_loads[cl][j]) / avg[j]);
                }
                if score < best_score {
                    best_score = score;
                    best_part = part;
                }
            }
            part_of_cluster[cl] = best_part as u32;
            for j in 0..d {
                part_loads[best_part][j] += cluster_loads[cl][j];
            }
        }

        let parts = cluster
            .iter()
            .map(|&cl| part_of_cluster[cl as usize])
            .collect();
        Ok(Partition::new(parts, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::gen;

    #[test]
    fn multi_dim_balance_achieved() {
        let cg = gen::community_graph(
            &gen::CommunityGraphConfig::social(3000),
            &mut StdRng::seed_from_u64(1),
        );
        let w = VertexWeights::vertex_edge(&cg.graph);
        let p = BlpPartitioner::default()
            .partition(&cg.graph, &w, 8, 2)
            .unwrap();
        let imb = p.max_imbalance(&w);
        assert!(
            imb < 0.10,
            "BLP's merge stage must balance both dims, got {imb}"
        );
    }

    #[test]
    fn locality_above_hash() {
        let cg = gen::community_graph(
            &gen::CommunityGraphConfig::social(3000),
            &mut StdRng::seed_from_u64(3),
        );
        let w = VertexWeights::vertex_edge(&cg.graph);
        let p = BlpPartitioner::default()
            .partition(&cg.graph, &w, 2, 4)
            .unwrap();
        let loc = p.edge_locality(&cg.graph);
        assert!(
            loc > 0.55,
            "clusters should buy locality above 1/k, got {loc}"
        );
    }

    #[test]
    fn cluster_factor_override_respected() {
        let g = gen::erdos_renyi(500, 2000, &mut StdRng::seed_from_u64(4));
        let w = VertexWeights::unit(500);
        let blp = BlpPartitioner {
            cluster_factor: Some(4),
            iterations: 10,
        };
        let p = blp.partition(&g, &w, 2, 1).unwrap();
        assert_eq!(p.num_parts(), 2);
        assert!(p.max_imbalance(&w) < 0.15);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gen::cycle(120);
        let w = VertexWeights::unit(120);
        let blp = BlpPartitioner::default();
        assert_eq!(
            blp.partition(&g, &w, 4, 6).unwrap(),
            blp.partition(&g, &w, 4, 6).unwrap()
        );
    }

    #[test]
    fn tiny_graph_does_not_panic() {
        let g = gen::path(5);
        let w = VertexWeights::unit(5);
        let p = BlpPartitioner::default().partition(&g, &w, 2, 0).unwrap();
        assert_eq!(p.num_vertices(), 5);
    }
}
