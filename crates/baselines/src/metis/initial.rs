//! Initial bisection of the coarsest graph: greedy graph growing (GGGP).
//!
//! Grow side 0 from a random seed vertex, always absorbing the frontier
//! vertex with the strongest connection to the grown region, until side 0
//! holds its target share of the vertex weight (averaged over dimensions).
//! Several trials are run and the smallest cut wins; a random balanced
//! assignment serves as the fallback trial.

use super::wgraph::WGraph;
use mdbgp_graph::VertexId;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BinaryHeap;

/// Grows one GGGP trial from `seed_vertex`; returns the side assignment.
fn grow_from(g: &WGraph, fraction: f64, seed_vertex: VertexId) -> Vec<u8> {
    let n = g.n();
    let d = g.d();
    let totals = g.totals();
    let mut side = vec![1u8; n];
    let mut loads0 = vec![0.0f64; d];
    // Normalized mean load of side 0; grow until it reaches `fraction`.
    let mean_load = |loads0: &[f64]| -> f64 {
        loads0.iter().zip(&totals).map(|(l, t)| l / t).sum::<f64>() / d as f64
    };

    // Max-heap of (connection weight to side 0, vertex); stale entries are
    // skipped on pop (lazy deletion).
    let mut heap: BinaryHeap<(u64, VertexId)> = BinaryHeap::new();
    let mut conn = vec![0.0f64; n];
    let key = |w: f64| -> u64 { (w.max(0.0) * 1e6) as u64 };

    let add = |v: VertexId,
               side: &mut [u8],
               loads0: &mut [f64],
               conn: &mut [f64],
               heap: &mut BinaryHeap<(u64, VertexId)>,
               g: &WGraph| {
        side[v as usize] = 0;
        for j in 0..g.d() {
            loads0[j] += g.vweights[j][v as usize];
        }
        for (u, w) in g.neighbors(v) {
            if side[u as usize] == 1 {
                conn[u as usize] += w;
                heap.push((key(conn[u as usize]), u));
            }
        }
    };

    add(seed_vertex, &mut side, &mut loads0, &mut conn, &mut heap, g);
    let mut next_fresh = 0u32; // fallback for disconnected graphs
    while mean_load(&loads0) < fraction {
        let v = loop {
            match heap.pop() {
                Some((k, v)) => {
                    if side[v as usize] == 1 && key(conn[v as usize]) == k {
                        break Some(v);
                    }
                }
                None => {
                    // Frontier exhausted (disconnected component): take any
                    // remaining side-1 vertex.
                    while (next_fresh as usize) < n && side[next_fresh as usize] == 0 {
                        next_fresh += 1;
                    }
                    if (next_fresh as usize) < n {
                        break Some(next_fresh);
                    }
                    break None;
                }
            }
        };
        match v {
            Some(v) => add(v, &mut side, &mut loads0, &mut conn, &mut heap, g),
            None => break,
        }
    }
    side
}

/// Random balanced assignment on the mean normalized weight (fallback
/// trial and the seed of FM refinement on pathological graphs).
fn random_balanced(g: &WGraph, fraction: f64, rng: &mut StdRng) -> Vec<u8> {
    let n = g.n();
    let d = g.d();
    let totals = g.totals();
    let mut order: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let mut side = vec![1u8; n];
    let mut loads0 = vec![0.0f64; d];
    for &v in &order {
        let mean: f64 = loads0.iter().zip(&totals).map(|(l, t)| l / t).sum::<f64>() / d as f64;
        if mean < fraction {
            side[v as usize] = 0;
            for j in 0..d {
                loads0[j] += g.vweights[j][v as usize];
            }
        }
    }
    side
}

/// Best-of-`trials` initial bisection (smaller cut wins).
pub fn initial_bisection(g: &WGraph, fraction: f64, trials: usize, rng: &mut StdRng) -> Vec<u8> {
    assert!(g.n() > 0);
    let mut best: Option<(f64, Vec<u8>)> = None;
    for t in 0..trials.max(1) {
        let side = if t + 1 == trials.max(1) {
            random_balanced(g, fraction, rng)
        } else {
            grow_from(g, fraction, rng.gen_range(0..g.n() as u32))
        };
        let cut = g.cut(&side);
        if best.as_ref().is_none_or(|(bc, _)| cut < *bc) {
            best = Some((cut, side));
        }
    }
    best.unwrap().1
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::{gen, VertexWeights};
    use rand::SeedableRng;

    fn lift(g: &mdbgp_graph::Graph) -> WGraph {
        WGraph::from_graph(g, &VertexWeights::vertex_edge(g))
    }

    #[test]
    fn finds_the_obvious_cut_in_two_cliques() {
        let g = lift(&gen::two_cliques(15, 1));
        let side = initial_bisection(&g, 0.5, 6, &mut StdRng::seed_from_u64(1));
        assert_eq!(g.cut(&side), 1.0, "only the bridge should be cut");
    }

    #[test]
    fn respects_target_fraction() {
        let g = lift(&gen::grid(10, 10));
        for &f in &[0.5, 0.25] {
            let side = initial_bisection(&g, f, 4, &mut StdRng::seed_from_u64(2));
            let zero = side.iter().filter(|&&s| s == 0).count() as f64 / 100.0;
            assert!((zero - f).abs() < 0.15, "fraction {f}: got {zero}");
        }
    }

    #[test]
    fn handles_disconnected_graphs() {
        // Two components: growth must jump between them.
        let mut b = mdbgp_graph::GraphBuilder::new(20);
        for u in 0..9u32 {
            b.add_edge(u, u + 1);
        }
        for u in 10..19u32 {
            b.add_edge(u, u + 1);
        }
        let g = lift(&b.build());
        let side = initial_bisection(&g, 0.5, 3, &mut StdRng::seed_from_u64(3));
        let zero = side.iter().filter(|&&s| s == 0).count();
        assert!(
            (8..=12).contains(&zero),
            "balanced despite components: {zero}"
        );
    }

    #[test]
    fn single_vertex_graph() {
        let g = lift(&mdbgp_graph::Graph::empty(1));
        let side = initial_bisection(&g, 0.5, 2, &mut StdRng::seed_from_u64(4));
        assert_eq!(side.len(), 1);
    }
}
