//! METIS-style multilevel multi-constraint partitioner (Karypis–Kumar;
//! paper Table 3's comparator).
//!
//! The classic three-phase scheme:
//!
//! 1. [`coarsen`] — heavy-edge matching collapses the graph level by level;
//! 2. [`initial`] — greedy graph growing bisects the coarsest graph;
//! 3. [`mod@refine`] — multi-constraint FM improves the cut while respecting
//!    per-dimension balance tolerances during uncoarsening.
//!
//! k-way partitions come from recursive bisection. With `d ≥ 3`
//! constraints the feasible moves thin out and balance degrades — our
//! reproduction of the paper's observation that "for high-dimensional
//! balanced partitioning METIS can't guarantee balance".

pub mod coarsen;
pub mod initial;
pub mod refine;
pub mod wgraph;

use coarsen::coarsen_until;
use initial::initial_bisection;
use mdbgp_graph::{
    partition::validate_inputs, Graph, InducedSubgraph, Partition, PartitionError, Partitioner,
    VertexId, VertexWeights,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use refine::refine;
use wgraph::WGraph;

/// Configuration of the METIS-like partitioner.
#[derive(Clone, Debug)]
pub struct MetisPartitioner {
    /// Allowed relative imbalance per dimension (the paper grants METIS
    /// 0.5% in Table 3).
    pub epsilon: f64,
    /// Stop coarsening at this many vertices.
    pub coarsest_size: usize,
    /// GGGP trials for the initial bisection.
    pub initial_trials: usize,
    /// FM passes per uncoarsening level.
    pub refine_passes: usize,
}

impl Default for MetisPartitioner {
    fn default() -> Self {
        Self {
            epsilon: 0.005,
            coarsest_size: 120,
            initial_trials: 6,
            refine_passes: 8,
        }
    }
}

/// Statistics of one `partition_with_stats` run (Table 3 reports memory).
#[derive(Clone, Debug, Default)]
pub struct MetisStats {
    /// Peak bytes of the multilevel hierarchies (summed per bisection,
    /// maxed over the recursion).
    pub peak_memory_bytes: usize,
    /// Total coarsening levels built.
    pub total_levels: usize,
}

impl MetisPartitioner {
    /// Multilevel bisection of a weighted graph; returns sides (0/1).
    fn multilevel_bisect(
        &self,
        g: &WGraph,
        fraction: f64,
        rng: &mut StdRng,
        stats: &mut MetisStats,
    ) -> Vec<u8> {
        let levels = coarsen_until(g, self.coarsest_size, rng);
        let hierarchy_bytes: usize =
            g.memory_bytes() + levels.iter().map(|l| l.graph.memory_bytes()).sum::<usize>();
        stats.peak_memory_bytes = stats.peak_memory_bytes.max(hierarchy_bytes);
        stats.total_levels += levels.len();

        let coarsest = levels.last().map_or(g, |l| &l.graph);
        let mut side = initial_bisection(coarsest, fraction, self.initial_trials, rng);
        refine(
            coarsest,
            &mut side,
            fraction,
            self.epsilon,
            self.refine_passes,
        );

        // Uncoarsen: project through each map, refining at every level.
        for i in (0..levels.len()).rev() {
            let fine_graph = if i == 0 { g } else { &levels[i - 1].graph };
            let map = &levels[i].map;
            let mut fine_side = vec![0u8; fine_graph.n()];
            for v in 0..fine_graph.n() {
                fine_side[v] = side[map[v] as usize];
            }
            refine(
                fine_graph,
                &mut fine_side,
                fraction,
                self.epsilon,
                self.refine_passes,
            );
            side = fine_side;
        }
        side
    }

    #[allow(clippy::too_many_arguments)] // internal recursion carries its full context
    fn recurse(
        &self,
        graph: &Graph,
        weights: &VertexWeights,
        subset: Vec<VertexId>,
        k: usize,
        part_offset: u32,
        rng: &mut StdRng,
        labels: &mut [u32],
        stats: &mut MetisStats,
    ) -> Result<(), PartitionError> {
        if k == 1 {
            for v in subset {
                labels[v as usize] = part_offset;
            }
            return Ok(());
        }
        if subset.len() < k {
            return Err(PartitionError::Infeasible(format!(
                "cannot split {} vertices into {k} parts",
                subset.len()
            )));
        }
        let sub = InducedSubgraph::extract(graph, &subset);
        let w_sub = weights.restrict(&sub.original);
        let wg = WGraph::from_graph(&sub.graph, &w_sub);
        let k_left = k.div_ceil(2);
        let k_right = k - k_left;
        let fraction = k_left as f64 / k as f64;
        let side = self.multilevel_bisect(&wg, fraction, rng, stats);
        let mut left = Vec::new();
        let mut right = Vec::new();
        for (i, &s) in side.iter().enumerate() {
            if s == 0 {
                left.push(sub.original[i]);
            } else {
                right.push(sub.original[i]);
            }
        }
        if left.len() < k_left || right.len() < k_right {
            return Err(PartitionError::Infeasible(
                "degenerate multilevel bisection".into(),
            ));
        }
        self.recurse(
            graph,
            weights,
            left,
            k_left,
            part_offset,
            rng,
            labels,
            stats,
        )?;
        self.recurse(
            graph,
            weights,
            right,
            k_right,
            part_offset + k_left as u32,
            rng,
            labels,
            stats,
        )
    }

    /// Like [`Partitioner::partition`] but also returns memory/level stats.
    pub fn partition_with_stats(
        &self,
        graph: &Graph,
        weights: &VertexWeights,
        k: usize,
        seed: u64,
    ) -> Result<(Partition, MetisStats), PartitionError> {
        validate_inputs(graph, weights, k)?;
        let n = graph.num_vertices();
        let mut stats = MetisStats::default();
        if k == 1 || n == 0 {
            return Ok((Partition::trivial(n, k.max(1)), stats));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut labels = vec![0u32; n];
        let all: Vec<VertexId> = (0..n as VertexId).collect();
        self.recurse(graph, weights, all, k, 0, &mut rng, &mut labels, &mut stats)?;
        Ok((Partition::new(labels, k), stats))
    }
}

impl Partitioner for MetisPartitioner {
    fn name(&self) -> &str {
        "METIS"
    }

    fn partition(
        &self,
        graph: &Graph,
        weights: &VertexWeights,
        k: usize,
        seed: u64,
    ) -> Result<Partition, PartitionError> {
        self.partition_with_stats(graph, weights, k, seed)
            .map(|(p, _)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::gen;

    #[test]
    fn two_cliques_bisected_optimally() {
        let g = gen::two_cliques(30, 2);
        let w = VertexWeights::vertex_edge(&g);
        let p = MetisPartitioner::default().partition(&g, &w, 2, 1).unwrap();
        let q = p.quality(&g, &w);
        let m = g.num_edges() as f64;
        assert!(
            q.edge_locality >= (m - 2.0) / m - 1e-9,
            "locality {} below optimum",
            q.edge_locality
        );
    }

    #[test]
    fn two_dim_balance_tight_on_uniform_graph() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::erdos_renyi(2000, 12_000, &mut rng);
        let w = VertexWeights::vertex_edge(&g);
        let p = MetisPartitioner::default().partition(&g, &w, 2, 3).unwrap();
        assert!(p.max_imbalance(&w) < 0.03, "got {}", p.max_imbalance(&w));
    }

    #[test]
    fn locality_on_community_graph_beats_hash() {
        let cg = gen::community_graph(
            &gen::CommunityGraphConfig::social(2500),
            &mut StdRng::seed_from_u64(4),
        );
        let w = VertexWeights::vertex_edge(&cg.graph);
        let p = MetisPartitioner::default()
            .partition(&cg.graph, &w, 4, 5)
            .unwrap();
        let loc = p.edge_locality(&cg.graph);
        assert!(loc > 0.45, "multilevel should find communities, got {loc}");
    }

    #[test]
    fn high_dimensional_balance_degrades() {
        // The Table 3 phenomenon: with d = 3 including a lopsided dimension,
        // METIS-style refinement cannot hold every constraint at 0.5%.
        let mut rng = StdRng::seed_from_u64(6);
        let degs = gen::power_law_sequence(2000, 1.9, 2.0, 400.0, &mut rng);
        let g = gen::chung_lu(&degs, &mut rng);
        let w = VertexWeights::build(
            &g,
            &[
                mdbgp_graph::WeightKind::Unit,
                mdbgp_graph::WeightKind::Degree,
                mdbgp_graph::WeightKind::NeighborDegreeSum,
            ],
        );
        let p = MetisPartitioner::default().partition(&g, &w, 2, 7).unwrap();
        // We only require the partitioner to survive; the experiment binary
        // reports the actual (typically large) imbalance.
        assert_eq!(p.num_parts(), 2);
    }

    #[test]
    fn stats_track_memory_and_levels() {
        let g = gen::grid(40, 40);
        let w = VertexWeights::unit(1600);
        let (p, stats) = MetisPartitioner::default()
            .partition_with_stats(&g, &w, 4, 8)
            .unwrap();
        assert_eq!(p.num_parts(), 4);
        assert!(stats.peak_memory_bytes > 0);
        assert!(stats.total_levels > 0);
    }

    #[test]
    fn k_way_and_determinism() {
        let g = gen::grid(20, 20);
        let w = VertexWeights::unit(400);
        let m = MetisPartitioner::default();
        let a = m.partition(&g, &w, 8, 9).unwrap();
        let b = m.partition(&g, &w, 8, 9).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.num_parts(), 8);
        assert!(a.sizes().iter().all(|&s| s > 0));
    }
}
