//! Coarsening by heavy-edge matching (Karypis–Kumar).
//!
//! Each pass visits vertices in random order and matches every unmatched
//! vertex with its unmatched neighbour of heaviest edge weight; matched
//! pairs collapse into one coarse vertex whose weight vector is the sum of
//! its constituents, and parallel coarse edges merge with summed weights.

use super::wgraph::WGraph;
use mdbgp_graph::VertexId;
use rand::rngs::StdRng;
use rand::Rng;

/// One coarsening level: the coarser graph plus the fine→coarse map.
#[derive(Clone, Debug)]
pub struct Level {
    pub graph: WGraph,
    /// `map[fine] = coarse`.
    pub map: Vec<VertexId>,
}

/// One round of heavy-edge matching. Returns the fine→coarse map and the
/// number of coarse vertices.
pub fn heavy_edge_matching(g: &WGraph, rng: &mut StdRng) -> (Vec<VertexId>, usize) {
    let n = g.n();
    let mut order: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let unmatched = u32::MAX;
    let mut mate = vec![unmatched; n];
    for &v in &order {
        if mate[v as usize] != unmatched {
            continue;
        }
        let mut best: Option<(f64, u32)> = None;
        for (u, w) in g.neighbors(v) {
            if u != v && mate[u as usize] == unmatched && best.is_none_or(|(bw, _)| w > bw) {
                best = Some((w, u));
            }
        }
        match best {
            Some((_, u)) => {
                mate[v as usize] = u;
                mate[u as usize] = v;
            }
            None => mate[v as usize] = v, // self-matched singleton
        }
    }
    // Assign coarse ids: each matched pair (v < u) and each singleton gets
    // one id, in fine-vertex order for determinism.
    let mut map = vec![unmatched; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        if map[v as usize] != unmatched {
            continue;
        }
        let m = mate[v as usize];
        map[v as usize] = next;
        if m != v && m != unmatched {
            map[m as usize] = next;
        }
        next += 1;
    }
    (map, next as usize)
}

/// Contracts `g` along `map` into `n_coarse` vertices.
pub fn contract(g: &WGraph, map: &[VertexId], n_coarse: usize) -> WGraph {
    let d = g.d();
    let mut vweights = vec![vec![0.0f64; n_coarse]; d];
    for v in 0..g.n() {
        let c = map[v] as usize;
        for j in 0..d {
            vweights[j][c] += g.vweights[j][v];
        }
    }
    // Bucket fine vertices by coarse id so each coarse row is built in one
    // sweep with a dense scratch accumulator.
    let mut bucket_offsets = vec![0usize; n_coarse + 1];
    for v in 0..g.n() {
        bucket_offsets[map[v] as usize + 1] += 1;
    }
    for c in 0..n_coarse {
        bucket_offsets[c + 1] += bucket_offsets[c];
    }
    let mut members = vec![0u32; g.n()];
    let mut cursor = bucket_offsets.clone();
    for v in 0..g.n() as u32 {
        let c = map[v as usize] as usize;
        members[cursor[c]] = v;
        cursor[c] += 1;
    }

    let mut offsets = Vec::with_capacity(n_coarse + 1);
    offsets.push(0usize);
    let mut targets: Vec<VertexId> = Vec::new();
    let mut eweights: Vec<f64> = Vec::new();
    let mut scratch = vec![0.0f64; n_coarse];
    let mut touched: Vec<u32> = Vec::new();
    for c in 0..n_coarse {
        for &v in &members[bucket_offsets[c]..bucket_offsets[c + 1]] {
            for (u, w) in g.neighbors(v) {
                let cu = map[u as usize];
                if cu as usize == c {
                    continue; // interior edge disappears
                }
                if scratch[cu as usize] == 0.0 {
                    touched.push(cu);
                }
                scratch[cu as usize] += w;
            }
        }
        touched.sort_unstable();
        for &cu in &touched {
            targets.push(cu);
            eweights.push(scratch[cu as usize]);
            scratch[cu as usize] = 0.0;
        }
        touched.clear();
        offsets.push(targets.len());
    }
    WGraph {
        offsets,
        targets,
        eweights,
        vweights,
    }
}

/// Coarsens until at most `target_n` vertices remain or matching stalls
/// (reduction below 10% per round). Returns the levels from finest
/// (`levels[0]`, which maps the input) to coarsest.
pub fn coarsen_until(g: &WGraph, target_n: usize, rng: &mut StdRng) -> Vec<Level> {
    let mut levels: Vec<Level> = Vec::new();
    loop {
        let next = {
            let cur = levels.last().map_or(g, |l| &l.graph);
            if cur.n() <= target_n {
                None
            } else {
                let (map, n_coarse) = heavy_edge_matching(cur, rng);
                if n_coarse as f64 > 0.95 * cur.n() as f64 {
                    None // star-like residue: matching no longer shrinks it
                } else {
                    Some(Level {
                        graph: contract(cur, &map, n_coarse),
                        map,
                    })
                }
            }
        };
        match next {
            Some(level) => levels.push(level),
            None => break,
        }
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::{builder::graph_from_edges, gen, VertexWeights};
    use rand::SeedableRng;

    fn lift(g: &mdbgp_graph::Graph) -> WGraph {
        let w = VertexWeights::vertex_edge(g);
        WGraph::from_graph(g, &w)
    }

    #[test]
    fn matching_pairs_are_symmetric() {
        let g = lift(&gen::cycle(20));
        let (map, n_coarse) = heavy_edge_matching(&g, &mut StdRng::seed_from_u64(1));
        assert!((10..20).contains(&n_coarse));
        // Every coarse id has 1 or 2 fine members.
        let mut counts = vec![0usize; n_coarse];
        for &c in &map {
            counts[c as usize] += 1;
        }
        assert!(counts.iter().all(|&c| (1..=2).contains(&c)));
    }

    #[test]
    fn contraction_preserves_total_weight() {
        let g = lift(&gen::grid(8, 8));
        let before = g.totals();
        let (map, nc) = heavy_edge_matching(&g, &mut StdRng::seed_from_u64(2));
        let coarse = contract(&g, &map, nc);
        let after = coarse.totals();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-9, "weight must be conserved: {b} vs {a}");
        }
    }

    #[test]
    fn contraction_preserves_cut_structure() {
        // Two triangles joined by one edge: contracting within a side keeps
        // the cross weight at 1.
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        let wg = lift(&g);
        let map = vec![0, 0, 1, 2, 3, 3];
        let coarse = contract(&wg, &map, 4);
        assert_eq!(coarse.n(), 4);
        // Edge 1-2 from pair collapse: (0,1)+(0,2) edges merge into weight 2.
        let w01: f64 = coarse
            .neighbors(0)
            .filter(|&(u, _)| u == 1)
            .map(|(_, w)| w)
            .sum();
        assert_eq!(w01, 2.0);
        let cross: f64 = coarse
            .neighbors(1)
            .filter(|&(u, _)| u == 2)
            .map(|(_, w)| w)
            .sum();
        assert_eq!(cross, 1.0, "the bridge keeps weight 1");
    }

    #[test]
    fn coarsen_until_respects_target() {
        let g = lift(&gen::erdos_renyi(2000, 8000, &mut StdRng::seed_from_u64(3)));
        let levels = coarsen_until(&g, 100, &mut StdRng::seed_from_u64(4));
        assert!(!levels.is_empty());
        let coarsest = &levels.last().unwrap().graph;
        assert!(coarsest.n() <= 2000 / 2, "must shrink substantially");
        // Weight conservation through the whole hierarchy.
        let before = g.totals();
        let after = coarsest.totals();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-6);
        }
    }

    #[test]
    fn edgeless_graph_stalls_gracefully() {
        let g = lift(&mdbgp_graph::Graph::empty(50));
        let levels = coarsen_until(&g, 10, &mut StdRng::seed_from_u64(5));
        assert!(
            levels.is_empty(),
            "no edges to match: coarsening stalls immediately"
        );
    }
}
