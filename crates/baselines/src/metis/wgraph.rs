//! Weighted graphs for the multilevel hierarchy.
//!
//! Coarsening collapses matched vertex pairs, so interior levels need edge
//! weights (collapsed multi-edges) and summed vertex weight vectors —
//! neither of which the plain CSR [`Graph`] carries.

use mdbgp_graph::{Graph, VertexId, VertexWeights};

/// CSR graph with f64 edge weights and `d`-dimensional vertex weights.
#[derive(Clone, Debug)]
pub struct WGraph {
    pub offsets: Vec<usize>,
    pub targets: Vec<VertexId>,
    pub eweights: Vec<f64>,
    /// `vweights[j][v]` — dimension-major, like [`VertexWeights`].
    pub vweights: Vec<Vec<f64>>,
}

impl WGraph {
    /// Lifts an unweighted graph (all edge weights 1) with its vertex
    /// weights into the multilevel representation.
    pub fn from_graph(graph: &Graph, weights: &VertexWeights) -> Self {
        assert_eq!(graph.num_vertices(), weights.num_vertices());
        let offsets = graph.raw_offsets().to_vec();
        let targets = graph.raw_targets().to_vec();
        let eweights = vec![1.0; targets.len()];
        let vweights = (0..weights.dims())
            .map(|j| weights.dim(j).to_vec())
            .collect();
        Self {
            offsets,
            targets,
            eweights,
            vweights,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of balance dimensions.
    #[inline]
    pub fn d(&self) -> usize {
        self.vweights.len()
    }

    /// Neighbour/edge-weight pairs of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, f64)> + '_ {
        let range = self.offsets[v as usize]..self.offsets[v as usize + 1];
        self.targets[range.clone()]
            .iter()
            .copied()
            .zip(self.eweights[range].iter().copied())
    }

    /// Total vertex weight per dimension.
    pub fn totals(&self) -> Vec<f64> {
        self.vweights.iter().map(|col| col.iter().sum()).collect()
    }

    /// Total cut weight of a two-sided assignment.
    pub fn cut(&self, side: &[u8]) -> f64 {
        let mut cut = 0.0;
        for v in 0..self.n() as VertexId {
            for (u, w) in self.neighbors(v) {
                if u > v && side[u as usize] != side[v as usize] {
                    cut += w;
                }
            }
        }
        cut
    }

    /// Approximate heap footprint (Table 3 reports memory).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
            + self.eweights.len() * std::mem::size_of::<f64>()
            + self
                .vweights
                .iter()
                .map(|c| c.len() * std::mem::size_of::<f64>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::builder::graph_from_edges;

    fn tri() -> WGraph {
        let g = graph_from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let w = VertexWeights::vertex_edge(&g);
        WGraph::from_graph(&g, &w)
    }

    #[test]
    fn lift_preserves_structure() {
        let wg = tri();
        assert_eq!(wg.n(), 3);
        assert_eq!(wg.d(), 2);
        assert_eq!(wg.neighbors(0).count(), 2);
        assert!(wg.eweights.iter().all(|&w| w == 1.0));
        assert_eq!(wg.totals(), vec![3.0, 6.0]);
    }

    #[test]
    fn cut_counts_weighted_crossings() {
        let wg = tri();
        assert_eq!(wg.cut(&[0, 0, 0]), 0.0);
        assert_eq!(wg.cut(&[0, 1, 0]), 2.0);
        assert_eq!(wg.cut(&[0, 1, 1]), 2.0);
    }

    #[test]
    fn memory_positive() {
        assert!(tri().memory_bytes() > 0);
    }
}
