//! Multi-constraint FM-style boundary refinement.
//!
//! After projecting a partition to a finer level, greedy passes move
//! boundary vertices with positive cut gain provided **every** weight
//! dimension stays within its balance tolerance — the multi-constraint
//! generalization that makes METIS-style refinement increasingly
//! constrained (and less effective) as `d` grows, which is exactly the
//! Table 3 phenomenon. A second move class restores balance: if some
//! dimension is over tolerance, the best-gain move that reduces the worst
//! overload is applied even at negative gain.

use super::wgraph::WGraph;
use mdbgp_graph::VertexId;

/// Balance state of a bisection.
pub struct BalanceState {
    /// `loads[side][j]`.
    pub loads: [Vec<f64>; 2],
    pub totals: Vec<f64>,
    /// Target share of side 0 per dimension.
    pub fraction: f64,
    /// Allowed relative deviation from the target share.
    pub eps: f64,
}

impl BalanceState {
    pub fn new(g: &WGraph, side: &[u8], fraction: f64, eps: f64) -> Self {
        let d = g.d();
        let mut loads = [vec![0.0f64; d], vec![0.0f64; d]];
        for v in 0..g.n() {
            for j in 0..d {
                loads[side[v] as usize][j] += g.vweights[j][v];
            }
        }
        Self {
            loads,
            totals: g.totals(),
            fraction,
            eps,
        }
    }

    fn share(&self, s: usize) -> f64 {
        if s == 0 {
            self.fraction
        } else {
            1.0 - self.fraction
        }
    }

    /// Relative overload of `side` in dimension `j` (0 if within target).
    fn overload(&self, s: usize, j: usize) -> f64 {
        let cap = (1.0 + self.eps) * self.share(s) * self.totals[j];
        ((self.loads[s][j] - cap) / self.totals[j]).max(0.0)
    }

    /// Worst overload over sides and dimensions.
    pub fn worst_overload(&self) -> f64 {
        let d = self.totals.len();
        let mut w = 0.0f64;
        for s in 0..2 {
            for j in 0..d {
                w = w.max(self.overload(s, j));
            }
        }
        w
    }

    /// Whether moving `v` from its side keeps every dimension within
    /// tolerance on the receiving side.
    fn move_keeps_balance(&self, g: &WGraph, v: VertexId, from: usize) -> bool {
        let to = 1 - from;
        (0..g.d()).all(|j| {
            let cap = (1.0 + self.eps) * self.share(to) * self.totals[j];
            self.loads[to][j] + g.vweights[j][v as usize] <= cap + 1e-12
        })
    }

    /// Whether moving `v` strictly reduces the worst overload.
    fn move_restores_balance(&self, g: &WGraph, v: VertexId, from: usize) -> bool {
        let before = self.worst_overload();
        if before == 0.0 {
            return false;
        }
        let mut after = 0.0f64;
        let to = 1 - from;
        for j in 0..g.d() {
            let w = g.vweights[j][v as usize];
            let lf = self.loads[from][j] - w;
            let lt = self.loads[to][j] + w;
            let cap_f = (1.0 + self.eps) * self.share(from) * self.totals[j];
            let cap_t = (1.0 + self.eps) * self.share(to) * self.totals[j];
            after = after.max(((lf - cap_f) / self.totals[j]).max(0.0));
            after = after.max(((lt - cap_t) / self.totals[j]).max(0.0));
        }
        after < before - 1e-15
    }

    fn apply(&mut self, g: &WGraph, v: VertexId, from: usize) {
        let to = 1 - from;
        for j in 0..g.d() {
            let w = g.vweights[j][v as usize];
            self.loads[from][j] -= w;
            self.loads[to][j] += w;
        }
    }
}

/// Cut gain of moving `v` to the other side (positive = cut shrinks).
fn gain(g: &WGraph, side: &[u8], v: VertexId) -> f64 {
    let mut external = 0.0;
    let mut internal = 0.0;
    for (u, w) in g.neighbors(v) {
        if side[u as usize] == side[v as usize] {
            internal += w;
        } else {
            external += w;
        }
    }
    external - internal
}

/// Greedy multi-constraint refinement: up to `passes` sweeps, each applying
/// (a) positive-gain balance-preserving moves and (b) balance-restoring
/// moves. Returns the number of moves applied.
pub fn refine(g: &WGraph, side: &mut [u8], fraction: f64, eps: f64, passes: usize) -> usize {
    let n = g.n();
    let mut state = BalanceState::new(g, side, fraction, eps);
    let mut total_moves = 0usize;
    for _ in 0..passes {
        // Candidate boundary moves sorted by gain (descending).
        let mut candidates: Vec<(f64, VertexId)> = (0..n as u32)
            .filter(|&v| {
                g.neighbors(v)
                    .any(|(u, _)| side[u as usize] != side[v as usize])
            })
            .map(|v| (gain(g, side, v), v))
            .filter(|&(gn, _)| gn > 0.0)
            .collect();
        candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

        let mut moves = 0usize;
        for &(_, v) in &candidates {
            let from = side[v as usize] as usize;
            // Re-check gain: earlier moves may have flipped neighbours.
            if gain(g, side, v) <= 0.0 {
                continue;
            }
            if state.move_keeps_balance(g, v, from) {
                state.apply(g, v, from);
                side[v as usize] = 1 - side[v as usize];
                moves += 1;
            }
        }

        // Balance restoration: move the best-gain vertices off overloaded
        // sides until no single move helps.
        while state.worst_overload() > 0.0 {
            let mut best: Option<(f64, VertexId)> = None;
            for v in 0..n as u32 {
                let from = side[v as usize] as usize;
                if state.move_restores_balance(g, v, from) {
                    let gn = gain(g, side, v);
                    if best.is_none_or(|(bg, _)| gn > bg) {
                        best = Some((gn, v));
                    }
                }
            }
            match best {
                Some((_, v)) => {
                    let from = side[v as usize] as usize;
                    state.apply(g, v, from);
                    side[v as usize] = 1 - side[v as usize];
                    moves += 1;
                }
                None => break,
            }
        }

        total_moves += moves;
        if moves == 0 {
            break;
        }
    }
    total_moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::{gen, VertexWeights};

    fn lift(g: &mdbgp_graph::Graph) -> WGraph {
        WGraph::from_graph(g, &VertexWeights::vertex_edge(g))
    }

    #[test]
    fn repairs_a_scrambled_two_clique_cut() {
        let g = lift(&gen::two_cliques(12, 1));
        // Start from a deliberately bad split: interleaved sides.
        let mut side: Vec<u8> = (0..24).map(|v| (v % 2) as u8).collect();
        let before = g.cut(&side);
        refine(&g, &mut side, 0.5, 0.1, 20);
        let after = g.cut(&side);
        assert!(after < before, "cut must improve: {before} -> {after}");
        assert!(after <= 3.0, "near-optimal cut expected, got {after}");
    }

    #[test]
    fn preserves_balance_tolerance() {
        let g = lift(&gen::grid(10, 10));
        let mut side: Vec<u8> = (0..100).map(|v| if v < 50 { 0 } else { 1 }).collect();
        refine(&g, &mut side, 0.5, 0.05, 10);
        let state = BalanceState::new(&g, &side, 0.5, 0.05);
        assert_eq!(
            state.worst_overload(),
            0.0,
            "refinement must not break balance"
        );
    }

    #[test]
    fn restores_broken_balance() {
        let g = lift(&gen::cycle(40));
        // Everything on side 0: grossly imbalanced.
        let mut side = vec![0u8; 40];
        side[0] = 1;
        refine(&g, &mut side, 0.5, 0.05, 30);
        let state = BalanceState::new(&g, &side, 0.5, 0.05);
        assert!(
            state.worst_overload() < 0.05,
            "balance should be mostly restored, overload {}",
            state.worst_overload()
        );
    }

    #[test]
    fn gain_signs() {
        let g = lift(&gen::two_cliques(4, 1));
        let side: Vec<u8> = (0..8).map(|v| if v < 4 { 0 } else { 1 }).collect();
        // Interior vertex: all neighbours internal → negative gain.
        assert!(gain(&g, &side, 1) < 0.0);
    }

    #[test]
    fn noop_on_optimal_partition() {
        let g = lift(&gen::two_cliques(10, 1));
        let mut side: Vec<u8> = (0..20).map(|v| if v < 10 { 0 } else { 1 }).collect();
        let moves = refine(&g, &mut side, 0.5, 0.05, 5);
        assert_eq!(moves, 0, "optimal bisection has no improving moves");
    }
}
