//! Spinner-style label propagation (Martella et al., ICDE'17; paper §4).
//!
//! Vertices iteratively adopt the label that is most frequent among their
//! neighbours, discounted by a *soft* penalty on overloaded parts. Balance
//! is only encouraged through score functions, never enforced — which is
//! exactly why the paper's Figure 4 shows Spinner failing to balance
//! multiple dimensions simultaneously on skewed graphs. Our multi-dim
//! adaptation averages the penalty over all weight dimensions.

use mdbgp_graph::{
    partition::validate_inputs, Graph, Partition, PartitionError, Partitioner, VertexId,
    VertexWeights,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the Spinner baseline.
#[derive(Clone, Debug)]
pub struct SpinnerPartitioner {
    /// Label-propagation sweeps.
    pub iterations: usize,
    /// Weight of the load penalty relative to the neighbour score
    /// (Spinner's `c`; higher = more balance pressure, worse locality).
    pub penalty: f64,
    /// Capacity slack: part capacity is `(1 + slack) · total/k`.
    pub slack: f64,
}

impl Default for SpinnerPartitioner {
    fn default() -> Self {
        Self {
            iterations: 30,
            penalty: 0.5,
            slack: 0.05,
        }
    }
}

impl Partitioner for SpinnerPartitioner {
    fn name(&self) -> &str {
        "Spinner"
    }

    fn partition(
        &self,
        graph: &Graph,
        weights: &VertexWeights,
        k: usize,
        seed: u64,
    ) -> Result<Partition, PartitionError> {
        validate_inputs(graph, weights, k)?;
        let n = graph.num_vertices();
        let d = weights.dims();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut labels: Vec<u32> = (0..n).map(|_| rng.gen_range(0..k as u32)).collect();

        // Per-part load per dimension, and capacities.
        let mut loads = vec![vec![0.0f64; k]; d];
        for j in 0..d {
            let col = weights.dim(j);
            for (v, &l) in labels.iter().enumerate() {
                loads[j][l as usize] += col[v];
            }
        }
        let capacities: Vec<f64> = (0..d)
            .map(|j| (1.0 + self.slack) * weights.total(j) / k as f64)
            .collect();

        let mut neighbor_count = vec![0.0f64; k];
        let mut order: Vec<u32> = (0..n as u32).collect();
        for _ in 0..self.iterations {
            // Random sweep order avoids label waves.
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let mut moved = 0usize;
            for &v in &order {
                let deg = graph.degree(v);
                if deg == 0 {
                    continue;
                }
                neighbor_count.iter_mut().for_each(|c| *c = 0.0);
                for &u in graph.neighbors(v) {
                    neighbor_count[labels[u as usize] as usize] += 1.0;
                }
                let current = labels[v as usize] as usize;
                let score = |part: usize, loads: &[Vec<f64>]| -> f64 {
                    let neigh = neighbor_count[part] / deg as f64;
                    // Average remaining-capacity bonus across dimensions;
                    // parts over capacity get negative contributions.
                    let mut bonus = 0.0;
                    for j in 0..d {
                        bonus += 1.0 - loads[j][part] / capacities[j];
                    }
                    neigh + self.penalty * bonus / d as f64
                };
                let mut best = current;
                let mut best_score = score(current, &loads);
                for part in 0..k {
                    if part == current {
                        continue;
                    }
                    let s = score(part, &loads);
                    if s > best_score + 1e-12 {
                        best = part;
                        best_score = s;
                    }
                }
                if best != current {
                    for j in 0..d {
                        let w = weights.weight(j, v as VertexId);
                        loads[j][current] -= w;
                        loads[j][best] += w;
                    }
                    labels[v as usize] = best as u32;
                    moved += 1;
                }
            }
            if moved == 0 {
                break;
            }
        }
        Ok(Partition::new(labels, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::gen;

    #[test]
    fn improves_locality_over_hash_on_community_graph() {
        let cg = gen::community_graph(
            &gen::CommunityGraphConfig::social(2000),
            &mut StdRng::seed_from_u64(8),
        );
        let w = VertexWeights::vertex_edge(&cg.graph);
        let p = SpinnerPartitioner::default()
            .partition(&cg.graph, &w, 4, 5)
            .unwrap();
        let loc = p.edge_locality(&cg.graph);
        assert!(loc > 0.4, "label propagation finds communities, got {loc}");
    }

    #[test]
    fn rough_balance_on_uniform_graph() {
        let g = gen::erdos_renyi(2000, 10_000, &mut StdRng::seed_from_u64(2));
        let w = VertexWeights::unit(2000);
        let p = SpinnerPartitioner::default()
            .partition(&g, &w, 4, 3)
            .unwrap();
        assert!(
            p.max_imbalance(&w) < 0.5,
            "soft balance only: {}",
            p.max_imbalance(&w)
        );
    }

    #[test]
    fn struggles_with_multi_dim_balance_on_skewed_graph() {
        // The Figure 4 phenomenon: on a hub-dominated graph Spinner cannot
        // hold vertex and degree balance simultaneously. Individual runs
        // vary with the sweep order, so check the worst case over a few
        // seeds rather than pinning one RNG stream.
        let mut rng = StdRng::seed_from_u64(5);
        let degs = gen::power_law_sequence(3000, 1.9, 2.0, 600.0, &mut rng);
        let g = gen::chung_lu(&degs, &mut rng);
        let w = VertexWeights::vertex_edge(&g);
        let worst = (0..5u64)
            .map(|seed| {
                let p = SpinnerPartitioner::default()
                    .partition(&g, &w, 2, seed)
                    .unwrap();
                // Either dimension may drift; the *max* is what the paper
                // plots.
                p.max_imbalance(&w)
            })
            .fold(0.0f64, f64::max);
        assert!(worst > 0.02, "expected visible imbalance, got {worst}");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gen::cycle(50);
        let w = VertexWeights::unit(50);
        let s = SpinnerPartitioner::default();
        assert_eq!(
            s.partition(&g, &w, 2, 9).unwrap(),
            s.partition(&g, &w, 2, 9).unwrap()
        );
    }

    #[test]
    fn handles_isolated_vertices() {
        let g = Graph::empty(10);
        let w = VertexWeights::unit(10);
        let p = SpinnerPartitioner::default()
            .partition(&g, &w, 2, 0)
            .unwrap();
        assert_eq!(p.num_vertices(), 10);
    }
}
