//! Incremental (pairwise, warm-started) refinement of an existing k-way
//! partition.
//!
//! The paper's GD is an offline algorithm; `mdbgp-stream` keeps a partition
//! alive under a stream of updates by re-running GD *warm-started* on small
//! slices of the problem. The unit of work is a **part pair** `(p, q)`: the
//! induced subgraph of `V_p ∪ V_q` is re-bisected by
//! [`bipartition_warm`](crate::gd::bipartition_warm)
//! starting from the current assignment, with unaffected vertices frozen, so
//! only the vertices near the update churn actually move. The balance target
//! of the pair is derived from the *global* ε so that any accepted
//! refinement keeps every part within `(1 + ε) · w(V)/k` in every dimension
//! (a [`FeasibleRegion`](crate::FeasibleRegion)-style slab recentred on the
//! pair).
//!
//! A refinement is accepted only if it does not increase the pair cut and
//! does not worsen the pair's balance headroom — callers can therefore apply
//! [`PairRefinement::moves`] unconditionally.

use crate::gd::{bipartition_warm_with, GdRunStats, GdWorkspace, SplitTarget, WarmStart};
use crate::recursive::GdPartitioner;
use mdbgp_graph::{Graph, InducedSubgraph, Partition, PartitionError, VertexId, VertexWeights};

/// How one [`GdPartitioner::refine_pair`] call resolved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PairOutcome {
    /// Fewer than two members in the pair — GD never ran.
    #[default]
    Degenerate,
    /// GD's result was accepted; `moves` holds the changes.
    Applied,
    /// Rejected: the refined cut was worse than the incumbent.
    RejectedCut,
    /// Rejected: a balance dimension's headroom regressed.
    RejectedBalance,
}

/// Outcome of one pairwise warm-started refinement pass.
#[derive(Clone, Debug, Default)]
pub struct PairRefinement {
    /// Vertices whose part changed, with their new part. Empty when the
    /// refinement was rejected (no improvement) or there was nothing to do.
    pub moves: Vec<(VertexId, u32)>,
    /// Cut edges between the two parts before refinement.
    pub cut_before: usize,
    /// Cut edges between the two parts after refinement (equals
    /// `cut_before` when the pass was rejected).
    pub cut_after: usize,
    /// GD convergence trace of the run (default for a degenerate pair).
    pub gd: GdRunStats,
    /// How the pass resolved — lets the observability layer distinguish
    /// applied refinements from the two rejection reasons.
    pub outcome: PairOutcome,
}

impl GdPartitioner {
    /// Re-bisects parts `p` and `q` of `partition` with GD warm-started
    /// from the current assignment, holding `frozen` vertices fixed.
    ///
    /// `weights`, `partition` and `frozen` cover the whole graph **as it
    /// currently stands** — under a churning stream the vertex set
    /// shrinks, so callers must rebuild all three after every purging
    /// compaction; a stale (longer or shorter) `frozen` mask is rejected
    /// with [`PartitionError::DimensionMismatch`] rather than silently
    /// freezing the wrong vertices. A pair drained to fewer than two
    /// members (removals can empty a part outright) is a clean no-op, not
    /// an error. The pair's balance slab is derived from the configured ε
    /// and the **global** per-part target `w^{(j)}(V)/k`, so accepted
    /// moves never push either part past `(1 + ε)` of its share. Returns
    /// the (possibly empty) list of vertex moves; the partition itself is
    /// not mutated.
    ///
    /// # Example
    ///
    /// ```
    /// use mdbgp_core::{GdConfig, GdPartitioner, PairOutcome};
    /// use mdbgp_graph::{gen, Partition, VertexWeights};
    ///
    /// // A planted two-clique graph whose current partition has one
    /// // vertex of each clique assigned to the wrong part.
    /// let g = gen::two_cliques(20, 2);
    /// let w = VertexWeights::vertex_edge(&g);
    /// let mut parts: Vec<u32> = (0..40).map(|v| u32::from(v >= 20)).collect();
    /// parts.swap(3, 23); // cross-assign a stray pair
    /// let partition = Partition::new(parts, 2);
    ///
    /// let gd = GdPartitioner::new(GdConfig::with_epsilon(0.05));
    /// let r = gd
    ///     .refine_pair(&g, &w, &partition, (0, 1), &[false; 40], 7)
    ///     .unwrap();
    /// assert_eq!(r.outcome, PairOutcome::Applied);
    /// assert!(r.cut_after < r.cut_before, "healing the strays uncuts clique edges");
    /// assert!(r.moves.contains(&(3, 0)) && r.moves.contains(&(23, 1)));
    /// assert_eq!(partition.part_of(3), 1, "the input partition is untouched");
    /// ```
    pub fn refine_pair(
        &self,
        graph: &Graph,
        weights: &VertexWeights,
        partition: &Partition,
        pair: (u32, u32),
        frozen: &[bool],
        seed: u64,
    ) -> Result<PairRefinement, PartitionError> {
        self.refine_pair_with(
            &mut GdWorkspace::default(),
            graph,
            weights,
            partition,
            pair,
            frozen,
            seed,
        )
    }

    /// [`Self::refine_pair`] with caller-provided GD iterate storage:
    /// identical output, but the inner solve reuses `ws` instead of
    /// allocating fresh working vectors. The streaming engine keeps one
    /// workspace per worker thread and threads it through every pair of
    /// every disjoint round — a workspace carries no state between calls,
    /// so reuse never changes results (see [`GdWorkspace`]).
    #[allow(clippy::too_many_arguments)]
    pub fn refine_pair_with(
        &self,
        ws: &mut GdWorkspace,
        graph: &Graph,
        weights: &VertexWeights,
        partition: &Partition,
        (p, q): (u32, u32),
        frozen: &[bool],
        seed: u64,
    ) -> Result<PairRefinement, PartitionError> {
        let k = partition.num_parts();
        if p == q || (p as usize) >= k || (q as usize) >= k {
            return Err(PartitionError::Config(format!(
                "refine_pair: invalid pair ({p}, {q}) for k = {k}"
            )));
        }
        let n = graph.num_vertices();
        if partition.num_vertices() != n || weights.num_vertices() != n || frozen.len() != n {
            return Err(PartitionError::DimensionMismatch {
                weights_n: weights.num_vertices(),
                graph_n: n,
            });
        }

        let subset: Vec<VertexId> = (0..n as VertexId)
            .filter(|&v| {
                let part = partition.part_of(v);
                part == p || part == q
            })
            .collect();
        if subset.len() < 2 {
            return Ok(PairRefinement::default());
        }

        let sub = InducedSubgraph::extract(graph, &subset);
        let w_sub = weights.restrict(&sub.original);
        let d = weights.dims();

        // Per-dimension headroom of the pair: part loads must stay below
        // hi_j = (1 + ε)·total_j/k, i.e. ⟨w_j, x⟩ ∈ ±(2·hi_j − W_j) where
        // W_j is the pair's combined weight. SplitTarget carries a single
        // relative width, so take the tightest dimension (conservative:
        // accepted moves can only under-use slack, never violate it).
        let eps = self.config().epsilon;
        let mut eps_pair = f64::INFINITY;
        let mut headroom = vec![0.0f64; d];
        for j in 0..d {
            let pair_total = w_sub.total(j);
            let hi = (1.0 + eps) * weights.total(j) / k as f64;
            let b = 2.0 * hi - pair_total;
            headroom[j] = b;
            eps_pair = eps_pair.min(b / pair_total);
        }
        // An overweight pair (negative headroom) cannot be made globally
        // feasible by an internal swap; still run with a tiny slab so the
        // pair at least splits evenly.
        let eps_pair = eps_pair.clamp(1e-3, 0.999);

        let signs0: Vec<i8> = sub
            .original
            .iter()
            .map(|&v| if partition.part_of(v) == p { 1 } else { -1 })
            .collect();
        let frozen_sub: Vec<bool> = sub.original.iter().map(|&v| frozen[v as usize]).collect();
        let cut_before = pair_cut(&sub.graph, &signs0);

        let mut cfg = self.config().clone();
        cfg.epsilon = eps_pair;
        cfg.track_history = false;
        let warm = WarmStart::from_signs(&signs0, frozen_sub.clone());
        let res = bipartition_warm_with(
            ws,
            &sub.graph,
            &w_sub,
            &cfg,
            &SplitTarget::half(eps_pair),
            &warm,
            seed,
        )?;

        // Frozen vertices keep their side no matter what the rounding
        // repair did — that is the contract callers rely on.
        let signs1: Vec<i8> = res
            .signs
            .iter()
            .zip(&frozen_sub)
            .zip(&signs0)
            .map(|((&s, &fz), &s0)| if fz { s0 } else { s })
            .collect();
        let cut_after = pair_cut(&sub.graph, &signs1);

        // Accept only strict non-regressions in cut and, per dimension, in
        // balance headroom (the pair may already be over budget after
        // weight drift; "no worse in any dimension" keeps the pass safe to
        // apply blindly — a max-over-dims guard would let one dimension
        // degrade while another improves).
        let excess = |signs: &[i8], j: usize| -> f64 {
            let dot: f64 = w_sub
                .dim(j)
                .iter()
                .zip(signs)
                .map(|(w, &s)| w * s as f64)
                .sum();
            (dot.abs() - headroom[j]) / w_sub.total(j)
        };
        let balance_regressed =
            (0..d).any(|j| excess(&signs1, j) > excess(&signs0, j).max(0.0) + 1e-12);
        if cut_after > cut_before || balance_regressed {
            let outcome = if cut_after > cut_before {
                PairOutcome::RejectedCut
            } else {
                PairOutcome::RejectedBalance
            };
            return Ok(PairRefinement {
                moves: Vec::new(),
                cut_before,
                cut_after: cut_before,
                gd: res.stats,
                outcome,
            });
        }

        let moves: Vec<(VertexId, u32)> = sub
            .original
            .iter()
            .zip(&signs1)
            .filter_map(|(&v, &s)| {
                let new_part = if s == 1 { p } else { q };
                (new_part != partition.part_of(v)).then_some((v, new_part))
            })
            .collect();
        Ok(PairRefinement {
            moves,
            cut_before,
            cut_after,
            gd: res.stats,
            outcome: PairOutcome::Applied,
        })
    }

    /// Ranks part pairs by cut edges incident to `active` vertices —
    /// the refinement schedule of `mdbgp-stream`. Returns at most
    /// `max_pairs` pairs, most-cut first. A part with no cut edges (e.g.
    /// one drained empty by removals) never appears in a pair.
    ///
    /// # Panics
    /// Panics if `active` does not cover the graph — after a purging
    /// compaction shrinks the vertex set, the mask must be rebuilt at the
    /// new size.
    pub fn rank_pairs_by_active_cut(
        graph: &Graph,
        partition: &Partition,
        active: &[bool],
        max_pairs: usize,
    ) -> Vec<(u32, u32)> {
        assert_eq!(
            active.len(),
            graph.num_vertices(),
            "active mask must cover the current graph (rebuild it after a purge)"
        );
        let k = partition.num_parts();
        let mut cut_count = vec![0usize; k * k];
        for (u, v) in graph.edges() {
            let (pu, pv) = (partition.part_of(u), partition.part_of(v));
            if pu != pv && (active[u as usize] || active[v as usize]) {
                let (a, b) = if pu < pv { (pu, pv) } else { (pv, pu) };
                cut_count[a as usize * k + b as usize] += 1;
            }
        }
        let mut pairs: Vec<((u32, u32), usize)> = cut_count
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(idx, &c)| (((idx / k) as u32, (idx % k) as u32), c))
            .collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(max_pairs);
        pairs.into_iter().map(|(pq, _)| pq).collect()
    }

    /// Greedily schedules `pairs` into rounds of **part-disjoint** pairs —
    /// a maximal matching per round, preserving the input priority order.
    /// Pairs inside one round touch disjoint part sets, so their
    /// [`Self::refine_pair`] calls read disjoint vertex sets and can run
    /// concurrently against one partition snapshot; rounds are barriers at
    /// which the accepted moves are applied. Every input pair appears in
    /// exactly one round.
    pub fn plan_disjoint_rounds(pairs: &[(u32, u32)]) -> Vec<Vec<(u32, u32)>> {
        type Round = (Vec<(u32, u32)>, std::collections::HashSet<u32>);
        let mut rounds: Vec<Round> = Vec::new();
        for &(p, q) in pairs {
            let slot = rounds
                .iter_mut()
                .find(|(_, used)| !used.contains(&p) && !used.contains(&q));
            match slot {
                Some((round, used)) => {
                    round.push((p, q));
                    used.insert(p);
                    used.insert(q);
                }
                None => {
                    rounds.push((vec![(p, q)], [p, q].into_iter().collect()));
                }
            }
        }
        rounds.into_iter().map(|(round, _)| round).collect()
    }
}

/// Cut edges of a ±1 assignment (both endpoints inside the pair subgraph).
fn pair_cut(graph: &Graph, signs: &[i8]) -> usize {
    graph
        .edges()
        .filter(|&(u, v)| signs[u as usize] != signs[v as usize])
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GdConfig;
    use mdbgp_graph::{gen, GraphBuilder};

    /// Two cliques of `s` joined by `bridges` edges, plus the partition
    /// that mixes `swap` vertices across the planted split.
    fn perturbed_cliques(s: usize, swap: usize) -> (Graph, VertexWeights, Partition) {
        let g = gen::two_cliques(s, 2);
        let w = VertexWeights::vertex_edge(&g);
        let mut labels: Vec<u32> = (0..2 * s).map(|v| if v < s { 0 } else { 1 }).collect();
        for i in 0..swap {
            labels.swap(i, s + i);
        }
        (g, w, Partition::new(labels, 2))
    }

    fn refiner(iterations: usize) -> GdPartitioner {
        GdPartitioner::new(GdConfig {
            iterations,
            ..GdConfig::with_epsilon(0.05)
        })
    }

    #[test]
    fn heals_a_perturbed_bisection() {
        let (g, w, part) = perturbed_cliques(30, 3);
        let frozen = vec![false; 60];
        let r = refiner(15)
            .refine_pair(&g, &w, &part, (0, 1), &frozen, 7)
            .unwrap();
        assert!(
            r.cut_after < r.cut_before,
            "cut {} -> {}",
            r.cut_before,
            r.cut_after
        );
        assert!(!r.moves.is_empty());
        let mut healed = part.clone();
        for &(v, p) in &r.moves {
            healed.assign(v, p);
        }
        assert!(healed.max_imbalance(&w) <= 0.05 + 1e-9);
        assert_eq!(healed.cut_edges(&g), 2, "only the bridges remain cut");
    }

    #[test]
    fn frozen_vertices_never_move() {
        let (g, w, part) = perturbed_cliques(25, 2);
        // Freeze everything except the swapped vertices.
        let mut frozen = vec![true; 50];
        for i in 0..2 {
            frozen[i] = false;
            frozen[25 + i] = false;
        }
        let r = refiner(15)
            .refine_pair(&g, &w, &part, (0, 1), &frozen, 3)
            .unwrap();
        for &(v, _) in &r.moves {
            assert!(!frozen[v as usize], "frozen vertex {v} moved");
        }
        assert!(r.cut_after <= r.cut_before);
    }

    #[test]
    fn never_worsens_the_cut() {
        // Already-optimal partition: refinement must be a no-op or neutral.
        let (g, w, part) = perturbed_cliques(20, 0);
        let frozen = vec![false; 40];
        let r = refiner(10)
            .refine_pair(&g, &w, &part, (0, 1), &frozen, 11)
            .unwrap();
        assert!(r.cut_after <= r.cut_before);
        let mut refined = part.clone();
        for &(v, p) in &r.moves {
            refined.assign(v, p);
        }
        assert_eq!(refined.cut_edges(&g), 2);
    }

    #[test]
    fn respects_global_balance_for_k_greater_than_two() {
        // Four equal parts; refining pair (0, 1) must keep parts 0 and 1
        // within the global (1+ε)/k budget even though the pair alone
        // could tolerate a 2:0 split of its own weight.
        let s = 20;
        let mut b = GraphBuilder::new(4 * s);
        for c in 0..4u32 {
            let base = c * s as u32;
            for u in 0..s as u32 {
                for v in (u + 1)..s as u32 {
                    b.add_edge(base + u, base + v);
                }
            }
        }
        for c in 0..4u32 {
            b.add_edge(c * s as u32, ((c + 1) % 4) * s as u32);
        }
        let g = b.build();
        let w = VertexWeights::vertex_edge(&g);
        let labels: Vec<u32> = (0..4 * s).map(|v| (v / s) as u32).collect();
        let part = Partition::new(labels, 4);
        let frozen = vec![false; 4 * s];
        let r = refiner(15)
            .refine_pair(&g, &w, &part, (0, 1), &frozen, 5)
            .unwrap();
        let mut refined = part.clone();
        for &(v, p) in &r.moves {
            refined.assign(v, p);
        }
        assert!(
            refined.max_imbalance(&w) <= 0.05 + 1e-9,
            "{}",
            refined.max_imbalance(&w)
        );
    }

    #[test]
    fn tolerates_a_pair_drained_by_removals() {
        // Churn can empty a part between refinements; refining such a pair
        // must be a clean no-op (or a pure balance improvement), never an
        // error — and a singleton pair subgraph must not panic either.
        let g = gen::two_cliques(10, 1);
        let w = VertexWeights::vertex_edge(&g);
        // Part 1 drained to a single member, part 2 empty.
        let mut labels = vec![0u32; 20];
        labels[19] = 1;
        let part = Partition::new(labels, 3);
        let frozen = vec![false; 20];
        let gd = refiner(5);
        let r = gd.refine_pair(&g, &w, &part, (1, 2), &frozen, 1).unwrap();
        assert!(r.moves.is_empty(), "sub-2-member pair is a no-op");
        assert_eq!(r.cut_before, 0);
        // A drained-but-nonempty pair still runs and never worsens ε.
        let r = gd.refine_pair(&g, &w, &part, (0, 1), &frozen, 2).unwrap();
        let mut refined = part.clone();
        for &(v, p) in &r.moves {
            refined.assign(v, p);
        }
        assert!(refined.max_imbalance(&w) <= part.max_imbalance(&w) + 1e-9);
    }

    #[test]
    fn stale_masks_after_a_shrink_are_rejected() {
        // The streaming layer purges removed vertices, shrinking the
        // graph; a frozen/active mask built before the purge must be
        // rejected loudly, not applied to the wrong vertices.
        let (g, w, part) = perturbed_cliques(10, 0);
        let gd = refiner(5);
        let stale = vec![false; 23]; // pre-purge size
        assert!(matches!(
            gd.refine_pair(&g, &w, &part, (0, 1), &stale, 0),
            Err(PartitionError::DimensionMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "rebuild it after a purge")]
    fn pair_ranking_rejects_stale_active_mask() {
        let g = gen::path(10);
        let part = Partition::new(vec![0; 10], 1);
        GdPartitioner::rank_pairs_by_active_cut(&g, &part, &[true; 12], 4);
    }

    #[test]
    fn rejects_invalid_pairs() {
        let (g, w, part) = perturbed_cliques(10, 0);
        let frozen = vec![false; 20];
        let gd = refiner(5);
        assert!(gd.refine_pair(&g, &w, &part, (0, 0), &frozen, 0).is_err());
        assert!(gd.refine_pair(&g, &w, &part, (0, 7), &frozen, 0).is_err());
        assert!(gd
            .refine_pair(&g, &w, &part, (0, 1), &[false; 19], 0)
            .is_err());
    }

    #[test]
    fn disjoint_rounds_form_a_maximal_matching_in_order() {
        // (0,1) and (2,3) are disjoint -> round 0; (1,2) conflicts with
        // both -> round 1; (4,5) still fits round 0.
        let pairs = [(0, 1), (2, 3), (1, 2), (4, 5)];
        let rounds = GdPartitioner::plan_disjoint_rounds(&pairs);
        assert_eq!(rounds, vec![vec![(0, 1), (2, 3), (4, 5)], vec![(1, 2)]]);
        // Every round is internally part-disjoint and all pairs survive.
        let total: usize = rounds.iter().map(Vec::len).sum();
        assert_eq!(total, pairs.len());
        for round in &rounds {
            let mut seen = std::collections::HashSet::new();
            for &(p, q) in round {
                assert!(seen.insert(p) && seen.insert(q), "part reused in round");
            }
        }
        assert!(GdPartitioner::plan_disjoint_rounds(&[]).is_empty());
    }

    #[test]
    fn pair_ranking_prefers_active_cut_edges() {
        // Path across three parts: edges (9,10) cuts parts 0-1, (19,20)
        // cuts parts 1-2. Only the first is incident to an active vertex.
        let g = gen::path(30);
        let labels: Vec<u32> = (0..30).map(|v| (v / 10) as u32).collect();
        let part = Partition::new(labels, 3);
        let mut active = vec![false; 30];
        active[9] = true;
        let pairs = GdPartitioner::rank_pairs_by_active_cut(&g, &part, &active, 4);
        assert_eq!(pairs, vec![(0, 1)]);
        let all = GdPartitioner::rank_pairs_by_active_cut(&g, &part, &[true; 30], 4);
        assert_eq!(all.len(), 2);
    }
}
