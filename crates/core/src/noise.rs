//! Gaussian perturbations (paper §2.1, step 1).
//!
//! The noise vector is drawn from `N_n(0, η_t)`. We sample standard normals
//! with the Box–Muller transform on top of the `rand` uniform generator
//! (avoiding an extra `rand_distr` dependency).

use rand::Rng;

/// Draws one `N(0, 1)` sample via Box–Muller.
#[inline]
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Fills `out` with i.i.d. `N(0, std²)` samples.
pub fn gaussian_vector<R: Rng>(out: &mut [f64], std: f64, rng: &mut R) {
    assert!(std >= 0.0 && std.is_finite());
    if std == 0.0 {
        out.iter_mut().for_each(|x| *x = 0.0);
        return;
    }
    for x in out.iter_mut() {
        *x = std * standard_normal(rng);
    }
}

/// Adds `N(0, std²)` noise to `x` in place (the `z = x + noise` step).
pub fn add_gaussian_noise<R: Rng>(x: &mut [f64], std: f64, rng: &mut R) {
    if std == 0.0 {
        return;
    }
    for xi in x.iter_mut() {
        *xi += std * standard_normal(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_standard() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut v = vec![0.0; 100_000];
        gaussian_vector(&mut v, 1.0, &mut rng);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn std_scales_samples() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut v = vec![0.0; 50_000];
        gaussian_vector(&mut v, 3.0, &mut rng);
        let var = v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64;
        assert!((var - 9.0).abs() < 0.4, "var = {var}");
    }

    #[test]
    fn zero_std_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut x = vec![1.0, -2.0, 3.0];
        add_gaussian_noise(&mut x, 0.0, &mut rng);
        assert_eq!(x, vec![1.0, -2.0, 3.0]);
        let mut v = vec![7.0; 4];
        gaussian_vector(&mut v, 0.0, &mut rng);
        assert_eq!(v, vec![0.0; 4]);
    }

    #[test]
    fn noise_addition_perturbs_every_coordinate() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut x = vec![0.0; 64];
        add_gaussian_noise(&mut x, 0.5, &mut rng);
        assert!(x.iter().all(|&v| v != 0.0));
    }

    #[test]
    fn samples_are_finite() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..10_000 {
            assert!(standard_normal(&mut rng).is_finite());
        }
    }
}
