//! Exact multi-dimensional projection (paper §2.2 + Appendix A).
//!
//! The KKT analysis reduces projecting `y` onto
//! `B∞ ∩ ⋂_j { lo_j ≤ ⟨w_j, x⟩ ≤ hi_j }` to:
//!
//! 1. **guess the sign pattern** `σ ∈ {+, 0, −}^d` of the multipliers
//!    `λ_j = μ_j^+ − μ_j^-` (3^d cases; Proposition 2.1 lets inactive
//!    dimensions be dropped entirely);
//! 2. for the active dimensions solve the **equality-constrained** problem
//!    `⟨w_j, x⟩ = t_j` with `x_i = [y_i − Σ_j λ_j w_j(i)]` via nested binary
//!    search on `(λ_1, …, λ_d)` — the outer search over `λ_1` is justified
//!    by the monotonicity of `Δ_1` (Theorem A.5), and the innermost search
//!    is the exact 1-d breakpoint method;
//! 3. accept the first pattern whose solution satisfies all KKT conditions
//!    (multiplier signs match, inactive slabs hold). Uniqueness
//!    (Lemma A.1) guarantees this is *the* projection.
//!
//! In practice the pattern suggested by the violations of the plain cube
//! projection is almost always correct, so the enumeration tries it first.

use super::linear1d::project_equality_1d_linear;
use super::{clamp1, clamp_vec};
use crate::feasible::FeasibleRegion;

/// Absolute multiplier tolerance when checking sign patterns.
const LAMBDA_TOL: f64 = 1e-9;
/// Outer bisection iterations per nesting level.
const OUTER_ITERS: usize = 90;
/// Bracket-expansion doublings before declaring a pattern infeasible.
const MAX_EXPANSIONS: usize = 70;

/// One active equality constraint of the reduced problem.
struct EqDim<'a> {
    w: &'a [f64],
    target: f64,
}

/// Solves `min ‖x − y‖` s.t. `x ∈ [-1,1]^n`, `⟨w_j, x⟩ = t_j` for all given
/// dimensions. Returns `(x, λ)` or `None` if no bracketing multipliers are
/// found (the targets are jointly unreachable).
fn solve_equality(y: &[f64], dims: &[EqDim<'_>]) -> Option<(Vec<f64>, Vec<f64>)> {
    match dims.len() {
        0 => Some((clamp_vec(y), Vec::new())),
        // Innermost dimension: the expected-O(n) breakpoint-pruning solver
        // (re-sorting per outer bisection step would cost O(n log n) each).
        1 => project_equality_1d_linear(y, dims[0].w, dims[0].target).map(|(x, l)| (x, vec![l])),
        _ => {
            let (first, rest) = dims.split_first().unwrap();
            let w1 = first.w;
            // Evaluate Δ_1(λ_1): fix λ_1, solve the remaining dimensions on
            // the shifted point, return ⟨w_1, x⟩ (Definition A.1).
            let mut shifted = vec![0.0; y.len()];
            let mut eval = |l1: f64| -> Option<(f64, Vec<f64>, Vec<f64>)> {
                for ((s, &yi), &wi) in shifted.iter_mut().zip(y).zip(w1) {
                    *s = yi - l1 * wi;
                }
                let (x, ls) = solve_equality(&shifted, rest)?;
                let h1: f64 = w1.iter().zip(&x).map(|(a, b)| a * b).sum();
                Some((h1, x, ls))
            };

            // Bracket λ_1: expand symmetric bounds until Δ_1 straddles the
            // target. Δ_1 is monotone (Theorem A.5) but its direction
            // depends on the weight correlations, so use the endpoints.
            let y_max = y.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
            let w_min = w1.iter().fold(f64::INFINITY, |a, &v| a.min(v));
            let mut radius = (1.0 + y_max) / w_min.max(f64::MIN_POSITIVE);
            let (mut h_lo, ..) = eval(-radius)?;
            let (mut h_hi, ..) = eval(radius)?;
            let t = first.target;
            let mut expansions = 0;
            while !straddles(h_lo, h_hi, t) {
                expansions += 1;
                if expansions > MAX_EXPANSIONS {
                    return None;
                }
                radius *= 2.0;
                h_lo = eval(-radius)?.0;
                h_hi = eval(radius)?.0;
            }
            // Root-find f(λ₁) = Δ₁(λ₁) − t with the Illinois variant of
            // regula falsi: Δ₁ is monotone piecewise-linear (Theorem A.5),
            // so safeguarded secant steps converge in a handful of
            // evaluations where blind bisection would need ~90.
            let scale = 1e-12 * (t.abs() + h_lo.abs() + h_hi.abs() + 1.0);
            let (mut lo, mut hi) = (-radius, radius);
            let (mut f_lo, mut f_hi) = (h_lo - t, h_hi - t);
            let mut l1 = 0.5 * (lo + hi);
            for _ in 0..OUTER_ITERS {
                if f_lo.abs() <= scale {
                    l1 = lo;
                    break;
                }
                if f_hi.abs() <= scale {
                    l1 = hi;
                    break;
                }
                // Secant point, safeguarded into the bracket interior.
                let mut cand = if (f_hi - f_lo).abs() > 0.0 {
                    hi - f_hi * (hi - lo) / (f_hi - f_lo)
                } else {
                    0.5 * (lo + hi)
                };
                if !cand.is_finite() || cand <= lo || cand >= hi {
                    cand = 0.5 * (lo + hi);
                }
                let (h, ..) = eval(cand)?;
                let f = h - t;
                l1 = cand;
                if f.abs() <= scale || (hi - lo) <= 1e-14 * radius.max(1.0) {
                    break;
                }
                // Keep the sign change inside the bracket; Illinois halves
                // the retained endpoint's value to avoid stalling.
                if (f > 0.0) == (f_lo > 0.0) {
                    lo = cand;
                    f_lo = f;
                    f_hi *= 0.5;
                } else {
                    hi = cand;
                    f_hi = f;
                    f_lo *= 0.5;
                }
            }
            let (_, x, inner) = eval(l1)?;
            let mut lambdas = Vec::with_capacity(dims.len());
            lambdas.push(l1);
            lambdas.extend(inner);
            Some((x, lambdas))
        }
    }
}

fn straddles(a: f64, b: f64, t: f64) -> bool {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    let slack = 1e-9 * (1.0 + t.abs() + hi.abs());
    lo <= t + slack && t <= hi + slack
}

/// All sign patterns over `d` dimensions, ordered so that `preferred` comes
/// first, then patterns by increasing Hamming distance from it (cheap ones
/// first among ties).
fn pattern_order(preferred: &[i8]) -> Vec<Vec<i8>> {
    let d = preferred.len();
    let mut all: Vec<Vec<i8>> = vec![Vec::new()];
    for _ in 0..d {
        let mut next = Vec::with_capacity(all.len() * 3);
        for p in &all {
            for s in [0i8, 1, -1] {
                let mut q = p.clone();
                q.push(s);
                next.push(q);
            }
        }
        all = next;
    }
    all.sort_by_key(|p| {
        let dist = p.iter().zip(preferred).filter(|(a, b)| a != b).count();
        let active = p.iter().filter(|&&s| s != 0).count();
        (dist, active)
    });
    all
}

/// Exact projection of `y` onto the region (see module docs).
///
/// Falls back to the nearest-violation candidate (after verifying cube
/// membership) if floating-point noise rejects every pattern — in that case
/// the result is still feasible to ~1e-7 relative slab error.
pub fn project_exact(y: &[f64], region: &FeasibleRegion) -> Vec<f64> {
    let d = region.dims();
    // Fast path: the cube projection satisfies every slab ⇒ it is optimal
    // (the all-zeros sign pattern).
    let x0 = clamp_vec(y);
    let mut preferred = vec![0i8; d];
    let mut any_violated = false;
    for j in 0..d {
        let s = region.dot(j, &x0);
        if s > region.upper(j) {
            preferred[j] = 1;
            any_violated = true;
        } else if s < region.lower(j) {
            preferred[j] = -1;
            any_violated = true;
        }
    }
    if !any_violated {
        return x0;
    }

    let mut best: Option<(f64, Vec<f64>)> = None;
    for pattern in pattern_order(&preferred) {
        let active: Vec<usize> = (0..d).filter(|&j| pattern[j] != 0).collect();
        if active.is_empty() {
            continue; // already ruled out by the fast path
        }
        let dims: Vec<EqDim<'_>> = active
            .iter()
            .map(|&j| EqDim {
                w: region.weight(j),
                target: if pattern[j] > 0 {
                    region.upper(j)
                } else {
                    region.lower(j)
                },
            })
            .collect();
        let Some((x, lambdas)) = solve_equality(y, &dims) else {
            continue;
        };
        // KKT check 1: multiplier signs must match the guess (λ_j > 0 for a
        // tight upper bound, < 0 for a tight lower bound).
        let signs_ok = active.iter().zip(&lambdas).all(|(&j, &l)| {
            if pattern[j] > 0 {
                l > -LAMBDA_TOL
            } else {
                l < LAMBDA_TOL
            }
        });
        // KKT check 2: inactive slabs must hold.
        let mut violation = 0.0f64;
        for j in 0..d {
            if pattern[j] == 0 {
                violation =
                    violation.max(region.slab_excess(j, &x).abs() / region.total(j).max(1.0));
            }
        }
        if signs_ok && violation <= 1e-9 {
            return x;
        }
        let score = violation + if signs_ok { 0.0 } else { 1.0 };
        if best.as_ref().is_none_or(|(b, _)| score < *b) {
            best = Some((score, x));
        }
    }
    // Numerical fallback: the best candidate, clamped for safety.
    match best {
        Some((_, x)) => x.iter().map(|&v| clamp1(v)).collect(),
        None => x0,
    }
}

#[cfg(test)]
mod tests {
    use super::super::dykstra::project_dykstra;
    use super::super::test_support::*;
    use super::*;

    #[test]
    fn feasible_point_projects_to_its_clamp() {
        let (_, region) = random_instance(50, 2, 0.5, 1);
        let y = vec![0.0; 50];
        assert_eq!(project_exact(&y, &region), vec![0.0; 50]);
    }

    #[test]
    fn single_dim_matches_slab_solver() {
        for seed in 0..6 {
            let (y, region) = random_instance(120, 1, 0.02, seed);
            let x = project_exact(&y, &region);
            let (xs, _) = super::super::exact1d::project_slab_1d(
                &y,
                region.weight(0),
                region.lower(0),
                region.upper(0),
            )
            .unwrap();
            for (a, b) in x.iter().zip(&xs) {
                assert!((a - b).abs() < 1e-7, "seed {seed}");
            }
        }
    }

    #[test]
    fn two_dims_feasible_and_optimal_vs_dykstra() {
        for seed in 0..8 {
            let (y, region) = random_instance(100, 2, 0.03, seed + 50);
            let x = project_exact(&y, &region);
            assert!(region.max_violation(&x) < 1e-6, "seed {seed}");
            assert!(x.iter().all(|&v| v.abs() <= 1.0 + 1e-9));
            // Dykstra converges to the true projection: the exact solver
            // must be at least as close (within tolerance).
            let xd = project_dykstra(&y, &region, 5000, 1e-12);
            let de = dist2(&x, &y);
            let dd = dist2(&xd, &y);
            assert!(de <= dd + 1e-5, "seed {seed}: exact {de} vs dykstra {dd}");
            assert!(
                dist2(&x, &xd) < 1e-3,
                "seed {seed}: solutions should coincide"
            );
        }
    }

    #[test]
    fn three_dims_supported() {
        for seed in 0..3 {
            let (y, region) = random_instance(60, 3, 0.05, seed + 9);
            let x = project_exact(&y, &region);
            assert!(region.max_violation(&x) < 1e-6, "seed {seed}");
            let xd = project_dykstra(&y, &region, 8000, 1e-12);
            assert!(dist2(&x, &y) <= dist2(&xd, &y) + 1e-4, "seed {seed}");
        }
    }

    #[test]
    fn asymmetric_centers_respected() {
        // Slab centred away from zero (recursive-split configuration).
        let weights = vec![vec![1.0; 10]];
        let region = FeasibleRegion::new(weights, vec![4.0], vec![0.5]);
        let y = vec![0.0; 10];
        let x = project_exact(&y, &region);
        let s: f64 = x.iter().sum();
        assert!(
            (s - 3.5).abs() < 1e-7,
            "pulled up to the lower bound 3.5, got {s}"
        );
    }

    #[test]
    fn identical_weight_dimensions_degenerate_but_solvable() {
        // w1 == w2: multipliers are non-unique but x must still be the
        // projection (Lemma A.2).
        let w = vec![1.0, 2.0, 0.5, 1.5];
        let region =
            FeasibleRegion::new(vec![w.clone(), w.clone()], vec![0.0, 0.0], vec![0.2, 0.2]);
        let y = vec![1.8, 1.2, -0.3, 0.9];
        let x = project_exact(&y, &region);
        assert!(region.max_violation(&x) < 1e-6);
        let xd = project_dykstra(&y, &region, 5000, 1e-12);
        assert!(dist2(&x, &xd) < 1e-4);
    }

    #[test]
    fn pattern_order_prefers_natural_guess() {
        let order = pattern_order(&[1, -1]);
        assert_eq!(order[0], vec![1, -1]);
        assert_eq!(order.len(), 9);
        // All patterns distinct.
        let set: std::collections::HashSet<Vec<i8>> = order.into_iter().collect();
        assert_eq!(set.len(), 9);
    }
}
