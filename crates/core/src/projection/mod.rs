//! Projection onto `K = B∞ ∩ ⋂_j S_j` — step 3 of every GD iteration and
//! the paper's main technical contribution (§2.2–2.3, §3.1, Appendix A).
//!
//! Four interchangeable algorithms (paper Table 1):
//!
//! | method | output | guarantee |
//! |---|---|---|
//! | [`alternating`] (one-shot) | near-feasible point | cheapest; default |
//! | [`alternating`] (converged) | a point of `K` | von Neumann convergence |
//! | [`dykstra`] | the projection | Boyle–Dykstra convergence |
//! | [`exact`] | the projection | exact KKT, `O(n log^{d-1} n)`-style |

pub mod alternating;
pub mod dykstra;
pub mod exact;
pub mod exact1d;
pub mod linear1d;

use crate::config::ProjectionMethod;
use crate::feasible::FeasibleRegion;

/// Relative feasibility tolerance used by the iterative methods (scaled by
/// each slab's total weight).
pub const FEASIBILITY_TOL: f64 = 1e-9;

/// Clamp a scalar into `[-1, 1]` — the truncated linear function `[z]` of
/// paper §2.2.
#[inline]
pub fn clamp1(z: f64) -> f64 {
    z.clamp(-1.0, 1.0)
}

/// Element-wise clamp into the cube (projection onto `B∞` alone).
pub fn clamp_vec(y: &[f64]) -> Vec<f64> {
    y.iter().map(|&v| clamp1(v)).collect()
}

/// Projects `y` onto the region with the chosen algorithm.
///
/// All methods return a finite vector inside the cube; the iterative ones
/// may leave a slab violation below their tolerance, which the GD loop
/// absorbs (and the paper's Figure 9 measures).
pub fn project(method: ProjectionMethod, y: &[f64], region: &FeasibleRegion) -> Vec<f64> {
    debug_assert_eq!(y.len(), region.num_vars());
    match method {
        ProjectionMethod::OneShotAlternating => alternating::project_one_shot(y, region),
        ProjectionMethod::AlternatingConverged => {
            alternating::project_converged(y, region, 1000, FEASIBILITY_TOL)
        }
        ProjectionMethod::Dykstra => dykstra::project_dykstra(y, region, 2000, FEASIBILITY_TOL),
        ProjectionMethod::Exact => exact::project_exact(y, region),
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Random region + point instances shared by the projection tests.
    /// `y` is biased upward so the balance constraints genuinely bind —
    /// an unbiased point is almost surely feasible after clamping, which
    /// would make every projection trivially "correct".
    pub fn random_instance(n: usize, d: usize, eps: f64, seed: u64) -> (Vec<f64>, FeasibleRegion) {
        let mut rng = StdRng::seed_from_u64(seed);
        let weights: Vec<Vec<f64>> = (0..d)
            .map(|_| (0..n).map(|_| rng.gen_range(0.5..5.0)).collect())
            .collect();
        let region = FeasibleRegion::symmetric(weights, eps);
        let y: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..4.0)).collect();
        (y, region)
    }

    pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;
    use crate::config::ProjectionMethod;

    #[test]
    fn clamp_helpers() {
        assert_eq!(clamp1(3.0), 1.0);
        assert_eq!(clamp1(-1.5), -1.0);
        assert_eq!(clamp1(0.25), 0.25);
        assert_eq!(clamp_vec(&[2.0, -2.0, 0.5]), vec![1.0, -1.0, 0.5]);
    }

    #[test]
    fn all_methods_return_near_feasible_points() {
        for d in 1..=3 {
            let (y, region) = random_instance(200, d, 0.05, 42 + d as u64);
            for method in [
                ProjectionMethod::OneShotAlternating,
                ProjectionMethod::AlternatingConverged,
                ProjectionMethod::Dykstra,
                ProjectionMethod::Exact,
            ] {
                let x = project(method, &y, &region);
                assert_eq!(x.len(), y.len());
                assert!(
                    x.iter().all(|&v| v.abs() <= 1.0 + 1e-9),
                    "{method:?} left the cube"
                );
                if method != ProjectionMethod::OneShotAlternating {
                    assert!(
                        region.max_violation(&x) < 1e-6,
                        "{method:?} violation {} for d={d}",
                        region.max_violation(&x)
                    );
                }
            }
        }
    }

    #[test]
    fn exact_is_no_farther_than_iterative_methods() {
        for seed in 0..5 {
            let (y, region) = random_instance(150, 2, 0.02, seed);
            let xe = project(ProjectionMethod::Exact, &y, &region);
            let xd = project(ProjectionMethod::Dykstra, &y, &region);
            let xa = project(ProjectionMethod::AlternatingConverged, &y, &region);
            let de = dist2(&xe, &y);
            assert!(
                de <= dist2(&xd, &y) + 1e-6,
                "exact beats dykstra (seed {seed})"
            );
            assert!(
                de <= dist2(&xa, &y) + 1e-6,
                "exact beats alternating (seed {seed})"
            );
        }
    }
}
