//! Dykstra's projection algorithm (paper §3.1, reference \[15\]).
//!
//! Unlike plain alternating projections, Dykstra's method converges to the
//! *exact* projection onto the intersection by carrying a correction vector
//! per constraint set. The sets here are the cube `B∞` and the `d` slabs
//! `S_j`. Used in the Figure 10 comparison and as the oracle the exact
//! KKT solver is validated against.

use super::clamp1;
use crate::feasible::FeasibleRegion;

/// Projects `x` onto slab `j` in place (nearest bounding hyperplane if
/// outside, identity if inside).
fn project_slab(x: &mut [f64], region: &FeasibleRegion, j: usize) {
    let s = region.dot(j, x);
    let target = if s > region.upper(j) {
        region.upper(j)
    } else if s < region.lower(j) {
        region.lower(j)
    } else {
        return;
    };
    let w = region.weight(j);
    let w_norm2: f64 = w.iter().map(|v| v * v).sum();
    let shift = (target - s) / w_norm2;
    for (xi, &wi) in x.iter_mut().zip(w) {
        *xi += shift * wi;
    }
}

/// Dykstra's algorithm over `{B∞, S_1, …, S_d}`.
///
/// Stops when a full cycle moves the iterate less than `tol·√n` *and* the
/// point is feasible within `tol`, or after `max_cycles` cycles.
pub fn project_dykstra(
    y: &[f64],
    region: &FeasibleRegion,
    max_cycles: usize,
    tol: f64,
) -> Vec<f64> {
    let n = y.len();
    let d = region.dims();
    let mut x = y.to_vec();
    // One correction vector per set: index 0 = cube, 1..=d = slabs.
    let mut corrections = vec![vec![0.0f64; n]; d + 1];
    let move_tol = tol * (n as f64).sqrt().max(1.0);
    let mut z = vec![0.0f64; n];
    for _ in 0..max_cycles {
        let mut cycle_move = 0.0f64;
        for (set, correction) in corrections.iter_mut().enumerate() {
            // z = x + p_set
            for ((zi, &xi), &pi) in z.iter_mut().zip(&x).zip(correction.iter()) {
                *zi = xi + pi;
            }
            // x' = P_set(z)
            let mut x_new = z.clone();
            if set == 0 {
                x_new.iter_mut().for_each(|v| *v = clamp1(*v));
            } else {
                project_slab(&mut x_new, region, set - 1);
            }
            // p_set = z − x'
            for ((pi, &zi), &xn) in correction.iter_mut().zip(&z).zip(&x_new) {
                *pi = zi - xn;
            }
            for (xi, &xn) in x.iter_mut().zip(&x_new) {
                cycle_move += (*xi - xn) * (*xi - xn);
                *xi = xn;
            }
        }
        if cycle_move.sqrt() < move_tol && region.contains(&x, tol.max(1e-12)) {
            break;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;

    #[test]
    fn converges_into_region() {
        for d in 1..=3 {
            let (y, region) = random_instance(120, d, 0.02, 60 + d as u64);
            let x = project_dykstra(&y, &region, 3000, 1e-10);
            assert!(
                region.max_violation(&x) < 1e-6,
                "d={d}: violation {}",
                region.max_violation(&x)
            );
            assert!(x.iter().all(|&v| v.abs() <= 1.0 + 1e-9));
        }
    }

    #[test]
    fn matches_exact_1d_projection() {
        let (y, region) = random_instance(90, 1, 0.03, 8);
        let xd = project_dykstra(&y, &region, 5000, 1e-12);
        let (xe, _) = super::super::exact1d::project_slab_1d(
            &y,
            region.weight(0),
            region.lower(0),
            region.upper(0),
        )
        .unwrap();
        assert!(
            dist2(&xd, &xe) < 1e-5,
            "Dykstra must find the true projection"
        );
    }

    #[test]
    fn idempotent_on_feasible_points() {
        let (_, region) = random_instance(50, 2, 0.5, 9);
        let y = vec![0.0; 50];
        let x = project_dykstra(&y, &region, 100, 1e-12);
        assert!(dist2(&x, &y) < 1e-9);
    }

    #[test]
    fn tighter_epsilon_moves_point_farther() {
        let (y, tight) = random_instance(100, 2, 0.001, 10);
        let (_, loose) = random_instance(100, 2, 0.2, 10);
        let xt = project_dykstra(&y, &tight, 3000, 1e-10);
        let xl = project_dykstra(&y, &loose, 3000, 1e-10);
        assert!(
            dist2(&xt, &y) >= dist2(&xl, &y) - 1e-9,
            "smaller ε ⊂ larger ε ⇒ at least as far"
        );
    }
}
