//! Alternating projections (paper §3.1).
//!
//! The standard method for projecting onto an intersection of convex sets:
//! project onto each set in turn. Following the paper we project onto the
//! balance *hyperplane* `S_j^0 = { ⟨w_j, x⟩ = c_j }` rather than the slab —
//! "we are able to achieve slightly better balance by ... projecting on
//! `S_j^0` instead of `S_j^ε`" — and then onto the cube.
//!
//! * **one-shot** (`project_one_shot`): a single pass; used inside the hot
//!   loop because each pass costs only `O(d·n)`.
//! * **converged** (`project_converged`): passes until the point lies in
//!   `K`; guaranteed to converge to *a* point of the intersection (not
//!   necessarily the projection — that is Dykstra's job).

use super::clamp1;
use crate::feasible::FeasibleRegion;

/// One alternating pass in place: hyperplane projections then cube clamp.
/// `to_center = true` targets `c_j` (the paper's variant); `false` targets
/// the nearest slab bound (used to finish off feasibility).
pub fn alternating_pass(x: &mut [f64], region: &FeasibleRegion, to_center: bool) {
    for j in 0..region.dims() {
        let w = region.weight(j);
        let s = region.dot(j, x);
        let target = if to_center {
            region.center(j)
        } else if s > region.upper(j) {
            region.upper(j)
        } else if s < region.lower(j) {
            region.lower(j)
        } else {
            continue;
        };
        let w_norm2: f64 = w.iter().map(|v| v * v).sum();
        if w_norm2 == 0.0 {
            continue;
        }
        let shift = (target - s) / w_norm2;
        for (xi, &wi) in x.iter_mut().zip(w) {
            *xi += shift * wi;
        }
    }
    for xi in x.iter_mut() {
        *xi = clamp1(*xi);
    }
}

/// The paper's "one-shot" alternating projection: each hyperplane once,
/// then the cube once.
pub fn project_one_shot(y: &[f64], region: &FeasibleRegion) -> Vec<f64> {
    let mut x = y.to_vec();
    alternating_pass(&mut x, region, true);
    x
}

/// Alternating projections until `x ∈ K` (within `tol`) or `max_passes`.
///
/// The first half of the budget uses centre-hyperplane passes (better
/// balance); if still infeasible, the second half switches to
/// nearest-bound passes, whose fixed points are exactly the points of `K`.
pub fn project_converged(
    y: &[f64],
    region: &FeasibleRegion,
    max_passes: usize,
    tol: f64,
) -> Vec<f64> {
    let mut x = y.to_vec();
    for pass in 0..max_passes {
        if region.contains(&x, tol) {
            break;
        }
        let to_center = pass < max_passes / 2;
        alternating_pass(&mut x, region, to_center);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;

    #[test]
    fn one_shot_zeroes_single_balance_sum() {
        let (y, region) = random_instance(80, 1, 0.05, 2);
        let x = project_one_shot(&y, &region);
        // After one hyperplane pass and a clamp, the sum is *near* the
        // centre unless clamping interfered; it must at least shrink.
        let before = region.dot(0, &y) - region.center(0);
        let after = region.dot(0, &x) - region.center(0);
        assert!(after.abs() <= before.abs() + 1e-9);
        assert!(x.iter().all(|&v| v.abs() <= 1.0));
    }

    #[test]
    fn converged_lands_in_region() {
        for d in 1..=4 {
            let (y, region) = random_instance(150, d, 0.02, 30 + d as u64);
            let x = project_converged(&y, &region, 2000, 1e-10);
            assert!(
                region.contains(&x, 1e-9),
                "d={d}: violation {}",
                region.max_violation(&x)
            );
        }
    }

    #[test]
    fn feasible_input_unchanged_up_to_centering() {
        // A point already in K stays in K (though centre passes may move it).
        let (_, region) = random_instance(60, 2, 0.5, 4);
        let y = vec![0.0; 60];
        let x = project_converged(&y, &region, 100, 1e-10);
        assert!(region.contains(&x, 1e-9));
    }

    #[test]
    fn nearest_bound_pass_is_noop_inside_slab() {
        let (_, region) = random_instance(40, 2, 0.5, 5);
        let mut x = vec![0.0; 40];
        let before = x.clone();
        alternating_pass(&mut x, &region, false);
        assert_eq!(
            x, before,
            "inside every slab: nearest-bound pass does nothing"
        );
    }

    #[test]
    fn center_pass_hits_hyperplane_exactly_without_clamping() {
        // With d = 1 and a point far inside the cube, the hyperplane
        // projection is not disturbed by the clamp, so one pass must land
        // exactly on the centre hyperplane.
        let n = 50;
        let w: Vec<f64> = (0..n).map(|i| 0.5 + 0.01 * i as f64).collect();
        let region = FeasibleRegion::symmetric(vec![w], 0.01);
        let mut x = vec![0.1; n];
        alternating_pass(&mut x, &region, true);
        assert!(
            (region.dot(0, &x) - region.center(0)).abs() < 1e-9,
            "pass should land on the centre hyperplane"
        );
        assert!(x.iter().all(|&v| v.abs() < 1.0), "no clamping occurred");
    }
}
