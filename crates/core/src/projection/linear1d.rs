//! Expected-O(n) exact one-dimensional projection.
//!
//! The paper notes the d = 1 projection "can be further improved to O(n)
//! using a more careful approach [Maculan et al.]". This module implements
//! that improvement with randomized breakpoint pruning: instead of sorting
//! all `2n` breakpoints (`O(n log n)`), repeatedly evaluate `h` at a random
//! remaining breakpoint and discard everything the monotonicity of `h`
//! rules out — quickselect reasoning gives expected linear total work.
//!
//! Index bookkeeping: an index contributes to `h(λ)` as `w_i·[y_i − λ w_i]`
//! until *both* of its breakpoints are resolved against λ*; after that its
//! contribution is a constant (`±w_i`) or a linear term (`w_i y_i − λ w_i²`)
//! and moves into running accumulators, so each evaluation touches only the
//! still-unresolved indices.

use super::clamp1;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which side of λ* a breakpoint landed on (0 = unknown).
const UNKNOWN: u8 = 0;
const BELOW: u8 = 1; // breakpoint ≤ λ*
const ABOVE: u8 = 2; // breakpoint ≥ λ*

/// Exact solution of `min ‖x − y‖` s.t. `x ∈ [-1,1]^n`, `⟨w, x⟩ = c` in
/// expected O(n) time. Returns `(x, λ)`, or `None` when `c` is outside
/// `[-Σw, Σw]`. Agrees with [`super::exact1d::project_equality_1d`] up to
/// floating-point tolerance; the internal pivot randomness only affects
/// running time, never the output.
pub fn project_equality_1d_linear(y: &[f64], w: &[f64], c: f64) -> Option<(Vec<f64>, f64)> {
    assert_eq!(y.len(), w.len());
    let n = y.len();
    let total: f64 = w.iter().sum();
    let tol = 1e-9 * (total + c.abs() + 1.0);
    if c > total + tol || c < -total - tol {
        return None;
    }
    if n == 0 {
        return Some((Vec::new(), 0.0));
    }

    // Breakpoints: (value, index, is_upper); `is_upper` marks `(y_i+1)/w_i`
    // (the −1 saturation boundary), the larger of the pair.
    let mut bps: Vec<(f64, u32, bool)> = Vec::with_capacity(2 * n);
    for i in 0..n {
        bps.push(((y[i] - 1.0) / w[i], i as u32, false));
        bps.push(((y[i] + 1.0) / w[i], i as u32, true));
    }

    let mut lower_side = vec![UNKNOWN; n];
    let mut upper_side = vec![UNKNOWN; n];
    let mut resolved = vec![false; n];
    // Accumulators over fully resolved indices:
    //   plus  = Σ w_i      (x_i = +1: both bps above λ*)
    //   minus = Σ w_i      (x_i = −1: both bps below λ*)
    //   a, b  = Σ w_i y_i, Σ w_i²   (interior: lower below, upper above)
    let (mut plus, mut minus, mut a, mut b) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let (mut lo, mut hi) = (f64::NEG_INFINITY, f64::INFINITY);

    // Deterministic pivots: output depends on inputs only.
    let mut rng = StdRng::seed_from_u64(0x1D_5EED);

    while !bps.is_empty() && lo < hi {
        let pivot = bps[rng.gen_range(0..bps.len())].0;
        // h(pivot): accumulators + direct clamp for unresolved indices.
        let mut h = plus - minus + a - pivot * b;
        for i in 0..n {
            if !resolved[i] {
                h += w[i] * clamp1(y[i] - pivot * w[i]);
            }
        }
        // h is non-increasing in λ and h(λ*) = c.
        if h >= c {
            lo = lo.max(pivot);
        }
        if h <= c {
            hi = hi.min(pivot);
        }
        // Discard breakpoints at/outside the interval boundaries. (At a
        // breakpoint the clamped and linear forms coincide, so boundary
        // equality classifies safely to either side.)
        bps.retain(|&(v, idx, is_upper)| {
            let i = idx as usize;
            let side = if v <= lo {
                BELOW
            } else if v >= hi {
                ABOVE
            } else {
                return true;
            };
            if is_upper {
                upper_side[i] = side;
            } else {
                lower_side[i] = side;
            }
            if lower_side[i] != UNKNOWN && upper_side[i] != UNKNOWN && !resolved[i] {
                resolved[i] = true;
                match (lower_side[i], upper_side[i]) {
                    (BELOW, BELOW) => minus += w[i], // λ* above both ⇒ x = −1
                    (ABOVE, ABOVE) => plus += w[i],  // λ* below both ⇒ x = +1
                    (BELOW, ABOVE) => {
                        a += w[i] * y[i];
                        b += w[i] * w[i];
                    }
                    // lower above λ* but upper below is impossible
                    // (lower < upper always).
                    _ => unreachable!("inconsistent breakpoint sides"),
                }
            }
            false
        });
    }

    // Indices with a breakpoint still open behave linearly on (lo, hi).
    for i in 0..n {
        if !resolved[i] {
            a += w[i] * y[i];
            b += w[i] * w[i];
        }
    }
    // Solve the linear tail h(λ) = plus − minus + a − λ b = c on [lo, hi].
    let lambda = if b > 0.0 {
        let l = (plus - minus + a - c) / b;
        match (lo.is_finite(), hi.is_finite()) {
            (true, true) => l.clamp(lo, hi),
            (true, false) => l.max(lo),
            (false, true) => l.min(hi),
            (false, false) => l,
        }
    } else if lo.is_finite() {
        lo
    } else if hi.is_finite() {
        hi
    } else {
        0.0
    };
    let x: Vec<f64> = y
        .iter()
        .zip(w)
        .map(|(&yi, &wi)| clamp1(yi - lambda * wi))
        .collect();
    Some((x, lambda))
}

#[cfg(test)]
mod tests {
    use super::super::exact1d::project_equality_1d;
    use super::*;

    fn rand_case(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let y = (0..n).map(|_| rng.gen_range(-2.5..2.5)).collect();
        let w = (0..n).map(|_| rng.gen_range(0.3..4.0)).collect();
        (y, w)
    }

    #[test]
    fn agrees_with_sort_based_solver() {
        for seed in 0..20 {
            let (y, w) = rand_case(200, seed);
            let total: f64 = w.iter().sum();
            for &frac in &[0.0, 0.15, -0.5, 0.9] {
                let c = frac * total;
                let (xa, _) = project_equality_1d(&y, &w, c).unwrap();
                let (xb, _) = project_equality_1d_linear(&y, &w, c).unwrap();
                for (p, q) in xa.iter().zip(&xb) {
                    assert!((p - q).abs() < 1e-6, "seed {seed} frac {frac}: {p} vs {q}");
                }
            }
        }
    }

    #[test]
    fn constraint_attained() {
        let (y, w) = rand_case(500, 99);
        let total: f64 = w.iter().sum();
        let c = 0.23 * total;
        let (x, _) = project_equality_1d_linear(&y, &w, c).unwrap();
        let s: f64 = w.iter().zip(&x).map(|(p, q)| p * q).sum();
        assert!((s - c).abs() < 1e-6 * total, "s = {s}, c = {c}");
    }

    #[test]
    fn extreme_targets() {
        let (y, w) = rand_case(50, 7);
        let total: f64 = w.iter().sum();
        let (x, _) = project_equality_1d_linear(&y, &w, total).unwrap();
        assert!(x.iter().all(|&v| (v - 1.0).abs() < 1e-9));
        let (x, _) = project_equality_1d_linear(&y, &w, -total).unwrap();
        assert!(x.iter().all(|&v| (v + 1.0).abs() < 1e-9));
        assert!(project_equality_1d_linear(&y, &w, total * 1.01).is_none());
    }

    #[test]
    fn empty_and_singleton() {
        assert!(project_equality_1d_linear(&[], &[], 0.0)
            .unwrap()
            .0
            .is_empty());
        let (x, _) = project_equality_1d_linear(&[5.0], &[2.0], 1.0).unwrap();
        assert!((x[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn equal_weights_degenerate_breakpoints() {
        // Identical (y, w) pairs create massively duplicated breakpoints;
        // pruning must still terminate and be exact.
        let y = vec![1.7; 64];
        let w = vec![2.0; 64];
        let total = 128.0;
        let (x, _) = project_equality_1d_linear(&y, &w, 0.25 * total).unwrap();
        let s: f64 = x.iter().map(|v| v * 2.0).sum();
        assert!((s - 32.0).abs() < 1e-7, "s = {s}");
        assert!(
            x.windows(2).all(|p| (p[0] - p[1]).abs() < 1e-12),
            "symmetry preserved"
        );
    }

    #[test]
    fn deterministic_output() {
        let (y, w) = rand_case(300, 3);
        let total: f64 = w.iter().sum();
        let (xa, la) = project_equality_1d_linear(&y, &w, 0.1 * total).unwrap();
        let (xb, lb) = project_equality_1d_linear(&y, &w, 0.1 * total).unwrap();
        assert_eq!(xa, xb);
        assert_eq!(la, lb);
    }
}
