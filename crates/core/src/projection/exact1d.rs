//! Exact one-dimensional projection (paper §2.3, "Projection for d = 1").
//!
//! Given `y`, positive weights `w` and a target `c`, find
//! `x = argmin ‖x − y‖₂` subject to `x ∈ [-1, 1]^n` and `⟨w, x⟩ = c`.
//! By the KKT analysis of §2.2 the solution has the form
//! `x_i = [y_i − λ w_i]` for a scalar `λ`, and
//! `h(λ) = Σ_i w_i [y_i − λ w_i]` is a non-increasing piecewise-linear
//! function with breakpoints `(y_i ∓ 1)/w_i`, so `λ` is found by binary
//! search over the sorted breakpoints plus one linear interpolation —
//! `O(n log n)` total. (A bisection variant is provided for
//! cross-validation; the paper cites Maculan et al. for an `O(n)` method.)

use super::clamp1;

/// `h(λ) = Σ_i w_i · [y_i − λ w_i]`.
pub fn eval_h(y: &[f64], w: &[f64], lambda: f64) -> f64 {
    y.iter()
        .zip(w)
        .map(|(&yi, &wi)| wi * clamp1(yi - lambda * wi))
        .sum()
}

/// Materializes `x_i = [y_i − λ w_i]`.
pub fn apply_lambda(y: &[f64], w: &[f64], lambda: f64) -> Vec<f64> {
    y.iter()
        .zip(w)
        .map(|(&yi, &wi)| clamp1(yi - lambda * wi))
        .collect()
}

/// Exact equality-constrained projection; returns `(x, λ)`, or `None` when
/// `c` is outside the achievable range `[-Σw, Σw]`.
pub fn project_equality_1d(y: &[f64], w: &[f64], c: f64) -> Option<(Vec<f64>, f64)> {
    assert_eq!(y.len(), w.len());
    debug_assert!(w.iter().all(|&wi| wi > 0.0));
    let total: f64 = w.iter().sum();
    let tol = 1e-9 * (total + c.abs() + 1.0);
    if c > total + tol || c < -total - tol {
        return None;
    }
    if y.is_empty() {
        return if c.abs() <= tol {
            Some((Vec::new(), 0.0))
        } else {
            None
        };
    }

    // Saturated extremes: x = ±1 everywhere.
    let mut breakpoints: Vec<f64> = Vec::with_capacity(2 * y.len());
    for (&yi, &wi) in y.iter().zip(w) {
        breakpoints.push((yi - 1.0) / wi);
        breakpoints.push((yi + 1.0) / wi);
    }
    breakpoints.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());

    let first = breakpoints[0];
    let last = *breakpoints.last().unwrap();
    // h ≡ total for λ ≤ first, h ≡ −total for λ ≥ last.
    if c >= total - tol {
        return Some((apply_lambda(y, w, first), first));
    }
    if c <= -total + tol {
        return Some((apply_lambda(y, w, last), last));
    }

    // Binary search for the last breakpoint with h(bp) >= c (h is
    // non-increasing). Invariant: h(bp[lo]) >= c > h(bp[hi]).
    let (mut lo, mut hi) = (0usize, breakpoints.len() - 1);
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if eval_h(y, w, breakpoints[mid]) >= c {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let (la, lb) = (breakpoints[lo], breakpoints[hi]);
    let (ha, hb) = (eval_h(y, w, la), eval_h(y, w, lb));
    let lambda = if (ha - hb).abs() <= f64::EPSILON * (1.0 + ha.abs() + hb.abs()) {
        la // flat segment: any λ on it attains c (≈ ha).
    } else {
        // h is linear on [la, lb]: interpolate.
        la + (ha - c) * (lb - la) / (ha - hb)
    };
    Some((apply_lambda(y, w, lambda), lambda))
}

/// Bisection variant of [`project_equality_1d`] used for cross-validation;
/// same output up to `tol` on the constraint.
pub fn project_equality_1d_bisect(
    y: &[f64],
    w: &[f64],
    c: f64,
    iters: usize,
) -> Option<(Vec<f64>, f64)> {
    let total: f64 = w.iter().sum();
    let tol = 1e-9 * (total + c.abs() + 1.0);
    if c > total + tol || c < -total - tol || y.is_empty() {
        return if y.is_empty() && c.abs() <= tol {
            Some((Vec::new(), 0.0))
        } else {
            None
        };
    }
    // Any λ below every (y_i − 1)/w_i saturates x at +1, and vice versa.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (&yi, &wi) in y.iter().zip(w) {
        lo = lo.min((yi - 1.0) / wi);
        hi = hi.max((yi + 1.0) / wi);
    }
    for _ in 0..iters {
        let mid = 0.5 * (lo + hi);
        if eval_h(y, w, mid) >= c {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let lambda = 0.5 * (lo + hi);
    Some((apply_lambda(y, w, lambda), lambda))
}

/// Exact projection onto `[-1,1]^n ∩ {lo ≤ ⟨w, x⟩ ≤ hi}` — the full d = 1
/// projection including the inequality logic (the three sign cases of
/// §2.2): if the cube projection already satisfies the slab it is optimal;
/// otherwise the violated bound is tight and the equality solver applies.
pub fn project_slab_1d(y: &[f64], w: &[f64], lo: f64, hi: f64) -> Option<(Vec<f64>, f64)> {
    debug_assert!(lo <= hi);
    let x0 = super::clamp_vec(y);
    let s: f64 = w.iter().zip(&x0).map(|(wi, xi)| wi * xi).sum();
    if s >= lo && s <= hi {
        return Some((x0, 0.0));
    }
    let target = if s > hi { hi } else { lo };
    project_equality_1d(y, w, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_case(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let y = (0..n).map(|_| rng.gen_range(-2.5..2.5)).collect();
        let w = (0..n).map(|_| rng.gen_range(0.3..4.0)).collect();
        (y, w)
    }

    #[test]
    fn constraint_attained_exactly() {
        for seed in 0..10 {
            let (y, w) = rand_case(100, seed);
            let total: f64 = w.iter().sum();
            for &c in &[0.0, 0.3 * total, -0.7 * total, total, -total] {
                let (x, _) = project_equality_1d(&y, &w, c).unwrap();
                let s: f64 = w.iter().zip(&x).map(|(a, b)| a * b).sum();
                assert!(
                    (s - c).abs() < 1e-7 * (1.0 + total),
                    "seed {seed}: wanted {c}, got {s}"
                );
                assert!(x.iter().all(|&v| v.abs() <= 1.0 + 1e-12));
            }
        }
    }

    #[test]
    fn infeasible_targets_rejected() {
        let (y, w) = rand_case(50, 3);
        let total: f64 = w.iter().sum();
        assert!(project_equality_1d(&y, &w, total * 1.01).is_none());
        assert!(project_equality_1d(&y, &w, -total * 1.01).is_none());
    }

    #[test]
    fn h_is_non_increasing() {
        let (y, w) = rand_case(60, 7);
        let mut prev = f64::INFINITY;
        let mut l = -10.0;
        while l <= 10.0 {
            let h = eval_h(&y, &w, l);
            assert!(h <= prev + 1e-12);
            prev = h;
            l += 0.05;
        }
    }

    #[test]
    fn matches_bisection_variant() {
        for seed in 0..8 {
            let (y, w) = rand_case(80, seed + 100);
            let total: f64 = w.iter().sum();
            let c = 0.1 * total;
            let (xa, _) = project_equality_1d(&y, &w, c).unwrap();
            let (xb, _) = project_equality_1d_bisect(&y, &w, c, 200).unwrap();
            for (a, b) in xa.iter().zip(&xb) {
                assert!((a - b).abs() < 1e-6, "seed {seed}");
            }
        }
    }

    #[test]
    fn optimality_against_random_feasible_points() {
        // The solver's output must be closer to y than any random feasible
        // point with the same constraint value (projection optimality).
        let (y, w) = rand_case(40, 11);
        let total: f64 = w.iter().sum();
        let c = 0.2 * total;
        let (x, _) = project_equality_1d(&y, &w, c).unwrap();
        let d_opt: f64 = x.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum();
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..200 {
            // Build a random feasible candidate by perturbing x inside the
            // cube along a direction orthogonal to w.
            let mut cand = x.clone();
            let i = rng.gen_range(0..cand.len());
            let jj = rng.gen_range(0..cand.len());
            if i == jj {
                continue;
            }
            // Move i up and jj down, preserving ⟨w, x⟩.
            let delta: f64 = rng.gen_range(0.0..0.2);
            let di = delta / w[i];
            let dj = delta / w[jj];
            cand[i] += di;
            cand[jj] -= dj;
            if cand[i].abs() > 1.0 || cand[jj].abs() > 1.0 {
                continue;
            }
            let d_cand: f64 = cand.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum();
            assert!(d_cand >= d_opt - 1e-9, "found a closer feasible point");
        }
    }

    #[test]
    fn slab_short_circuits_when_feasible() {
        let y = vec![0.2, -0.4, 0.1];
        let w = vec![1.0, 1.0, 1.0];
        let (x, lambda) = project_slab_1d(&y, &w, -1.0, 1.0).unwrap();
        assert_eq!(x, y, "already feasible: projection is the clamp");
        assert_eq!(lambda, 0.0);
    }

    #[test]
    fn slab_tightens_correct_side() {
        let y = vec![2.0, 2.0];
        let w = vec![1.0, 1.0];
        let (x, lambda) = project_slab_1d(&y, &w, -0.5, 0.5).unwrap();
        let s: f64 = x.iter().sum();
        assert!((s - 0.5).abs() < 1e-9, "upper bound tight, got {s}");
        assert!(lambda > 0.0);
        let (x2, lambda2) = project_slab_1d(&[-2.0, -2.0], &w, -0.5, 0.5).unwrap();
        let s2: f64 = x2.iter().sum();
        assert!((s2 + 0.5).abs() < 1e-9);
        assert!(lambda2 < 0.0);
    }

    #[test]
    fn empty_input() {
        let (x, _) = project_equality_1d(&[], &[], 0.0).unwrap();
        assert!(x.is_empty());
        assert!(project_equality_1d(&[], &[], 1.0).is_none());
    }

    #[test]
    fn single_variable() {
        let (x, _) = project_equality_1d(&[5.0], &[2.0], 1.0).unwrap();
        assert!((x[0] - 0.5).abs() < 1e-9);
    }
}
