//! The feasible region `K = B∞ ∩ ⋂_j S_j` of the relaxation.
//!
//! `B∞ = [-1, 1]^n` and each `S_j = { x : ⟨w^(j), x⟩ ∈ [lo_j, hi_j] }` is a
//! slab. The paper uses symmetric slabs `|⟨w, x⟩| ≤ ε·w(V)`; we keep general
//! centres so recursive bisection can target unequal splits
//! `⌈k/2⌉ : ⌊k/2⌋` (paper §3.3), and so vertex fixing can re-centre the
//! constraints of the reduced problem on the free variables (§3.2).

/// The balance slabs (the cube is implicit — every projection handles it).
#[derive(Clone, Debug)]
pub struct FeasibleRegion {
    /// `weights[j]` — the weight vector of dimension `j` (strictly
    /// positive entries), all of equal length `n`.
    weights: Vec<Vec<f64>>,
    /// Slab centres `c_j`.
    centers: Vec<f64>,
    /// Slab half-widths `b_j ≥ 0`; dimension `j` requires
    /// `⟨w_j, x⟩ ∈ [c_j − b_j, c_j + b_j]`.
    halfwidths: Vec<f64>,
}

impl FeasibleRegion {
    /// Builds a region from raw parts.
    ///
    /// # Panics
    /// Panics on inconsistent dimensions, non-positive weights, or negative
    /// half-widths.
    pub fn new(weights: Vec<Vec<f64>>, centers: Vec<f64>, halfwidths: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "at least one dimension");
        assert_eq!(weights.len(), centers.len());
        assert_eq!(weights.len(), halfwidths.len());
        let n = weights[0].len();
        for (j, w) in weights.iter().enumerate() {
            assert_eq!(w.len(), n, "dimension {j} length mismatch");
            assert!(
                w.iter().all(|&v| v > 0.0 && v.is_finite()),
                "weights must be positive"
            );
        }
        assert!(halfwidths.iter().all(|&b| b >= 0.0 && b.is_finite()));
        Self {
            weights,
            centers,
            halfwidths,
        }
    }

    /// The paper's standard symmetric region: `|⟨w_j, x⟩| ≤ ε·Σ_i w_j(i)`.
    pub fn symmetric(weights: Vec<Vec<f64>>, epsilon: f64) -> Self {
        assert!(epsilon >= 0.0);
        let halfwidths = weights
            .iter()
            .map(|w| epsilon * w.iter().sum::<f64>())
            .collect();
        let centers = vec![0.0; weights.len()];
        Self::new(weights, centers, halfwidths)
    }

    /// Number of balance dimensions `d`.
    #[inline]
    pub fn dims(&self) -> usize {
        self.weights.len()
    }

    /// Number of variables `n`.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.weights[0].len()
    }

    /// Weight vector of dimension `j`.
    #[inline]
    pub fn weight(&self, j: usize) -> &[f64] {
        &self.weights[j]
    }

    /// Slab centre of dimension `j`.
    #[inline]
    pub fn center(&self, j: usize) -> f64 {
        self.centers[j]
    }

    /// Slab lower bound `c_j − b_j`.
    #[inline]
    pub fn lower(&self, j: usize) -> f64 {
        self.centers[j] - self.halfwidths[j]
    }

    /// Slab upper bound `c_j + b_j`.
    #[inline]
    pub fn upper(&self, j: usize) -> f64 {
        self.centers[j] + self.halfwidths[j]
    }

    /// Total weight `Σ_i w_j(i)` of dimension `j` — also the max of
    /// `|⟨w_j, x⟩|` over the cube, so feasibility requires
    /// `lower(j) ≤ total(j)` and `upper(j) ≥ -total(j)`.
    pub fn total(&self, j: usize) -> f64 {
        self.weights[j].iter().sum()
    }

    /// `⟨w_j, x⟩`.
    pub fn dot(&self, j: usize, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.num_vars());
        self.weights[j].iter().zip(x).map(|(w, v)| w * v).sum()
    }

    /// Signed distance of `⟨w_j, x⟩` outside the slab (0 inside; positive
    /// above the upper bound; negative below the lower bound).
    pub fn slab_excess(&self, j: usize, x: &[f64]) -> f64 {
        let s = self.dot(j, x);
        if s > self.upper(j) {
            s - self.upper(j)
        } else if s < self.lower(j) {
            s - self.lower(j)
        } else {
            0.0
        }
    }

    /// Largest slab violation over all dimensions, normalized by the total
    /// weight of the dimension (so it is comparable to ε).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        (0..self.dims())
            .map(|j| self.slab_excess(j, x).abs() / self.total(j).max(f64::MIN_POSITIVE))
            .fold(0.0, f64::max)
    }

    /// Whether `x` lies in the cube and every slab, with absolute tolerance
    /// `tol` on the cube and `tol·total(j)` on slab `j`.
    pub fn contains(&self, x: &[f64], tol: f64) -> bool {
        x.iter().all(|&v| v.abs() <= 1.0 + tol)
            && (0..self.dims())
                .all(|j| self.slab_excess(j, x).abs() <= tol * self.total(j).max(1.0))
    }

    /// Whether the region itself is non-empty: each slab must intersect the
    /// achievable range `[-total(j), total(j)]` of `⟨w_j, x⟩` over the cube.
    /// (Pairwise slab compatibility is necessary but checked per-dimension
    /// only — the paper notes mutually contradictory weight functions can
    /// make instances infeasible; those surface as projection failures.)
    pub fn per_dim_feasible(&self) -> bool {
        (0..self.dims()).all(|j| {
            let t = self.total(j);
            self.lower(j) <= t + 1e-12 && self.upper(j) >= -t - 1e-12
        })
    }

    /// Restricts the region to a subset of variables, shifting each slab by
    /// the contribution of the removed (fixed) variables. `keep[i]` is the
    /// index of retained variable `i`; `fixed_dot[j]` is `Σ_{i fixed}
    /// w_j(i)·x_i`.
    pub fn restrict(&self, keep: &[u32], fixed_dot: &[f64]) -> Self {
        assert_eq!(fixed_dot.len(), self.dims());
        let weights: Vec<Vec<f64>> = self
            .weights
            .iter()
            .map(|w| keep.iter().map(|&i| w[i as usize]).collect())
            .collect();
        let centers = self
            .centers
            .iter()
            .zip(fixed_dot)
            .map(|(c, f)| c - f)
            .collect();
        Self::new(weights, centers, self.halfwidths.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> FeasibleRegion {
        // Two dims over 4 vars: unit weights and "degree-ish" weights.
        FeasibleRegion::symmetric(vec![vec![1.0; 4], vec![2.0, 1.0, 1.0, 2.0]], 0.25)
    }

    #[test]
    fn bounds_from_epsilon() {
        let r = region();
        assert_eq!(r.dims(), 2);
        assert_eq!(r.num_vars(), 4);
        assert_eq!(r.total(0), 4.0);
        assert_eq!(r.upper(0), 1.0);
        assert_eq!(r.lower(0), -1.0);
        assert_eq!(r.upper(1), 1.5);
    }

    #[test]
    fn contains_and_violation() {
        let r = region();
        let x = [0.5, -0.5, 0.5, -0.5];
        assert!(r.contains(&x, 1e-12));
        assert_eq!(r.max_violation(&x), 0.0);

        let y = [1.0, 1.0, 1.0, 1.0]; // ⟨w0,y⟩ = 4 > 1
        assert!(!r.contains(&y, 1e-12));
        assert!((r.slab_excess(0, &y) - 3.0).abs() < 1e-12);
        assert!(r.max_violation(&y) > 0.7);
    }

    #[test]
    fn cube_violation_detected() {
        let r = region();
        let x = [1.5, -0.9, 0.0, -0.5];
        assert!(!r.contains(&x, 1e-9));
    }

    #[test]
    fn restrict_shifts_centers() {
        let r = region();
        // Fix variables 0 and 3 at +1 and −1.
        let fixed_dot = vec![1.0 * 1.0 + -1.0, 2.0 * 1.0 + -2.0];
        let sub = r.restrict(&[1, 2], &fixed_dot);
        assert_eq!(sub.num_vars(), 2);
        assert_eq!(sub.center(0), 0.0, "symmetric fixing cancels");
        assert_eq!(sub.weight(1), &[1.0, 1.0]);
        // Half-widths are inherited unchanged.
        assert_eq!(sub.upper(0) - sub.lower(0), r.upper(0) - r.lower(0));
    }

    #[test]
    fn restrict_asymmetric_fixing() {
        let r = region();
        let fixed_dot = vec![2.0, 4.0]; // both fixed at +1
        let sub = r.restrict(&[1, 2], &fixed_dot);
        assert_eq!(sub.center(0), -2.0);
        assert_eq!(sub.upper(0), -1.0);
        // Dim 0 alone would be feasible (slab [−3, −1] meets [−2, 2]), but
        // dim 1's slab [−5.5, −2.5] misses its achievable range [−2, 2]:
        // fixing the two heavy vertices on the same side is detected as
        // infeasible, which is exactly what ActiveSet::try_fix prevents.
        assert!(!sub.per_dim_feasible());
    }

    #[test]
    fn per_dim_feasibility() {
        let r = FeasibleRegion::new(vec![vec![1.0, 1.0]], vec![1.5], vec![0.1]);
        assert!(r.per_dim_feasible());
        let bad = FeasibleRegion::new(vec![vec![1.0, 1.0]], vec![3.0], vec![0.5]);
        assert!(!bad.per_dim_feasible());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_weights() {
        FeasibleRegion::symmetric(vec![vec![1.0, 0.0]], 0.1);
    }
}
