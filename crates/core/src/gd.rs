//! The GD main loop (paper Algorithm 1 + the §3.2 implementation details).
//!
//! Per iteration: Gaussian noise (first iteration only by default), a
//! gradient ascent step `y = z + γ_t A z`, and a projection back onto the
//! feasible region. On top of the bare algorithm this module implements:
//!
//! * **adaptive step size** — γ_t chosen so the *realized* step
//!   `‖x(t+1) − x(t)‖₂` stays close to a constant target (`2·√n/I` by
//!   default), with bounded retries when the projection eats the step;
//! * **vertex fixing** — near-integral coordinates are frozen at ±1,
//!   removed from the active variable set and folded into the balance
//!   targets of the reduced region, keeping the gradient from being
//!   dominated by already-decided vertices;
//! * a final run of alternating projections to convergence, followed by
//!   balanced randomized rounding.

use crate::config::{GdConfig, StepSchedule};
use crate::feasible::FeasibleRegion;
use crate::matvec::{expected_locality, matvec_parallel};
use crate::noise::add_gaussian_noise;
use crate::projection::{alternating, project};
use crate::rounding::round_balanced;
use mdbgp_graph::{Graph, PartitionError, VertexWeights};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The bipartition target: part `V_1` (sign +1) should receive `fraction`
/// of every weight dimension, within relative tolerance `epsilon`.
///
/// In the ±1 formulation `⟨w, x⟩ = w(V_1) − w(V_2)`, so the slab for
/// dimension `j` has centre `(2·fraction − 1)·w(V)` and half-width
/// `2·min(fraction, 1 − fraction)·ε·w(V)` (both parts must stay within
/// `(1 ± ε)` of their share — the tighter of the two constraints wins).
#[derive(Clone, Copy, Debug)]
pub struct SplitTarget {
    pub fraction: f64,
    pub epsilon: f64,
}

impl SplitTarget {
    /// Even split, the paper's standard setting.
    pub fn half(epsilon: f64) -> Self {
        Self {
            fraction: 0.5,
            epsilon,
        }
    }

    /// Uneven split for recursive partitioning into non-power-of-two `k`.
    pub fn new(fraction: f64, epsilon: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "fraction must be in (0, 1)"
        );
        assert!(epsilon >= 0.0);
        Self { fraction, epsilon }
    }

    /// Slab centre for a dimension with total weight `total`.
    pub fn center(&self, total: f64) -> f64 {
        (2.0 * self.fraction - 1.0) * total
    }

    /// Slab half-width for a dimension with total weight `total`.
    pub fn halfwidth(&self, total: f64) -> f64 {
        2.0 * self.fraction.min(1.0 - self.fraction) * self.epsilon * total
    }

    /// Builds the feasible region for `weights` under this target.
    pub fn region(&self, weights: &VertexWeights) -> FeasibleRegion {
        let w: Vec<Vec<f64>> = (0..weights.dims())
            .map(|j| weights.dim(j).to_vec())
            .collect();
        let centers = (0..weights.dims())
            .map(|j| self.center(weights.total(j)))
            .collect();
        let halfwidths = (0..weights.dims())
            .map(|j| self.halfwidth(weights.total(j)))
            .collect();
        FeasibleRegion::new(w, centers, halfwidths)
    }
}

/// Per-iteration telemetry (Figures 8–10 plot these curves).
#[derive(Clone, Debug)]
pub struct IterationRecord {
    pub iteration: usize,
    /// Expected edge locality of the current fractional iterate.
    pub expected_locality: f64,
    /// `max_j |⟨w_j, x⟩ − c_j| / w_j(V)` — the fractional analogue of the
    /// partition imbalance.
    pub fractional_imbalance: f64,
    /// Realized step `‖x(t+1) − x(t)‖₂`.
    pub step_length: f64,
    /// Gradient multiplier γ_t used this iteration.
    pub gamma: f64,
    /// Number of vertices fixed at ±1 so far.
    pub fixed_vertices: usize,
}

/// Why a GD run stopped iterating.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GdExit {
    /// The configured iteration budget ran out.
    #[default]
    IterationBudget,
    /// The warm start froze every vertex — there was nothing to optimize.
    FullyFrozen,
    /// Vertex fixing drove the whole iterate integral before the budget.
    FullyIntegral,
}

/// Convergence trace of one GD run — always collected (cheap: one norm per
/// iteration, already computed for the step schedule), so the observability
/// layer can report iteration-count histograms and gradient-norm decay
/// without `track_history`'s per-iteration locality scans.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GdRunStats {
    /// Gradient iterations actually executed.
    pub iterations: usize,
    /// `‖∇f‖₂` over the free variables, one entry per executed iteration.
    pub grad_norms: Vec<f64>,
    /// Why the run stopped.
    pub exit: GdExit,
}

/// Output of one GD bipartition run.
#[derive(Clone, Debug)]
pub struct BipartitionResult {
    /// ±1 assignment (`+1 → V_1`).
    pub signs: Vec<i8>,
    /// Final fractional iterate (before rounding).
    pub x: Vec<f64>,
    /// Per-iteration records (empty unless `config.track_history`).
    pub history: Vec<IterationRecord>,
    /// Normalized balance violation of `signs` (0.0 = ε-balanced).
    pub violation: f64,
    /// Convergence trace (iteration count, gradient norms, exit reason).
    pub stats: GdRunStats,
}

/// State of the active-variable bookkeeping for vertex fixing.
struct ActiveSet {
    /// `free[i]` — original index of reduced variable `i`.
    free: Vec<u32>,
    /// Fixed flag per original vertex.
    fixed: Vec<bool>,
    /// `Σ_{fixed i} w_j(i)·x_i` per dimension.
    fixed_dot: Vec<f64>,
    /// `Σ_{free i} w_j(i)` per dimension.
    free_total: Vec<f64>,
}

impl ActiveSet {
    fn new(n: usize, region: &FeasibleRegion) -> Self {
        Self {
            free: (0..n as u32).collect(),
            fixed: vec![false; n],
            fixed_dot: vec![0.0; region.dims()],
            free_total: (0..region.dims()).map(|j| region.total(j)).collect(),
        }
    }

    fn num_fixed(&self) -> usize {
        self.fixed.len() - self.free.len()
    }

    /// Attempts to fix vertex `v` at `sign`, keeping every reduced slab
    /// reachable. Returns whether the vertex was fixed.
    fn try_fix(&mut self, v: u32, sign: f64, region: &FeasibleRegion) -> bool {
        debug_assert!(!self.fixed[v as usize]);
        let d = region.dims();
        for j in 0..d {
            let w = region.weight(j)[v as usize];
            let new_dot = self.fixed_dot[j] + w * sign;
            let new_total = self.free_total[j] - w;
            let lo = region.lower(j) - new_dot;
            let hi = region.upper(j) - new_dot;
            // The free variables can realize any value in [−new_total,
            // new_total]; the shifted slab must intersect it.
            if lo > new_total + 1e-12 || hi < -new_total - 1e-12 {
                return false;
            }
        }
        self.fixed[v as usize] = true;
        for j in 0..d {
            let w = region.weight(j)[v as usize];
            self.fixed_dot[j] += w * sign;
            self.free_total[j] -= w;
        }
        true
    }

    /// Rebuilds the free-index list after fixing.
    fn rebuild_free(&mut self) {
        self.free = (0..self.fixed.len() as u32)
            .filter(|&v| !self.fixed[v as usize])
            .collect();
    }
}

/// Warm-start specification for incremental refinement (see
/// [`bipartition_warm`] and `mdbgp-stream`).
#[derive(Clone, Debug, Default)]
pub struct WarmStart {
    /// Initial fractional iterate, length `n`, entries clamped to `[-1, 1]`.
    /// For refinement of an existing bipartition, pass the ±1 encoding of
    /// the current assignment.
    pub x0: Vec<f64>,
    /// Vertices frozen at `sign(x0[v])`: they are fixed before the first
    /// iteration and leave the active variable set, so gradient work scales
    /// with the *free* vertices only. A frozen vertex whose fixation would
    /// make the balance slabs unreachable is silently left free (same rule
    /// as in-loop vertex fixing).
    pub frozen: Vec<bool>,
}

impl WarmStart {
    /// Warm start from a ±1 assignment with an explicit frozen mask.
    pub fn from_signs(signs: &[i8], frozen: Vec<bool>) -> Self {
        assert_eq!(signs.len(), frozen.len());
        Self {
            x0: signs.iter().map(|&s| s as f64).collect(),
            frozen,
        }
    }
}

/// Runs GD on `graph` with the given split target, producing a ±1
/// assignment. This is the inner engine; use
/// [`crate::recursive::GdPartitioner`] for the full k-way API.
pub fn bipartition(
    graph: &Graph,
    weights: &VertexWeights,
    config: &GdConfig,
    target: &SplitTarget,
    seed: u64,
) -> Result<BipartitionResult, PartitionError> {
    bipartition_impl(graph, weights, config, target, seed, None)
}

/// [`bipartition`] warm-started from an existing (partial) solution: the
/// iterate starts at `warm.x0` instead of the origin and `warm.frozen`
/// vertices are fixed up front. This is the core primitive behind
/// incremental repartitioning — a small batch of graph updates is absorbed
/// by a few cheap iterations over the unfrozen vertices instead of a full
/// solve (no iteration-0 noise is added: a non-zero warm start is already
/// away from the saddle at the origin).
pub fn bipartition_warm(
    graph: &Graph,
    weights: &VertexWeights,
    config: &GdConfig,
    target: &SplitTarget,
    warm: &WarmStart,
    seed: u64,
) -> Result<BipartitionResult, PartitionError> {
    bipartition_impl(graph, weights, config, target, seed, Some(warm))
}

fn bipartition_impl(
    graph: &Graph,
    weights: &VertexWeights,
    config: &GdConfig,
    target: &SplitTarget,
    seed: u64,
    warm: Option<&WarmStart>,
) -> Result<BipartitionResult, PartitionError> {
    config.validate().map_err(PartitionError::Config)?;
    let n = graph.num_vertices();
    if weights.num_vertices() != n {
        return Err(PartitionError::DimensionMismatch {
            weights_n: weights.num_vertices(),
            graph_n: n,
        });
    }
    if n == 0 {
        return Ok(BipartitionResult {
            signs: Vec::new(),
            x: Vec::new(),
            history: Vec::new(),
            violation: 0.0,
            stats: GdRunStats {
                exit: GdExit::FullyFrozen,
                ..GdRunStats::default()
            },
        });
    }

    let region = target.region(weights);
    if !region.per_dim_feasible() {
        return Err(PartitionError::Infeasible(
            "balance slab unreachable for some weight dimension".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = vec![0.0f64; n];
    let mut grad = vec![0.0f64; n];
    let mut active = ActiveSet::new(n, &region);
    let mut warm_started = false;
    if let Some(w) = warm {
        if w.x0.len() != n || w.frozen.len() != n {
            return Err(PartitionError::DimensionMismatch {
                weights_n: w.x0.len(),
                graph_n: n,
            });
        }
        for (xi, &x0i) in x.iter_mut().zip(&w.x0) {
            *xi = x0i.clamp(-1.0, 1.0);
        }
        warm_started = x.iter().any(|&v| v != 0.0);
        // Freeze the most decided vertices first so marginal ones are the
        // ones left free when fixing everything would be infeasible.
        let mut to_freeze: Vec<u32> = (0..n as u32).filter(|&v| w.frozen[v as usize]).collect();
        to_freeze.sort_by(|&a, &b| {
            x[b as usize]
                .abs()
                .partial_cmp(&x[a as usize].abs())
                .unwrap()
        });
        for v in to_freeze {
            let sign = if x[v as usize] >= 0.0 { 1.0 } else { -1.0 };
            if active.try_fix(v, sign, &region) {
                x[v as usize] = sign;
            }
        }
        active.rebuild_free();
    }
    let mut reduced = region.restrict(&active.free, &active.fixed_dot);
    let mut history = Vec::new();
    let mut stats = GdRunStats::default();

    let target_len_full = config.step.target_length(n, config.iterations);

    for t in 0..config.iterations {
        if active.free.is_empty() {
            stats.exit = GdExit::FullyFrozen; // fully frozen warm start
            break;
        }
        // --- Step 1: noise (escapes the saddle at x = 0; a warm start is
        // already away from the origin, so it gets none). ---
        let std = if t == 0 && warm_started {
            0.0
        } else {
            config.noise.std_at(t)
        };
        let mut z = x.clone();
        if std > 0.0 {
            // Perturb only free coordinates so fixed vertices stay integral.
            let mut noise_buf = vec![0.0f64; active.free.len()];
            add_gaussian_noise(&mut noise_buf, std, &mut rng);
            for (slot, &v) in noise_buf.iter().zip(&active.free) {
                z[v as usize] += slot;
            }
        }

        // --- Step 2: gradient ∇f(z) = A z. ---
        matvec_parallel(graph, &z, &mut grad, config.threads);

        let grad_free_norm: f64 = active
            .free
            .iter()
            .map(|&v| grad[v as usize] * grad[v as usize])
            .sum::<f64>()
            .sqrt();
        stats.iterations = t + 1;
        stats.grad_norms.push(grad_free_norm);

        // Free-subspace step-length target: can't move farther than the
        // diameter of the remaining cube.
        let cap = 2.0 * (active.free.len() as f64).sqrt();
        let step_target = target_len_full.map(|l| l.min(cap));

        let mut gamma = match config.step {
            StepSchedule::Constant { gamma } => gamma,
            StepSchedule::FixedLength { .. } => {
                let t_len = step_target.unwrap();
                if grad_free_norm > 1e-30 {
                    t_len / grad_free_norm
                } else {
                    1.0
                }
            }
        };

        // --- Step 3: projection, with adaptive retries (§3.2): if the
        // projection swallowed the step, enlarge γ and retry. ---
        let mut x_new_free: Vec<f64>;
        let mut step_len: f64;
        let mut retries = 0;
        loop {
            let y_free: Vec<f64> = active
                .free
                .iter()
                .map(|&v| z[v as usize] + gamma * grad[v as usize])
                .collect();
            x_new_free = project(config.projection, &y_free, &reduced);
            step_len = active
                .free
                .iter()
                .zip(&x_new_free)
                .map(|(&v, &nv)| {
                    let dv = nv - x[v as usize];
                    dv * dv
                })
                .sum::<f64>()
                .sqrt();
            match step_target {
                Some(t_len) if step_len < 0.5 * t_len && retries < 3 && grad_free_norm > 1e-30 => {
                    gamma *= (t_len / step_len.max(t_len / 16.0)).min(8.0);
                    retries += 1;
                }
                _ => break,
            }
        }
        for (&v, &nv) in active.free.iter().zip(&x_new_free) {
            x[v as usize] = nv;
        }

        // --- Vertex fixing (§3.2). ---
        let mut fixed_any = false;
        if let Some(threshold) = config.fixing_threshold {
            // Walk candidates in decreasing |x| so the most decided
            // vertices are locked first.
            let mut candidates: Vec<u32> = active
                .free
                .iter()
                .copied()
                .filter(|&v| x[v as usize].abs() >= threshold)
                .collect();
            candidates.sort_by(|&a, &b| {
                x[b as usize]
                    .abs()
                    .partial_cmp(&x[a as usize].abs())
                    .unwrap()
            });
            for v in candidates {
                let sign = if x[v as usize] >= 0.0 { 1.0 } else { -1.0 };
                if active.try_fix(v, sign, &region) {
                    x[v as usize] = sign;
                    fixed_any = true;
                }
            }
        }
        if fixed_any {
            active.rebuild_free();
            reduced = region.restrict(&active.free, &active.fixed_dot);
        }

        if config.track_history {
            let frac_imb = (0..region.dims())
                .map(|j| (region.dot(j, &x) - region.center(j)).abs() / region.total(j))
                .fold(0.0, f64::max);
            history.push(IterationRecord {
                iteration: t,
                expected_locality: expected_locality(graph, &x),
                fractional_imbalance: frac_imb,
                step_length: step_len,
                gamma,
                fixed_vertices: active.num_fixed(),
            });
        }

        if active.free.is_empty() {
            stats.exit = GdExit::FullyIntegral;
            break;
        }
    }

    // Final feasibility clean-up on the free variables (paper §3.1: "in the
    // last iterations we run the alternating projections method until
    // convergence").
    if !active.free.is_empty() {
        let x_free: Vec<f64> = active.free.iter().map(|&v| x[v as usize]).collect();
        let cleaned = alternating::project_converged(
            &x_free,
            &reduced,
            config.final_projection_passes,
            crate::projection::FEASIBILITY_TOL,
        );
        for (&v, &nv) in active.free.iter().zip(&cleaned) {
            x[v as usize] = nv;
        }
    }

    // Randomized rounding + balance repair.
    let (signs, violation) = round_balanced(&x, &region, config.rounding_attempts, &mut rng);
    Ok(BipartitionResult {
        signs,
        x,
        history,
        violation,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::gen;
    use mdbgp_graph::Partition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quality(graph: &Graph, weights: &VertexWeights, res: &BipartitionResult) -> (f64, f64) {
        let p = Partition::from_signs(&res.signs);
        (p.edge_locality(graph), p.max_imbalance(weights))
    }

    #[test]
    fn splits_two_cliques_perfectly() {
        let g = gen::two_cliques(40, 2);
        let w = VertexWeights::vertex_edge(&g);
        let cfg = GdConfig {
            iterations: 60,
            ..GdConfig::with_epsilon(0.05)
        };
        let res = bipartition(&g, &w, &cfg, &SplitTarget::half(0.05), 1).unwrap();
        let (loc, imb) = quality(&g, &w, &res);
        let m = g.num_edges() as f64;
        assert!(
            loc >= (m - 2.0) / m - 1e-9,
            "only the bridges may be cut, locality {loc}"
        );
        assert!(imb <= 0.05 + 1e-9, "imbalance {imb}");
    }

    #[test]
    fn respects_two_dimensional_balance_on_skewed_graph() {
        // A hub-heavy graph: unit balance alone would allow degree skew.
        let mut rng = StdRng::seed_from_u64(3);
        let degrees = gen::power_law_sequence(600, 2.2, 2.0, 120.0, &mut rng);
        let g = gen::chung_lu(&degrees, &mut rng);
        let w = VertexWeights::vertex_edge(&g);
        let cfg = GdConfig {
            iterations: 80,
            ..GdConfig::with_epsilon(0.05)
        };
        let res = bipartition(&g, &w, &cfg, &SplitTarget::half(0.05), 9).unwrap();
        let p = Partition::from_signs(&res.signs);
        let imb = p.imbalance(&w);
        assert!(imb[0] <= 0.06, "vertex imbalance {}", imb[0]);
        assert!(imb[1] <= 0.06, "degree imbalance {}", imb[1]);
    }

    #[test]
    fn beats_random_split_on_community_graph() {
        let cfg_g = gen::CommunityGraphConfig::social(1200);
        let cg = gen::community_graph(&cfg_g, &mut StdRng::seed_from_u64(4));
        let w = VertexWeights::vertex_edge(&cg.graph);
        let cfg = GdConfig {
            iterations: 80,
            ..GdConfig::with_epsilon(0.05)
        };
        let res = bipartition(&cg.graph, &w, &cfg, &SplitTarget::half(0.05), 11).unwrap();
        let (loc, imb) = quality(&cg.graph, &w, &res);
        assert!(
            loc > 0.62,
            "expected well above the 50% of a random split, got {loc}"
        );
        assert!(imb <= 0.06, "imbalance {imb}");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gen::two_cliques(20, 3);
        let w = VertexWeights::unit(40);
        let cfg = GdConfig {
            iterations: 30,
            ..GdConfig::with_epsilon(0.1)
        };
        let a = bipartition(&g, &w, &cfg, &SplitTarget::half(0.1), 5).unwrap();
        let b = bipartition(&g, &w, &cfg, &SplitTarget::half(0.1), 5).unwrap();
        assert_eq!(a.signs, b.signs);
    }

    #[test]
    fn history_is_recorded_and_improves() {
        let g = gen::two_cliques(30, 1);
        let w = VertexWeights::unit(60);
        let cfg = GdConfig {
            iterations: 50,
            track_history: true,
            ..GdConfig::with_epsilon(0.05)
        };
        let res = bipartition(&g, &w, &cfg, &SplitTarget::half(0.05), 2).unwrap();
        assert!(!res.history.is_empty());
        let first = res.history.first().unwrap().expected_locality;
        let last = res.history.last().unwrap().expected_locality;
        assert!(last > first, "locality should improve: {first} -> {last}");
        assert!(last > 0.9);
    }

    #[test]
    fn uneven_split_target_honored() {
        // 2:1 split of a cycle.
        let g = gen::cycle(300);
        let w = VertexWeights::unit(300);
        let cfg = GdConfig {
            iterations: 60,
            ..GdConfig::with_epsilon(0.04)
        };
        let t = SplitTarget::new(2.0 / 3.0, 0.04);
        let res = bipartition(&g, &w, &cfg, &t, 8).unwrap();
        let plus = res.signs.iter().filter(|&&s| s == 1).count() as f64;
        assert!(
            (plus / 300.0 - 2.0 / 3.0).abs() < 0.04 + 0.01,
            "share {}",
            plus / 300.0
        );
    }

    #[test]
    fn vertex_fixing_freezes_monotonically() {
        let g = gen::two_cliques(25, 1);
        let w = VertexWeights::unit(50);
        let cfg = GdConfig {
            iterations: 60,
            track_history: true,
            ..GdConfig::with_epsilon(0.05)
        };
        let res = bipartition(&g, &w, &cfg, &SplitTarget::half(0.05), 3).unwrap();
        let mut prev = 0usize;
        for rec in &res.history {
            assert!(rec.fixed_vertices >= prev, "fixing must be monotone");
            prev = rec.fixed_vertices;
        }
        assert!(
            prev > 0,
            "some vertices should be fixed on an easy instance"
        );
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Graph::empty(0);
        let w = VertexWeights::from_vectors(vec![Vec::new()]);
        // from_vectors rejects empty? unit weights of zero length:
        let res = bipartition(&g, &w, &GdConfig::default(), &SplitTarget::half(0.1), 0);
        assert!(res.is_ok());
        assert!(res.unwrap().signs.is_empty());
    }

    #[test]
    fn warm_start_preserves_frozen_vertices() {
        let g = gen::two_cliques(30, 2);
        let w = VertexWeights::vertex_edge(&g);
        let cfg = GdConfig {
            iterations: 15,
            ..GdConfig::with_epsilon(0.05)
        };
        // Start from the planted split and freeze the first clique entirely.
        let signs: Vec<i8> = (0..60).map(|v| if v < 30 { 1 } else { -1 }).collect();
        let frozen: Vec<bool> = (0..60).map(|v| v < 30).collect();
        let warm = WarmStart::from_signs(&signs, frozen);
        let res = bipartition_warm(&g, &w, &cfg, &SplitTarget::half(0.05), &warm, 1).unwrap();
        for v in 0..30 {
            assert_eq!(res.signs[v], 1, "frozen vertex {v} moved");
        }
        let (loc, imb) = quality(&g, &w, &res);
        assert!(
            loc > 0.9,
            "warm start should keep the planted split, locality {loc}"
        );
        assert!(imb <= 0.05 + 1e-9, "imbalance {imb}");
    }

    #[test]
    fn warm_start_fixes_a_perturbed_solution_in_few_iterations() {
        // Plant the optimum, flip a handful of vertices, and check that a
        // handful of warm iterations recovers it — the incremental-
        // refinement workload of mdbgp-stream.
        let g = gen::two_cliques(40, 2);
        let w = VertexWeights::vertex_edge(&g);
        let mut signs: Vec<i8> = (0..80).map(|v| if v < 40 { 1 } else { -1 }).collect();
        for v in [3usize, 17, 44, 61] {
            signs[v] = -signs[v];
        }
        let frozen = vec![false; 80];
        let warm = WarmStart::from_signs(&signs, frozen);
        let cfg = GdConfig {
            iterations: 10,
            ..GdConfig::with_epsilon(0.05)
        };
        let res = bipartition_warm(&g, &w, &cfg, &SplitTarget::half(0.05), &warm, 2).unwrap();
        let (loc, imb) = quality(&g, &w, &res);
        let m = g.num_edges() as f64;
        assert!(
            loc >= (m - 2.0) / m - 1e-9,
            "warm GD should heal the flips, locality {loc}"
        );
        assert!(imb <= 0.05 + 1e-9);
    }

    #[test]
    fn fully_frozen_warm_start_is_identity() {
        let g = gen::two_cliques(10, 1);
        let w = VertexWeights::unit(20);
        let signs: Vec<i8> = (0..20).map(|v| if v < 10 { 1 } else { -1 }).collect();
        let warm = WarmStart::from_signs(&signs, vec![true; 20]);
        let cfg = GdConfig {
            iterations: 5,
            ..GdConfig::with_epsilon(0.1)
        };
        let res = bipartition_warm(&g, &w, &cfg, &SplitTarget::half(0.1), &warm, 3).unwrap();
        assert_eq!(res.signs, signs);
    }

    #[test]
    fn warm_start_rejects_wrong_length() {
        let g = gen::path(5);
        let w = VertexWeights::unit(5);
        let warm = WarmStart {
            x0: vec![0.0; 4],
            frozen: vec![false; 4],
        };
        let err = bipartition_warm(
            &g,
            &w,
            &GdConfig::default(),
            &SplitTarget::half(0.1),
            &warm,
            0,
        );
        assert!(matches!(err, Err(PartitionError::DimensionMismatch { .. })));
    }

    #[test]
    fn infeasible_freeze_is_released_not_fatal() {
        // Freezing everything on one side would make the balance slab
        // unreachable; those freezes must be dropped, not crash.
        let g = gen::path(10);
        let w = VertexWeights::unit(10);
        let warm = WarmStart {
            x0: vec![1.0; 10],
            frozen: vec![true; 10],
        };
        let cfg = GdConfig {
            iterations: 20,
            ..GdConfig::with_epsilon(0.1)
        };
        let res = bipartition_warm(&g, &w, &cfg, &SplitTarget::half(0.1), &warm, 4).unwrap();
        let plus = res.signs.iter().filter(|&&s| s == 1).count();
        assert!(
            (4..=6).contains(&plus),
            "balance restored, got {plus} on +1 side"
        );
    }

    #[test]
    fn rejects_mismatched_weights() {
        let g = gen::path(5);
        let w = VertexWeights::unit(4);
        let err = bipartition(&g, &w, &GdConfig::default(), &SplitTarget::half(0.1), 0);
        assert!(matches!(err, Err(PartitionError::DimensionMismatch { .. })));
    }

    #[test]
    fn all_projection_methods_work_end_to_end() {
        use crate::config::ProjectionMethod::*;
        let g = gen::two_cliques(20, 2);
        let w = VertexWeights::vertex_edge(&g);
        for method in [OneShotAlternating, AlternatingConverged, Dykstra, Exact] {
            let cfg = GdConfig {
                iterations: 40,
                projection: method,
                ..GdConfig::with_epsilon(0.1)
            };
            let res = bipartition(&g, &w, &cfg, &SplitTarget::half(0.1), 6).unwrap();
            let (loc, imb) = quality(&g, &w, &res);
            assert!(loc > 0.8, "{method:?}: locality {loc}");
            assert!(imb < 0.12, "{method:?}: imbalance {imb}");
        }
    }
}
