//! The GD main loop (paper Algorithm 1 + the §3.2 implementation details).
//!
//! Per iteration: Gaussian noise (first iteration only by default), a
//! gradient ascent step `y = z + γ_t A z`, and a projection back onto the
//! feasible region. On top of the bare algorithm this module implements:
//!
//! * **adaptive step size** — γ_t chosen so the *realized* step
//!   `‖x(t+1) − x(t)‖₂` stays close to a constant target (`2·√n/I` by
//!   default), with bounded retries when the projection eats the step;
//! * **vertex fixing** — near-integral coordinates are frozen at ±1,
//!   removed from the active variable set and folded into the balance
//!   targets of the reduced region, keeping the gradient from being
//!   dominated by already-decided vertices;
//! * **delta-maintained gradients** — instead of recomputing `∇f = A z`
//!   with a full mat-vec every iteration, the gradient is kept current by
//!   propagating sparse `z[u] − z_prev[u]` diffs to neighbors
//!   ([`crate::matvec::matvec_delta`]), with a full recompute every
//!   [`GdConfig::grad_recompute_period`] iterations (and after any
//!   step-size retry) to bound floating-point drift. Warm-started iterates
//!   move little by design, so the diff sweep is far below `O(m)`;
//! * an **active frontier** — a free vertex that neither moved more than
//!   [`FRONTIER_TOL`] last iteration nor has a neighbor that did is
//!   *dormant*: it sits out the diff sweep, the gradient step and the
//!   projection (its weight mass is folded into the slab shift like a
//!   temporarily fixed vertex), and re-enters when a neighbor moves or at
//!   the next full recompute. An empty frontier ends the run early with
//!   [`GdExit::FrontierConverged`];
//! * a final run of alternating projections to convergence, followed by
//!   balanced randomized rounding.
//!
//! See `docs/ARCHITECTURE.md` for how the streaming engine drives this
//! loop through [`crate::recursive::GdPartitioner::refine_pair`].

use crate::config::{GdConfig, StepSchedule};
use crate::feasible::FeasibleRegion;
use crate::matvec::{delta_degree, expected_locality, matvec_delta, matvec_parallel};
use crate::noise::add_gaussian_noise;
use crate::projection::{alternating, project};
use crate::rounding::round_balanced;
use mdbgp_graph::{Graph, PartitionError, VertexWeights};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The bipartition target: part `V_1` (sign +1) should receive `fraction`
/// of every weight dimension, within relative tolerance `epsilon`.
///
/// In the ±1 formulation `⟨w, x⟩ = w(V_1) − w(V_2)`, so the slab for
/// dimension `j` has centre `(2·fraction − 1)·w(V)` and half-width
/// `2·min(fraction, 1 − fraction)·ε·w(V)` (both parts must stay within
/// `(1 ± ε)` of their share — the tighter of the two constraints wins).
#[derive(Clone, Copy, Debug)]
pub struct SplitTarget {
    pub fraction: f64,
    pub epsilon: f64,
}

impl SplitTarget {
    /// Even split, the paper's standard setting.
    pub fn half(epsilon: f64) -> Self {
        Self {
            fraction: 0.5,
            epsilon,
        }
    }

    /// Uneven split for recursive partitioning into non-power-of-two `k`.
    pub fn new(fraction: f64, epsilon: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "fraction must be in (0, 1)"
        );
        assert!(epsilon >= 0.0);
        Self { fraction, epsilon }
    }

    /// Slab centre for a dimension with total weight `total`.
    pub fn center(&self, total: f64) -> f64 {
        (2.0 * self.fraction - 1.0) * total
    }

    /// Slab half-width for a dimension with total weight `total`.
    pub fn halfwidth(&self, total: f64) -> f64 {
        2.0 * self.fraction.min(1.0 - self.fraction) * self.epsilon * total
    }

    /// Builds the feasible region for `weights` under this target.
    pub fn region(&self, weights: &VertexWeights) -> FeasibleRegion {
        let w: Vec<Vec<f64>> = (0..weights.dims())
            .map(|j| weights.dim(j).to_vec())
            .collect();
        let centers = (0..weights.dims())
            .map(|j| self.center(weights.total(j)))
            .collect();
        let halfwidths = (0..weights.dims())
            .map(|j| self.halfwidth(weights.total(j)))
            .collect();
        FeasibleRegion::new(w, centers, halfwidths)
    }
}

/// Per-iteration telemetry (Figures 8–10 plot these curves).
#[derive(Clone, Debug)]
pub struct IterationRecord {
    pub iteration: usize,
    /// Expected edge locality of the current fractional iterate.
    pub expected_locality: f64,
    /// `max_j |⟨w_j, x⟩ − c_j| / w_j(V)` — the fractional analogue of the
    /// partition imbalance.
    pub fractional_imbalance: f64,
    /// Realized step `‖x(t+1) − x(t)‖₂`.
    pub step_length: f64,
    /// Gradient multiplier γ_t used this iteration.
    pub gamma: f64,
    /// Number of vertices fixed at ±1 so far.
    pub fixed_vertices: usize,
}

/// Why a GD run stopped iterating.
///
/// # Example
///
/// A warm start that freezes every vertex leaves nothing to optimize —
/// the run exits immediately and returns the input assignment:
///
/// ```
/// use mdbgp_core::{bipartition_warm, GdConfig, GdExit, SplitTarget, WarmStart};
/// use mdbgp_graph::{gen, VertexWeights};
///
/// let g = gen::two_cliques(10, 1);
/// let w = VertexWeights::vertex_edge(&g);
/// let signs: Vec<i8> = (0..20).map(|v| if v < 10 { 1 } else { -1 }).collect();
/// let warm = WarmStart::from_signs(&signs, vec![true; 20]); // all frozen
///
/// let res = bipartition_warm(
///     &g, &w, &GdConfig::with_epsilon(0.05), &SplitTarget::half(0.05), &warm, 1,
/// ).unwrap();
/// assert_eq!(res.stats.exit, GdExit::FullyFrozen);
/// assert_eq!(res.signs, signs);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GdExit {
    /// The configured iteration budget ran out.
    #[default]
    IterationBudget,
    /// The warm start froze every vertex — there was nothing to optimize.
    FullyFrozen,
    /// Vertex fixing drove the whole iterate integral before the budget.
    FullyIntegral,
    /// The active frontier drained: no free vertex moved more than
    /// [`FRONTIER_TOL`] last iteration (and none saw a neighbor move), so
    /// further iterations would be no-ops. The common exit for a
    /// warm-started refinement of an already-settled region.
    FrontierConverged,
}

/// Movement threshold for frontier membership: a free vertex whose
/// realized step stays at or below this (and whose neighbors all do too)
/// is dormant next iteration. Sub-tolerance moves are still propagated
/// into the maintained gradient bit-exactly — the tolerance governs only
/// who gets *stepped*, never gradient correctness.
pub const FRONTIER_TOL: f64 = 1e-6;

/// Length cap of the [`GdRunStats::grad_norms`] trace.
pub const GRAD_TRACE_CAP: usize = 64;

/// Convergence trace of one GD run — always collected (cheap: one norm per
/// iteration, already computed for the step schedule), so the observability
/// layer can report iteration-count histograms and gradient-norm decay
/// without `track_history`'s per-iteration locality scans.
///
/// # Example
///
/// Every executed gradient evaluation is either a full mat-vec or a
/// sparse diff sweep, iteration 0 is always full, and the gradient-norm
/// trace never outgrows its cap:
///
/// ```
/// use mdbgp_core::{bipartition_warm, GdConfig, SplitTarget, WarmStart, GRAD_TRACE_CAP};
/// use mdbgp_graph::{gen, VertexWeights};
///
/// let g = gen::two_cliques(20, 2);
/// let w = VertexWeights::vertex_edge(&g);
/// let mut signs: Vec<i8> = (0..40).map(|v| if v < 20 { 1 } else { -1 }).collect();
/// (signs[3], signs[23]) = (-1, 1); // two strays to heal
/// let warm = WarmStart::from_signs(&signs, vec![false; 40]);
///
/// let res = bipartition_warm(
///     &g, &w, &GdConfig::with_epsilon(0.05), &SplitTarget::half(0.05), &warm, 2,
/// ).unwrap();
/// let s = &res.stats;
/// assert!(s.full_recomputes >= 1, "iteration 0 always pays a full mat-vec");
/// assert!(s.full_recomputes + s.delta_iterations >= s.iterations);
/// assert!(s.grad_norms.len() <= GRAD_TRACE_CAP);
/// assert!(s.frontier_peak * s.iterations >= s.frontier_sum);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GdRunStats {
    /// Gradient iterations actually executed.
    pub iterations: usize,
    /// Decimated `‖∇f‖₂` trace over the active frontier.
    ///
    /// **Contract:** at most [`GRAD_TRACE_CAP`] entries, in iteration
    /// order. The first entry is always iteration 0's norm and the last
    /// entry is always the final executed iteration's norm; the middle is
    /// thinned to every `2^k`-th iteration once a run outgrows the cap
    /// (long refines used to grow this vector unboundedly). Consumers may
    /// rely on `first()`/`last()` but not on a 1:1 iteration mapping.
    pub grad_norms: Vec<f64>,
    /// Why the run stopped.
    pub exit: GdExit,
    /// Full `A·z` mat-vec evaluations (iteration 0, every
    /// [`GdConfig::grad_recompute_period`]-th iteration, after a step
    /// retry, and whenever the pending diffs are too dense for the delta
    /// path to win).
    pub full_recomputes: usize,
    /// Iterations served by the sparse diff sweep instead of a full
    /// mat-vec. `full_recomputes + delta_iterations` counts every executed
    /// gradient evaluation.
    pub delta_iterations: usize,
    /// Sum of per-iteration frontier sizes (`frontier_sum / iterations` is
    /// the mean active-vertex count — the observability layer's
    /// frontier-size histogram feed).
    pub frontier_sum: usize,
    /// Largest per-iteration frontier.
    pub frontier_peak: usize,
    /// Worst absolute deviation between the delta-maintained gradient and
    /// a full recompute, measured only when [`GdConfig::grad_check`] is on
    /// (0.0 otherwise). The equivalence harness pins this below `1e-9`.
    pub grad_drift_max: f64,
}

/// Streaming decimator behind the [`GdRunStats::grad_norms`] contract:
/// samples every `2^k`-th iteration, doubling `k` whenever the buffer
/// would outgrow [`GRAD_TRACE_CAP`] (halving it by dropping odd-index
/// samples — index 0 survives every halving), and splices the final norm
/// back in at `finish` so `last()` is always the last executed iteration.
struct GradTrace {
    samples: Vec<f64>,
    stride: usize,
    count: usize,
    last: f64,
}

impl GradTrace {
    fn new() -> Self {
        Self {
            samples: Vec::new(),
            stride: 1,
            count: 0,
            last: 0.0,
        }
    }

    fn push(&mut self, norm: f64) {
        self.last = norm;
        if self.count.is_multiple_of(self.stride) {
            if self.samples.len() == GRAD_TRACE_CAP {
                let mut i = 0usize;
                self.samples.retain(|_| {
                    let keep = i.is_multiple_of(2);
                    i += 1;
                    keep
                });
                self.stride *= 2;
            }
            if self.count.is_multiple_of(self.stride) {
                self.samples.push(norm);
            }
        }
        self.count += 1;
    }

    fn finish(mut self) -> Vec<f64> {
        if self.count > 0 && self.samples.last().copied() != Some(self.last) {
            if self.samples.len() >= GRAD_TRACE_CAP {
                self.samples.pop();
            }
            self.samples.push(self.last);
        }
        self.samples
    }
}

/// Reusable iterate storage for the GD loop — a flat SoA layout (one
/// `Vec` per quantity, indexed by vertex) that callers running many
/// warm-started solves can allocate once and pass to
/// [`bipartition_warm_with`] /
/// [`GdPartitioner::refine_pair_with`](crate::recursive::GdPartitioner::refine_pair_with),
/// instead of paying a fresh set of `O(n)` allocations per pair per
/// round. The streaming engine keeps one workspace per worker thread and
/// reuses them across disjoint refine rounds and batches.
///
/// A workspace carries no results between calls — every buffer is
/// (re)initialized at the start of a run, so reusing one is behaviorally
/// identical to passing a fresh `GdWorkspace::default()`.
#[derive(Debug, Default)]
pub struct GdWorkspace {
    /// Current iterate `x`.
    x: Vec<f64>,
    /// Step input `z = x (+ noise)`.
    z: Vec<f64>,
    /// The point the maintained gradient was last evaluated at.
    z_prev: Vec<f64>,
    /// Maintained gradient `A·z_prev`.
    grad: Vec<f64>,
    /// Scratch for [`GdConfig::grad_check`] full recomputes.
    check_grad: Vec<f64>,
    /// Per-free-vertex Gaussian noise scratch.
    noise: Vec<f64>,
    /// Active frontier of this iteration (subset of the free list).
    frontier: Vec<u32>,
    /// Vertices fixed since the last gradient evaluation — their snap to
    /// ±1 still needs diff propagation even though they left the free
    /// list.
    recently_fixed: Vec<u32>,
    /// Per-vertex iteration stamp: `touched[v] == stamp` marks frontier
    /// membership without clearing an array per iteration.
    touched: Vec<u32>,
    /// `Σ_{v free} w_j(v)·x[v]` per dimension, maintained incrementally
    /// (recomputed exactly at every full gradient recompute).
    free_dot: Vec<f64>,
    /// Slab-shift scratch for frontier-restricted projection.
    shift: Vec<f64>,
}

impl GdWorkspace {
    /// An empty workspace; buffers grow to the problem size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, n: usize, dims: usize) {
        self.x.clear();
        self.x.resize(n, 0.0);
        self.z.clear();
        self.z.resize(n, 0.0);
        self.z_prev.clear();
        self.z_prev.resize(n, 0.0);
        self.grad.clear();
        self.grad.resize(n, 0.0);
        self.frontier.clear();
        self.recently_fixed.clear();
        self.touched.clear();
        self.touched.resize(n, 0);
        self.free_dot.clear();
        self.free_dot.resize(dims, 0.0);
        self.shift.clear();
        self.shift.resize(dims, 0.0);
    }
}

/// Output of one GD bipartition run.
///
/// # Example
///
/// ```
/// use mdbgp_core::{bipartition, GdConfig, SplitTarget};
/// use mdbgp_graph::{gen, VertexWeights};
///
/// let g = gen::two_cliques(15, 1);
/// let w = VertexWeights::vertex_edge(&g);
/// let res = bipartition(
///     &g, &w, &GdConfig::with_epsilon(0.05), &SplitTarget::half(0.05), 42,
/// ).unwrap();
///
/// assert!(res.signs.iter().all(|&s| s == 1 || s == -1));
/// assert_eq!(res.x.len(), res.signs.len()); // fractional iterate, pre-rounding
/// assert!(res.violation < 1e-9, "ε-balanced");
/// assert!(res.history.is_empty(), "per-iteration records need track_history");
/// ```
#[derive(Clone, Debug)]
pub struct BipartitionResult {
    /// ±1 assignment (`+1 → V_1`).
    pub signs: Vec<i8>,
    /// Final fractional iterate (before rounding).
    pub x: Vec<f64>,
    /// Per-iteration records (empty unless `config.track_history`).
    pub history: Vec<IterationRecord>,
    /// Normalized balance violation of `signs` (0.0 = ε-balanced).
    pub violation: f64,
    /// Convergence trace (iteration count, gradient norms, exit reason).
    pub stats: GdRunStats,
}

/// State of the active-variable bookkeeping for vertex fixing.
struct ActiveSet {
    /// `free[i]` — original index of reduced variable `i`.
    free: Vec<u32>,
    /// Fixed flag per original vertex.
    fixed: Vec<bool>,
    /// `Σ_{fixed i} w_j(i)·x_i` per dimension.
    fixed_dot: Vec<f64>,
    /// `Σ_{free i} w_j(i)` per dimension.
    free_total: Vec<f64>,
}

impl ActiveSet {
    fn new(n: usize, region: &FeasibleRegion) -> Self {
        Self {
            free: (0..n as u32).collect(),
            fixed: vec![false; n],
            fixed_dot: vec![0.0; region.dims()],
            free_total: (0..region.dims()).map(|j| region.total(j)).collect(),
        }
    }

    fn num_fixed(&self) -> usize {
        self.fixed.len() - self.free.len()
    }

    /// Attempts to fix vertex `v` at `sign`, keeping every reduced slab
    /// reachable. Returns whether the vertex was fixed.
    fn try_fix(&mut self, v: u32, sign: f64, region: &FeasibleRegion) -> bool {
        debug_assert!(!self.fixed[v as usize]);
        let d = region.dims();
        for j in 0..d {
            let w = region.weight(j)[v as usize];
            let new_dot = self.fixed_dot[j] + w * sign;
            let new_total = self.free_total[j] - w;
            let lo = region.lower(j) - new_dot;
            let hi = region.upper(j) - new_dot;
            // The free variables can realize any value in [−new_total,
            // new_total]; the shifted slab must intersect it.
            if lo > new_total + 1e-12 || hi < -new_total - 1e-12 {
                return false;
            }
        }
        self.fixed[v as usize] = true;
        for j in 0..d {
            let w = region.weight(j)[v as usize];
            self.fixed_dot[j] += w * sign;
            self.free_total[j] -= w;
        }
        true
    }

    /// Rebuilds the free-index list after fixing.
    fn rebuild_free(&mut self) {
        self.free = (0..self.fixed.len() as u32)
            .filter(|&v| !self.fixed[v as usize])
            .collect();
    }
}

/// Warm-start specification for incremental refinement (see
/// [`bipartition_warm`] and `mdbgp-stream`).
///
/// # Example
///
/// Heal a planted bipartition that a stream of updates has perturbed:
/// start from the current ±1 assignment with nothing frozen, and GD
/// pulls the strays back in a handful of cheap delta iterations:
///
/// ```
/// use mdbgp_core::{bipartition_warm, GdConfig, SplitTarget, WarmStart};
/// use mdbgp_graph::{gen, VertexWeights};
///
/// let g = gen::two_cliques(20, 2);
/// let w = VertexWeights::vertex_edge(&g);
/// let planted: Vec<i8> = (0..40).map(|v| if v < 20 { 1 } else { -1 }).collect();
/// let mut drifted = planted.clone();
/// (drifted[3], drifted[23]) = (-1, 1); // one stray on each side
/// let warm = WarmStart::from_signs(&drifted, vec![false; 40]);
///
/// let res = bipartition_warm(
///     &g, &w, &GdConfig::with_epsilon(0.05), &SplitTarget::half(0.05), &warm, 3,
/// ).unwrap();
/// assert_eq!(res.signs, planted, "both strays pulled home");
/// ```
#[derive(Clone, Debug, Default)]
pub struct WarmStart {
    /// Initial fractional iterate, length `n`, entries clamped to `[-1, 1]`.
    /// For refinement of an existing bipartition, pass the ±1 encoding of
    /// the current assignment.
    pub x0: Vec<f64>,
    /// Vertices frozen at `sign(x0[v])`: they are fixed before the first
    /// iteration and leave the active variable set, so gradient work scales
    /// with the *free* vertices only. A frozen vertex whose fixation would
    /// make the balance slabs unreachable is silently left free (same rule
    /// as in-loop vertex fixing).
    pub frozen: Vec<bool>,
}

impl WarmStart {
    /// Warm start from a ±1 assignment with an explicit frozen mask.
    pub fn from_signs(signs: &[i8], frozen: Vec<bool>) -> Self {
        assert_eq!(signs.len(), frozen.len());
        Self {
            x0: signs.iter().map(|&s| s as f64).collect(),
            frozen,
        }
    }
}

/// Runs GD on `graph` with the given split target, producing a ±1
/// assignment. This is the inner engine; use
/// [`crate::recursive::GdPartitioner`] for the full k-way API.
pub fn bipartition(
    graph: &Graph,
    weights: &VertexWeights,
    config: &GdConfig,
    target: &SplitTarget,
    seed: u64,
) -> Result<BipartitionResult, PartitionError> {
    bipartition_impl(
        graph,
        weights,
        config,
        target,
        seed,
        None,
        &mut GdWorkspace::default(),
    )
}

/// [`bipartition`] warm-started from an existing (partial) solution: the
/// iterate starts at `warm.x0` instead of the origin and `warm.frozen`
/// vertices are fixed up front. This is the core primitive behind
/// incremental repartitioning — a small batch of graph updates is absorbed
/// by a few cheap iterations over the unfrozen vertices instead of a full
/// solve (no iteration-0 noise is added: a non-zero warm start is already
/// away from the saddle at the origin).
pub fn bipartition_warm(
    graph: &Graph,
    weights: &VertexWeights,
    config: &GdConfig,
    target: &SplitTarget,
    warm: &WarmStart,
    seed: u64,
) -> Result<BipartitionResult, PartitionError> {
    bipartition_impl(
        graph,
        weights,
        config,
        target,
        seed,
        Some(warm),
        &mut GdWorkspace::default(),
    )
}

/// [`bipartition_warm`] with caller-provided iterate storage: identical
/// output, but the `O(n)` working vectors live in `ws` and are reused
/// across calls instead of being reallocated. The streaming engine's
/// refine stage calls this once per pair per round with a per-worker
/// workspace.
pub fn bipartition_warm_with(
    ws: &mut GdWorkspace,
    graph: &Graph,
    weights: &VertexWeights,
    config: &GdConfig,
    target: &SplitTarget,
    warm: &WarmStart,
    seed: u64,
) -> Result<BipartitionResult, PartitionError> {
    bipartition_impl(graph, weights, config, target, seed, Some(warm), ws)
}

fn bipartition_impl(
    graph: &Graph,
    weights: &VertexWeights,
    config: &GdConfig,
    target: &SplitTarget,
    seed: u64,
    warm: Option<&WarmStart>,
    ws: &mut GdWorkspace,
) -> Result<BipartitionResult, PartitionError> {
    config.validate().map_err(PartitionError::Config)?;
    let n = graph.num_vertices();
    if weights.num_vertices() != n {
        return Err(PartitionError::DimensionMismatch {
            weights_n: weights.num_vertices(),
            graph_n: n,
        });
    }
    if n == 0 {
        return Ok(BipartitionResult {
            signs: Vec::new(),
            x: Vec::new(),
            history: Vec::new(),
            violation: 0.0,
            stats: GdRunStats {
                exit: GdExit::FullyFrozen,
                ..GdRunStats::default()
            },
        });
    }

    let region = target.region(weights);
    if !region.per_dim_feasible() {
        return Err(PartitionError::Infeasible(
            "balance slab unreachable for some weight dimension".into(),
        ));
    }
    let dims = region.dims();
    ws.reset(n, dims);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut active = ActiveSet::new(n, &region);
    let mut warm_started = false;
    if let Some(w) = warm {
        if w.x0.len() != n || w.frozen.len() != n {
            return Err(PartitionError::DimensionMismatch {
                weights_n: w.x0.len(),
                graph_n: n,
            });
        }
        for (xi, &x0i) in ws.x.iter_mut().zip(&w.x0) {
            *xi = x0i.clamp(-1.0, 1.0);
        }
        warm_started = ws.x.iter().any(|&v| v != 0.0);
        // Freeze the most decided vertices first so marginal ones are the
        // ones left free when fixing everything would be infeasible.
        let mut to_freeze: Vec<u32> = (0..n as u32).filter(|&v| w.frozen[v as usize]).collect();
        to_freeze.sort_by(|&a, &b| {
            ws.x[b as usize]
                .abs()
                .partial_cmp(&ws.x[a as usize].abs())
                .unwrap()
        });
        for v in to_freeze {
            let sign = if ws.x[v as usize] >= 0.0 { 1.0 } else { -1.0 };
            if active.try_fix(v, sign, &region) {
                ws.x[v as usize] = sign;
            }
        }
        active.rebuild_free();
    }
    let mut reduced = region.restrict(&active.free, &active.fixed_dot);
    let mut history = Vec::new();
    let mut stats = GdRunStats::default();
    let mut trace = GradTrace::new();

    let target_len_full = config.step.target_length(n, config.iterations);
    let entries = graph.raw_offsets()[n];
    // Delta-gradient state: `ws.grad` mirrors `A·ws.z_prev` once
    // `grad_ready`; `force_full` re-syncs after a step retry perturbed the
    // iterate harder than the schedule expected.
    let mut grad_ready = false;
    let mut force_full = false;
    let mut since_full = 0usize;
    let mut stamp: u32 = 0;

    for t in 0..config.iterations {
        if active.free.is_empty() {
            stats.exit = GdExit::FullyFrozen; // fully frozen warm start
            break;
        }
        // --- Step 1: noise (escapes the saddle at x = 0; a warm start is
        // already away from the origin, so it gets none). ---
        let std = if t == 0 && warm_started {
            0.0
        } else {
            config.noise.std_at(t)
        };
        ws.z.copy_from_slice(&ws.x);
        if std > 0.0 {
            // Perturb only free coordinates so fixed vertices stay integral.
            ws.noise.clear();
            ws.noise.resize(active.free.len(), 0.0);
            add_gaussian_noise(&mut ws.noise, std, &mut rng);
            for (slot, &v) in ws.noise.iter().zip(&active.free) {
                ws.z[v as usize] += slot;
            }
        }

        // --- Step 2: gradient ∇f(z) = A z, delta-maintained. A full
        // mat-vec runs on the first iteration, on the recompute cadence,
        // after a step retry, and whenever the pending diffs touch enough
        // edges that the sparse sweep would not beat the dense kernel
        // (scatter writes cost more per edge than row-major reads).
        // Otherwise the gradient advances by propagating `z − z_prev`
        // diffs from free movers and from vertices fixed since the last
        // evaluation (their snap to ±1 moved `z` too). ---
        stamp = stamp.wrapping_add(1);
        let full = !grad_ready || force_full || since_full + 1 >= config.grad_recompute_period || {
            let pending = delta_degree(graph, &ws.z, &ws.z_prev, &active.free)
                + delta_degree(graph, &ws.z, &ws.z_prev, &ws.recently_fixed);
            2 * pending >= entries
        };
        if full {
            matvec_parallel(graph, &ws.z, &mut ws.grad, config.threads);
            ws.z_prev.copy_from_slice(&ws.z);
            // Re-anchor the incrementally maintained free-mass dots so
            // their floating-point drift resets along with the gradient's.
            for j in 0..dims {
                let w = region.weight(j);
                ws.free_dot[j] = active
                    .free
                    .iter()
                    .map(|&v| w[v as usize] * ws.x[v as usize])
                    .sum();
            }
            grad_ready = true;
            since_full = 0;
            stats.full_recomputes += 1;
        } else {
            matvec_delta(
                graph,
                &ws.z,
                &mut ws.z_prev,
                &active.free,
                &mut ws.grad,
                FRONTIER_TOL,
                stamp,
                &mut ws.touched,
            );
            matvec_delta(
                graph,
                &ws.z,
                &mut ws.z_prev,
                &ws.recently_fixed,
                &mut ws.grad,
                FRONTIER_TOL,
                stamp,
                &mut ws.touched,
            );
            since_full += 1;
            stats.delta_iterations += 1;
        }
        ws.recently_fixed.clear();
        if config.grad_check {
            ws.check_grad.clear();
            ws.check_grad.resize(n, 0.0);
            matvec_parallel(graph, &ws.z, &mut ws.check_grad, config.threads);
            let drift = ws
                .grad
                .iter()
                .zip(&ws.check_grad)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            stats.grad_drift_max = stats.grad_drift_max.max(drift);
        }

        // --- Active frontier: a full recompute wakes every free vertex;
        // a delta iteration steps only last step's movers and their
        // neighbors (everyone else's gradient coordinate and iterate are
        // both unchanged, so stepping them would be a no-op). ---
        ws.frontier.clear();
        if full {
            ws.frontier.extend_from_slice(&active.free);
        } else {
            let (frontier, touched) = (&mut ws.frontier, &ws.touched);
            frontier.extend(
                active
                    .free
                    .iter()
                    .copied()
                    .filter(|&v| touched[v as usize] == stamp),
            );
        }
        if ws.frontier.is_empty() {
            stats.exit = GdExit::FrontierConverged;
            break;
        }
        stats.frontier_sum += ws.frontier.len();
        stats.frontier_peak = stats.frontier_peak.max(ws.frontier.len());

        let grad_front_norm: f64 = ws
            .frontier
            .iter()
            .map(|&v| ws.grad[v as usize] * ws.grad[v as usize])
            .sum::<f64>()
            .sqrt();
        stats.iterations = t + 1;
        trace.push(grad_front_norm);

        // Frontier-restricted region: dormant free vertices hold their
        // position, so their weight mass folds into the slab shift exactly
        // like fixed vertices — global balance stays exact.
        let front_restricted;
        let front_region = if ws.frontier.len() == active.free.len() {
            &reduced
        } else {
            for j in 0..dims {
                let w = region.weight(j);
                let front_dot: f64 = ws
                    .frontier
                    .iter()
                    .map(|&v| w[v as usize] * ws.x[v as usize])
                    .sum();
                ws.shift[j] = active.fixed_dot[j] + (ws.free_dot[j] - front_dot);
            }
            front_restricted = region.restrict(&ws.frontier, &ws.shift);
            &front_restricted
        };

        // Active-subspace step-length target: can't move farther than the
        // diameter of the remaining cube.
        let cap = 2.0 * (ws.frontier.len() as f64).sqrt();
        let step_target = target_len_full.map(|l| l.min(cap));

        let mut gamma = match config.step {
            StepSchedule::Constant { gamma } => gamma,
            StepSchedule::FixedLength { .. } => {
                let t_len = step_target.unwrap();
                if grad_front_norm > 1e-30 {
                    t_len / grad_front_norm
                } else {
                    1.0
                }
            }
        };

        // --- Step 3: projection, with adaptive retries (§3.2): if the
        // projection swallowed the step, enlarge γ and retry. ---
        let mut x_new_front: Vec<f64>;
        let mut step_len: f64;
        let mut retries = 0;
        loop {
            let y_front: Vec<f64> = ws
                .frontier
                .iter()
                .map(|&v| ws.z[v as usize] + gamma * ws.grad[v as usize])
                .collect();
            x_new_front = project(config.projection, &y_front, front_region);
            step_len = ws
                .frontier
                .iter()
                .zip(&x_new_front)
                .map(|(&v, &nv)| {
                    let dv = nv - ws.x[v as usize];
                    dv * dv
                })
                .sum::<f64>()
                .sqrt();
            match step_target {
                Some(t_len) if step_len < 0.5 * t_len && retries < 3 && grad_front_norm > 1e-30 => {
                    gamma *= (t_len / step_len.max(t_len / 16.0)).min(8.0);
                    retries += 1;
                }
                _ => break,
            }
        }
        // A retry means the realized step disagreed with the schedule —
        // re-sync the gradient next iteration rather than trusting drift.
        // A literally zero step needs no re-sync (z is unchanged), and
        // skipping it lets a settled iterate drain its frontier instead of
        // being re-woken by its own no-op retries.
        force_full = retries > 0 && step_len > 0.0;
        for (&v, &nv) in ws.frontier.iter().zip(&x_new_front) {
            let old = ws.x[v as usize];
            if nv != old {
                for j in 0..dims {
                    ws.free_dot[j] += region.weight(j)[v as usize] * (nv - old);
                }
                ws.x[v as usize] = nv;
            }
        }

        // --- Vertex fixing (§3.2). Only frontier vertices can have moved
        // across the threshold this iteration. ---
        let mut fixed_any = false;
        if let Some(threshold) = config.fixing_threshold {
            // Walk candidates in decreasing |x| so the most decided
            // vertices are locked first.
            let mut candidates: Vec<u32> = ws
                .frontier
                .iter()
                .copied()
                .filter(|&v| ws.x[v as usize].abs() >= threshold)
                .collect();
            candidates.sort_by(|&a, &b| {
                ws.x[b as usize]
                    .abs()
                    .partial_cmp(&ws.x[a as usize].abs())
                    .unwrap()
            });
            for v in candidates {
                let sign = if ws.x[v as usize] >= 0.0 { 1.0 } else { -1.0 };
                if active.try_fix(v, sign, &region) {
                    for j in 0..dims {
                        ws.free_dot[j] -= region.weight(j)[v as usize] * ws.x[v as usize];
                    }
                    ws.x[v as usize] = sign;
                    // The snap from x to ±1 changes z next iteration; keep
                    // the vertex in the diff sweep once more even though it
                    // left the free list.
                    ws.recently_fixed.push(v);
                    fixed_any = true;
                }
            }
        }
        if fixed_any {
            active.rebuild_free();
            reduced = region.restrict(&active.free, &active.fixed_dot);
        }

        if config.track_history {
            let frac_imb = (0..region.dims())
                .map(|j| (region.dot(j, &ws.x) - region.center(j)).abs() / region.total(j))
                .fold(0.0, f64::max);
            history.push(IterationRecord {
                iteration: t,
                expected_locality: expected_locality(graph, &ws.x),
                fractional_imbalance: frac_imb,
                step_length: step_len,
                gamma,
                fixed_vertices: active.num_fixed(),
            });
        }

        if active.free.is_empty() {
            stats.exit = GdExit::FullyIntegral;
            break;
        }
    }
    stats.grad_norms = trace.finish();

    // Final feasibility clean-up on the free variables (paper §3.1: "in the
    // last iterations we run the alternating projections method until
    // convergence").
    if !active.free.is_empty() {
        let x_free: Vec<f64> = active.free.iter().map(|&v| ws.x[v as usize]).collect();
        let cleaned = alternating::project_converged(
            &x_free,
            &reduced,
            config.final_projection_passes,
            crate::projection::FEASIBILITY_TOL,
        );
        for (&v, &nv) in active.free.iter().zip(&cleaned) {
            ws.x[v as usize] = nv;
        }
    }

    // Randomized rounding + balance repair.
    let (signs, violation) = round_balanced(&ws.x, &region, config.rounding_attempts, &mut rng);
    Ok(BipartitionResult {
        signs,
        x: ws.x.clone(),
        history,
        violation,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::gen;
    use mdbgp_graph::Partition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quality(graph: &Graph, weights: &VertexWeights, res: &BipartitionResult) -> (f64, f64) {
        let p = Partition::from_signs(&res.signs);
        (p.edge_locality(graph), p.max_imbalance(weights))
    }

    #[test]
    fn splits_two_cliques_perfectly() {
        let g = gen::two_cliques(40, 2);
        let w = VertexWeights::vertex_edge(&g);
        let cfg = GdConfig {
            iterations: 60,
            ..GdConfig::with_epsilon(0.05)
        };
        let res = bipartition(&g, &w, &cfg, &SplitTarget::half(0.05), 1).unwrap();
        let (loc, imb) = quality(&g, &w, &res);
        let m = g.num_edges() as f64;
        assert!(
            loc >= (m - 2.0) / m - 1e-9,
            "only the bridges may be cut, locality {loc}"
        );
        assert!(imb <= 0.05 + 1e-9, "imbalance {imb}");
    }

    #[test]
    fn respects_two_dimensional_balance_on_skewed_graph() {
        // A hub-heavy graph: unit balance alone would allow degree skew.
        let mut rng = StdRng::seed_from_u64(3);
        let degrees = gen::power_law_sequence(600, 2.2, 2.0, 120.0, &mut rng);
        let g = gen::chung_lu(&degrees, &mut rng);
        let w = VertexWeights::vertex_edge(&g);
        let cfg = GdConfig {
            iterations: 80,
            ..GdConfig::with_epsilon(0.05)
        };
        let res = bipartition(&g, &w, &cfg, &SplitTarget::half(0.05), 9).unwrap();
        let p = Partition::from_signs(&res.signs);
        let imb = p.imbalance(&w);
        assert!(imb[0] <= 0.06, "vertex imbalance {}", imb[0]);
        assert!(imb[1] <= 0.06, "degree imbalance {}", imb[1]);
    }

    #[test]
    fn beats_random_split_on_community_graph() {
        let cfg_g = gen::CommunityGraphConfig::social(1200);
        let cg = gen::community_graph(&cfg_g, &mut StdRng::seed_from_u64(4));
        let w = VertexWeights::vertex_edge(&cg.graph);
        let cfg = GdConfig {
            iterations: 80,
            ..GdConfig::with_epsilon(0.05)
        };
        let res = bipartition(&cg.graph, &w, &cfg, &SplitTarget::half(0.05), 11).unwrap();
        let (loc, imb) = quality(&cg.graph, &w, &res);
        assert!(
            loc > 0.62,
            "expected well above the 50% of a random split, got {loc}"
        );
        assert!(imb <= 0.06, "imbalance {imb}");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gen::two_cliques(20, 3);
        let w = VertexWeights::unit(40);
        let cfg = GdConfig {
            iterations: 30,
            ..GdConfig::with_epsilon(0.1)
        };
        let a = bipartition(&g, &w, &cfg, &SplitTarget::half(0.1), 5).unwrap();
        let b = bipartition(&g, &w, &cfg, &SplitTarget::half(0.1), 5).unwrap();
        assert_eq!(a.signs, b.signs);
    }

    #[test]
    fn history_is_recorded_and_improves() {
        let g = gen::two_cliques(30, 1);
        let w = VertexWeights::unit(60);
        let cfg = GdConfig {
            iterations: 50,
            track_history: true,
            ..GdConfig::with_epsilon(0.05)
        };
        let res = bipartition(&g, &w, &cfg, &SplitTarget::half(0.05), 2).unwrap();
        assert!(!res.history.is_empty());
        let first = res.history.first().unwrap().expected_locality;
        let last = res.history.last().unwrap().expected_locality;
        assert!(last > first, "locality should improve: {first} -> {last}");
        assert!(last > 0.9);
    }

    #[test]
    fn uneven_split_target_honored() {
        // 2:1 split of a cycle.
        let g = gen::cycle(300);
        let w = VertexWeights::unit(300);
        let cfg = GdConfig {
            iterations: 60,
            ..GdConfig::with_epsilon(0.04)
        };
        let t = SplitTarget::new(2.0 / 3.0, 0.04);
        let res = bipartition(&g, &w, &cfg, &t, 8).unwrap();
        let plus = res.signs.iter().filter(|&&s| s == 1).count() as f64;
        assert!(
            (plus / 300.0 - 2.0 / 3.0).abs() < 0.04 + 0.01,
            "share {}",
            plus / 300.0
        );
    }

    #[test]
    fn vertex_fixing_freezes_monotonically() {
        let g = gen::two_cliques(25, 1);
        let w = VertexWeights::unit(50);
        let cfg = GdConfig {
            iterations: 60,
            track_history: true,
            ..GdConfig::with_epsilon(0.05)
        };
        let res = bipartition(&g, &w, &cfg, &SplitTarget::half(0.05), 3).unwrap();
        let mut prev = 0usize;
        for rec in &res.history {
            assert!(rec.fixed_vertices >= prev, "fixing must be monotone");
            prev = rec.fixed_vertices;
        }
        assert!(
            prev > 0,
            "some vertices should be fixed on an easy instance"
        );
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Graph::empty(0);
        let w = VertexWeights::from_vectors(vec![Vec::new()]);
        // from_vectors rejects empty? unit weights of zero length:
        let res = bipartition(&g, &w, &GdConfig::default(), &SplitTarget::half(0.1), 0);
        assert!(res.is_ok());
        assert!(res.unwrap().signs.is_empty());
    }

    #[test]
    fn warm_start_preserves_frozen_vertices() {
        let g = gen::two_cliques(30, 2);
        let w = VertexWeights::vertex_edge(&g);
        let cfg = GdConfig {
            iterations: 15,
            ..GdConfig::with_epsilon(0.05)
        };
        // Start from the planted split and freeze the first clique entirely.
        let signs: Vec<i8> = (0..60).map(|v| if v < 30 { 1 } else { -1 }).collect();
        let frozen: Vec<bool> = (0..60).map(|v| v < 30).collect();
        let warm = WarmStart::from_signs(&signs, frozen);
        let res = bipartition_warm(&g, &w, &cfg, &SplitTarget::half(0.05), &warm, 1).unwrap();
        for v in 0..30 {
            assert_eq!(res.signs[v], 1, "frozen vertex {v} moved");
        }
        let (loc, imb) = quality(&g, &w, &res);
        assert!(
            loc > 0.9,
            "warm start should keep the planted split, locality {loc}"
        );
        assert!(imb <= 0.05 + 1e-9, "imbalance {imb}");
    }

    #[test]
    fn warm_start_fixes_a_perturbed_solution_in_few_iterations() {
        // Plant the optimum, flip a handful of vertices, and check that a
        // handful of warm iterations recovers it — the incremental-
        // refinement workload of mdbgp-stream.
        let g = gen::two_cliques(40, 2);
        let w = VertexWeights::vertex_edge(&g);
        let mut signs: Vec<i8> = (0..80).map(|v| if v < 40 { 1 } else { -1 }).collect();
        for v in [3usize, 17, 44, 61] {
            signs[v] = -signs[v];
        }
        let frozen = vec![false; 80];
        let warm = WarmStart::from_signs(&signs, frozen);
        let cfg = GdConfig {
            iterations: 10,
            ..GdConfig::with_epsilon(0.05)
        };
        let res = bipartition_warm(&g, &w, &cfg, &SplitTarget::half(0.05), &warm, 2).unwrap();
        let (loc, imb) = quality(&g, &w, &res);
        let m = g.num_edges() as f64;
        assert!(
            loc >= (m - 2.0) / m - 1e-9,
            "warm GD should heal the flips, locality {loc}"
        );
        assert!(imb <= 0.05 + 1e-9);
    }

    #[test]
    fn fully_frozen_warm_start_is_identity() {
        let g = gen::two_cliques(10, 1);
        let w = VertexWeights::unit(20);
        let signs: Vec<i8> = (0..20).map(|v| if v < 10 { 1 } else { -1 }).collect();
        let warm = WarmStart::from_signs(&signs, vec![true; 20]);
        let cfg = GdConfig {
            iterations: 5,
            ..GdConfig::with_epsilon(0.1)
        };
        let res = bipartition_warm(&g, &w, &cfg, &SplitTarget::half(0.1), &warm, 3).unwrap();
        assert_eq!(res.signs, signs);
    }

    #[test]
    fn warm_start_rejects_wrong_length() {
        let g = gen::path(5);
        let w = VertexWeights::unit(5);
        let warm = WarmStart {
            x0: vec![0.0; 4],
            frozen: vec![false; 4],
        };
        let err = bipartition_warm(
            &g,
            &w,
            &GdConfig::default(),
            &SplitTarget::half(0.1),
            &warm,
            0,
        );
        assert!(matches!(err, Err(PartitionError::DimensionMismatch { .. })));
    }

    #[test]
    fn infeasible_freeze_is_released_not_fatal() {
        // Freezing everything on one side would make the balance slab
        // unreachable; those freezes must be dropped, not crash.
        let g = gen::path(10);
        let w = VertexWeights::unit(10);
        let warm = WarmStart {
            x0: vec![1.0; 10],
            frozen: vec![true; 10],
        };
        let cfg = GdConfig {
            iterations: 20,
            ..GdConfig::with_epsilon(0.1)
        };
        let res = bipartition_warm(&g, &w, &cfg, &SplitTarget::half(0.1), &warm, 4).unwrap();
        let plus = res.signs.iter().filter(|&&s| s == 1).count();
        assert!(
            (4..=6).contains(&plus),
            "balance restored, got {plus} on +1 side"
        );
    }

    #[test]
    fn recompute_cadence_is_pinned() {
        // A warm-started healing run engages the delta path; every delta
        // stretch must sit between full recomputes no more than
        // `grad_recompute_period − 1` long.
        let g = gen::two_cliques(40, 2);
        let w = VertexWeights::vertex_edge(&g);
        let mut signs: Vec<i8> = (0..80).map(|v| if v < 40 { 1 } else { -1 }).collect();
        for v in [3usize, 17, 44, 61] {
            signs[v] = -signs[v];
        }
        let warm = WarmStart::from_signs(&signs, vec![false; 80]);
        let period = 5;
        let cfg = GdConfig {
            iterations: 12,
            grad_recompute_period: period,
            ..GdConfig::with_epsilon(0.05)
        };
        let res = bipartition_warm(&g, &w, &cfg, &SplitTarget::half(0.05), &warm, 2).unwrap();
        let s = &res.stats;
        assert!(s.full_recomputes >= 1, "iteration 0 is always full");
        assert!(
            s.delta_iterations <= s.full_recomputes * (period - 1),
            "cadence violated: {} delta evals for {} full recomputes",
            s.delta_iterations,
            s.full_recomputes
        );

        // period = 1 disables the delta path outright.
        let cfg_full = GdConfig {
            grad_recompute_period: 1,
            ..cfg.clone()
        };
        let res = bipartition_warm(&g, &w, &cfg_full, &SplitTarget::half(0.05), &warm, 2).unwrap();
        assert_eq!(res.stats.delta_iterations, 0);
        assert!(res.stats.full_recomputes >= res.stats.iterations);
    }

    #[test]
    fn grad_trace_is_capped_and_keeps_endpoints() {
        let mut trace = GradTrace::new();
        for i in 0..500 {
            trace.push(i as f64);
        }
        let samples = trace.finish();
        assert!(samples.len() <= GRAD_TRACE_CAP, "len {}", samples.len());
        assert_eq!(samples[0], 0.0, "first iteration always survives");
        assert_eq!(*samples.last().unwrap(), 499.0, "last iteration restored");
        // Short runs are recorded 1:1.
        let mut short = GradTrace::new();
        for i in 0..10 {
            short.push(i as f64);
        }
        assert_eq!(
            short.finish(),
            (0..10).map(|i| i as f64).collect::<Vec<_>>()
        );
        assert!(GradTrace::new().finish().is_empty());
    }

    #[test]
    fn settled_warm_start_drains_the_frontier() {
        // Planted optimum, nothing frozen, fixing disabled: every step is
        // clamped to a no-op, so the frontier must drain after the first
        // full evaluation instead of burning the whole budget on O(m)
        // mat-vecs (the pre-delta behaviour).
        let g = gen::two_cliques(40, 2);
        let w = VertexWeights::vertex_edge(&g);
        let signs: Vec<i8> = (0..80).map(|v| if v < 40 { 1 } else { -1 }).collect();
        let warm = WarmStart::from_signs(&signs, vec![false; 80]);
        let cfg = GdConfig {
            iterations: 50,
            fixing_threshold: None,
            ..GdConfig::with_epsilon(0.05)
        };
        let res = bipartition_warm(&g, &w, &cfg, &SplitTarget::half(0.05), &warm, 4).unwrap();
        assert_eq!(res.stats.exit, GdExit::FrontierConverged);
        assert!(
            res.stats.iterations <= 2,
            "settled pair should exit almost immediately, ran {}",
            res.stats.iterations
        );
        assert_eq!(res.signs, signs, "the optimum must be preserved");
    }

    #[test]
    fn delta_gradient_drift_is_negligible() {
        let g = gen::two_cliques(50, 3);
        let w = VertexWeights::vertex_edge(&g);
        let mut signs: Vec<i8> = (0..100).map(|v| if v < 50 { 1 } else { -1 }).collect();
        for v in [1usize, 8, 23, 57, 72, 99] {
            signs[v] = -signs[v];
        }
        let warm = WarmStart::from_signs(&signs, vec![false; 100]);
        let cfg = GdConfig {
            iterations: 30,
            grad_check: true,
            ..GdConfig::with_epsilon(0.05)
        };
        let res = bipartition_warm(&g, &w, &cfg, &SplitTarget::half(0.05), &warm, 6).unwrap();
        assert!(
            res.stats.grad_drift_max < 1e-9,
            "delta-maintained gradient drifted by {}",
            res.stats.grad_drift_max
        );
    }

    #[test]
    fn workspace_reuse_is_behaviorally_invisible() {
        // One workspace across three different problems must reproduce
        // what fresh workspaces produce, bit for bit.
        let mut ws = GdWorkspace::new();
        let cfg = GdConfig {
            iterations: 20,
            ..GdConfig::with_epsilon(0.05)
        };
        for (size, seed) in [(30usize, 1u64), (45, 2), (25, 3)] {
            let g = gen::two_cliques(size, 2);
            let n = 2 * size;
            let w = VertexWeights::vertex_edge(&g);
            let mut signs: Vec<i8> = (0..n).map(|v| if v < size { 1 } else { -1 }).collect();
            signs[0] = -signs[0];
            signs[n - 1] = -signs[n - 1];
            let warm = WarmStart::from_signs(&signs, vec![false; n]);
            let reused =
                bipartition_warm_with(&mut ws, &g, &w, &cfg, &SplitTarget::half(0.05), &warm, seed)
                    .unwrap();
            let fresh =
                bipartition_warm(&g, &w, &cfg, &SplitTarget::half(0.05), &warm, seed).unwrap();
            assert_eq!(reused.signs, fresh.signs);
            assert_eq!(reused.x, fresh.x);
            assert_eq!(reused.stats, fresh.stats);
        }
    }

    #[test]
    fn rejects_mismatched_weights() {
        let g = gen::path(5);
        let w = VertexWeights::unit(4);
        let err = bipartition(&g, &w, &GdConfig::default(), &SplitTarget::half(0.1), 0);
        assert!(matches!(err, Err(PartitionError::DimensionMismatch { .. })));
    }

    #[test]
    fn all_projection_methods_work_end_to_end() {
        use crate::config::ProjectionMethod::*;
        let g = gen::two_cliques(20, 2);
        let w = VertexWeights::vertex_edge(&g);
        for method in [OneShotAlternating, AlternatingConverged, Dykstra, Exact] {
            let cfg = GdConfig {
                iterations: 40,
                projection: method,
                ..GdConfig::with_epsilon(0.1)
            };
            let res = bipartition(&g, &w, &cfg, &SplitTarget::half(0.1), 6).unwrap();
            let (loc, imb) = quality(&g, &w, &res);
            assert!(loc > 0.8, "{method:?}: locality {loc}");
            assert!(imb < 0.12, "{method:?}: imbalance {imb}");
        }
    }
}
