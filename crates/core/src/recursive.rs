//! Recursive k-way partitioning (paper §3.3).
//!
//! The graph is bisected recursively `⌈log₂ k⌉` times. Arbitrary `k` is
//! handled by splitting into `⌈k/2⌉ : ⌊k/2⌋` weight proportions at each
//! level (the paper notes the algorithm "can be modified to handle any k by
//! changing the coefficients in the balance constraints" — [`SplitTarget`]
//! carries those coefficients). Per-level tolerances are chosen so the
//! compounded imbalance of the leaves stays within the user's ε:
//! `(1 + ε_level)^levels ≤ 1 + ε`.

use crate::config::GdConfig;
use crate::gd::{bipartition, SplitTarget};
use mdbgp_graph::{
    partition::validate_inputs, Graph, InducedSubgraph, Partition, PartitionError, Partitioner,
    VertexId, VertexWeights,
};

/// The paper's `GD` algorithm as a [`Partitioner`]: recursive bisection
/// driven by [`bipartition`].
#[derive(Clone, Debug, Default)]
pub struct GdPartitioner {
    config: GdConfig,
}

impl GdPartitioner {
    /// Wraps a configuration.
    pub fn new(config: GdConfig) -> Self {
        Self { config }
    }

    /// Access to the configuration.
    pub fn config(&self) -> &GdConfig {
        &self.config
    }

    /// Per-level ε so that imbalances compounded over `levels` bisections
    /// stay within the requested ε.
    pub fn epsilon_per_level(epsilon: f64, levels: usize) -> f64 {
        if levels <= 1 {
            return epsilon;
        }
        (1.0 + epsilon).powf(1.0 / levels as f64) - 1.0
    }

    #[allow(clippy::too_many_arguments)] // internal recursion carries its full context
    fn recurse(
        &self,
        graph: &Graph,
        weights: &VertexWeights,
        subset: Vec<VertexId>,
        k: usize,
        part_offset: u32,
        eps_level: f64,
        seed: u64,
        labels: &mut [u32],
    ) -> Result<(), PartitionError> {
        if k == 1 {
            for v in subset {
                labels[v as usize] = part_offset;
            }
            return Ok(());
        }
        if subset.len() < k {
            return Err(PartitionError::Infeasible(format!(
                "cannot split {} vertices into {k} parts",
                subset.len()
            )));
        }
        let k_left = k.div_ceil(2);
        let k_right = k - k_left;
        let fraction = k_left as f64 / k as f64;
        let target = SplitTarget::new(fraction, eps_level);
        let mut cfg = self.config.clone();
        cfg.epsilon = eps_level;
        cfg.track_history = false;

        // Avoid the subgraph copy at the root where subset == all vertices.
        let whole = subset.len() == graph.num_vertices();
        let (left, right): (Vec<VertexId>, Vec<VertexId>) = if whole {
            let res = bipartition(graph, weights, &cfg, &target, seed)?;
            partition_ids(&subset, &res.signs)
        } else {
            let sub = InducedSubgraph::extract(graph, &subset);
            let w_sub = weights.restrict(&sub.original);
            let res = bipartition(&sub.graph, &w_sub, &cfg, &target, seed)?;
            partition_ids(&sub.original, &res.signs)
        };

        if left.len() < k_left || right.len() < k_right {
            return Err(PartitionError::Infeasible(format!(
                "bisection produced sides of {} / {} vertices for k = {k_left} + {k_right}",
                left.len(),
                right.len()
            )));
        }
        // Derive child seeds deterministically but distinctly.
        let seed_l = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(2 * part_offset as u64 + 1);
        let seed_r = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(2 * part_offset as u64 + 2);
        self.recurse(
            graph,
            weights,
            left,
            k_left,
            part_offset,
            eps_level,
            seed_l,
            labels,
        )?;
        self.recurse(
            graph,
            weights,
            right,
            k_right,
            part_offset + k_left as u32,
            eps_level,
            seed_r,
            labels,
        )
    }
}

/// Splits `ids` by the ±1 `signs` of the corresponding reduced vertices.
fn partition_ids(ids: &[VertexId], signs: &[i8]) -> (Vec<VertexId>, Vec<VertexId>) {
    debug_assert_eq!(ids.len(), signs.len());
    let mut left = Vec::new();
    let mut right = Vec::new();
    for (&id, &s) in ids.iter().zip(signs) {
        if s == 1 {
            left.push(id);
        } else {
            right.push(id);
        }
    }
    (left, right)
}

impl Partitioner for GdPartitioner {
    fn name(&self) -> &str {
        "GD"
    }

    fn partition(
        &self,
        graph: &Graph,
        weights: &VertexWeights,
        k: usize,
        seed: u64,
    ) -> Result<Partition, PartitionError> {
        validate_inputs(graph, weights, k)?;
        let n = graph.num_vertices();
        if k == 1 || n == 0 {
            return Ok(Partition::trivial(n, k.max(1)));
        }
        let levels = (k as f64).log2().ceil() as usize;
        let eps_level = Self::epsilon_per_level(self.config.epsilon, levels);
        let mut labels = vec![0u32; n];
        let all: Vec<VertexId> = (0..n as VertexId).collect();
        self.recurse(graph, weights, all, k, 0, eps_level, seed, &mut labels)?;
        Ok(Partition::new(labels, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fast_config(eps: f64) -> GdConfig {
        GdConfig {
            iterations: 50,
            ..GdConfig::with_epsilon(eps)
        }
    }

    #[test]
    fn epsilon_schedule_compounds_correctly() {
        let eps = 0.05;
        for levels in 1..=4 {
            let e = GdPartitioner::epsilon_per_level(eps, levels);
            let compounded = (1.0 + e).powi(levels as i32) - 1.0;
            assert!(compounded <= eps + 1e-12, "levels={levels}: {compounded}");
        }
    }

    #[test]
    fn k1_is_trivial() {
        let g = gen::path(10);
        let w = VertexWeights::unit(10);
        let p = GdPartitioner::new(fast_config(0.1))
            .partition(&g, &w, 1, 0)
            .unwrap();
        assert_eq!(p.num_parts(), 1);
        assert!(p.as_slice().iter().all(|&l| l == 0));
    }

    #[test]
    fn k4_on_four_cliques() {
        // Four cliques of 20, weakly ringed together; k=4 should recover them.
        let s = 20;
        let mut b = mdbgp_graph::GraphBuilder::new(4 * s);
        for c in 0..4u32 {
            let base = c * s as u32;
            for u in 0..s as u32 {
                for v in (u + 1)..s as u32 {
                    b.add_edge(base + u, base + v);
                }
            }
        }
        for c in 0..4u32 {
            b.add_edge(c * s as u32, ((c + 1) % 4) * s as u32);
        }
        let g = b.build();
        let w = VertexWeights::vertex_edge(&g);
        let p = GdPartitioner::new(fast_config(0.05))
            .partition(&g, &w, 4, 3)
            .unwrap();
        assert_eq!(p.num_parts(), 4);
        let q = p.quality(&g, &w);
        assert!(
            q.edge_locality > 0.95,
            "cliques intact: locality {}",
            q.edge_locality
        );
        assert!(q.max_imbalance <= 0.06, "imbalance {}", q.max_imbalance);
    }

    #[test]
    fn non_power_of_two_k() {
        let g = gen::cycle(300);
        let w = VertexWeights::unit(300);
        let p = GdPartitioner::new(fast_config(0.05))
            .partition(&g, &w, 3, 7)
            .unwrap();
        assert_eq!(p.num_parts(), 3);
        let sizes = p.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 300);
        for &s in &sizes {
            assert!(
                (s as f64 - 100.0).abs() <= 100.0 * 0.05 + 1.0,
                "sizes {sizes:?} not within ε of 100"
            );
        }
    }

    #[test]
    fn k8_balance_on_community_graph() {
        let cg = gen::community_graph(
            &gen::CommunityGraphConfig::social(1600),
            &mut StdRng::seed_from_u64(5),
        );
        let w = VertexWeights::vertex_edge(&cg.graph);
        let p = GdPartitioner::new(fast_config(0.05))
            .partition(&cg.graph, &w, 8, 5)
            .unwrap();
        let q = p.quality(&cg.graph, &w);
        assert!(q.max_imbalance <= 0.07, "imbalance {}", q.max_imbalance);
        assert!(
            q.edge_locality > 1.0 / 8.0,
            "better than hash: {}",
            q.edge_locality
        );
    }

    #[test]
    fn rejects_k_zero_and_oversized_k() {
        let g = gen::path(4);
        let w = VertexWeights::unit(4);
        let gd = GdPartitioner::new(fast_config(0.1));
        assert!(matches!(
            gd.partition(&g, &w, 0, 0),
            Err(PartitionError::InvalidK { .. })
        ));
        assert!(gd.partition(&g, &w, 5, 0).is_err());
    }

    #[test]
    fn name_is_gd() {
        assert_eq!(GdPartitioner::default().name(), "GD");
    }
}
