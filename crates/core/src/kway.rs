//! Direct k-way relaxation (paper §3.3, "Problem relaxation for k buckets").
//!
//! Instead of recursive bisection, relax the assignment itself: vertex `i`
//! carries a probability row `p_i ∈ Δ_k` (the k-simplex), the objective is
//! the expected locality `Σ_{(u,v) ∈ E} Σ_j p_uj · p_vj`, and every part ×
//! dimension pair gets a balance slab `|⟨w^(d), p_j⟩ − W_d/k| ≤ ε·W_d/k`.
//! Gradient ascent needs one mat-vec *per part* — the `O(k·|E|)` cost per
//! iteration that the paper cites as the reason it prefers recursion at
//! scale (and lists a cheaper direct method as an open problem). For small
//! k this variant avoids recursion's structural blind spot: a bisection
//! that must split k = 3 equal communities 2:1 can never keep all three
//! intact, while the direct relaxation can.
//!
//! The iteration mirrors Algorithm 1: noise → per-column gradient step →
//! projection (alternating between the balance hyperplanes per column and
//! the per-row simplex), followed by per-row categorical rounding with a
//! greedy repair pass.

use crate::config::GdConfig;
use crate::matvec::matvec_parallel;
use crate::noise::standard_normal;
use mdbgp_graph::{
    partition::validate_inputs, Graph, Partition, PartitionError, Partitioner, VertexWeights,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Projects `z` onto the probability simplex `{x ≥ 0, Σx = 1}` in place
/// (Held–Wolfe–Crowder / Michelot: sort, find the threshold τ, clip).
pub fn project_simplex(z: &mut [f64]) {
    let k = z.len();
    debug_assert!(k > 0);
    let mut sorted: Vec<f64> = z.to_vec();
    sorted.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
    let mut cumsum = 0.0;
    let mut tau = 0.0;
    let mut rho = 0;
    for (j, &v) in sorted.iter().enumerate() {
        cumsum += v;
        let t = (cumsum - 1.0) / (j + 1) as f64;
        if v - t > 0.0 {
            tau = t;
            rho = j + 1;
        }
    }
    debug_assert!(rho > 0, "simplex projection always has support");
    for v in z.iter_mut() {
        *v = (*v - tau).max(0.0);
    }
}

/// Direct k-way GD. Reuses [`GdConfig`] for the shared parameters
/// (iterations, ε, noise, fixing, rounding attempts); the step schedule is
/// always the adaptive fixed-length rule.
#[derive(Clone, Debug, Default)]
pub struct KWayGdPartitioner {
    config: GdConfig,
}

impl KWayGdPartitioner {
    /// Wraps a configuration.
    pub fn new(config: GdConfig) -> Self {
        Self { config }
    }

    /// Access to the configuration.
    pub fn config(&self) -> &GdConfig {
        &self.config
    }
}

/// Flattened row-major n×k probability matrix with helpers.
struct ProbMatrix {
    data: Vec<f64>,
    n: usize,
    k: usize,
}

impl ProbMatrix {
    fn uniform(n: usize, k: usize) -> Self {
        Self {
            data: vec![1.0 / k as f64; n * k],
            n,
            k,
        }
    }

    #[inline]
    fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.k..(i + 1) * self.k]
    }

    #[inline]
    fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.k..(i + 1) * self.k]
    }

    /// Copies column `j` into `out`.
    fn copy_column(&self, j: usize, out: &mut [f64]) {
        for i in 0..self.n {
            out[i] = self.data[i * self.k + j];
        }
    }
}

impl Partitioner for KWayGdPartitioner {
    fn name(&self) -> &str {
        "GD-kway"
    }

    fn partition(
        &self,
        graph: &Graph,
        weights: &VertexWeights,
        k: usize,
        seed: u64,
    ) -> Result<Partition, PartitionError> {
        validate_inputs(graph, weights, k)?;
        self.config.validate().map_err(PartitionError::Config)?;
        let n = graph.num_vertices();
        if k == 1 || n == 0 {
            return Ok(Partition::trivial(n, k.max(1)));
        }
        let d = weights.dims();
        let eps = self.config.epsilon;
        let mut rng = StdRng::seed_from_u64(seed);

        let mut p = ProbMatrix::uniform(n, k);
        let mut fixed = vec![false; n];
        let mut col = vec![0.0f64; n];
        let mut grads = vec![vec![0.0f64; n]; k];

        // Per-(dim, part) balance targets.
        let targets: Vec<f64> = (0..d).map(|j| weights.total(j) / k as f64).collect();
        let halfwidths: Vec<f64> = targets.iter().map(|t| eps * t).collect();

        let target_len = 2.0 * (n as f64).sqrt() / self.config.iterations as f64;

        for t in 0..self.config.iterations {
            // --- Noise (escape the uniform saddle). ---
            let std = self.config.noise.std_at(t);
            if std > 0.0 {
                for i in 0..n {
                    if fixed[i] {
                        continue;
                    }
                    for v in p.row_mut(i) {
                        *v += std * standard_normal(&mut rng);
                    }
                    project_simplex(p.row_mut(i));
                }
            }

            // --- Gradient: one mat-vec per part (the O(k·|E|) term). ---
            for j in 0..k {
                p.copy_column(j, &mut col);
                matvec_parallel(graph, &col, &mut grads[j], self.config.threads);
            }
            // Centre each row of the gradient: the row-constant component
            // (`Σ_j grads[j][i]/k ≈ deg(i)/k`) moves the row along the
            // all-ones direction, which the simplex projection annihilates.
            // Removing it *before* the adaptive normalization keeps the
            // step budget on the part-differential signal that actually
            // separates vertices.
            for i in 0..n {
                let mean: f64 = (0..k).map(|j| grads[j][i]).sum::<f64>() / k as f64;
                for g in grads.iter_mut() {
                    g[i] -= mean;
                }
            }
            let grad_norm: f64 = (0..n)
                .filter(|&i| !fixed[i])
                .map(|i| (0..k).map(|j| grads[j][i] * grads[j][i]).sum::<f64>())
                .sum::<f64>()
                .sqrt();
            let gamma = if grad_norm > 1e-30 {
                target_len / grad_norm
            } else {
                1.0
            };

            // --- Ascent step on free rows. ---
            for i in 0..n {
                if fixed[i] {
                    continue;
                }
                let row = &mut p.data[i * k..(i + 1) * k];
                for (j, v) in row.iter_mut().enumerate() {
                    *v += gamma * grads[j][i];
                }
            }

            // --- Projection: alternating balance-hyperplane / simplex. ---
            for _ in 0..2 {
                // (a) per-column slabs, shifting only free rows.
                for j in 0..k {
                    for dim in 0..d {
                        let w = weights.dim(dim);
                        let mut s = 0.0;
                        let mut w_free_norm2 = 0.0;
                        for i in 0..n {
                            s += w[i] * p.data[i * k + j];
                            if !fixed[i] {
                                w_free_norm2 += w[i] * w[i];
                            }
                        }
                        let (lo, hi) = (
                            targets[dim] - halfwidths[dim],
                            targets[dim] + halfwidths[dim],
                        );
                        let target = if s > hi {
                            hi
                        } else if s < lo {
                            lo
                        } else {
                            continue;
                        };
                        if w_free_norm2 == 0.0 {
                            continue;
                        }
                        let shift = (target - s) / w_free_norm2;
                        for i in 0..n {
                            if !fixed[i] {
                                p.data[i * k + j] += shift * w[i];
                            }
                        }
                    }
                }
                // (b) per-row simplex.
                for i in 0..n {
                    if !fixed[i] {
                        project_simplex(p.row_mut(i));
                    }
                }
            }

            // --- Vertex fixing: freeze near-one-hot rows. ---
            if let Some(threshold) = self.config.fixing_threshold {
                for i in 0..n {
                    if fixed[i] {
                        continue;
                    }
                    let row = p.row_mut(i);
                    if let Some((best, &max)) = row
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    {
                        if max >= threshold {
                            row.iter_mut().for_each(|v| *v = 0.0);
                            row[best] = 1.0;
                            fixed[i] = true;
                        }
                    }
                }
            }
        }

        // --- Rounding: best of `attempts` categorical samples + repair. ---
        let assignment = round_kway(
            &p,
            weights,
            &targets,
            &halfwidths,
            self.config.rounding_attempts,
            &mut rng,
        );
        Ok(Partition::new(assignment, k))
    }
}

/// Samples per-row categorical assignments, keeps the most balanced one,
/// then greedily repairs residual slab violations by moving the least
/// committed vertices off overloaded (part, dim) pairs.
fn round_kway(
    p: &ProbMatrix,
    weights: &VertexWeights,
    targets: &[f64],
    halfwidths: &[f64],
    attempts: usize,
    rng: &mut StdRng,
) -> Vec<u32> {
    let (n, k, d) = (p.n, p.k, weights.dims());

    let violation = |loads: &[Vec<f64>]| -> f64 {
        let mut v = 0.0f64;
        for j in 0..k {
            for dim in 0..d {
                let excess = (loads[j][dim] - targets[dim]).abs() - halfwidths[dim];
                if excess > 0.0 {
                    v = v.max(excess / weights.total(dim));
                }
            }
        }
        v
    };
    let loads_of = |assign: &[u32]| -> Vec<Vec<f64>> {
        let mut loads = vec![vec![0.0f64; d]; k];
        for (i, &j) in assign.iter().enumerate() {
            for dim in 0..d {
                loads[j as usize][dim] += weights.weight(dim, i as u32);
            }
        }
        loads
    };

    let mut best: Option<(f64, Vec<u32>)> = None;
    for _ in 0..attempts.max(1) {
        let assign: Vec<u32> = (0..n)
            .map(|i| {
                let row = p.row(i);
                let mut u: f64 = rng.gen();
                for (j, &q) in row.iter().enumerate() {
                    u -= q;
                    if u <= 0.0 {
                        return j as u32;
                    }
                }
                (k - 1) as u32
            })
            .collect();
        let v = violation(&loads_of(&assign));
        if v == 0.0 {
            return assign;
        }
        if best.as_ref().is_none_or(|(bv, _)| v < *bv) {
            best = Some((v, assign));
        }
    }
    let (_, mut assign) = best.unwrap();

    // Greedy repair: move the least committed vertex off the worst
    // overloaded part while it strictly improves the violation.
    let mut loads = loads_of(&assign);
    // Commitment margin: p(chosen) − p(best alternative).
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&x, &z| {
        let margin = |i: u32| {
            let row = p.row(i as usize);
            let chosen = row[assign[i as usize] as usize];
            let alt = row
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != assign[i as usize] as usize)
                .map(|(_, &q)| q)
                .fold(0.0, f64::max);
            chosen - alt
        };
        margin(x).partial_cmp(&margin(z)).unwrap()
    });
    for _ in 0..4 * n {
        let before = violation(&loads);
        if before == 0.0 {
            break;
        }
        let mut improved = false;
        'outer: for &i in &order {
            let i = i as usize;
            let from = assign[i] as usize;
            for to in 0..k {
                if to == from {
                    continue;
                }
                for dim in 0..d {
                    let w = weights.weight(dim, i as u32);
                    loads[from][dim] -= w;
                    loads[to][dim] += w;
                }
                if violation(&loads) < before - 1e-15 {
                    assign[i] = to as u32;
                    improved = true;
                    break 'outer;
                }
                for dim in 0..d {
                    let w = weights.weight(dim, i as u32);
                    loads[from][dim] += w;
                    loads[to][dim] -= w;
                }
            }
        }
        if !improved {
            break;
        }
    }
    assign
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::{gen, GraphBuilder};

    #[test]
    fn simplex_projection_basics() {
        let mut z = vec![0.2, 0.3, 0.5];
        project_simplex(&mut z);
        assert!(
            (z.iter().sum::<f64>() - 1.0).abs() < 1e-12,
            "already on simplex"
        );
        assert!((z[2] - 0.5).abs() < 1e-12);

        let mut z = vec![2.0, 0.0];
        project_simplex(&mut z);
        assert_eq!(z, vec![1.0, 0.0]);

        let mut z = vec![-1.0, -1.0, 2.0];
        project_simplex(&mut z);
        assert_eq!(z, vec![0.0, 0.0, 1.0]);

        let mut z = vec![0.6, 0.6];
        project_simplex(&mut z);
        assert!((z[0] - 0.5).abs() < 1e-12 && (z[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn simplex_projection_is_idempotent_and_feasible() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let k = rng.gen_range(2..8);
            let mut z: Vec<f64> = (0..k).map(|_| rng.gen_range(-2.0..2.0)).collect();
            project_simplex(&mut z);
            assert!((z.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(z.iter().all(|&v| v >= 0.0));
            let snapshot = z.clone();
            project_simplex(&mut z);
            for (a, b) in z.iter().zip(&snapshot) {
                assert!((a - b).abs() < 1e-12, "idempotency");
            }
        }
    }

    /// Three cliques ringed together — the instance class where recursive
    /// bisection must break a clique but the direct relaxation need not.
    fn three_cliques(s: usize) -> Graph {
        let mut b = GraphBuilder::new(3 * s);
        for c in 0..3u32 {
            let base = c * s as u32;
            for u in 0..s as u32 {
                for v in (u + 1)..s as u32 {
                    b.add_edge(base + u, base + v);
                }
            }
        }
        for c in 0..3u32 {
            b.add_edge(c * s as u32, ((c + 1) % 3) * s as u32);
        }
        b.build()
    }

    #[test]
    fn recovers_three_cliques_with_k3() {
        let g = three_cliques(15);
        let w = VertexWeights::vertex_edge(&g);
        let cfg = GdConfig {
            iterations: 80,
            ..GdConfig::with_epsilon(0.05)
        };
        let m = g.num_edges() as f64;
        // The direct k-way heuristic lands in local optima for some
        // initializations; the paper reports best-of-runs, so do the same
        // over a few seeds.
        let best = (0..5u64)
            .map(|seed| {
                let p = KWayGdPartitioner::new(cfg.clone())
                    .partition(&g, &w, 3, seed)
                    .unwrap();
                let q = p.quality(&g, &w);
                assert!(
                    q.max_imbalance <= 0.05 + 1e-9,
                    "imbalance {}",
                    q.max_imbalance
                );
                q.edge_locality
            })
            .fold(0.0f64, f64::max);
        assert!(
            best >= (m - 3.0) / m - 1e-9,
            "only ring edges may be cut in the best run, locality {best}"
        );
    }

    #[test]
    fn balances_community_graph_k4() {
        let cg = gen::community_graph(
            &gen::CommunityGraphConfig::social(1500),
            &mut StdRng::seed_from_u64(9),
        );
        let w = VertexWeights::vertex_edge(&cg.graph);
        let cfg = GdConfig {
            iterations: 60,
            ..GdConfig::with_epsilon(0.05)
        };
        let p = KWayGdPartitioner::new(cfg)
            .partition(&cg.graph, &w, 4, 5)
            .unwrap();
        let q = p.quality(&cg.graph, &w);
        assert!(q.max_imbalance <= 0.06, "imbalance {}", q.max_imbalance);
        assert!(q.edge_locality > 0.4, "locality {}", q.edge_locality);
    }

    #[test]
    fn k1_and_determinism() {
        let g = gen::cycle(30);
        let w = VertexWeights::unit(30);
        let kway = KWayGdPartitioner::new(GdConfig {
            iterations: 20,
            ..GdConfig::with_epsilon(0.1)
        });
        let p1 = kway.partition(&g, &w, 1, 0).unwrap();
        assert!(p1.as_slice().iter().all(|&l| l == 0));
        let a = kway.partition(&g, &w, 3, 7).unwrap();
        let b = kway.partition(&g, &w, 3, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn name_distinguishes_variant() {
        assert_eq!(KWayGdPartitioner::default().name(), "GD-kway");
    }
}
