//! Sparse adjacency mat-vec — the gradient of the relaxation.
//!
//! `∇f(x) = Ax` for `f(x) = ½ xᵀAx`, so a GD iteration costs one CSR
//! mat-vec: `out[v] = Σ_{u ∈ N(v)} x[u]`. Theorem 1.1's `O(|E|/m)`
//! distributed scaling is realized here with `std::thread::scope` workers
//! over row ranges (each thread owns a disjoint slice of `out`, reads all
//! of `x` — exactly the communication structure of the paper's Giraph
//! implementation).

use mdbgp_graph::Graph;

/// Sequential `out = A x`.
pub fn matvec(graph: &Graph, x: &[f64], out: &mut [f64]) {
    let n = graph.num_vertices();
    assert_eq!(x.len(), n);
    assert_eq!(out.len(), n);
    let offsets = graph.raw_offsets();
    let targets = graph.raw_targets();
    for v in 0..n {
        let mut acc = 0.0;
        for &u in &targets[offsets[v]..offsets[v + 1]] {
            acc += x[u as usize];
        }
        out[v] = acc;
    }
}

/// Multi-threaded `out = A x` with `threads` workers over contiguous row
/// blocks of roughly equal *edge* count (so a few hubs don't serialize the
/// pass — see [`crate::parallel::prefix_boundaries`]). Falls back to the
/// sequential kernel for `threads <= 1` or tiny graphs where spawn
/// overhead dominates.
pub fn matvec_parallel(graph: &Graph, x: &[f64], out: &mut [f64], threads: usize) {
    let n = graph.num_vertices();
    assert_eq!(x.len(), n);
    assert_eq!(out.len(), n);
    if threads <= 1 || n < 4096 {
        return matvec(graph, x, out);
    }
    let offsets = graph.raw_offsets();
    let targets = graph.raw_targets();
    let boundaries = crate::parallel::prefix_boundaries(offsets, threads);
    crate::parallel::for_each_chunk_mut(out, &boundaries, |range, chunk| {
        for (v, slot) in range.zip(chunk.iter_mut()) {
            let mut acc = 0.0;
            for &u in &targets[offsets[v]..offsets[v + 1]] {
                acc += x[u as usize];
            }
            *slot = acc;
        }
    });
}

/// `Σ_{(u,v) ∈ E} x_u · x_v = ½ xᵀAx` — the relaxed objective `f(x)`
/// (up to the constant `m/2` the paper drops).
pub fn quadratic_form(graph: &Graph, x: &[f64]) -> f64 {
    graph
        .edges()
        .map(|(u, v)| x[u as usize] * x[v as usize])
        .sum()
}

/// Expected edge locality of the randomized rounding of a fractional `x`:
/// `E[locality] = Σ_edges (x_u x_v + 1) / (2m)` (paper §2). Returns 1.0 for
/// edgeless graphs.
pub fn expected_locality(graph: &Graph, x: &[f64]) -> f64 {
    let m = graph.num_edges();
    if m == 0 {
        return 1.0;
    }
    (quadratic_form(graph, x) + m as f64) / (2.0 * m as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::builder::graph_from_edges;
    use mdbgp_graph::gen;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matvec_matches_manual_triangle() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let x = [1.0, 2.0, 3.0];
        let mut out = [0.0; 3];
        matvec(&g, &x, &mut out);
        assert_eq!(out, [5.0, 4.0, 3.0]);
    }

    #[test]
    fn matvec_of_zero_vector_is_zero() {
        let g = gen::erdos_renyi(100, 300, &mut StdRng::seed_from_u64(1));
        let x = vec![0.0; 100];
        let mut out = vec![1.0; 100];
        matvec(&g, &x, &mut out);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = gen::erdos_renyi(10_000, 60_000, &mut rng);
        let x: Vec<f64> = (0..10_000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut seq = vec![0.0; 10_000];
        let mut par = vec![0.0; 10_000];
        matvec(&g, &x, &mut seq);
        for threads in [2, 3, 8] {
            matvec_parallel(&g, &x, &mut par, threads);
            for (a, b) in seq.iter().zip(&par) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn parallel_small_graph_falls_back() {
        let g = graph_from_edges(3, &[(0, 1)]);
        let mut out = [0.0; 3];
        matvec_parallel(&g, &[1.0, 2.0, 0.0], &mut out, 4);
        assert_eq!(out, [2.0, 1.0, 0.0]);
    }

    #[test]
    fn quadratic_form_counts_agreement() {
        let g = graph_from_edges(4, &[(0, 1), (2, 3), (1, 2)]);
        // Integral x: same-sign edge contributes +1, cut edge −1.
        let x = [1.0, 1.0, -1.0, -1.0];
        assert_eq!(quadratic_form(&g, &x), 1.0 + 1.0 - 1.0);
    }

    #[test]
    fn expected_locality_bounds() {
        let g = gen::cycle(10);
        let all_same = vec![1.0; 10];
        assert!((expected_locality(&g, &all_same) - 1.0).abs() < 1e-12);
        let zeros = vec![0.0; 10];
        assert!(
            (expected_locality(&g, &zeros) - 0.5).abs() < 1e-12,
            "x=0 → 50% in expectation"
        );
        assert_eq!(
            expected_locality(&mdbgp_graph::Graph::empty(3), &[0.0; 3]),
            1.0
        );
    }

    #[test]
    fn gradient_of_quadratic_form_is_ax() {
        // Finite-difference check: d f / d x_v = (Ax)_v for f = ½ xᵀ A x.
        let mut rng = StdRng::seed_from_u64(5);
        let g = gen::erdos_renyi(30, 100, &mut rng);
        let x: Vec<f64> = (0..30).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut grad = vec![0.0; 30];
        matvec(&g, &x, &mut grad);
        let h = 1e-6;
        for v in 0..30 {
            let mut xp = x.clone();
            xp[v] += h;
            let mut xm = x.clone();
            xm[v] -= h;
            let fd = (quadratic_form(&g, &xp) - quadratic_form(&g, &xm)) / (2.0 * h);
            assert!(
                (fd - grad[v]).abs() < 1e-5,
                "v={v}: fd={fd} grad={}",
                grad[v]
            );
        }
    }
}
