//! Sparse adjacency mat-vec — the gradient of the relaxation.
//!
//! `∇f(x) = Ax` for `f(x) = ½ xᵀAx`, so a GD iteration costs one CSR
//! mat-vec: `out[v] = Σ_{u ∈ N(v)} x[u]`. Theorem 1.1's `O(|E|/m)`
//! distributed scaling is realized here with `std::thread::scope` workers
//! over row ranges (each thread owns a disjoint slice of `out`, reads all
//! of `x` — exactly the communication structure of the paper's Giraph
//! implementation).

use mdbgp_graph::Graph;

/// Sequential `out = A x`.
pub fn matvec(graph: &Graph, x: &[f64], out: &mut [f64]) {
    let n = graph.num_vertices();
    assert_eq!(x.len(), n);
    assert_eq!(out.len(), n);
    let offsets = graph.raw_offsets();
    let targets = graph.raw_targets();
    for v in 0..n {
        let mut acc = 0.0;
        for &u in &targets[offsets[v]..offsets[v + 1]] {
            acc += x[u as usize];
        }
        out[v] = acc;
    }
}

/// Below this many CSR entries a mat-vec runs sequentially no matter how
/// many threads were requested: the serial sweep finishes in well under the
/// cost of spawning and joining a worker scope, so "parallelising" it only
/// adds latency. The pairwise refinement subgraphs of `mdbgp-stream` sit
/// far below this bound — their parallelism comes from solving disjoint
/// pairs concurrently, not from splitting one small mat-vec.
pub const MIN_PARALLEL_ENTRIES: usize = 1 << 18;

/// Multi-threaded `out = A x` with `threads` workers over contiguous row
/// blocks of roughly equal *edge* count (so a few hubs don't serialize the
/// pass — see [`crate::parallel::prefix_boundaries`]). Falls back to the
/// sequential kernel for `threads <= 1` or small inputs (fewer than 4096
/// rows or [`MIN_PARALLEL_ENTRIES`] CSR entries) where spawn overhead
/// dominates the sweep itself.
pub fn matvec_parallel(graph: &Graph, x: &[f64], out: &mut [f64], threads: usize) {
    let n = graph.num_vertices();
    assert_eq!(x.len(), n);
    assert_eq!(out.len(), n);
    if threads <= 1 || n < 4096 || graph.raw_offsets()[n] < MIN_PARALLEL_ENTRIES {
        return matvec(graph, x, out);
    }
    let offsets = graph.raw_offsets();
    let targets = graph.raw_targets();
    let boundaries = crate::parallel::prefix_boundaries(offsets, threads);
    crate::parallel::for_each_chunk_mut(out, &boundaries, |range, chunk| {
        for (v, slot) in range.zip(chunk.iter_mut()) {
            let mut acc = 0.0;
            for &u in &targets[offsets[v]..offsets[v + 1]] {
                acc += x[u as usize];
            }
            *slot = acc;
        }
    });
}

/// Summed degree of the vertices in `scan` whose current coordinate
/// differs (bitwise) from the one the maintained gradient was last
/// evaluated at — the exact cost, in CSR entries, of propagating the
/// pending diffs with [`matvec_delta`]. The delta path's density guard
/// compares this against the full edge count: once most of the graph
/// moved, a full [`matvec`] pass is cheaper (sequential row-major reads
/// beat scattered writes).
pub fn delta_degree(graph: &Graph, z: &[f64], z_prev: &[f64], scan: &[u32]) -> usize {
    let offsets = graph.raw_offsets();
    scan.iter()
        .filter(|&&u| z[u as usize] != z_prev[u as usize])
        .map(|&u| offsets[u as usize + 1] - offsets[u as usize])
        .sum()
}

/// Incremental gradient update (the exemplar delta-gradient scheme):
/// brings a maintained `grad = A·z_prev` up to `A·z` by pushing each
/// pending diff `z[u] − z_prev[u]` to `u`'s neighbors, instead of
/// recomputing the whole mat-vec. Only vertices listed in `scan` are
/// examined — the caller guarantees every coordinate that changed since
/// `z_prev` was written is in `scan` — and `z_prev` is updated in place,
/// so repeated calls are cumulative.
///
/// As a by-product the sweep maintains the **active frontier**: every
/// vertex whose move exceeded `move_tol`, and all of its neighbors (their
/// gradient just changed), is marked `touched[v] = stamp`. Vertices left
/// unmarked neither moved nor saw a neighbor move — they can sit out the
/// next gradient step and projection entirely.
///
/// Deliberately sequential: `grad[v] += diff` scatters to arbitrary rows,
/// and a deterministic result (threads 1 ≡ N, bit for bit) matters more
/// than parallelising a sweep that is already sub-linear in `m`.
/// Parallelism comes from running part-disjoint refinements concurrently
/// (see `mdbgp-stream`). Returns the number of changed vertices.
#[allow(clippy::too_many_arguments)]
pub fn matvec_delta(
    graph: &Graph,
    z: &[f64],
    z_prev: &mut [f64],
    scan: &[u32],
    grad: &mut [f64],
    move_tol: f64,
    stamp: u32,
    touched: &mut [u32],
) -> usize {
    let offsets = graph.raw_offsets();
    let targets = graph.raw_targets();
    let mut changed = 0usize;
    for &u in scan {
        let u = u as usize;
        let diff = z[u] - z_prev[u];
        if diff == 0.0 {
            continue;
        }
        changed += 1;
        z_prev[u] = z[u];
        let frontier = diff.abs() > move_tol;
        if frontier {
            touched[u] = stamp;
        }
        for &v in &targets[offsets[u]..offsets[u + 1]] {
            grad[v as usize] += diff;
            if frontier {
                touched[v as usize] = stamp;
            }
        }
    }
    changed
}

/// `Σ_{(u,v) ∈ E} x_u · x_v = ½ xᵀAx` — the relaxed objective `f(x)`
/// (up to the constant `m/2` the paper drops).
pub fn quadratic_form(graph: &Graph, x: &[f64]) -> f64 {
    graph
        .edges()
        .map(|(u, v)| x[u as usize] * x[v as usize])
        .sum()
}

/// Expected edge locality of the randomized rounding of a fractional `x`:
/// `E[locality] = Σ_edges (x_u x_v + 1) / (2m)` (paper §2). Returns 1.0 for
/// edgeless graphs.
pub fn expected_locality(graph: &Graph, x: &[f64]) -> f64 {
    let m = graph.num_edges();
    if m == 0 {
        return 1.0;
    }
    (quadratic_form(graph, x) + m as f64) / (2.0 * m as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::builder::graph_from_edges;
    use mdbgp_graph::gen;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matvec_matches_manual_triangle() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let x = [1.0, 2.0, 3.0];
        let mut out = [0.0; 3];
        matvec(&g, &x, &mut out);
        assert_eq!(out, [5.0, 4.0, 3.0]);
    }

    #[test]
    fn matvec_of_zero_vector_is_zero() {
        let g = gen::erdos_renyi(100, 300, &mut StdRng::seed_from_u64(1));
        let x = vec![0.0; 100];
        let mut out = vec![1.0; 100];
        matvec(&g, &x, &mut out);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = gen::erdos_renyi(10_000, 60_000, &mut rng);
        let x: Vec<f64> = (0..10_000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut seq = vec![0.0; 10_000];
        let mut par = vec![0.0; 10_000];
        matvec(&g, &x, &mut seq);
        for threads in [2, 3, 8] {
            matvec_parallel(&g, &x, &mut par, threads);
            for (a, b) in seq.iter().zip(&par) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn parallel_small_graph_falls_back() {
        let g = graph_from_edges(3, &[(0, 1)]);
        let mut out = [0.0; 3];
        matvec_parallel(&g, &[1.0, 2.0, 0.0], &mut out, 4);
        assert_eq!(out, [2.0, 1.0, 0.0]);
    }

    #[test]
    fn delta_update_tracks_full_matvec() {
        // Random walk of sparse updates: after every matvec_delta the
        // maintained gradient must match a fresh full mat-vec to fp noise.
        let mut rng = StdRng::seed_from_u64(9);
        let g = gen::erdos_renyi(300, 1200, &mut rng);
        let mut z: Vec<f64> = (0..300).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut z_prev = z.clone();
        let mut grad = vec![0.0; 300];
        matvec(&g, &z, &mut grad);
        let scan: Vec<u32> = (0..300).collect();
        let mut touched = vec![0u32; 300];
        for step in 1..=25u32 {
            // Move a handful of coordinates.
            for _ in 0..8 {
                let v = rng.gen_range(0..300usize);
                z[v] = rng.gen_range(-1.0..1.0);
            }
            let deg = delta_degree(&g, &z, &z_prev, &scan);
            let changed = matvec_delta(
                &g,
                &z,
                &mut z_prev,
                &scan,
                &mut grad,
                1e-6,
                step,
                &mut touched,
            );
            assert!(changed <= 8);
            assert!(deg <= g.raw_offsets()[300]);
            let mut fresh = vec![0.0; 300];
            matvec(&g, &z, &mut fresh);
            for (a, b) in grad.iter().zip(&fresh) {
                assert!((a - b).abs() < 1e-9, "drift {} vs {}", a, b);
            }
        }
        assert_eq!(z, z_prev);
    }

    #[test]
    fn delta_update_stamps_movers_and_their_neighbors() {
        // Path 0-1-2-3-4: move only vertex 2; 1, 2, 3 are the frontier.
        let g = gen::path(5);
        let z_old = vec![0.5; 5];
        let mut z = z_old.clone();
        z[2] = -0.5;
        let mut z_prev = z_old;
        let mut grad = vec![0.0; 5];
        matvec(&g, &z_prev, &mut grad);
        let scan: Vec<u32> = (0..5).collect();
        let mut touched = vec![0u32; 5];
        let changed = matvec_delta(&g, &z, &mut z_prev, &scan, &mut grad, 1e-6, 7, &mut touched);
        assert_eq!(changed, 1);
        assert_eq!(touched, vec![0, 7, 7, 7, 0]);
        // A sub-tolerance wiggle still propagates (exactness) but does not
        // enter the frontier.
        z[4] += 1e-9;
        let changed = matvec_delta(&g, &z, &mut z_prev, &scan, &mut grad, 1e-6, 8, &mut touched);
        assert_eq!(changed, 1);
        assert!(touched.iter().all(|&s| s != 8));
        let mut fresh = vec![0.0; 5];
        matvec(&g, &z, &mut fresh);
        for (a, b) in grad.iter().zip(&fresh) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn quadratic_form_counts_agreement() {
        let g = graph_from_edges(4, &[(0, 1), (2, 3), (1, 2)]);
        // Integral x: same-sign edge contributes +1, cut edge −1.
        let x = [1.0, 1.0, -1.0, -1.0];
        assert_eq!(quadratic_form(&g, &x), 1.0 + 1.0 - 1.0);
    }

    #[test]
    fn expected_locality_bounds() {
        let g = gen::cycle(10);
        let all_same = vec![1.0; 10];
        assert!((expected_locality(&g, &all_same) - 1.0).abs() < 1e-12);
        let zeros = vec![0.0; 10];
        assert!(
            (expected_locality(&g, &zeros) - 0.5).abs() < 1e-12,
            "x=0 → 50% in expectation"
        );
        assert_eq!(
            expected_locality(&mdbgp_graph::Graph::empty(3), &[0.0; 3]),
            1.0
        );
    }

    #[test]
    fn gradient_of_quadratic_form_is_ax() {
        // Finite-difference check: d f / d x_v = (Ax)_v for f = ½ xᵀ A x.
        let mut rng = StdRng::seed_from_u64(5);
        let g = gen::erdos_renyi(30, 100, &mut rng);
        let x: Vec<f64> = (0..30).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut grad = vec![0.0; 30];
        matvec(&g, &x, &mut grad);
        let h = 1e-6;
        for v in 0..30 {
            let mut xp = x.clone();
            xp[v] += h;
            let mut xm = x.clone();
            xm[v] -= h;
            let fd = (quadratic_form(&g, &xp) - quadratic_form(&g, &xm)) / (2.0 * h);
            assert!(
                (fd - grad[v]).abs() < 1e-5,
                "v={v}: fd={fd} grad={}",
                grad[v]
            );
        }
    }
}
