// Tight numeric loops in this crate frequently index several parallel
// arrays at once; rewriting them with zipped iterators obscures the
// kernels, so this pedantic lint is disabled crate-wide (perf lints stay).
#![allow(clippy::needless_range_loop)]

//! # mdbgp-core — the paper's `GD` algorithm
//!
//! Projected gradient descent for Multi-Dimensional Balanced Graph
//! Partitioning (Avdiukhin, Pupyrev, Yaroslavtsev — VLDB 2019, §2–3).
//!
//! For `k = 2` the problem is relaxed to maximizing `f(x) = ½ xᵀAx` over
//! `x ∈ K = B∞ ∩ ⋂_j S_j^ε`, where `A` is the adjacency matrix, `B∞` the
//! unit cube and `S_j^ε` the balance slab of weight dimension `j`. Each GD
//! iteration is
//!
//! 1. **noise** `z = x + N(0, η_t)` (only at `t = 0` in practice — the only
//!    saddle encountered is the origin, §3.2),
//! 2. **gradient ascent** `y = z + γ_t A z` (a sparse mat-vec, [`matvec`]),
//! 3. **projection** `x = argmin_{p ∈ K} ‖y − p‖₂` ([`projection`]).
//!
//! The iterate is finally rounded to ±1 by randomized rounding
//! ([`rounding`]) and `k`-way partitions are produced by recursive bisection
//! ([`recursive::GdPartitioner`], §3.3).
//!
//! The projection step — the paper's main technical contribution — comes in
//! the variants of Table 1: exact KKT-based projection (one-shot for d ≤ 2,
//! nested binary search for higher d, §2.2/App. A), one-shot and
//! fully-converged alternating projections, and Dykstra's algorithm (§3.1).

pub mod config;
pub mod feasible;
pub mod gd;
pub mod incremental;
pub mod kway;
pub mod matvec;
pub mod noise;
pub mod parallel;
pub mod projection;
pub mod recursive;
pub mod rounding;

pub use config::{GdConfig, NoiseSchedule, ProjectionMethod, StepSchedule};
pub use feasible::FeasibleRegion;
pub use gd::{
    bipartition, bipartition_warm, bipartition_warm_with, BipartitionResult, GdExit, GdRunStats,
    GdWorkspace, IterationRecord, SplitTarget, WarmStart, FRONTIER_TOL, GRAD_TRACE_CAP,
};
pub use incremental::{PairOutcome, PairRefinement};
pub use kway::KWayGdPartitioner;
pub use recursive::GdPartitioner;
