//! Configuration of the GD algorithm (paper §3, §4.3).

/// Which projection algorithm implements step 3 of each GD iteration
/// (paper §3.1, Table 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProjectionMethod {
    /// One pass of alternating projections per iteration: project onto each
    /// balance *hyperplane* `S_j^0` (not the slab — the paper found this
    /// gives better balance) and then onto the cube. The default: cheapest,
    /// and §4.3 shows it is competitive with exact projection.
    OneShotAlternating,
    /// Alternating projections run until convergence every iteration.
    /// Guaranteed to land in `K`, but not necessarily at the projection.
    AlternatingConverged,
    /// Dykstra's algorithm: converges to the exact projection.
    Dykstra,
    /// Exact KKT projection (§2.2): enumerate constraint sign patterns and
    /// solve each equality-constrained subproblem by nested binary search
    /// (one-shot breakpoint search for the innermost dimension).
    Exact,
}

/// Step-size policy `{γ_t}` (paper §3.2, §4.3 / Figure 8).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StepSchedule {
    /// Constant γ. The paper's "nonadaptive" baseline in Figure 9.
    Constant {
        /// The fixed gradient multiplier.
        gamma: f64,
    },
    /// Adaptive γ targeting a constant per-iteration progress
    /// `‖x(t+1) − x(t)‖₂ ≈ factor · √n / iterations` — `√n` is the distance
    /// from the origin to any integral solution, so `factor = 2` with 100
    /// iterations reproduces the paper's recommended `2·√n/100` step
    /// (Figure 8).
    FixedLength {
        /// Step length in units of `√n / iterations`.
        factor: f64,
    },
}

impl StepSchedule {
    /// Target Euclidean step length, or `None` for constant schedules.
    pub fn target_length(&self, n: usize, iterations: usize) -> Option<f64> {
        match *self {
            StepSchedule::Constant { .. } => None,
            StepSchedule::FixedLength { factor } => {
                Some(factor * (n as f64).sqrt() / iterations.max(1) as f64)
            }
        }
    }
}

/// Noise policy `{η_t}` (paper §2.1 step 1 and §3.2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseSchedule {
    /// Standard deviation of the Gaussian added at iteration 0. The paper
    /// observes the origin is the only saddle in practice, so `η_t = 0` for
    /// `t > 0`.
    pub initial_std: f64,
    /// Std-dev for later iterations (0 reproduces the paper's setting).
    pub later_std: f64,
}

impl NoiseSchedule {
    /// Noise std-dev at iteration `t`.
    pub fn std_at(&self, t: usize) -> f64 {
        if t == 0 {
            self.initial_std
        } else {
            self.later_std
        }
    }
}

impl Default for NoiseSchedule {
    fn default() -> Self {
        // Small symmetric kick; anything non-zero escapes x = 0. Scaled
        // per-coordinate so the noise vector has length ≈ 0.01·√n, well
        // below one adaptive step.
        Self {
            initial_std: 0.01,
            later_std: 0.0,
        }
    }
}

/// Full configuration of GD.
#[derive(Clone, Debug)]
pub struct GdConfig {
    /// Allowed relative imbalance ε of Definition 2.1.
    pub epsilon: f64,
    /// Number of gradient iterations `I` (the paper fixes 100).
    pub iterations: usize,
    pub step: StepSchedule,
    pub projection: ProjectionMethod,
    pub noise: NoiseSchedule,
    /// Vertex-fixing threshold (paper §3.2): coordinates with
    /// `|x_i| ≥ threshold` are frozen to ±1 and leave the active set.
    /// `None` disables fixing (the Figure 9 ablation).
    pub fixing_threshold: Option<f64>,
    /// Randomized-rounding attempts; the most balanced rounding wins.
    pub rounding_attempts: usize,
    /// Upper bound on alternating-projection passes in the final
    /// feasibility clean-up after the gradient loop.
    pub final_projection_passes: usize,
    /// Worker threads for the gradient mat-vec (1 = sequential).
    pub threads: usize,
    /// Record per-iteration locality/imbalance (Figures 8–10); costs one
    /// extra O(m) scan per iteration.
    pub track_history: bool,
    /// Full mat-vec recompute cadence of the delta-maintained gradient
    /// (see [`crate::gd::bipartition_warm`]): between full recomputes the
    /// gradient is updated by propagating sparse `z[u] − z_prev[u]` diffs
    /// to neighbors, and every `grad_recompute_period` iterations (plus
    /// after any step-size retry) a full `A·z` bounds the floating-point
    /// drift. `1` disables the delta path entirely (a full mat-vec every
    /// iteration — the pre-incremental behaviour).
    pub grad_recompute_period: usize,
    /// Diagnostic: after every gradient update, recompute the full mat-vec
    /// into scratch and record the worst absolute deviation of the
    /// delta-maintained gradient in
    /// [`GdRunStats::grad_drift_max`](crate::gd::GdRunStats::grad_drift_max).
    /// Costs one extra O(m) pass per iteration — test harnesses only.
    pub grad_check: bool,
}

impl GdConfig {
    /// Paper defaults: 100 iterations, step `2·√n/100`, one-shot alternating
    /// projection, noise only at `t = 0`, vertex fixing on.
    pub fn with_epsilon(epsilon: f64) -> Self {
        Self {
            epsilon,
            ..Self::default()
        }
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.epsilon >= 0.0 && self.epsilon < 1.0) {
            return Err(format!("epsilon must be in [0, 1), got {}", self.epsilon));
        }
        if self.iterations == 0 {
            return Err("iterations must be positive".into());
        }
        if let Some(t) = self.fixing_threshold {
            if !(0.0 < t && t <= 1.0) {
                return Err(format!("fixing threshold must be in (0, 1], got {t}"));
            }
        }
        if self.rounding_attempts == 0 {
            return Err("rounding_attempts must be positive".into());
        }
        if self.threads == 0 {
            return Err("threads must be positive".into());
        }
        if self.grad_recompute_period == 0 {
            return Err("grad_recompute_period must be positive".into());
        }
        if let StepSchedule::Constant { gamma } = self.step {
            if gamma <= 0.0 {
                return Err(format!("constant step gamma must be positive, got {gamma}"));
            }
        }
        Ok(())
    }
}

impl Default for GdConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.03,
            iterations: 100,
            step: StepSchedule::FixedLength { factor: 2.0 },
            projection: ProjectionMethod::OneShotAlternating,
            noise: NoiseSchedule::default(),
            fixing_threshold: Some(0.99),
            rounding_attempts: 16,
            final_projection_passes: 500,
            threads: 1,
            track_history: false,
            grad_recompute_period: 20,
            grad_check: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(GdConfig::default().validate().is_ok());
    }

    #[test]
    fn target_length_matches_paper_formula() {
        let s = StepSchedule::FixedLength { factor: 2.0 };
        let len = s.target_length(10_000, 100).unwrap();
        assert!((len - 2.0).abs() < 1e-12, "2·√10000/100 = 2, got {len}");
        assert_eq!(
            StepSchedule::Constant { gamma: 0.1 }.target_length(100, 10),
            None
        );
    }

    #[test]
    fn noise_only_at_first_iteration_by_default() {
        let n = NoiseSchedule::default();
        assert!(n.std_at(0) > 0.0);
        assert_eq!(n.std_at(1), 0.0);
        assert_eq!(n.std_at(99), 0.0);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn validation_rejects_bad_values() {
        let mut c = GdConfig::default();
        c.epsilon = 1.5;
        assert!(c.validate().is_err());
        c = GdConfig::default();
        c.iterations = 0;
        assert!(c.validate().is_err());
        c = GdConfig::default();
        c.fixing_threshold = Some(0.0);
        assert!(c.validate().is_err());
        c = GdConfig::default();
        c.step = StepSchedule::Constant { gamma: -1.0 };
        assert!(c.validate().is_err());
        c = GdConfig::default();
        c.threads = 0;
        assert!(c.validate().is_err());
        c = GdConfig::default();
        c.grad_recompute_period = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn delta_gradient_defaults() {
        let c = GdConfig::default();
        assert_eq!(
            c.grad_recompute_period, 20,
            "the exemplar recomputes fully every 20 iterations"
        );
        assert!(!c.grad_check);
    }
}
