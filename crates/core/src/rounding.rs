//! Randomized rounding of the fractional solution (paper §2, §2.1 step 7–9).
//!
//! Each vertex goes to part `V_1` independently with probability
//! `(x_i + 1)/2`; the expected objective equals the fractional objective and
//! the balance constraints hold with high probability by concentration. We
//! harden the "with high probability" part for small instances by taking the
//! most balanced of several attempts and then running a greedy repair pass
//! that flips the most-fractional vertices toward feasibility (this never
//! changes the expectation argument — it only tightens balance).

use crate::feasible::FeasibleRegion;
use rand::Rng;

/// Randomized rounding: `P[sign_i = +1] = (x_i + 1)/2`.
pub fn round_once<R: Rng>(x: &[f64], rng: &mut R) -> Vec<i8> {
    x.iter()
        .map(|&xi| {
            let p = (xi + 1.0) * 0.5;
            if rng.gen::<f64>() < p {
                1
            } else {
                -1
            }
        })
        .collect()
}

/// Deterministic sign rounding (ties to +1) — used for mid-run metrics.
pub fn round_signs(x: &[f64]) -> Vec<i8> {
    x.iter().map(|&xi| if xi >= 0.0 { 1 } else { -1 }).collect()
}

/// Maximum normalized slab violation of an integral assignment.
pub fn violation_of(signs: &[i8], region: &FeasibleRegion) -> f64 {
    let x: Vec<f64> = signs.iter().map(|&s| s as f64).collect();
    region.max_violation(&x)
}

/// Full rounding pipeline: best of `attempts` randomized roundings,
/// followed by greedy repair. Returns the signs and their final violation
/// (0.0 means every balance constraint holds).
pub fn round_balanced<R: Rng>(
    x: &[f64],
    region: &FeasibleRegion,
    attempts: usize,
    rng: &mut R,
) -> (Vec<i8>, f64) {
    assert!(attempts > 0);
    let mut best: Option<(f64, Vec<i8>)> = None;
    for _ in 0..attempts {
        let signs = round_once(x, rng);
        let v = violation_of(&signs, region);
        if v == 0.0 {
            return (signs, 0.0);
        }
        if best.as_ref().is_none_or(|(bv, _)| v < *bv) {
            best = Some((v, signs));
        }
    }
    let (_, mut signs) = best.unwrap();
    let v = repair(&mut signs, x, region);
    (signs, v)
}

/// Greedy repair: while some slab is violated, flip the vertex that (a) has
/// the sign that reduces the worst violation, (b) is as fractional as
/// possible (small `|x_i|`, so flipping it costs the least objective), and
/// (c) strictly reduces the worst normalized violation. Returns the final
/// violation.
pub fn repair(signs: &mut [i8], x: &[f64], region: &FeasibleRegion) -> f64 {
    let n = signs.len();
    let d = region.dims();
    // Current slab sums.
    let mut dots: Vec<f64> = (0..d)
        .map(|j| {
            region
                .weight(j)
                .iter()
                .zip(signs.iter())
                .map(|(w, &s)| w * s as f64)
                .sum()
        })
        .collect();
    // Vertices ordered by fractionality (most fractional first).
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        x[a as usize]
            .abs()
            .partial_cmp(&x[b as usize].abs())
            .unwrap()
    });

    let worst = |dots: &[f64]| -> (f64, usize) {
        let mut w = (0.0f64, 0usize);
        for j in 0..d {
            let excess = if dots[j] > region.upper(j) {
                dots[j] - region.upper(j)
            } else if dots[j] < region.lower(j) {
                dots[j] - region.lower(j)
            } else {
                0.0
            };
            let norm = excess.abs() / region.total(j).max(1.0);
            if norm > w.0 {
                w = (norm, j);
            }
        }
        w
    };

    let max_flips = 4 * n + 16;
    for _ in 0..max_flips {
        let (violation, j_star) = worst(&dots);
        if violation == 0.0 {
            return 0.0;
        }
        // Push dots[j_star] back toward its slab: flipping a vertex with
        // sign s changes dot_j by −2·w_j(i)·s.
        let excess = if dots[j_star] > region.upper(j_star) {
            dots[j_star] - region.upper(j_star)
        } else {
            dots[j_star] - region.lower(j_star)
        };
        let needed_sign: i8 = if excess > 0.0 { 1 } else { -1 };
        // First candidate (most fractional) that strictly improves.
        let mut flipped = false;
        for &i in &order {
            let i = i as usize;
            if signs[i] != needed_sign {
                continue;
            }
            let mut new_dots = dots.clone();
            for (j, nd) in new_dots.iter_mut().enumerate() {
                *nd -= 2.0 * region.weight(j)[i] * signs[i] as f64;
            }
            if worst(&new_dots).0 < violation - 1e-15 {
                signs[i] = -signs[i];
                dots = new_dots;
                flipped = true;
                break;
            }
        }
        if !flipped {
            return violation; // no single flip helps; give up
        }
    }
    worst(&dots).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn unit_region(n: usize, eps: f64) -> FeasibleRegion {
        FeasibleRegion::symmetric(vec![vec![1.0; n]], eps)
    }

    #[test]
    fn integral_input_rounds_to_itself() {
        let x = vec![1.0, -1.0, 1.0, -1.0];
        let mut rng = StdRng::seed_from_u64(0);
        let signs = round_once(&x, &mut rng);
        assert_eq!(signs, vec![1, -1, 1, -1]);
    }

    #[test]
    fn probabilities_match_fractional_values() {
        let x = vec![0.5; 40_000];
        let mut rng = StdRng::seed_from_u64(3);
        let signs = round_once(&x, &mut rng);
        let plus = signs.iter().filter(|&&s| s == 1).count() as f64 / 40_000.0;
        assert!(
            (plus - 0.75).abs() < 0.01,
            "P[+1] = (0.5+1)/2 = 0.75, got {plus}"
        );
    }

    #[test]
    fn round_balanced_achieves_feasibility_on_balanced_fraction() {
        let n = 2000;
        let x = vec![0.0; n];
        let region = unit_region(n, 0.05);
        let mut rng = StdRng::seed_from_u64(5);
        let (signs, v) = round_balanced(&x, &region, 8, &mut rng);
        assert_eq!(v, 0.0, "ε = 5% over 2000 vertices must be satisfiable");
        assert_eq!(signs.len(), n);
    }

    #[test]
    fn repair_fixes_adversarial_rounding() {
        // All +1 start, region demands near-perfect balance.
        let n = 100;
        let x = vec![0.0; n];
        let region = unit_region(n, 0.02);
        let mut signs = vec![1i8; n];
        let v = repair(&mut signs, &x, &region);
        assert_eq!(v, 0.0, "repair must reach balance");
        let plus = signs.iter().filter(|&&s| s == 1).count();
        assert!((49..=51).contains(&plus), "plus = {plus}");
    }

    #[test]
    fn repair_prefers_fractional_vertices() {
        // Vertices 0..4 are fractional, the rest integral; the region
        // forces one flip, which must come from the fractional set.
        let mut x = vec![0.0; 10];
        for i in 5..10 {
            x[i] = 1.0;
        }
        let region = unit_region(10, 0.21); // slab [-2.1, 2.1]
        let mut signs = vec![1i8, 1, 1, 1, -1, 1, 1, 1, 1, 1]; // sum 8
        repair(&mut signs, &x, &region);
        for i in 5..10 {
            assert_eq!(
                signs[i], 1,
                "integral vertex {i} must not flip before fractional ones"
            );
        }
    }

    #[test]
    fn multi_dim_repair() {
        let n = 200;
        let w1 = vec![1.0; n];
        let w2: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        let region = FeasibleRegion::symmetric(vec![w1, w2], 0.05);
        let x = vec![0.0; n];
        let mut rng = StdRng::seed_from_u64(11);
        let (_, v) = round_balanced(&x, &region, 4, &mut rng);
        assert!(v < 0.01, "violation {v}");
    }

    #[test]
    fn violation_of_detects_imbalance() {
        let region = unit_region(4, 0.0);
        assert!(violation_of(&[1, 1, 1, 1], &region) > 0.9);
        assert_eq!(violation_of(&[1, 1, -1, -1], &region), 0.0);
    }

    #[test]
    fn round_signs_deterministic() {
        assert_eq!(round_signs(&[0.3, -0.2, 0.0]), vec![1, -1, 1]);
    }
}
