//! Scoped-thread parallel primitives shared by the GD kernels and the
//! streaming layer.
//!
//! Everything in the workspace that goes multi-threaded follows the same
//! pattern: split an index range into a few contiguous chunks, hand each
//! chunk to a `std::thread::scope` worker that owns a **disjoint** slice of
//! the output, and join. This module extracts that pattern (it originated
//! in the [`crate::matvec`] kernel) so the mat-vec, the pairwise
//! refinement scheduler of `mdbgp-stream`, and the LDG placement sweep all
//! share one implementation:
//!
//! * [`even_boundaries`] / [`prefix_boundaries`] — chunking policies
//!   (equal index counts vs. equal *work* measured by a monotone prefix
//!   array such as CSR offsets);
//! * [`for_each_chunk_mut`] — chunked for-each over disjoint `&mut` slices
//!   of one output buffer (the mat-vec shape);
//! * [`fold_ranges`] — map over disjoint index ranges, returning one
//!   accumulator per chunk for the caller to reduce (the placement-scoring
//!   shape);
//! * [`par_map`] — work-stealing map over a slice of independent items with
//!   uneven costs (the refine-a-set-of-part-pairs shape).
//!
//! All helpers degrade to the obvious sequential loop when `threads <= 1`
//! or the input is too small to amortize a spawn, so callers never need a
//! separate serial code path. The thread count is plumbed from
//! configuration ([`crate::GdConfig::threads`],
//! `mdbgp_stream::StreamConfig::threads`) — there is no global pool;
//! scoped threads are spawned per call, which measures at ~10µs per spawn
//! and keeps the crate dependency-free.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Splits `0..n` into at most `threads` contiguous chunks of near-equal
/// length. Returns chunk boundaries `b_0 = 0 < b_1 < … < b_c = n`
/// (so `c <= threads`, and `c < threads` when `n < threads`). `n = 0`
/// yields `[0]` — no chunks.
pub fn even_boundaries(n: usize, threads: usize) -> Vec<usize> {
    let t = threads.max(1).min(n.max(1));
    let mut b: Vec<usize> = (0..=t).map(|i| i * n / t).collect();
    b.dedup();
    if n == 0 {
        b = vec![0];
    }
    b
}

/// Splits `0..n` into fixed-size chunks of `chunk` items (the last chunk
/// may be short). Unlike [`even_boundaries`], the split depends only on
/// `n` and `chunk` — never on the thread count — so a speculative stage
/// that assigns work chunk-locally (e.g. the streaming layer's parallel
/// placement, where each chunk holds its own capacity reservations) makes
/// bitwise-identical decisions whether one worker processes every chunk or
/// sixteen workers steal them. `n = 0` yields `[0]` — no chunks.
///
/// # Panics
/// Panics if `chunk` is zero. A zero chunk size is always a caller bug (a
/// miscomputed constant or an uninitialized config), and silently clamping
/// it to 1 would turn a batch-sized stage into n single-item chunks — the
/// determinism contract would hold, but the fan-out would quietly become
/// pathological.
pub fn fixed_boundaries(n: usize, chunk: usize) -> Vec<usize> {
    assert!(chunk > 0, "fixed_boundaries: chunk size must be positive");
    let mut b: Vec<usize> = (0..n).step_by(chunk).collect();
    b.push(n);
    b
}

/// Splits `0..prefix.len()-1` rows into at most `threads` chunks of
/// near-equal *work*, where the work of rows `a..b` is
/// `prefix[b] - prefix[a]` for a monotone `prefix` array (e.g. CSR row
/// offsets: equal edge counts per chunk, so a few hub rows don't serialize
/// the pass). Rows with zero work are distributed with their neighbours.
pub fn prefix_boundaries(prefix: &[usize], threads: usize) -> Vec<usize> {
    assert!(!prefix.is_empty(), "prefix array needs at least one entry");
    let n = prefix.len() - 1;
    let total = prefix[n] - prefix[0];
    let t = threads.max(1);
    if t == 1 || n == 0 || total == 0 {
        return even_boundaries(n, t);
    }
    let per_chunk = (total / t).max(1);
    let mut boundaries = Vec::with_capacity(t + 1);
    boundaries.push(0usize);
    let mut next_quota = prefix[0] + per_chunk;
    for v in 0..n {
        if prefix[v + 1] >= next_quota && boundaries.len() < t {
            boundaries.push(v + 1);
            next_quota = prefix[v + 1] + per_chunk;
        }
    }
    boundaries.push(n);
    boundaries.dedup();
    boundaries
}

/// Runs `f(chunk_range, out_chunk)` over disjoint `&mut` slices of `out`,
/// one scoped thread per chunk. `boundaries` must start at 0, end at
/// `out.len()`, and be strictly increasing (as produced by
/// [`even_boundaries`] / [`prefix_boundaries`]). With a single chunk the
/// call runs inline on the current thread.
pub fn for_each_chunk_mut<T, F>(out: &mut [T], boundaries: &[usize], f: F)
where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    assert!(boundaries.first() == Some(&0) && boundaries.last() == Some(&out.len()));
    if boundaries.len() <= 2 {
        return f(0..out.len(), out);
    }
    let mut chunks: Vec<&mut [T]> = Vec::with_capacity(boundaries.len() - 1);
    let mut rest = out;
    for w in boundaries.windows(2) {
        let (head, tail) = rest.split_at_mut(w[1] - w[0]);
        chunks.push(head);
        rest = tail;
    }
    std::thread::scope(|scope| {
        for (i, chunk) in chunks.into_iter().enumerate() {
            let f = &f;
            let range = boundaries[i]..boundaries[i + 1];
            scope.spawn(move || f(range, chunk));
        }
    });
}

/// Maps `fold` over disjoint index ranges and returns one accumulator per
/// chunk, in range order; the caller reduces them. Sequential (single
/// accumulator) when `threads <= 1` or `n < min_len`.
pub fn fold_ranges<R, F>(n: usize, threads: usize, min_len: usize, fold: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    if threads <= 1 || n < min_len {
        return vec![fold(0..n)];
    }
    let boundaries = even_boundaries(n, threads);
    if boundaries.len() <= 2 {
        return vec![fold(0..n)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = boundaries
            .windows(2)
            .map(|w| {
                let fold = &fold;
                let range = w[0]..w[1];
                scope.spawn(move || fold(range))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Like [`fold_ranges`], but chunks rows by equal *work* via
/// [`prefix_boundaries`] (e.g. CSR offsets: equal edge counts per chunk),
/// so one hub row cannot serialize the fold on a skewed graph. Sequential
/// when `threads <= 1` or the total work `prefix[n] - prefix[0]` is below
/// `min_work`.
pub fn fold_prefix_ranges<R, F>(
    prefix: &[usize],
    threads: usize,
    min_work: usize,
    fold: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    assert!(!prefix.is_empty(), "prefix array needs at least one entry");
    let n = prefix.len() - 1;
    let total = prefix[n] - prefix[0];
    if threads <= 1 || total < min_work {
        return vec![fold(0..n)];
    }
    let boundaries = prefix_boundaries(prefix, threads);
    if boundaries.len() <= 2 {
        return vec![fold(0..n)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = boundaries
            .windows(2)
            .map(|w| {
                let fold = &fold;
                let range = w[0]..w[1];
                scope.spawn(move || fold(range))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Work-stealing map: applies `f` to every item and returns the results in
/// input order. Items are claimed one at a time off a shared atomic
/// counter, so a few expensive items (e.g. large part pairs) don't
/// serialize behind a static split. Sequential for `threads <= 1` or fewer
/// than two items.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() < 2 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let next = AtomicUsize::new(0);
    let workers = threads.min(items.len());
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (next, f) = (&next, &f);
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            return local;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    tagged.sort_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// [`par_map`] with per-worker mutable state: `states` supplies one `&mut S`
/// per worker (e.g. a reusable [`crate::gd::GdWorkspace`]), and `f` receives
/// the claiming worker's state alongside the item. Results come back in
/// input order regardless of which worker produced them, and `f` must not
/// let the state influence its output (scratch only) — which worker claims
/// which item is scheduling-dependent. Sequential with `states[0]` when only
/// one state is supplied or there are fewer than two items; at most
/// `states.len()` workers run.
///
/// # Panics
/// Panics if `states` is empty.
pub fn par_map_with<T, R, S, F>(items: &[T], states: &mut [S], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    S: Send,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    assert!(!states.is_empty(), "par_map_with needs at least one state");
    if states.len() == 1 || items.len() < 2 {
        let state = &mut states[0];
        return items
            .iter()
            .enumerate()
            .map(|(i, x)| f(state, i, x))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let workers = states.len().min(items.len());
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = states[..workers]
            .iter_mut()
            .map(|state| {
                let (next, f) = (&next, &f);
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            return local;
                        }
                        local.push((i, f(state, i, &items[i])));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    tagged.sort_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_boundaries_cover_and_balance() {
        assert_eq!(even_boundaries(10, 1), vec![0, 10]);
        assert_eq!(even_boundaries(10, 2), vec![0, 5, 10]);
        assert_eq!(even_boundaries(0, 4), vec![0]);
        let b = even_boundaries(7, 3);
        assert_eq!((b[0], *b.last().unwrap()), (0, 7));
        for w in b.windows(2) {
            assert!(w[1] - w[0] >= 2 && w[1] - w[0] <= 3);
        }
        // More threads than items: one item per chunk, no empty chunks.
        let b = even_boundaries(3, 8);
        assert_eq!(b, vec![0, 1, 2, 3]);
    }

    #[test]
    fn fixed_boundaries_depend_only_on_chunk_size() {
        assert_eq!(fixed_boundaries(10, 4), vec![0, 4, 8, 10]);
        assert_eq!(fixed_boundaries(8, 4), vec![0, 4, 8]);
        assert_eq!(fixed_boundaries(3, 4), vec![0, 3]);
        assert_eq!(fixed_boundaries(0, 4), vec![0]);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn fixed_boundaries_rejects_zero_chunk() {
        fixed_boundaries(5, 0);
    }

    #[test]
    fn prefix_boundaries_balance_work_not_rows() {
        // One hub row with 90 units then 9 rows of 1 unit: 2 chunks must
        // isolate the hub.
        let mut prefix = vec![0usize, 90];
        for i in 0..9 {
            prefix.push(91 + i);
        }
        let b = prefix_boundaries(&prefix, 2);
        assert_eq!(b.first(), Some(&0));
        assert_eq!(b.last(), Some(&10));
        assert!(b.contains(&1), "hub row must end the first chunk: {b:?}");
        // Degenerate shapes fall back cleanly.
        assert_eq!(prefix_boundaries(&[0, 0, 0], 4), vec![0, 1, 2]);
        assert_eq!(prefix_boundaries(&[5], 4), vec![0]);
    }

    #[test]
    fn for_each_chunk_mut_writes_disjointly() {
        let mut out = vec![0usize; 100];
        let b = even_boundaries(100, 4);
        for_each_chunk_mut(&mut out, &b, |range, chunk| {
            for (i, slot) in range.clone().zip(chunk.iter_mut()) {
                *slot = i * i;
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * i);
        }
        // Single chunk runs inline.
        let mut tiny = vec![0usize; 3];
        for_each_chunk_mut(&mut tiny, &[0, 3], |_, chunk| chunk.fill(7));
        assert_eq!(tiny, vec![7, 7, 7]);
    }

    #[test]
    fn fold_ranges_partitions_the_sum() {
        let data: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 5] {
            let partials = fold_ranges(data.len(), threads, 8, |r| data[r].iter().sum::<u64>());
            assert_eq!(partials.iter().sum::<u64>(), 499_500);
            if threads > 1 {
                assert!(partials.len() > 1);
            }
        }
        // Below min_len: one sequential accumulator.
        assert_eq!(fold_ranges(4, 8, 100, |r| r.len()), vec![4]);
    }

    #[test]
    fn fold_prefix_ranges_balances_by_work() {
        // CSR-like offsets: a 900-edge hub row then 100 rows of 1 edge.
        let mut prefix = vec![0usize, 900];
        for i in 0..100 {
            prefix.push(901 + i);
        }
        let work: Vec<usize> = prefix.windows(2).map(|w| w[1] - w[0]).collect();
        for threads in [1, 2, 4] {
            let partials =
                fold_prefix_ranges(&prefix, threads, 64, |r| work[r].iter().sum::<usize>());
            assert_eq!(partials.iter().sum::<usize>(), 1000, "threads {threads}");
            if threads > 1 {
                // The hub must sit alone in its chunk.
                assert_eq!(partials[0], 900);
            }
        }
        // Below min_work: sequential.
        assert_eq!(fold_prefix_ranges(&[0, 1, 2], 4, 100, |r| r.len()), vec![2]);
    }

    #[test]
    fn par_map_preserves_order_under_uneven_cost() {
        let items: Vec<usize> = (0..50).collect();
        let out = par_map(&items, 4, |i, &x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            (i, x * 2)
        });
        for (i, &(j, doubled)) in out.iter().enumerate() {
            assert_eq!(i, j);
            assert_eq!(doubled, i * 2);
        }
        assert_eq!(par_map(&items, 1, |_, &x| x), items);
        let one = [41usize];
        assert_eq!(par_map(&one, 8, |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn par_map_with_threads_state_and_preserves_order() {
        let items: Vec<usize> = (0..64).collect();
        // Each worker counts its claims into its own state; results must
        // still come back in input order and every item is claimed once.
        let mut states = vec![0usize; 4];
        let out = par_map_with(&items, &mut states, |claims, i, &x| {
            *claims += 1;
            if x % 5 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
            (i, x * 3)
        });
        for (i, &(j, tripled)) in out.iter().enumerate() {
            assert_eq!(i, j);
            assert_eq!(tripled, i * 3);
        }
        assert_eq!(states.iter().sum::<usize>(), items.len());

        // Single state: sequential, all claims land on states[0].
        let mut solo = vec![0usize];
        let out = par_map_with(&items, &mut solo, |claims, _, &x| {
            *claims += 1;
            x
        });
        assert_eq!(out, items);
        assert_eq!(solo[0], items.len());
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn par_map_with_rejects_empty_states() {
        let mut states: Vec<usize> = Vec::new();
        par_map_with(&[1, 2, 3], &mut states, |_, _, &x: &i32| x);
    }
}
