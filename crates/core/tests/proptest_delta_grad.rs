//! Equivalence harness for the delta-maintained gradient.
//!
//! The GD hot path keeps `∇f = A·z` current by propagating sparse
//! `z − z_prev` diffs instead of recomputing the full mat-vec every
//! iteration (see `docs/ARCHITECTURE.md`). [`GdConfig::grad_check`] runs
//! the full mat-vec *alongside* every evaluation and records the worst
//! absolute deviation in [`GdRunStats::grad_drift_max`] — these
//! properties pin that deviation below `1e-9` across warm-started
//! `refine_pair` runs on randomized mixed-churn states (drifted weights,
//! cross-assigned vertices, random frozen masks), and pin workspace reuse
//! as behaviorally invisible. The recompute cadence itself is unit-tested
//! next to the loop (`gd::tests::recompute_cadence_is_pinned`).

use mdbgp_core::{GdConfig, GdPartitioner, GdWorkspace};
use mdbgp_graph::{gen, Partition, VertexWeights};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A randomized "post-batch" refinement state: a planted two-community
/// graph whose assignment has been churned (`flips` vertices on the wrong
/// side), with jittered weights standing in for weight drift and a random
/// subset of vertices frozen (as the streaming engine freezes everything
/// far from the update).
struct ChurnedPair {
    graph: mdbgp_graph::Graph,
    weights: VertexWeights,
    partition: Partition,
    frozen: Vec<bool>,
}

fn churned_pair(seed: u64, half: usize, flips: usize, frozen_frac: f64) -> ChurnedPair {
    let graph = gen::two_cliques(half, 3);
    let n = 2 * half;
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = VertexWeights::from_vectors(vec![
        vec![1.0; n],
        (0..n).map(|_| rng.gen_range(0.5..1.5)).collect(),
    ]);
    let mut parts: Vec<u32> = (0..n).map(|v| u32::from(v >= half)).collect();
    for _ in 0..flips {
        let v = rng.gen_range(0..n);
        parts[v] ^= 1;
    }
    let frozen = (0..n).map(|_| rng.gen_bool(frozen_frac)).collect();
    ChurnedPair {
        graph,
        weights,
        partition: Partition::new(parts, 2),
        frozen,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The maintained gradient never drifts measurably from a full
    /// recompute, whatever mix of churn, drift and freezing the stream
    /// throws at a pair.
    #[test]
    fn delta_gradient_matches_full_matvec(
        seed in 0u64..10_000,
        half in 30usize..70,
        flips in 1usize..10,
        frozen_frac in 0.0f64..0.8,
    ) {
        let s = churned_pair(seed, half, flips, frozen_frac);
        let cfg = GdConfig {
            iterations: 30,
            grad_check: true,
            ..GdConfig::with_epsilon(0.05)
        };
        let gd = GdPartitioner::new(cfg);
        let r = gd
            .refine_pair(&s.graph, &s.weights, &s.partition, (0, 1), &s.frozen, seed)
            .unwrap();
        prop_assert!(
            r.gd.grad_drift_max <= 1e-9,
            "delta gradient drifted {} from the full mat-vec",
            r.gd.grad_drift_max
        );
        if r.gd.iterations > 0 {
            prop_assert!(r.gd.full_recomputes >= 1, "iteration 0 must be full");
        }
        prop_assert!(r.cut_after <= r.cut_before, "refine_pair never regresses the cut");
    }

    /// Reusing a dirty [`GdWorkspace`] across solves is invisible: the
    /// second run over the same state reproduces the first bit-for-bit.
    #[test]
    fn workspace_reuse_is_invisible(
        seed in 0u64..10_000,
        half in 30usize..60,
        flips in 1usize..8,
    ) {
        let s = churned_pair(seed, half, flips, 0.3);
        let cfg = GdConfig {
            iterations: 25,
            grad_check: true,
            ..GdConfig::with_epsilon(0.05)
        };
        let gd = GdPartitioner::new(cfg);
        let mut ws = GdWorkspace::new();
        let first = gd
            .refine_pair_with(&mut ws, &s.graph, &s.weights, &s.partition, (0, 1), &s.frozen, seed)
            .unwrap();
        // Same inputs through the now-dirty workspace.
        let second = gd
            .refine_pair_with(&mut ws, &s.graph, &s.weights, &s.partition, (0, 1), &s.frozen, seed)
            .unwrap();
        prop_assert_eq!(&first.moves, &second.moves);
        prop_assert_eq!(first.cut_after, second.cut_after);
        prop_assert_eq!(first.outcome, second.outcome);
        prop_assert_eq!(first.gd, second.gd);
        prop_assert!(second.gd.grad_drift_max <= 1e-9);
    }
}
