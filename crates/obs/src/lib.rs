//! `mdbgp-obs` — zero-dependency observability core for the mdbgp stack.
//!
//! Three cooperating pieces, all allocation-light and offline-buildable:
//!
//! * [`MetricsRegistry`] — named **counters** (monotonic `u64`), **gauges**
//!   (`f64` last-write-wins), and fixed-log2-bucket **histograms** with
//!   p50/p90/p99/max summaries. A disabled registry early-returns from every
//!   recording call.
//! * [`SpanTree`] + [`SpanGuard`] — RAII wall-clock span timers. Guards nest:
//!   opening `"refine"` while `"ingest"` is open produces the dotted path
//!   `ingest.refine` when the tree is flattened. Repeated spans with the same
//!   name under the same parent merge (count += 1, time accumulates).
//! * Event **journal** — a bounded ring buffer of structured events with
//!   monotonic sequence numbers; once full, the oldest events are dropped and
//!   counted, never silently lost.
//!
//! # Metric naming scheme
//!
//! Names are dotted `subsystem.stage.metric` paths, e.g.
//! `stream.place.conflicts` or `core.gd.refine_iterations`. Span-derived
//! latency histograms are auto-named `span.<dotted.path>_us`.
//!
//! # Determinism convention
//!
//! A metric whose name ends in `_us`, `_ms`, or `_secs` is **time-valued**
//! and excluded from the [`MetricsRegistry::deterministic_json`] view;
//! everything else must be identical across thread counts on the same input
//! (the stream crate property-tests this). The convention is self-maintaining:
//! naming a metric correctly *is* classifying it.
//!
//! # Histogram bucket layout
//!
//! Bucket 0 holds the value `0`; bucket `i ≥ 1` holds values whose bit length
//! is `i`, i.e. the range `[2^(i-1), 2^i - 1]`. `quantile(q)` returns the
//! upper bound of the bucket containing the q-th ranked observation, clamped
//! to the exact observed maximum — so `p50 ≤ p90 ≤ p99 ≤ max` holds by
//! construction and a histogram never over-reports its tail.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Instant;

/// Number of log2 buckets: one for zero plus one per possible bit length.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Ring-buffer capacity of the event journal.
pub const JOURNAL_CAPACITY: usize = 256;

/// Returns true when `name` is time-valued by the naming convention
/// (`_us` / `_ms` / `_secs` suffix) and therefore excluded from the
/// deterministic view.
pub fn is_time_valued(name: &str) -> bool {
    name.ends_with("_us") || name.ends_with("_ms") || name.ends_with("_secs")
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Fixed-log2-bucket histogram over `u64` observations.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

/// Point-in-time quantile summary of a [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max: u64,
}

impl Histogram {
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Upper bound of bucket `i` (inclusive).
    fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Bucket-upper-bound quantile, clamped to the exact observed max.
    /// `q` is in `[0, 1]`; an empty histogram reports 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max,
        }
    }
}

// ---------------------------------------------------------------------------
// Shared (thread-safe) histogram
// ---------------------------------------------------------------------------

/// Lock-free, multi-writer companion to [`Histogram`] for recording from
/// concurrent readers (e.g. serving-path lookup latency): every recording
/// call is a handful of relaxed atomic adds on a `&self` receiver, so it
/// can sit behind an `Arc` shared across threads while the single-threaded
/// [`MetricsRegistry`] stays lock-free on its owner's side.
///
/// [`Self::snapshot`] materializes a plain [`Histogram`] for
/// [`MetricsRegistry::histogram_set`]. The snapshot is not a linearizable
/// cut under concurrent writes — bucket counts, sum and max are read
/// independently — but each is monotone, and `count` is derived from the
/// bucket sum so the quantile walk is always internally consistent (the
/// summary's `p50 ≤ p99 ≤ max` invariant cannot tear).
#[derive(Debug)]
pub struct SharedHistogram {
    buckets: [std::sync::atomic::AtomicU64; HISTOGRAM_BUCKETS],
    sum: std::sync::atomic::AtomicU64,
    max: std::sync::atomic::AtomicU64,
}

impl Default for SharedHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedHistogram {
    pub fn new() -> Self {
        use std::sync::atomic::AtomicU64;
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Safe to call from any number of threads.
    pub fn observe(&self, v: u64) {
        use std::sync::atomic::Ordering::Relaxed;
        self.buckets[Histogram::bucket_of(v)].fetch_add(1, Relaxed);
        // Saturate like `Histogram::observe` (fetch_add would wrap): CAS
        // loop, effectively uncontended at serving-path rates.
        let mut cur = self.sum.load(Relaxed);
        loop {
            let next = cur.saturating_add(v);
            match self.sum.compare_exchange_weak(cur, next, Relaxed, Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.max.fetch_max(v, Relaxed);
    }

    /// Observations recorded so far (sum of bucket counts).
    pub fn count(&self) -> u64 {
        use std::sync::atomic::Ordering::Relaxed;
        self.buckets.iter().map(|b| b.load(Relaxed)).sum()
    }

    /// Materializes the current state as a plain [`Histogram`], suitable
    /// for [`MetricsRegistry::histogram_set`].
    pub fn snapshot(&self) -> Histogram {
        use std::sync::atomic::Ordering::Relaxed;
        // Max before buckets: if a racing observe lands between the two
        // reads, the stale (smaller) max clamps the quantiles — still
        // monotone — instead of a too-new max exceeding the bucket walk.
        let max = self.max.load(Relaxed);
        let mut h = Histogram::default();
        for (slot, bucket) in h.buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Relaxed);
        }
        h.count = h.buckets.iter().sum();
        h.sum = self.sum.load(Relaxed);
        h.max = max;
        h
    }
}

// ---------------------------------------------------------------------------
// Span tree
// ---------------------------------------------------------------------------

/// One flattened node of a finished span tree.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanNode {
    pub name: &'static str,
    pub total_ms: f64,
    pub count: u64,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Total time of the direct child named `name`, or 0 if absent.
    pub fn child_ms(&self, name: &str) -> f64 {
        self.children
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.total_ms)
            .unwrap_or(0.0)
    }
}

struct RawNode {
    name: &'static str,
    total_ms: f64,
    count: u64,
    children: Vec<usize>,
}

struct TreeInner {
    nodes: Vec<RawNode>,
    /// Indices of root nodes in `nodes`.
    roots: Vec<usize>,
    /// Currently-open span stack (indices into `nodes`).
    stack: Vec<usize>,
}

/// Per-batch span collector. Interior-mutable so guards borrow the tree
/// shared (`&SpanTree`), letting callers keep `&mut self` on their own
/// state while spans are open.
pub struct SpanTree {
    inner: RefCell<TreeInner>,
}

impl Default for SpanTree {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanTree {
    pub fn new() -> Self {
        SpanTree {
            inner: RefCell::new(TreeInner {
                nodes: Vec::new(),
                roots: Vec::new(),
                stack: Vec::new(),
            }),
        }
    }

    /// Opens a span named `name` nested under the currently-open span (or as
    /// a root). Repeated names under the same parent merge into one node.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        let idx = {
            let mut inner = self.inner.borrow_mut();
            let siblings: Vec<usize> = match inner.stack.last() {
                Some(&p) => inner.nodes[p].children.clone(),
                None => inner.roots.clone(),
            };
            let existing = siblings.into_iter().find(|&c| inner.nodes[c].name == name);
            let idx = match existing {
                Some(i) => i,
                None => {
                    let i = inner.nodes.len();
                    inner.nodes.push(RawNode {
                        name,
                        total_ms: 0.0,
                        count: 0,
                        children: Vec::new(),
                    });
                    match inner.stack.last().copied() {
                        Some(p) => inner.nodes[p].children.push(i),
                        None => inner.roots.push(i),
                    }
                    i
                }
            };
            inner.stack.push(idx);
            idx
        };
        SpanGuard {
            tree: self,
            idx,
            start: Instant::now(),
        }
    }

    fn finish(&self, idx: usize, elapsed_ms: f64) {
        let mut inner = self.inner.borrow_mut();
        // Defensive: pop until we pop our own index, so a guard dropped out
        // of LIFO order cannot wedge the stack.
        while let Some(top) = inner.stack.pop() {
            if top == idx {
                break;
            }
        }
        let node = &mut inner.nodes[idx];
        node.total_ms += elapsed_ms;
        node.count += 1;
    }

    /// Snapshot of all finished root spans (open spans report time-so-far 0
    /// for the in-flight activation).
    pub fn snapshot(&self) -> Vec<SpanNode> {
        let inner = self.inner.borrow();
        fn build(inner: &TreeInner, idx: usize) -> SpanNode {
            let raw = &inner.nodes[idx];
            SpanNode {
                name: raw.name,
                total_ms: raw.total_ms,
                count: raw.count,
                children: raw.children.iter().map(|&c| build(inner, c)).collect(),
            }
        }
        inner.roots.iter().map(|&r| build(&inner, r)).collect()
    }
}

/// RAII timer: records elapsed wall-clock into its node on drop.
pub struct SpanGuard<'a> {
    tree: &'a SpanTree,
    idx: usize,
    start: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let elapsed_ms = self.start.elapsed().as_secs_f64() * 1e3;
        self.tree.finish(self.idx, elapsed_ms);
    }
}

/// Opens a named span on a [`SpanTree`]: `let _g = span!(tree, "place");`.
#[macro_export]
macro_rules! span {
    ($tree:expr, $name:literal) => {
        $tree.span($name)
    };
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

/// One structured journal event. `fields` are small numeric payloads
/// (`("conflicts", 3.0)`); time-valued fields follow the same `_secs`/`_ms`
/// naming convention as metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalEvent {
    pub seq: u64,
    pub event: &'static str,
    pub fields: Vec<(&'static str, f64)>,
}

#[derive(Debug, Default)]
struct Journal {
    events: VecDeque<JournalEvent>,
    next_seq: u64,
    dropped: u64,
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(Box<Histogram>),
}

/// Flattened per-path span statistics accumulated across batches.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpanStat {
    pub count: u64,
    pub total_ms: f64,
}

/// Central sink for counters, gauges, histograms, absorbed span trees, and
/// journal events. All maps are ordered so rendered dumps are byte-stable.
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: bool,
    metrics: BTreeMap<String, MetricValue>,
    spans: BTreeMap<String, SpanStat>,
    journal: Journal,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An enabled registry.
    pub fn new() -> Self {
        MetricsRegistry {
            enabled: true,
            metrics: BTreeMap::new(),
            spans: BTreeMap::new(),
            journal: Journal::default(),
        }
    }

    /// A disabled registry: every recording call early-returns.
    pub fn disabled() -> Self {
        let mut r = Self::new();
        r.enabled = false;
        r
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    // -- recording ---------------------------------------------------------

    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if !self.enabled {
            return;
        }
        match self.entry(name, || MetricValue::Counter(0)) {
            MetricValue::Counter(c) => *c += delta,
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// Sets a counter to an absolute value — for mirroring an externally
    /// maintained monotonic count (e.g. the store's lookup counter).
    pub fn counter_set(&mut self, name: &str, value: u64) {
        if !self.enabled {
            return;
        }
        match self.entry(name, || MetricValue::Counter(0)) {
            MetricValue::Counter(c) => *c = value,
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    pub fn gauge_set(&mut self, name: &str, value: f64) {
        if !self.enabled {
            return;
        }
        match self.entry(name, || MetricValue::Gauge(0.0)) {
            MetricValue::Gauge(g) => *g = value,
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    pub fn observe(&mut self, name: &str, value: u64) {
        if !self.enabled {
            return;
        }
        match self.entry(name, || MetricValue::Histogram(Box::default())) {
            MetricValue::Histogram(h) => h.observe(value),
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// Overwrites histogram `name` with an externally maintained state —
    /// the histogram analogue of [`Self::counter_set`], used to mirror a
    /// [`SharedHistogram`] recorded outside the registry (e.g. by serving
    /// threads) into the single-threaded dump. The source is authoritative:
    /// call with `shared.snapshot()` at sync points.
    pub fn histogram_set(&mut self, name: &str, value: &Histogram) {
        if !self.enabled {
            return;
        }
        match self.entry(name, || MetricValue::Histogram(Box::default())) {
            MetricValue::Histogram(h) => **h = value.clone(),
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    fn entry(&mut self, name: &str, init: impl FnOnce() -> MetricValue) -> &mut MetricValue {
        if !self.metrics.contains_key(name) {
            self.metrics.insert(name.to_string(), init());
        }
        self.metrics.get_mut(name).unwrap()
    }

    /// Merges a finished span tree: accumulates per-dotted-path totals and
    /// feeds each node's per-activation mean into the `span.<path>_us`
    /// latency histogram.
    pub fn absorb_spans(&mut self, root: &SpanNode) {
        if !self.enabled || root.name.is_empty() {
            return;
        }
        fn walk(reg: &mut MetricsRegistry, node: &SpanNode, prefix: &str) {
            let path = if prefix.is_empty() {
                node.name.to_string()
            } else {
                format!("{prefix}.{}", node.name)
            };
            let stat = reg.spans.entry(path.clone()).or_default();
            stat.count += node.count;
            stat.total_ms += node.total_ms;
            if node.count > 0 {
                let mean_us = (node.total_ms / node.count as f64 * 1e3).round().max(0.0) as u64;
                let hist_name = format!("span.{path}_us");
                for _ in 0..node.count {
                    reg.observe(&hist_name, mean_us);
                }
            }
            for child in &node.children {
                walk(reg, child, &path);
            }
        }
        walk(self, root, "");
    }

    pub fn journal_event(&mut self, event: &'static str, fields: &[(&'static str, f64)]) {
        if !self.enabled {
            return;
        }
        if self.journal.events.len() == JOURNAL_CAPACITY {
            self.journal.events.pop_front();
            self.journal.dropped += 1;
        }
        let seq = self.journal.next_seq;
        self.journal.next_seq += 1;
        self.journal.events.push_back(JournalEvent {
            seq,
            event,
            fields: fields.to_vec(),
        });
    }

    // -- reading -----------------------------------------------------------

    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    pub fn summary(&self, name: &str) -> Option<HistogramSummary> {
        self.histogram(name).map(Histogram::summary)
    }

    pub fn span_stat(&self, path: &str) -> Option<SpanStat> {
        self.spans.get(path).copied()
    }

    pub fn events(&self) -> impl Iterator<Item = &JournalEvent> {
        self.journal.events.iter()
    }

    pub fn journal_len(&self) -> usize {
        self.journal.events.len()
    }

    pub fn journal_dropped(&self) -> u64 {
        self.journal.dropped
    }

    /// All registered metric names (counters, gauges, histograms), sorted.
    pub fn metric_names(&self) -> Vec<&str> {
        self.metrics.keys().map(String::as_str).collect()
    }

    // -- rendering ---------------------------------------------------------

    /// Full JSON dump. One metric per line, sorted keys — byte-stable for a
    /// given registry state, and line-scannable by [`validate_dump`].
    pub fn render_json(&self) -> String {
        self.render_json_filtered(|_| true)
    }

    /// JSON dump restricted to the deterministic subset: counters, gauges,
    /// and histograms whose names are not time-valued (see
    /// [`is_time_valued`]); spans and the journal are excluded entirely.
    pub fn deterministic_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        self.render_metric_sections(&mut out, |name| !is_time_valued(name));
        // Trim the trailing comma of the last section.
        trim_trailing_comma(&mut out);
        out.push_str("}\n");
        out
    }

    fn render_json_filtered(&self, keep: impl Fn(&str) -> bool) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        self.render_metric_sections(&mut out, keep);
        // Spans.
        out.push_str("  \"spans\": {\n");
        let mut first = true;
        for (path, stat) in &self.spans {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "    \"{path}\": {{\"count\": {}, \"total_ms\": {}}}",
                stat.count,
                json_f64(stat.total_ms)
            );
        }
        if !first {
            out.push('\n');
        }
        out.push_str("  },\n");
        // Journal.
        out.push_str("  \"journal\": {\n");
        let _ = write!(
            out,
            "    \"next_seq\": {},\n    \"dropped\": {},\n    \"events\": [\n",
            self.journal.next_seq, self.journal.dropped
        );
        let mut first = true;
        for ev in &self.journal.events {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "      {{\"seq\": {}, \"event\": \"{}\"",
                ev.seq, ev.event
            );
            for (k, v) in &ev.fields {
                let _ = write!(out, ", \"{k}\": {}", json_f64(*v));
            }
            out.push('}');
        }
        if !first {
            out.push('\n');
        }
        out.push_str("    ]\n  }\n");
        out.push_str("}\n");
        out
    }

    fn render_metric_sections(&self, out: &mut String, keep: impl Fn(&str) -> bool) {
        let section = |out: &mut String, title: &str, entries: Vec<(&String, String)>| {
            let _ = writeln!(out, "  \"{title}\": {{");
            let mut first = true;
            for (name, val) in entries {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                let _ = write!(out, "    \"{name}\": {val}");
            }
            if !first {
                out.push('\n');
            }
            out.push_str("  },\n");
        };
        let counters: Vec<_> = self
            .metrics
            .iter()
            .filter(|(n, _)| keep(n))
            .filter_map(|(n, v)| match v {
                MetricValue::Counter(c) => Some((n, c.to_string())),
                _ => None,
            })
            .collect();
        section(out, "counters", counters);
        let gauges: Vec<_> = self
            .metrics
            .iter()
            .filter(|(n, _)| keep(n))
            .filter_map(|(n, v)| match v {
                MetricValue::Gauge(g) => Some((n, json_f64(*g))),
                _ => None,
            })
            .collect();
        section(out, "gauges", gauges);
        let hists: Vec<_> = self
            .metrics
            .iter()
            .filter(|(n, _)| keep(n))
            .filter_map(|(n, v)| match v {
                MetricValue::Histogram(h) => {
                    let s = h.summary();
                    Some((
                        n,
                        format!(
                            "{{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
                            s.count, s.sum, s.p50, s.p90, s.p99, s.max
                        ),
                    ))
                }
                _ => None,
            })
            .collect();
        section(out, "histograms", hists);
    }

    /// Prometheus-style plain-text exposition: dots become underscores,
    /// histograms expand into `_count`/`_sum`/quantile-labelled lines.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let prom = |name: &str| name.replace('.', "_");
        for (name, val) in &self.metrics {
            let p = prom(name);
            match val {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {p} counter");
                    let _ = writeln!(out, "{p} {c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {p} gauge");
                    let _ = writeln!(out, "{p} {}", json_f64(*g));
                }
                MetricValue::Histogram(h) => {
                    let s = h.summary();
                    let _ = writeln!(out, "# TYPE {p} summary");
                    let _ = writeln!(out, "{p}{{quantile=\"0.5\"}} {}", s.p50);
                    let _ = writeln!(out, "{p}{{quantile=\"0.9\"}} {}", s.p90);
                    let _ = writeln!(out, "{p}{{quantile=\"0.99\"}} {}", s.p99);
                    let _ = writeln!(out, "{p}_max {}", s.max);
                    let _ = writeln!(out, "{p}_sum {}", s.sum);
                    let _ = writeln!(out, "{p}_count {}", s.count);
                }
            }
        }
        for (path, stat) in &self.spans {
            let p = format!("span_{}", prom(path));
            let _ = writeln!(out, "{p}_total_ms {}", json_f64(stat.total_ms));
            let _ = writeln!(out, "{p}_count {}", stat.count);
        }
        out
    }
}

/// Shortest-round-trip float formatting; non-finite values render as null
/// (JSON has no NaN/Inf). Bitwise-equal floats format identically, which is
/// what makes deterministic dumps byte-comparable.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral floats without a dot; keep valid-but-obvious
        // float formatting for consumers.
        if s.contains('.') || s.contains('e') || s.contains("inf") {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

fn trim_trailing_comma(out: &mut String) {
    if out.ends_with(",\n") {
        out.truncate(out.len() - 2);
        out.push('\n');
    }
}

// ---------------------------------------------------------------------------
// Dump validation
// ---------------------------------------------------------------------------

/// Summary returned by [`validate_dump`] for CI assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DumpStats {
    pub counters: usize,
    pub gauges: usize,
    pub histograms: usize,
    pub spans: usize,
    pub journal_events: usize,
}

/// Schema-validates a [`MetricsRegistry::render_json`] dump:
///
/// 1. the required sections (`counters`, `gauges`, `histograms`, `spans`,
///    `journal`) are all present;
/// 2. every histogram's quantiles are monotone (`p50 ≤ p90 ≤ p99 ≤ max`);
/// 3. for every span path, the summed time of its direct children does not
///    exceed the parent's total (small tolerance for float accumulation) —
///    in particular the per-stage tree sums to ≤ the batch wall-clock;
/// 4. every metric name is either in `allowlist` or a `span.*` derived
///    histogram whose dotted path appears in the spans section — so a typo'd
///    metric name fails CI instead of silently forking a new time series.
///
/// The validator is a line scanner over the registry's one-entry-per-line
/// rendering, not a general JSON parser.
pub fn validate_dump(json: &str, allowlist: &[&str]) -> Result<DumpStats, String> {
    let mut stats = DumpStats::default();
    let mut section = String::new();
    let mut seen_sections: Vec<String> = Vec::new();
    let mut span_totals: BTreeMap<String, f64> = BTreeMap::new();
    let mut span_names: Vec<String> = Vec::new();
    let mut metric_names: Vec<String> = Vec::new();

    for (lineno, raw) in json.lines().enumerate() {
        let line = raw.trim();
        // Section headers look like `"counters": {` (two-space indent in the
        // rendering; detect by suffix).
        for sec in ["counters", "gauges", "histograms", "spans", "journal"] {
            if line.starts_with(&format!("\"{sec}\":")) {
                section = sec.to_string();
                seen_sections.push(sec.to_string());
            }
        }
        let Some(name) = leading_quoted_key(line) else {
            continue;
        };
        if ["counters", "gauges", "histograms", "spans", "journal"].contains(&name.as_str()) {
            continue;
        }
        match section.as_str() {
            "counters" => {
                stats.counters += 1;
                metric_names.push(name);
            }
            "gauges" => {
                stats.gauges += 1;
                metric_names.push(name);
            }
            "histograms" => {
                stats.histograms += 1;
                let p50 = field_u64(line, "p50")
                    .ok_or_else(|| format!("line {}: histogram without p50: {line}", lineno + 1))?;
                let p90 = field_u64(line, "p90")
                    .ok_or_else(|| format!("line {}: histogram without p90: {line}", lineno + 1))?;
                let p99 = field_u64(line, "p99")
                    .ok_or_else(|| format!("line {}: histogram without p99: {line}", lineno + 1))?;
                let max = field_u64(line, "max")
                    .ok_or_else(|| format!("line {}: histogram without max: {line}", lineno + 1))?;
                if !(p50 <= p90 && p90 <= p99 && p99 <= max) {
                    return Err(format!(
                        "histogram {name:?}: quantiles not monotone (p50={p50} p90={p90} p99={p99} max={max})"
                    ));
                }
                metric_names.push(name);
            }
            "spans" => {
                stats.spans += 1;
                let total = field_f64(line, "total_ms")
                    .ok_or_else(|| format!("line {}: span without total_ms: {line}", lineno + 1))?;
                span_totals.insert(name.clone(), total);
                span_names.push(name);
            }
            // Journal scalars (next_seq/dropped/events) are section
            // metadata, not metric names; events are counted below.
            "journal" => {}
            _ => {}
        }
    }
    // Count journal events: lines shaped `{"seq": N, "event": ...}`.
    stats.journal_events = json
        .lines()
        .filter(|l| l.trim_start().starts_with("{\"seq\":"))
        .count();

    for sec in ["counters", "gauges", "histograms", "spans", "journal"] {
        if !seen_sections.iter().any(|s| s == sec) {
            return Err(format!("missing required section {sec:?}"));
        }
    }

    // Child-sum ≤ parent for every span path.
    for (path, &total) in &span_totals {
        let child_sum: f64 = span_totals
            .iter()
            .filter(|(p, _)| {
                p.len() > path.len()
                    && p.starts_with(path.as_str())
                    && p.as_bytes()[path.len()] == b'.'
                    && !p[path.len() + 1..].contains('.')
            })
            .map(|(_, &t)| t)
            .sum();
        let tolerance = 0.01 * total.max(1.0) + 0.5;
        if child_sum > total + tolerance {
            return Err(format!(
                "span {path:?}: children sum {child_sum:.3} ms exceeds parent total {total:.3} ms"
            ));
        }
    }

    // Allowlist: metric names must be known, or span-derived histograms whose
    // path is present in the spans section.
    for name in &metric_names {
        if allowlist.contains(&name.as_str()) {
            continue;
        }
        if let Some(stem) = name
            .strip_prefix("span.")
            .and_then(|s| s.strip_suffix("_us"))
        {
            if span_names.iter().any(|s| s == stem) {
                continue;
            }
            return Err(format!(
                "span histogram {name:?} has no matching span path {stem:?}"
            ));
        }
        return Err(format!("unknown metric name {name:?} (not in allowlist)"));
    }
    Ok(stats)
}

/// Extracts `key` from a line starting `"key": ...` or `{"key": ...`.
fn leading_quoted_key(line: &str) -> Option<String> {
    let rest = line.strip_prefix('{').unwrap_or(line);
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    let key = &rest[..end];
    let after = rest[end + 1..].trim_start();
    after.starts_with(':').then(|| key.to_string())
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    field_raw(line, key)?.parse().ok()
}

fn field_f64(line: &str, key: &str) -> Option<f64> {
    field_raw(line, key)?.parse().ok()
}

fn field_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles_are_monotone() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 7, 8, 100, 1000, 65535] {
            h.observe(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 9);
        assert_eq!(s.max, 65535);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        // p99 of 9 samples is the top sample's bucket, clamped to exact max.
        assert_eq!(s.p99, 65535);
        // Zero goes to its own bucket.
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_upper(2), 3);
    }

    #[test]
    fn histogram_quantile_clamps_to_observed_max() {
        let mut h = Histogram::default();
        h.observe(1025); // bucket upper bound 2047
        assert_eq!(h.quantile(0.99), 1025);
        assert_eq!(h.quantile(0.5), 1025);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn spans_nest_and_merge_by_name() {
        let tree = SpanTree::new();
        {
            let _root = span!(tree, "ingest");
            {
                let _a = span!(tree, "place");
            }
            {
                let _a = span!(tree, "place"); // merges with the first
            }
            {
                let _b = span!(tree, "refine");
                let _c = span!(tree, "gd");
            }
        }
        let roots = tree.snapshot();
        assert_eq!(roots.len(), 1);
        let root = &roots[0];
        assert_eq!(root.name, "ingest");
        assert_eq!(root.count, 1);
        assert_eq!(root.children.len(), 2);
        let place = &root.children[0];
        assert_eq!((place.name, place.count), ("place", 2));
        let refine = &root.children[1];
        assert_eq!(refine.name, "refine");
        assert_eq!(refine.children[0].name, "gd");
        // Children are inside the parent, so they can't exceed it.
        let child_sum: f64 = root.children.iter().map(|c| c.total_ms).sum();
        assert!(child_sum <= root.total_ms + 1e-6);
    }

    #[test]
    fn journal_ring_drops_oldest_and_keeps_monotonic_seq() {
        let mut r = MetricsRegistry::new();
        for _ in 0..JOURNAL_CAPACITY + 10 {
            r.journal_event("tick", &[("x", 1.0)]);
        }
        assert_eq!(r.journal_len(), JOURNAL_CAPACITY);
        assert_eq!(r.journal_dropped(), 10);
        let seqs: Vec<u64> = r.events().map(|e| e.seq).collect();
        assert_eq!(seqs[0], 10);
        assert_eq!(*seqs.last().unwrap(), (JOURNAL_CAPACITY + 10 - 1) as u64);
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut r = MetricsRegistry::disabled();
        r.counter_add("a.b.c", 5);
        r.gauge_set("a.b.g", 1.0);
        r.observe("a.b.h", 7);
        r.journal_event("ev", &[]);
        let tree = SpanTree::new();
        {
            let _g = tree.span("x");
        }
        r.absorb_spans(&tree.snapshot()[0]);
        assert_eq!(r.counter("a.b.c"), 0);
        assert!(r.metric_names().is_empty());
        assert_eq!(r.journal_len(), 0);
        assert!(r.span_stat("x").is_none());
    }

    #[test]
    fn deterministic_filter_excludes_time_valued_names() {
        assert!(is_time_valued("span.ingest.place_us"));
        assert!(is_time_valued("stream.refine_ms"));
        assert!(is_time_valued("stream.refine_secs"));
        assert!(!is_time_valued("stream.ingest.batches"));

        let mut r = MetricsRegistry::new();
        r.counter_add("stream.ingest.batches", 3);
        r.observe("span.ingest_us", 1234);
        r.gauge_set("stream.balance.max_imbalance", 0.05);
        let det = r.deterministic_json();
        assert!(det.contains("stream.ingest.batches"));
        assert!(det.contains("stream.balance.max_imbalance"));
        assert!(!det.contains("span.ingest_us"));
        assert!(!det.contains("\"spans\""));
        assert!(!det.contains("\"journal\""));
    }

    #[test]
    fn render_json_round_trips_through_validate_dump() {
        let mut r = MetricsRegistry::new();
        r.counter_add("stream.ingest.batches", 2);
        r.gauge_set("stream.balance.max_imbalance", 0.031);
        r.observe("core.gd.refine_iterations", 12);
        r.observe("core.gd.refine_iterations", 30);
        let tree = SpanTree::new();
        {
            let _root = tree.span("ingest");
            let _p = tree.span("place");
        }
        r.absorb_spans(&tree.snapshot()[0]);
        r.journal_event("refine.pass", &[("moves", 4.0)]);
        r.journal_event("compact.purge", &[("live", 100.0)]);

        let json = r.render_json();
        let allow = [
            "stream.ingest.batches",
            "stream.balance.max_imbalance",
            "core.gd.refine_iterations",
        ];
        let stats = validate_dump(&json, &allow).expect("dump validates");
        assert_eq!(stats.counters, 1);
        assert_eq!(stats.gauges, 1);
        // refine_iterations + span.ingest_us + span.ingest.place_us
        assert_eq!(stats.histograms, 3);
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.journal_events, 2);
    }

    #[test]
    fn validate_dump_rejects_unknown_metric_typos() {
        let mut r = MetricsRegistry::new();
        r.counter_add("stream.ingset.batches", 1); // typo
        let err = validate_dump(&r.render_json(), &["stream.ingest.batches"]).unwrap_err();
        assert!(err.contains("ingset"), "unexpected error: {err}");
    }

    #[test]
    fn validate_dump_rejects_child_sum_exceeding_parent() {
        // Hand-craft a dump whose children exceed the parent by more than the
        // tolerance.
        let json = r#"{
  "counters": {
  },
  "gauges": {
  },
  "histograms": {
  },
  "spans": {
    "ingest": {"count": 1, "total_ms": 10.0},
    "ingest.place": {"count": 1, "total_ms": 8.0},
    "ingest.refine": {"count": 1, "total_ms": 9.0}
  },
  "journal": {
    "next_seq": 0,
    "dropped": 0,
    "events": [
    ]
  }
}
"#;
        let err = validate_dump(json, &[]).unwrap_err();
        assert!(err.contains("exceeds parent"), "unexpected error: {err}");
    }

    #[test]
    fn validate_dump_requires_all_sections() {
        let err = validate_dump("{\n  \"counters\": {\n  }\n}\n", &[]).unwrap_err();
        assert!(err.contains("missing required section"));
    }

    #[test]
    fn render_text_is_prometheus_shaped() {
        let mut r = MetricsRegistry::new();
        r.counter_add("stream.ingest.batches", 7);
        r.observe("core.gd.refine_iterations", 5);
        let text = r.render_text();
        assert!(text.contains("# TYPE stream_ingest_batches counter"));
        assert!(text.contains("stream_ingest_batches 7"));
        assert!(text.contains("core_gd_refine_iterations{quantile=\"0.99\"} 5"));
        assert!(text.contains("core_gd_refine_iterations_count 1"));
    }

    #[test]
    fn counter_set_mirrors_absolute_values() {
        let mut r = MetricsRegistry::new();
        r.counter_set("stream.store.lookups", 42);
        r.counter_set("stream.store.lookups", 99);
        assert_eq!(r.counter("stream.store.lookups"), 99);
    }

    #[test]
    fn json_floats_are_finite_or_null() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn shared_histogram_matches_plain_histogram() {
        let shared = SharedHistogram::new();
        let mut plain = Histogram::default();
        for v in [0u64, 1, 3, 7, 120, 120, 4096, u64::MAX] {
            shared.observe(v);
            plain.observe(v);
        }
        assert_eq!(shared.count(), plain.count());
        let snap = shared.snapshot();
        assert_eq!(snap.summary(), plain.summary());
    }

    #[test]
    fn shared_histogram_records_from_many_threads() {
        let shared = SharedHistogram::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let shared = &shared;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        shared.observe(t * 1000 + i);
                    }
                });
            }
        });
        let snap = shared.snapshot();
        assert_eq!(snap.count(), 4000);
        assert_eq!(snap.max(), 3999);
        assert_eq!(snap.sum(), (0..4000u64).sum::<u64>());
    }

    #[test]
    fn histogram_set_mirrors_external_state() {
        let shared = SharedHistogram::new();
        shared.observe(10);
        shared.observe(500);
        let mut r = MetricsRegistry::new();
        r.histogram_set("stream.store.lookup_us", &shared.snapshot());
        let s = r.summary("stream.store.lookup_us").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 500);
        // Set semantics: a later sync overwrites, never accumulates.
        shared.observe(9000);
        r.histogram_set("stream.store.lookup_us", &shared.snapshot());
        let s = r.summary("stream.store.lookup_us").unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.max, 9000);
    }
}
