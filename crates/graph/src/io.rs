//! Graph serialization: text edge lists (SNAP style), the METIS file format,
//! and a compact little-endian binary format for caching generated proxies
//! between experiment runs.

use crate::{Graph, GraphBuilder, VertexId};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Writes `graph` as a SNAP-style text edge list: one `u v` pair per line,
/// `#`-prefixed header with counts.
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# vertices {} edges {}",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (u, v) in graph.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Reads a text edge list. Lines starting with `#` or `%` are comments.
/// Vertex count is `max id + 1` unless a `# vertices N ...` header raises it.
pub fn read_edge_list<R: Read>(reader: R) -> io::Result<Graph> {
    let r = BufReader::new(reader);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut declared_n: Option<usize> = None;
    let mut max_id: u32 = 0;
    let mut any_vertex = false;
    for line in r.lines() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if t.starts_with('#') || t.starts_with('%') {
            // Parse "# vertices N edges M" if present.
            let tokens: Vec<&str> = t.split_whitespace().collect();
            if let Some(pos) = tokens.iter().position(|&s| s == "vertices") {
                if let Some(n) = tokens.get(pos + 1).and_then(|s| s.parse().ok()) {
                    declared_n = Some(n);
                }
            }
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |s: Option<&str>| -> io::Result<u32> {
            s.ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing endpoint"))?
                .parse()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad id: {e}")))
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        max_id = max_id.max(u).max(v);
        any_vertex = true;
        edges.push((u, v));
    }
    let n_from_edges = if any_vertex { max_id as usize + 1 } else { 0 };
    let n = declared_n.unwrap_or(n_from_edges).max(n_from_edges);
    Ok(GraphBuilder::new(n).edges(edges).build())
}

/// Writes the METIS format: header `n m`, then line `i` lists the 1-based
/// neighbours of vertex `i`.
pub fn write_metis<W: Write>(graph: &Graph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "{} {}", graph.num_vertices(), graph.num_edges())?;
    for v in graph.vertices() {
        let line: Vec<String> = graph
            .neighbors(v)
            .iter()
            .map(|&u| (u + 1).to_string())
            .collect();
        writeln!(w, "{}", line.join(" "))?;
    }
    w.flush()
}

/// Reads the (unweighted) METIS format produced by [`write_metis`].
#[allow(clippy::explicit_counter_loop)] // `row` outlives the loop for the n-line cap
pub fn read_metis<R: Read>(reader: R) -> io::Result<Graph> {
    let r = BufReader::new(reader);
    let mut lines = r.lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty METIS file"))??;
    let mut ht = header.split_whitespace();
    let n: usize = ht
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad METIS header"))?;
    let mut b = GraphBuilder::new(n);
    let mut row = 0usize;
    for line in lines {
        let line = line?;
        if row >= n {
            break;
        }
        for tok in line.split_whitespace() {
            let t: usize = tok
                .parse()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad id: {e}")))?;
            if t == 0 || t > n {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "METIS id out of range",
                ));
            }
            let u = (t - 1) as VertexId;
            if (row as u32) < u {
                b.add_edge(row as VertexId, u);
            }
        }
        row += 1;
    }
    Ok(b.build())
}

const BINARY_MAGIC: &[u8; 8] = b"MDBGPGR1";

/// Writes the compact binary format: magic, `n`, `m` (u64 LE), then `m`
/// `(u32, u32)` LE edge pairs with `u < v`.
pub fn write_binary<W: Write>(graph: &Graph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&(graph.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(graph.num_edges() as u64).to_le_bytes())?;
    for (u, v) in graph.edges() {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Reads the binary format written by [`write_binary`].
pub fn read_binary<R: Read>(reader: R) -> io::Result<Graph> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let n = u64::from_le_bytes(buf8) as usize;
    r.read_exact(&mut buf8)?;
    let m = u64::from_le_bytes(buf8) as usize;
    let mut b = GraphBuilder::with_edge_capacity(n, m);
    let mut buf4 = [0u8; 4];
    for _ in 0..m {
        r.read_exact(&mut buf4)?;
        let u = u32::from_le_bytes(buf4);
        r.read_exact(&mut buf4)?;
        let v = u32::from_le_bytes(buf4);
        b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Convenience wrapper: writes `graph` to `path` in binary format.
pub fn save_binary(graph: &Graph, path: &Path) -> io::Result<()> {
    write_binary(graph, std::fs::File::create(path)?)
}

/// Convenience wrapper: loads a binary graph from `path`.
pub fn load_binary(path: &Path) -> io::Result<Graph> {
    read_binary(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> Graph {
        gen::erdos_renyi(64, 200, &mut StdRng::seed_from_u64(10))
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_header_preserves_isolated_tail_vertices() {
        let g = graph_from_edges(10, &[(0, 1)]); // vertices 2..9 isolated
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g2.num_vertices(), 10);
    }

    #[test]
    fn edge_list_reads_comments_and_blank_lines() {
        let text = "% comment\n\n# another\n0 1\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(read_edge_list("0 x\n".as_bytes()).is_err());
        assert!(read_edge_list("7\n".as_bytes()).is_err());
    }

    #[test]
    fn metis_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let g2 = read_metis(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn metis_rejects_out_of_range() {
        assert!(read_metis("2 1\n2\n3\n".as_bytes()).is_err());
        assert!(read_metis("".as_bytes()).is_err());
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn binary_file_roundtrip() {
        let g = sample();
        let path = std::env::temp_dir().join("mdbgp_io_test.bin");
        save_binary(&g, &path).unwrap();
        let g2 = load_binary(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g, g2);
    }
}
