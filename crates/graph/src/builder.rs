//! Incremental graph construction.
//!
//! [`GraphBuilder`] accumulates an edge list, then `build()` sorts it,
//! removes self-loops and duplicates, and produces the CSR [`Graph`]. This is
//! the single entry point every generator and reader funnels through, so the
//! simple-graph invariants of [`Graph`] are established in exactly one place.

use crate::{Graph, VertexId};

/// Accumulates edges and produces a CSR [`Graph`].
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// New builder for a graph with `n` vertices (ids `0..n`).
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "vertex ids are u32");
        Self {
            num_vertices: n,
            edges: Vec::new(),
        }
    }

    /// Pre-allocates room for `m` edges.
    pub fn with_edge_capacity(n: usize, m: usize) -> Self {
        let mut b = Self::new(n);
        b.edges.reserve(m);
        b
    }

    /// Seeds a builder with every edge of an existing graph — the
    /// compaction hook of `mdbgp-stream`: delta edges are added on top and
    /// `build()` merges both into a fresh CSR.
    pub fn from_graph(graph: &Graph) -> Self {
        let mut b = Self::with_edge_capacity(graph.num_vertices(), graph.num_edges());
        b.edges.extend(graph.edges());
        b
    }

    /// Grows the vertex-id space to `n` (ids `0..n`). Existing edges are
    /// unaffected; shrinking is not allowed.
    ///
    /// # Panics
    /// Panics if `n` is smaller than the current vertex count.
    pub fn grow_to(&mut self, n: usize) -> &mut Self {
        assert!(
            n >= self.num_vertices,
            "grow_to({n}) would shrink a {}-vertex builder",
            self.num_vertices
        );
        assert!(n <= u32::MAX as usize, "vertex ids are u32");
        self.num_vertices = n;
        self
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges added so far (before dedup).
    pub fn num_pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge `{u, v}`. Self-loops and duplicates are
    /// accepted here and dropped by `build()`.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        assert!(
            (u as usize) < self.num_vertices && (v as usize) < self.num_vertices,
            "edge ({u}, {v}) out of range for {} vertices",
            self.num_vertices
        );
        self.edges.push(if u <= v { (u, v) } else { (v, u) });
        self
    }

    /// Adds all edges from an iterator (builder-style convenience).
    pub fn edges<I: IntoIterator<Item = (VertexId, VertexId)>>(mut self, iter: I) -> Self {
        for (u, v) in iter {
            self.add_edge(u, v);
        }
        self
    }

    /// Finalizes the CSR graph: sorts, deduplicates, drops self-loops.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        self.edges.retain(|&(u, v)| u != v);

        let n = self.num_vertices;
        let mut degrees = vec![0usize; n];
        for &(u, v) in &self.edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; acc];
        for &(u, v) in &self.edges {
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Edges were inserted in sorted (u, v) order, so each adjacency list
        // is already sorted: for row u the v's arrive ascending, and for row
        // v the u's arrive ascending because (u, v) pairs are lexicographic.
        Graph::from_csr(offsets, targets)
    }
}

/// Convenience: builds a graph straight from an edge slice.
pub fn graph_from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Graph {
    GraphBuilder::new(n).edges(edges.iter().copied()).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loop_removal() {
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (1, 0), (2, 2), (1, 2), (1, 2), (3, 1)])
            .build();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(1), &[0, 2, 3]);
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    fn reversed_insertion_normalized() {
        let g = GraphBuilder::new(3).edges([(2, 0), (1, 0)]).build();
        assert_eq!(g.edges().collect::<Vec<_>>(), vec![(0, 1), (0, 2)]);
    }

    #[test]
    fn isolated_vertices_preserved() {
        let g = GraphBuilder::new(10).edges([(0, 9)]).build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(5), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        GraphBuilder::new(2).edges([(0, 2)]);
    }

    #[test]
    fn graph_from_edges_helper() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn build_empty() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn from_graph_round_trips() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let rebuilt = GraphBuilder::from_graph(&g).build();
        assert_eq!(rebuilt, g);
    }

    #[test]
    fn from_graph_plus_delta_edges() {
        let g = graph_from_edges(4, &[(0, 1)]);
        let mut b = GraphBuilder::from_graph(&g);
        b.grow_to(6);
        b.add_edge(4, 5).add_edge(1, 4).add_edge(0, 1); // duplicate dropped
        let g2 = b.build();
        assert_eq!(g2.num_vertices(), 6);
        assert_eq!(g2.num_edges(), 3);
        assert!(g2.has_edge(0, 1) && g2.has_edge(1, 4) && g2.has_edge(4, 5));
    }

    #[test]
    #[should_panic(expected = "shrink")]
    fn grow_to_rejects_shrinking() {
        GraphBuilder::new(5).grow_to(3);
    }
}
