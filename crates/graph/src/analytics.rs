//! Sequential reference analytics.
//!
//! These serve two purposes: they compute the extra weight dimensions of the
//! Appendix C experiments (PageRank, neighbour degree sums), and they act as
//! oracles against which the distributed BSP implementations in `mdbgp-bsp`
//! are tested (PageRank, connected components).

use crate::{Graph, VertexId};

/// Power-iteration PageRank with uniform teleport.
///
/// Returns a probability vector (sums to 1 up to floating-point error).
/// Dangling vertices (degree 0) redistribute their mass uniformly, the
/// standard correction for undirected graphs with isolated vertices.
pub fn pagerank(graph: &Graph, damping: f64, iterations: usize) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&damping), "damping must be in [0, 1]");
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let inv_n = 1.0 / n as f64;
    let mut rank = vec![inv_n; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        let mut dangling = 0.0;
        for v in 0..n {
            let d = graph.degree(v as VertexId);
            if d == 0 {
                dangling += rank[v];
            }
        }
        let base = (1.0 - damping) * inv_n + damping * dangling * inv_n;
        next.iter_mut().for_each(|x| *x = base);
        for v in 0..n {
            let d = graph.degree(v as VertexId);
            if d > 0 {
                let share = damping * rank[v] / d as f64;
                for &u in graph.neighbors(v as VertexId) {
                    next[u as usize] += share;
                }
            }
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Connected components via union-find with path halving and union by size.
///
/// Returns `(component_of, num_components)` where component labels are the
/// smallest vertex id in each component.
pub fn connected_components(graph: &Graph) -> (Vec<VertexId>, usize) {
    let n = graph.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    let mut size = vec![1u32; n];

    fn find(parent: &mut [u32], mut v: u32) -> u32 {
        while parent[v as usize] != v {
            parent[v as usize] = parent[parent[v as usize] as usize]; // path halving
            v = parent[v as usize];
        }
        v
    }

    for (u, v) in graph.edges() {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            if size[ru as usize] >= size[rv as usize] {
                parent[rv as usize] = ru;
                size[ru as usize] += size[rv as usize];
            } else {
                parent[ru as usize] = rv;
                size[rv as usize] += size[ru as usize];
            }
        }
    }
    // Normalize labels to the minimum vertex id of each component so the
    // output is deterministic regardless of union order.
    let mut min_label: Vec<u32> = (0..n as u32).collect();
    for v in 0..n as u32 {
        let r = find(&mut parent, v);
        if v < min_label[r as usize] {
            min_label[r as usize] = v;
        }
    }
    let mut count = 0usize;
    let labels: Vec<u32> = (0..n as u32)
        .map(|v| {
            let r = find(&mut parent, v);
            if r == v {
                count += 1;
            }
            min_label[r as usize]
        })
        .collect();
    (labels, count)
}

/// Degree distribution summary used when validating the synthetic proxies
/// against the shape of the paper's graphs.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    pub min: usize,
    pub max: usize,
    pub mean: f64,
    /// Fraction of total degree held by the top 1% of vertices — a cheap
    /// skewness proxy; power-law graphs score far higher than G(n, p).
    pub top1_percent_share: f64,
}

/// Computes [`DegreeStats`] for `graph`.
pub fn degree_stats(graph: &Graph) -> DegreeStats {
    let n = graph.num_vertices();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            top1_percent_share: 0.0,
        };
    }
    let mut degs: Vec<usize> = (0..n).map(|v| graph.degree(v as VertexId)).collect();
    degs.sort_unstable_by(|a, b| b.cmp(a));
    let total: usize = degs.iter().sum();
    let top = (n / 100).max(1);
    let top_sum: usize = degs[..top].iter().sum();
    DegreeStats {
        min: *degs.last().unwrap(),
        max: degs[0],
        mean: total as f64 / n as f64,
        top1_percent_share: if total == 0 {
            0.0
        } else {
            top_sum as f64 / total as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::Graph;

    #[test]
    fn pagerank_sums_to_one_and_ranks_hub() {
        let g = graph_from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let pr = pagerank(&g, 0.85, 50);
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
        assert!(pr[0] > pr[1]);
        assert!((pr[1] - pr[4]).abs() < 1e-12, "leaves are symmetric");
    }

    #[test]
    fn pagerank_uniform_on_cycle() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let pr = pagerank(&g, 0.85, 30);
        for &p in &pr {
            assert!((p - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn pagerank_handles_isolated_vertices() {
        let g = graph_from_edges(3, &[(0, 1)]);
        let pr = pagerank(&g, 0.85, 30);
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pr[2] > 0.0);
    }

    #[test]
    fn pagerank_empty_graph() {
        assert!(pagerank(&Graph::empty(0), 0.85, 10).is_empty());
    }

    #[test]
    fn components_two_triangles() {
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 3]);
    }

    #[test]
    fn components_isolated() {
        let (labels, count) = connected_components(&Graph::empty(4));
        assert_eq!(count, 4);
        assert_eq!(labels, vec![0, 1, 2, 3]);
    }

    #[test]
    fn components_path_is_single() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 1);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn degree_stats_star() {
        let g = graph_from_edges(101, &(1..=100).map(|v| (0, v)).collect::<Vec<_>>());
        let s = degree_stats(&g);
        assert_eq!(s.max, 100);
        assert_eq!(s.min, 1);
        assert!(
            s.top1_percent_share >= 0.5,
            "hub holds half the degree mass"
        );
    }

    #[test]
    fn degree_stats_empty() {
        let s = degree_stats(&Graph::empty(0));
        assert_eq!(s.max, 0);
    }
}
