//! Multi-dimensional vertex weights.
//!
//! MDBGP balances a partition with respect to `d` positive weight functions
//! `w^(1), ..., w^(d) : V → R+` simultaneously (paper §1). The canonical
//! two-dimensional instance is `w^(1) = 1` (vertex balance) and
//! `w^(2) = deg(v)` (edge balance); the Appendix C experiments add PageRank
//! and the sum of neighbour degrees as third and fourth dimensions.

use crate::{analytics, Graph, VertexId};

/// The weight functions used throughout the paper's evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum WeightKind {
    /// `w(v) = 1` — balances vertex counts ("vertex partitioning").
    Unit,
    /// `w(v) = max(deg(v), floor)` — balances edge counts ("edge
    /// partitioning"); `floor = 1` keeps weights strictly positive on
    /// isolated vertices as the problem definition requires.
    Degree,
    /// `w(v) = 1 + Σ_{u ∈ N(v)} deg(u)` — proxy for the 2-hop neighbourhood
    /// size (paper App. C.1).
    NeighborDegreeSum,
    /// `w(v) = n · PageRank(v)` — models per-vertex access frequency
    /// (paper App. C.1). Scaled by `n` so the mean weight is 1.
    PageRank {
        /// Damping factor, 0.85 in all experiments.
        damping: f64,
        /// Power-iteration count.
        iterations: usize,
    },
}

impl WeightKind {
    /// The paper's default PageRank configuration.
    pub fn pagerank_default() -> Self {
        WeightKind::PageRank {
            damping: 0.85,
            iterations: 20,
        }
    }

    /// Evaluates the weight function on every vertex of `graph`.
    pub fn evaluate(&self, graph: &Graph) -> Vec<f64> {
        let n = graph.num_vertices();
        match self {
            WeightKind::Unit => vec![1.0; n],
            WeightKind::Degree => (0..n)
                .map(|v| (graph.degree(v as VertexId).max(1)) as f64)
                .collect(),
            WeightKind::NeighborDegreeSum => (0..n)
                .map(|v| {
                    1.0 + graph
                        .neighbors(v as VertexId)
                        .iter()
                        .map(|&u| graph.degree(u) as f64)
                        .sum::<f64>()
                })
                .collect(),
            WeightKind::PageRank {
                damping,
                iterations,
            } => {
                let pr = analytics::pagerank(graph, *damping, *iterations);
                // Scale to mean 1 so that ε thresholds are comparable across
                // dimensions; PageRank itself sums to 1.
                pr.into_iter().map(|p| p * n as f64).collect()
            }
        }
    }
}

/// A `d`-dimensional positive weighting of the vertices, stored
/// dimension-major so the projection inner loops stream one contiguous
/// slice per constraint.
#[derive(Clone, Debug, PartialEq)]
pub struct VertexWeights {
    /// `data[j][v]` is `w^(j)(v)`; every entry is strictly positive.
    data: Vec<Vec<f64>>,
    /// `totals[j] = Σ_v w^(j)(v)`.
    totals: Vec<f64>,
}

impl VertexWeights {
    /// Builds weights from raw per-dimension vectors.
    ///
    /// # Panics
    /// Panics if dimensions disagree in length, `dims == 0`, or any weight
    /// is not strictly positive and finite (MDBGP requires `w : V → R+`).
    pub fn from_vectors(data: Vec<Vec<f64>>) -> Self {
        assert!(!data.is_empty(), "at least one weight dimension required");
        let n = data[0].len();
        for (j, col) in data.iter().enumerate() {
            assert_eq!(col.len(), n, "dimension {j} has wrong length");
            for (v, &w) in col.iter().enumerate() {
                assert!(
                    w.is_finite() && w > 0.0,
                    "w^({j})({v}) = {w} must be positive finite"
                );
            }
        }
        let totals = data.iter().map(|col| col.iter().sum()).collect();
        Self { data, totals }
    }

    /// Evaluates a list of [`WeightKind`]s on `graph`.
    pub fn build(graph: &Graph, kinds: &[WeightKind]) -> Self {
        Self::from_vectors(kinds.iter().map(|k| k.evaluate(graph)).collect())
    }

    /// The paper's default two dimensions: unit + degree.
    pub fn vertex_edge(graph: &Graph) -> Self {
        Self::build(graph, &[WeightKind::Unit, WeightKind::Degree])
    }

    /// Single unit dimension (classic balanced partitioning).
    pub fn unit(n: usize) -> Self {
        Self::from_vectors(vec![vec![1.0; n]])
    }

    /// Number of balance dimensions `d`.
    #[inline]
    pub fn dims(&self) -> usize {
        self.data.len()
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.data[0].len()
    }

    /// The weight vector of dimension `j` (contiguous, length `n`).
    #[inline]
    pub fn dim(&self, j: usize) -> &[f64] {
        &self.data[j]
    }

    /// `w^(j)(v)`.
    #[inline]
    pub fn weight(&self, j: usize, v: VertexId) -> f64 {
        self.data[j][v as usize]
    }

    /// Total weight `w^(j)(V)`.
    #[inline]
    pub fn total(&self, j: usize) -> f64 {
        self.totals[j]
    }

    /// Sum of `w^(j)` over an arbitrary vertex subset.
    pub fn subset_total(&self, j: usize, subset: &[VertexId]) -> f64 {
        subset.iter().map(|&v| self.weight(j, v)).sum()
    }

    /// Restricts the weights to a vertex subset (used when recursing into an
    /// induced subgraph). `subset[i]` is the original id of new vertex `i`.
    pub fn restrict(&self, subset: &[VertexId]) -> Self {
        let data = self
            .data
            .iter()
            .map(|col| subset.iter().map(|&v| col[v as usize]).collect())
            .collect();
        Self::from_vectors(data)
    }

    /// Rebuilds weights from per-dimension vectors **and** the totals that
    /// were live alongside them — the warm-restart hook of `mdbgp-stream`'s
    /// snapshot restore. [`Self::from_vectors`] re-sums the totals, but a
    /// long-running stream maintains them *incrementally*
    /// ([`Self::set_weight`] / [`Self::push_vertex`] add deltas), so the
    /// live totals can differ from a fresh summation in the last float
    /// bits; a restore that re-summed would diverge bitwise from the
    /// process that saved. This constructor trusts the caller's totals
    /// verbatim.
    ///
    /// # Panics
    /// Panics if shapes disagree, any weight is not strictly positive
    /// finite, or any total is not finite (callers deserializing untrusted
    /// bytes must validate first).
    pub fn from_raw_parts(data: Vec<Vec<f64>>, totals: Vec<f64>) -> Self {
        let rebuilt = Self::from_vectors(data);
        assert_eq!(
            totals.len(),
            rebuilt.dims(),
            "one total per weight dimension required"
        );
        for (j, &t) in totals.iter().enumerate() {
            assert!(t.is_finite(), "total of dimension {j} = {t} must be finite");
        }
        Self { totals, ..rebuilt }
    }

    /// Appends one vertex with the given per-dimension weights (the
    /// streaming-ingestion hook of `mdbgp-stream`).
    ///
    /// # Panics
    /// Panics if `row` does not have one strictly-positive finite entry per
    /// dimension.
    pub fn push_vertex(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.dims(), "one weight per dimension required");
        for (j, &w) in row.iter().enumerate() {
            assert!(
                w.is_finite() && w > 0.0,
                "w^({j})(new) = {w} must be positive finite"
            );
        }
        for (col, (&w, total)) in self
            .data
            .iter_mut()
            .zip(row.iter().zip(self.totals.iter_mut()))
        {
            col.push(w);
            *total += w;
        }
    }

    /// Overwrites `w^(j)(v)` (weight drift in a stream), keeping totals
    /// consistent.
    ///
    /// # Panics
    /// Panics if the new weight is not strictly positive finite.
    pub fn set_weight(&mut self, j: usize, v: VertexId, w: f64) {
        assert!(
            w.is_finite() && w > 0.0,
            "w^({j})({v}) = {w} must be positive finite"
        );
        let old = std::mem::replace(&mut self.data[j][v as usize], w);
        self.totals[j] += w - old;
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data
            .iter()
            .map(|c| c.len() * std::mem::size_of::<f64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn star5() -> Graph {
        // Vertex 0 is the hub of a 5-leaf star.
        graph_from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)])
    }

    #[test]
    fn unit_weights() {
        let g = star5();
        let w = VertexWeights::build(&g, &[WeightKind::Unit]);
        assert_eq!(w.dims(), 1);
        assert_eq!(w.total(0), 6.0);
        assert_eq!(w.weight(0, 3), 1.0);
    }

    #[test]
    fn degree_weights_with_floor() {
        let g = graph_from_edges(3, &[(0, 1)]); // vertex 2 isolated
        let w = VertexWeights::build(&g, &[WeightKind::Degree]);
        assert_eq!(w.weight(0, 0), 1.0);
        assert_eq!(w.weight(0, 2), 1.0, "isolated vertex gets floor weight");
        let g2 = star5();
        let w2 = VertexWeights::build(&g2, &[WeightKind::Degree]);
        assert_eq!(w2.weight(0, 0), 5.0);
        assert_eq!(w2.total(0), 10.0);
    }

    #[test]
    fn neighbor_degree_sum() {
        let g = star5();
        let w = VertexWeights::build(&g, &[WeightKind::NeighborDegreeSum]);
        // Hub: 1 + 5 leaves of degree 1 = 6. Leaf: 1 + hub degree 5 = 6.
        assert_eq!(w.weight(0, 0), 6.0);
        assert_eq!(w.weight(0, 1), 6.0);
    }

    #[test]
    fn pagerank_weights_mean_one() {
        let g = star5();
        let w = VertexWeights::build(&g, &[WeightKind::pagerank_default()]);
        let mean = w.total(0) / 6.0;
        assert!(
            (mean - 1.0).abs() < 1e-9,
            "scaled PageRank has mean 1, got {mean}"
        );
        assert!(w.weight(0, 0) > w.weight(0, 1), "hub outranks leaves");
    }

    #[test]
    fn vertex_edge_is_two_dimensional() {
        let w = VertexWeights::vertex_edge(&star5());
        assert_eq!(w.dims(), 2);
        assert_eq!(w.total(0), 6.0);
        assert_eq!(w.total(1), 10.0);
    }

    #[test]
    fn restrict_keeps_order() {
        let g = star5();
        let w = VertexWeights::build(&g, &[WeightKind::Degree]);
        let r = w.restrict(&[0, 5]);
        assert_eq!(r.num_vertices(), 2);
        assert_eq!(r.weight(0, 0), 5.0);
        assert_eq!(r.weight(0, 1), 1.0);
    }

    #[test]
    fn subset_total_matches_manual_sum() {
        let g = star5();
        let w = VertexWeights::vertex_edge(&g);
        assert_eq!(w.subset_total(1, &[0, 1]), 6.0);
    }

    #[test]
    fn push_vertex_extends_all_dimensions() {
        let mut w = VertexWeights::vertex_edge(&star5());
        w.push_vertex(&[1.0, 3.0]);
        assert_eq!(w.num_vertices(), 7);
        assert_eq!(w.weight(1, 6), 3.0);
        assert_eq!(w.total(0), 7.0);
        assert_eq!(w.total(1), 13.0);
    }

    #[test]
    fn set_weight_adjusts_total() {
        let mut w = VertexWeights::unit(4);
        w.set_weight(0, 2, 5.0);
        assert_eq!(w.weight(0, 2), 5.0);
        assert!((w.total(0) - 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn push_vertex_rejects_nonpositive() {
        VertexWeights::unit(2).push_vertex(&[0.0]);
    }

    #[test]
    #[should_panic(expected = "one weight per dimension")]
    fn push_vertex_rejects_wrong_arity() {
        VertexWeights::unit(2).push_vertex(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_nonpositive_weights() {
        VertexWeights::from_vectors(vec![vec![1.0, 0.0]]);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn rejects_ragged_dimensions() {
        VertexWeights::from_vectors(vec![vec![1.0, 1.0], vec![1.0]]);
    }
}
