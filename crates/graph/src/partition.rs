//! Partitions and the quality metrics the paper reports.
//!
//! * **edge locality** — percentage of edges with both endpoints in the same
//!   part (Figures 5, 6, 8–10, Table 3); the complement of the cut.
//! * **imbalance** — `max_i w(V_i) / avg_i w(V_i) − 1` per weight dimension
//!   (Figure 4, Table 3); a partition is ε-balanced iff every part's weight
//!   is within `(1 ± ε) · w(V)/k`.

use crate::{Graph, VertexId, VertexWeights};

/// Errors shared by every partitioner in the workspace.
#[derive(Clone, Debug, PartialEq)]
pub enum PartitionError {
    /// `k` is zero or exceeds the vertex count.
    InvalidK { k: usize, n: usize },
    /// The weight dimensions do not match the graph.
    DimensionMismatch { weights_n: usize, graph_n: usize },
    /// No ε-balanced solution could be produced (e.g. contradictory
    /// multi-dimensional constraints, or rounding failed repeatedly).
    Infeasible(String),
    /// Invalid algorithm configuration.
    Config(String),
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::InvalidK { k, n } => {
                write!(f, "invalid part count k = {k} for {n} vertices")
            }
            PartitionError::DimensionMismatch { weights_n, graph_n } => {
                write!(
                    f,
                    "weights cover {weights_n} vertices but graph has {graph_n}"
                )
            }
            PartitionError::Infeasible(msg) => write!(f, "infeasible: {msg}"),
            PartitionError::Config(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// Common interface of every partitioning algorithm in the workspace:
/// the paper's `GD` as well as the Hash / Spinner / BLP / SHP / METIS
/// baselines. `seed` makes every algorithm deterministic and lets the
/// experiment harness average over repetitions.
pub trait Partitioner {
    /// Short display name used in experiment tables (e.g. `"GD"`).
    fn name(&self) -> &str;

    /// Splits `graph` into `k` parts, balancing every dimension of
    /// `weights`.
    fn partition(
        &self,
        graph: &Graph,
        weights: &VertexWeights,
        k: usize,
        seed: u64,
    ) -> Result<Partition, PartitionError>;
}

/// Validates the common preconditions shared by all partitioners.
pub fn validate_inputs(
    graph: &Graph,
    weights: &VertexWeights,
    k: usize,
) -> Result<(), PartitionError> {
    let n = graph.num_vertices();
    if k == 0 || k > n.max(1) {
        return Err(PartitionError::InvalidK { k, n });
    }
    if weights.num_vertices() != n {
        return Err(PartitionError::DimensionMismatch {
            weights_n: weights.num_vertices(),
            graph_n: n,
        });
    }
    Ok(())
}

/// An assignment of each vertex to one of `k` parts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    parts: Vec<u32>,
    k: usize,
}

impl Partition {
    /// Wraps a raw assignment vector.
    ///
    /// # Panics
    /// Panics if `k == 0` or any label is `>= k`.
    pub fn new(parts: Vec<u32>, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        for (v, &p) in parts.iter().enumerate() {
            assert!(
                (p as usize) < k,
                "vertex {v} assigned to part {p} >= k = {k}"
            );
        }
        Self { parts, k }
    }

    /// The all-zeros partition (everything in part 0).
    pub fn trivial(n: usize, k: usize) -> Self {
        Self::new(vec![0; n], k)
    }

    /// Builds a 2-partition from ±1 signs (the GD rounding output format).
    /// `+1 → part 0`, `-1 → part 1`.
    pub fn from_signs(signs: &[i8]) -> Self {
        let parts = signs
            .iter()
            .map(|&s| {
                assert!(s == 1 || s == -1, "sign must be ±1");
                if s == 1 {
                    0
                } else {
                    1
                }
            })
            .collect();
        Self::new(parts, 2)
    }

    /// Number of parts `k`.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.k
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.parts.len()
    }

    /// Part of vertex `v`.
    #[inline]
    pub fn part_of(&self, v: VertexId) -> u32 {
        self.parts[v as usize]
    }

    /// Raw assignment slice.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.parts
    }

    /// Reassigns vertex `v` (used by the local-search baselines).
    #[inline]
    pub fn assign(&mut self, v: VertexId, part: u32) {
        debug_assert!((part as usize) < self.k);
        self.parts[v as usize] = part;
    }

    /// Vertex count per part.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &p in &self.parts {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Members of each part, in vertex order.
    pub fn members(&self) -> Vec<Vec<VertexId>> {
        let mut members = vec![Vec::new(); self.k];
        for (v, &p) in self.parts.iter().enumerate() {
            members[p as usize].push(v as VertexId);
        }
        members
    }

    /// `loads[i][j] = w^(j)(V_i)` — the per-part per-dimension weight totals.
    pub fn loads(&self, weights: &VertexWeights) -> Vec<Vec<f64>> {
        assert_eq!(weights.num_vertices(), self.parts.len());
        let mut loads = vec![vec![0.0f64; weights.dims()]; self.k];
        for j in 0..weights.dims() {
            let col = weights.dim(j);
            for (v, &p) in self.parts.iter().enumerate() {
                loads[p as usize][j] += col[v];
            }
        }
        loads
    }

    /// Per-dimension imbalance `max_i w(V_i)/avg_i w(V_i) − 1` (paper Fig. 4).
    pub fn imbalance(&self, weights: &VertexWeights) -> Vec<f64> {
        let loads = self.loads(weights);
        (0..weights.dims())
            .map(|j| {
                let avg = weights.total(j) / self.k as f64;
                let max = loads.iter().map(|l| l[j]).fold(f64::MIN, f64::max);
                if avg > 0.0 {
                    max / avg - 1.0
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Maximum imbalance over all dimensions (paper Figs. 9, 15, Table 3).
    pub fn max_imbalance(&self, weights: &VertexWeights) -> f64 {
        self.imbalance(weights).into_iter().fold(0.0, f64::max)
    }

    /// Whether every part's weight is within `(1 ± eps) · w(V)/k` in every
    /// dimension — the ε-balance requirement of Definition 2.1.
    pub fn is_balanced(&self, weights: &VertexWeights, eps: f64) -> bool {
        let loads = self.loads(weights);
        (0..weights.dims()).all(|j| {
            let avg = weights.total(j) / self.k as f64;
            loads.iter().all(|l| (l[j] - avg).abs() <= eps * avg + 1e-9)
        })
    }

    /// Newman modularity `Q = Σ_c (e_c/m − (deg_c / 2m)²)`: how much more
    /// intra-part edge mass the partition captures than a random graph
    /// with the same degrees would. Complements edge locality — locality
    /// ignores part degree mass, modularity normalizes for it.
    pub fn modularity(&self, graph: &Graph) -> f64 {
        let m = graph.num_edges();
        if m == 0 {
            return 0.0;
        }
        let mut intra = vec![0usize; self.k];
        let mut degree_mass = vec![0usize; self.k];
        for v in 0..self.parts.len() as VertexId {
            degree_mass[self.parts[v as usize] as usize] += graph.degree(v);
        }
        for (u, v) in graph.edges() {
            if self.parts[u as usize] == self.parts[v as usize] {
                intra[self.parts[u as usize] as usize] += 1;
            }
        }
        let m = m as f64;
        (0..self.k)
            .map(|c| intra[c] as f64 / m - (degree_mass[c] as f64 / (2.0 * m)).powi(2))
            .sum()
    }

    /// Number of cut edges (endpoints in different parts).
    pub fn cut_edges(&self, graph: &Graph) -> usize {
        assert_eq!(graph.num_vertices(), self.parts.len());
        graph
            .edges()
            .filter(|&(u, v)| self.parts[u as usize] != self.parts[v as usize])
            .count()
    }

    /// Edge locality: fraction of edges with both endpoints in one part
    /// (1.0 for an edgeless graph, matching "nothing to cut").
    pub fn edge_locality(&self, graph: &Graph) -> f64 {
        let m = graph.num_edges();
        if m == 0 {
            return 1.0;
        }
        1.0 - self.cut_edges(graph) as f64 / m as f64
    }

    /// Bundles every metric for reporting.
    pub fn quality(&self, graph: &Graph, weights: &VertexWeights) -> PartitionQuality {
        PartitionQuality {
            k: self.k,
            edge_locality: self.edge_locality(graph),
            cut_edges: self.cut_edges(graph),
            imbalance: self.imbalance(weights),
            max_imbalance: self.max_imbalance(weights),
        }
    }
}

/// Snapshot of partition quality, the row format of the paper's tables.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionQuality {
    pub k: usize,
    /// Fraction in `[0, 1]`; multiply by 100 for the paper's "locality, %".
    pub edge_locality: f64,
    pub cut_edges: usize,
    /// Per-dimension imbalance.
    pub imbalance: Vec<f64>,
    pub max_imbalance: f64,
}

impl std::fmt::Display for PartitionQuality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "k={} locality={:.2}% cut={} max_imbalance={:.2}%",
            self.k,
            self.edge_locality * 100.0,
            self.cut_edges,
            self.max_imbalance * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn two_triangles() -> Graph {
        graph_from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    #[test]
    fn perfect_split_metrics() {
        let g = two_triangles();
        let p = Partition::new(vec![0, 0, 0, 1, 1, 1], 2);
        assert_eq!(p.cut_edges(&g), 1);
        assert!((p.edge_locality(&g) - 6.0 / 7.0).abs() < 1e-12);
        let w = VertexWeights::unit(6);
        assert_eq!(p.imbalance(&w), vec![0.0]);
        assert!(p.is_balanced(&w, 0.0));
    }

    #[test]
    fn imbalance_detects_overload() {
        let p = Partition::new(vec![0, 0, 0, 0, 1, 1], 2);
        let w = VertexWeights::unit(6);
        let imb = p.imbalance(&w);
        assert!((imb[0] - (4.0 / 3.0 - 1.0)).abs() < 1e-12);
        assert!(!p.is_balanced(&w, 0.05));
        assert!(p.is_balanced(&w, 0.34));
    }

    #[test]
    fn multi_dim_imbalance_independent() {
        // Unit-balanced but degree-imbalanced split of a star.
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let w = VertexWeights::vertex_edge(&g);
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        let imb = p.imbalance(&w);
        assert_eq!(imb[0], 0.0, "vertex counts equal");
        assert!(imb[1] > 0.2, "degrees unequal: hub side has 3+1 of 6");
    }

    #[test]
    fn from_signs_roundtrip() {
        let p = Partition::from_signs(&[1, -1, -1, 1]);
        assert_eq!(p.as_slice(), &[0, 1, 1, 0]);
        assert_eq!(p.num_parts(), 2);
    }

    #[test]
    #[should_panic(expected = "sign must be ±1")]
    fn from_signs_rejects_zero() {
        Partition::from_signs(&[1, 0]);
    }

    #[test]
    fn members_and_sizes_agree() {
        let p = Partition::new(vec![2, 0, 1, 2], 3);
        assert_eq!(p.sizes(), vec![1, 1, 2]);
        assert_eq!(p.members()[2], vec![0, 3]);
    }

    #[test]
    fn locality_of_edgeless_graph_is_one() {
        let p = Partition::new(vec![0, 1], 2);
        assert_eq!(p.edge_locality(&Graph::empty(2)), 1.0);
    }

    #[test]
    #[should_panic(expected = ">= k")]
    fn new_rejects_bad_labels() {
        Partition::new(vec![0, 3], 2);
    }

    #[test]
    fn modularity_of_perfect_community_split() {
        let g = two_triangles();
        let good = Partition::new(vec![0, 0, 0, 1, 1, 1], 2);
        let bad = Partition::new(vec![0, 1, 0, 1, 0, 1], 2);
        let qg = good.modularity(&g);
        let qb = bad.modularity(&g);
        assert!(
            qg > 0.3,
            "community-aligned split has high modularity, got {qg}"
        );
        assert!(qg > qb, "aligned {qg} must beat interleaved {qb}");
        // Single part: Q = 1 − 1 = 0.
        let single = Partition::new(vec![0; 6], 1);
        assert!(single.modularity(&g).abs() < 1e-12);
        assert_eq!(
            Partition::new(vec![0, 1], 2).modularity(&Graph::empty(2)),
            0.0
        );
    }

    #[test]
    fn quality_display_formats() {
        let g = two_triangles();
        let w = VertexWeights::unit(6);
        let q = Partition::new(vec![0, 0, 0, 1, 1, 1], 2).quality(&g, &w);
        let s = format!("{q}");
        assert!(s.contains("k=2"));
        assert!(s.contains("locality"));
    }
}
