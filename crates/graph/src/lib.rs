// Tight numeric loops in this crate frequently index several parallel
// arrays at once; rewriting them with zipped iterators obscures the
// kernels, so this pedantic lint is disabled crate-wide (perf lints stay).
#![allow(clippy::needless_range_loop)]

//! Graph substrate for the MDBGP (multi-dimensional balanced graph
//! partitioning) workspace.
//!
//! This crate provides everything the partitioning algorithms operate on:
//!
//! * [`Graph`] — a compact CSR (compressed sparse row) representation of an
//!   undirected simple graph,
//! * [`GraphBuilder`] — incremental construction with deduplication and
//!   self-loop removal,
//! * [`VertexWeights`] — `d` user-specified positive weight functions per
//!   vertex (the "multi-dimensional" part of MDBGP),
//! * [`Partition`] — an assignment of vertices to `k` parts together with
//!   the quality metrics the paper reports (edge locality, per-dimension
//!   imbalance, cut size),
//! * [`gen`] — synthetic graph generators used as stand-ins for the SNAP /
//!   Facebook graphs of the paper's evaluation,
//! * [`analytics`] — PageRank, connected components, neighbour degree sums
//!   (used both as extra balance dimensions and as test oracles),
//! * [`io`] — text / METIS / binary edge-list serialization,
//! * [`subgraph`] — induced subgraphs for recursive bisection.

pub mod analytics;
pub mod builder;
pub mod csr;
pub mod gen;
pub mod io;
pub mod partition;
pub mod subgraph;
pub mod weights;

pub use builder::GraphBuilder;
pub use csr::Graph;
pub use partition::{Partition, PartitionError, PartitionQuality, Partitioner};
pub use subgraph::InducedSubgraph;
pub use weights::{VertexWeights, WeightKind};

/// Vertex identifier. Graphs in this workspace are laptop-scale stand-ins
/// for the paper's billion-edge graphs, so 32 bits are plenty and halve the
/// memory traffic of the CSR arrays compared to `usize`.
pub type VertexId = u32;
