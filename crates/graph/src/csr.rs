//! Compressed sparse row (CSR) graph representation.
//!
//! The graph is undirected and simple: every edge `{u, v}` with `u != v` is
//! stored twice (once in each endpoint's adjacency list), adjacency lists are
//! sorted, and there are no parallel edges or self-loops. All partitioning
//! algorithms in the workspace — the GD core, the baselines and the BSP
//! simulator — iterate over this structure, so it is deliberately minimal:
//! two flat arrays and O(1) neighbour slicing.

use crate::VertexId;

/// An immutable undirected simple graph in CSR form.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v + 1]` indexes `targets` for vertex `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists; length `2 * num_edges()`.
    targets: Vec<VertexId>,
}

impl Graph {
    /// Builds a graph directly from CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent (wrong offset monotonicity,
    /// out-of-range targets, unsorted adjacency, self-loops or duplicates).
    /// Use [`crate::GraphBuilder`] to construct graphs from edge lists.
    pub fn from_csr(offsets: Vec<usize>, targets: Vec<VertexId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must contain at least [0]");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().unwrap(),
            targets.len(),
            "last offset must equal targets length"
        );
        let n = offsets.len() - 1;
        for v in 0..n {
            assert!(offsets[v] <= offsets[v + 1], "offsets must be monotone");
            let adj = &targets[offsets[v]..offsets[v + 1]];
            for (i, &t) in adj.iter().enumerate() {
                assert!((t as usize) < n, "target out of range");
                assert!(t as usize != v, "self-loop at vertex {v}");
                if i > 0 {
                    assert!(adj[i - 1] < t, "adjacency of {v} not strictly sorted");
                }
            }
        }
        debug_assert!(
            targets.len().is_multiple_of(2),
            "undirected edges appear twice"
        );
        Self { offsets, targets }
    }

    /// [`Self::from_csr`] without the O(n + m) invariant sweep, for
    /// constructors that produce the arrays by a structure-preserving
    /// transformation of an already-valid graph — induced-subgraph
    /// extraction, or the streaming layer's parallel delta-merge compaction,
    /// both of which sit on hot paths where the sweep would dominate.
    /// Invariants are still checked in debug builds; callers outside this
    /// crate must uphold every [`Self::from_csr`] invariant themselves.
    pub fn from_csr_unchecked(offsets: Vec<usize>, targets: Vec<VertexId>) -> Self {
        #[cfg(debug_assertions)]
        {
            Self::from_csr(offsets, targets)
        }
        #[cfg(not(debug_assertions))]
        {
            Self { offsets, targets }
        }
    }

    /// Builds a graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        Self {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m` (each `{u, v}` counted once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Whether edge `{u, v}` is present (binary search, `O(log deg(u))`).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all vertices `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over undirected edges as `(u, v)` pairs with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree, or 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(v as VertexId))
            .max()
            .unwrap_or(0)
    }

    /// Mean degree `2m / n` (0.0 for an empty graph).
    pub fn mean_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.targets.len() as f64 / self.num_vertices() as f64
        }
    }

    /// Raw CSR offsets (for tight loops such as the mat-vec in `mdbgp-core`).
    #[inline]
    pub fn raw_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Raw CSR targets.
    #[inline]
    pub fn raw_targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Approximate heap footprint in bytes (used by the Table 3 experiment,
    /// which reports memory alongside quality).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("num_vertices", &self.num_vertices())
            .field("num_edges", &self.num_edges())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> Graph {
        GraphBuilder::new(3).edges([(0, 1), (1, 2), (0, 2)]).build()
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(3), 0);
        assert!(g.neighbors(0).is_empty());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.mean_degree(), 0.0);
    }

    #[test]
    fn zero_vertex_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn triangle_basic_accessors() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.max_degree(), 2);
        assert!((g.mean_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once_ordered() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn from_csr_rejects_self_loop() {
        Graph::from_csr(vec![0, 1], vec![0]);
    }

    #[test]
    #[should_panic(expected = "not strictly sorted")]
    fn from_csr_rejects_duplicates() {
        Graph::from_csr(vec![0, 2, 3, 4], vec![1, 1, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "target out of range")]
    fn from_csr_rejects_out_of_range() {
        Graph::from_csr(vec![0, 1, 2], vec![1, 5]);
    }

    #[test]
    fn memory_estimate_positive() {
        assert!(triangle().memory_bytes() > 0);
    }
}
