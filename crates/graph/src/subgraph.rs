//! Induced subgraphs with id remapping.
//!
//! Recursive bisection (paper §3.3) repeatedly partitions an induced
//! subgraph of the previous level; [`InducedSubgraph`] keeps the mapping back
//! to the original vertex ids so results can be stitched into a single k-way
//! [`crate::Partition`].

use crate::{Graph, VertexId};

/// A subgraph induced by a vertex subset, plus the id mapping.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The subgraph over the renumbered vertices `0..subset.len()`.
    pub graph: Graph,
    /// `original[i]` is the id in the parent graph of subgraph vertex `i`.
    pub original: Vec<VertexId>,
}

impl InducedSubgraph {
    /// Extracts the subgraph of `graph` induced by `subset`.
    ///
    /// `subset` may be in any order; it is deduplicated and sorted so that
    /// subgraph ids are assigned in increasing original-id order (which keeps
    /// the whole pipeline deterministic).
    ///
    /// Runs in `O(n + Σ_{v ∈ subset} deg(v))` with no edge-list sort: the
    /// parent adjacency is sorted and the id remap preserves order, so the
    /// sub-CSR is assembled directly in two linear sweeps. This is the
    /// per-pair setup cost of warm-started refinement
    /// (`refine_pair` extracts one subgraph per pair solve), so it sits on
    /// the streaming engine's refine hot path.
    pub fn extract(graph: &Graph, subset: &[VertexId]) -> Self {
        let mut original: Vec<VertexId> = subset.to_vec();
        original.sort_unstable();
        original.dedup();
        let n_sub = original.len();

        // Dense reverse map: parent id -> subgraph id (u32::MAX = absent).
        let mut to_sub = vec![u32::MAX; graph.num_vertices()];
        for (i, &v) in original.iter().enumerate() {
            to_sub[v as usize] = i as u32;
        }

        // Remapped adjacency in one sweep: survivors are appended and the
        // running length becomes the next offset. The parent lists are
        // strictly sorted and `to_sub` is monotone on the kept vertices,
        // so each remapped list comes out strictly sorted; the parent
        // graph being simple means no dedup or self-loop filtering is
        // needed either — the CSR invariants hold by construction.
        let mut offsets = Vec::with_capacity(n_sub + 1);
        offsets.push(0usize);
        let mut targets = Vec::with_capacity(graph.num_edges().min(1 << 20));
        for &v in &original {
            for &u in graph.neighbors(v) {
                let su = to_sub[u as usize];
                if su != u32::MAX {
                    targets.push(su);
                }
            }
            offsets.push(targets.len());
        }
        Self {
            graph: Graph::from_csr_unchecked(offsets, targets),
            original,
        }
    }

    /// Number of vertices in the subgraph.
    pub fn num_vertices(&self) -> usize {
        self.original.len()
    }

    /// Maps a subgraph vertex id back to the parent graph.
    #[inline]
    pub fn to_original(&self, sub_vertex: VertexId) -> VertexId {
        self.original[sub_vertex as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn path6() -> Graph {
        graph_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
    }

    #[test]
    fn extract_prefix() {
        let g = path6();
        let s = InducedSubgraph::extract(&g, &[0, 1, 2]);
        assert_eq!(s.num_vertices(), 3);
        assert_eq!(s.graph.num_edges(), 2);
        assert_eq!(s.to_original(2), 2);
    }

    #[test]
    fn extract_with_gap_drops_cross_edges() {
        let g = path6();
        let s = InducedSubgraph::extract(&g, &[0, 1, 4, 5]);
        assert_eq!(s.graph.num_edges(), 2, "edges (0,1) and (4,5) survive");
        assert!(s.graph.has_edge(0, 1));
        assert!(s.graph.has_edge(2, 3), "renumbered 4-5 edge");
        assert_eq!(s.to_original(2), 4);
    }

    #[test]
    fn extract_unsorted_input_normalized() {
        let g = path6();
        let s = InducedSubgraph::extract(&g, &[5, 3, 4, 3]);
        assert_eq!(s.original, vec![3, 4, 5]);
        assert_eq!(s.graph.num_edges(), 2);
    }

    #[test]
    fn extract_empty_subset() {
        let s = InducedSubgraph::extract(&path6(), &[]);
        assert_eq!(s.num_vertices(), 0);
        assert_eq!(s.graph.num_edges(), 0);
    }

    #[test]
    fn extract_whole_graph_is_identity() {
        let g = path6();
        let all: Vec<u32> = (0..6).collect();
        let s = InducedSubgraph::extract(&g, &all);
        assert_eq!(s.graph, g);
    }
}
