//! Erdős–Rényi G(n, m) random graphs.

use crate::builder::GraphBuilder;
use crate::Graph;
use rand::Rng;

/// Samples a uniform simple graph with `n` vertices and (up to) `m` edges by
/// rejection: duplicate / self-loop draws are retried a bounded number of
/// times, so for dense requests the result may have slightly fewer than `m`
/// edges. Panics if `m` exceeds the number of possible edges.
pub fn erdos_renyi<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= max_edges, "m = {m} exceeds {max_edges} possible edges");
    if n < 2 || m == 0 {
        return GraphBuilder::new(n).build();
    }
    let mut b = GraphBuilder::with_edge_capacity(n, m);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut attempts = 0usize;
    let attempt_cap = 20 * m + 1000;
    while seen.len() < m && attempts < attempt_cap {
        attempts += 1;
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            b.add_edge(key.0, key.1);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_edge_count_sparse() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = erdos_renyi(1000, 5000, &mut rng);
        assert_eq!(g.num_vertices(), 1000);
        assert_eq!(g.num_edges(), 5000);
    }

    #[test]
    fn dense_request_close_to_full() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = erdos_renyi(20, 190, &mut rng); // complete graph on 20
        assert!(g.num_edges() >= 185, "got {}", g.num_edges());
    }

    #[test]
    fn zero_edges() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(erdos_renyi(10, 0, &mut rng).num_edges(), 0);
    }

    #[test]
    fn deterministic_for_seed() {
        let g1 = erdos_renyi(100, 300, &mut StdRng::seed_from_u64(9));
        let g2 = erdos_renyi(100, 300, &mut StdRng::seed_from_u64(9));
        assert_eq!(g1, g2);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn too_many_edges_rejected() {
        erdos_renyi(3, 4, &mut StdRng::seed_from_u64(0));
    }
}
