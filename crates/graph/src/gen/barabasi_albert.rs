//! Barabási–Albert preferential attachment graphs.

use crate::builder::GraphBuilder;
use crate::{Graph, VertexId};
use rand::Rng;

/// Generates a BA graph: starts from a clique on `m + 1` vertices, then each
/// new vertex attaches to `m` existing vertices chosen proportionally to
/// degree (implemented with the classic repeated-endpoint list, which makes
/// preferential attachment an O(1) uniform draw).
pub fn barabasi_albert<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(m >= 1, "attachment count must be positive");
    assert!(n > m, "need more vertices than the seed clique");
    let mut builder = GraphBuilder::with_edge_capacity(n, n * m);
    // Every edge endpoint is pushed here; sampling an element uniformly is
    // equivalent to sampling a vertex proportionally to its degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m);
    for u in 0..=m {
        for v in (u + 1)..=m {
            builder.add_edge(u as VertexId, v as VertexId);
            endpoints.push(u as VertexId);
            endpoints.push(v as VertexId);
        }
    }
    let mut chosen = Vec::with_capacity(m);
    for v in (m + 1)..n {
        chosen.clear();
        // Rejection-sample m distinct targets.
        let mut guard = 0;
        while chosen.len() < m && guard < 100 * m {
            guard += 1;
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            builder.add_edge(v as VertexId, t);
            endpoints.push(v as VertexId);
            endpoints.push(t);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytics::{connected_components, degree_stats};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn edge_count_formula() {
        let g = barabasi_albert(500, 3, &mut StdRng::seed_from_u64(6));
        // clique(4) = 6 edges + 496 * 3 attachments.
        assert_eq!(g.num_edges(), 6 + 496 * 3);
    }

    #[test]
    fn connected_and_skewed() {
        let g = barabasi_albert(2000, 2, &mut StdRng::seed_from_u64(8));
        let (_, comps) = connected_components(&g);
        assert_eq!(comps, 1, "BA graphs are connected by construction");
        let s = degree_stats(&g);
        assert!(s.max > 20, "hubs emerge, max = {}", s.max);
        assert!(s.min >= 2);
    }

    #[test]
    fn minimum_degree_is_m() {
        let g = barabasi_albert(300, 4, &mut StdRng::seed_from_u64(3));
        assert!(g.vertices().all(|v| g.degree(v) >= 4));
    }

    #[test]
    #[should_panic(expected = "more vertices")]
    fn rejects_tiny_n() {
        barabasi_albert(3, 3, &mut StdRng::seed_from_u64(0));
    }
}
