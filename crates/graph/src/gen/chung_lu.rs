//! Chung–Lu expected-degree random graphs and power-law degree sequences.
//!
//! In the Chung–Lu model each edge `{u, v}` appears with probability
//! proportional to `w_u · w_v`. We use the standard fast approximation:
//! sample `m` endpoint pairs from the weight distribution (alias method) and
//! deduplicate, which preserves the degree distribution shape at the scale
//! we need while running in `O(n + m)`.

use super::sampling::AliasTable;
use crate::builder::GraphBuilder;
use crate::Graph;
use rand::Rng;

/// Samples a power-law "expected degree" sequence with exponent `gamma`,
/// bounded to `[min_deg, max_deg]`, via inverse-transform sampling of the
/// continuous Pareto-like density `p(x) ∝ x^(-gamma)`.
///
/// Social networks sit around `gamma ∈ [2, 3]`; the paper's Twitter graph is
/// the most skewed of its datasets and we mimic it with `gamma ≈ 1.9` and a
/// high `max_deg`.
pub fn power_law_sequence<R: Rng>(
    n: usize,
    gamma: f64,
    min_deg: f64,
    max_deg: f64,
    rng: &mut R,
) -> Vec<f64> {
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    assert!(0.0 < min_deg && min_deg <= max_deg);
    let a = 1.0 - gamma;
    let lo = min_deg.powf(a);
    let hi = max_deg.powf(a);
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            // Inverse CDF of the truncated power law.
            (lo + u * (hi - lo)).powf(1.0 / a)
        })
        .collect()
}

/// Chung–Lu graph over expected degrees `weights`, targeting
/// `m ≈ Σ w / 2` edges (the natural edge count of the model).
pub fn chung_lu<R: Rng>(weights: &[f64], rng: &mut R) -> Graph {
    let n = weights.len();
    if n < 2 {
        return GraphBuilder::new(n).build();
    }
    let total: f64 = weights.iter().sum();
    let target_edges = (total / 2.0).round() as usize;
    let table = AliasTable::new(weights);
    let mut b = GraphBuilder::with_edge_capacity(n, target_edges);
    // Oversample slightly: dedup and self-loop removal eat a few percent.
    let draws = target_edges + target_edges / 10 + 16;
    for _ in 0..draws {
        let u = table.sample(rng);
        let v = table.sample(rng);
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytics::degree_stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn power_law_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let seq = power_law_sequence(10_000, 2.5, 2.0, 500.0, &mut rng);
        assert!(seq.iter().all(|&d| (2.0..=500.0).contains(&d)));
    }

    #[test]
    fn power_law_is_skewed() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seq = power_law_sequence(10_000, 2.2, 2.0, 1000.0, &mut rng);
        seq.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let total: f64 = seq.iter().sum();
        let top_share: f64 = seq[..100].iter().sum::<f64>() / total;
        assert!(top_share > 0.08, "top 1% should dominate, got {top_share}");
        let median = seq[5000];
        assert!(
            median < 2.0 * 2.0 + 4.0,
            "median stays near min_deg, got {median}"
        );
    }

    #[test]
    fn chung_lu_edge_count_near_target() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = power_law_sequence(5_000, 2.3, 4.0, 200.0, &mut rng);
        let expected = w.iter().sum::<f64>() / 2.0;
        let g = chung_lu(&w, &mut rng);
        let m = g.num_edges() as f64;
        assert!(
            (m - expected).abs() / expected < 0.15,
            "m = {m}, expected ≈ {expected}"
        );
    }

    #[test]
    fn chung_lu_degrees_track_weights() {
        let mut rng = StdRng::seed_from_u64(4);
        // One heavy vertex among light ones.
        let mut w = vec![4.0; 2000];
        w[0] = 400.0;
        let g = chung_lu(&w, &mut rng);
        let stats = degree_stats(&g);
        assert!(g.degree(0) as f64 > 150.0, "hub degree {}", g.degree(0));
        assert_eq!(stats.max, g.degree(0) as usize);
    }

    #[test]
    fn chung_lu_tiny_inputs() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(chung_lu(&[], &mut rng).num_vertices(), 0);
        assert_eq!(chung_lu(&[3.0], &mut rng).num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn power_law_rejects_gamma_one() {
        power_law_sequence(10, 1.0, 1.0, 10.0, &mut StdRng::seed_from_u64(0));
    }
}
