//! Synthetic graph generators.
//!
//! The paper evaluates on SNAP social networks (LiveJournal, Orkut, Twitter,
//! Friendster, sx-stackoverflow) and proprietary Facebook friendship graphs
//! with up to 800B edges. Neither is available offline, so the experiment
//! harness substitutes scaled-down synthetic proxies. Two properties of the
//! real graphs drive every qualitative result in the paper, and both are
//! explicit parameters here:
//!
//! 1. **skewed (power-law) degree distributions** — these break the
//!    multi-dimensional balance of Spinner/SHP (Figure 4) and make
//!    vertex-only balancing overload workers (Figure 1);
//! 2. **community structure** — this is what lets a good partitioner reach
//!    edge locality far above the `1/k` of hash partitioning (Figures 5, 6).
//!
//! [`community::CommunityGraphConfig`] (an LFR-lite model) controls both and
//! is the default proxy family; [`mod@rmat`] provides the classic scale-free
//! benchmark family used for the scalability sweep.

pub mod barabasi_albert;
pub mod chung_lu;
pub mod classic;
pub mod community;
pub mod erdos_renyi;
pub mod rmat;
mod sampling;

pub use barabasi_albert::barabasi_albert;
pub use chung_lu::{chung_lu, power_law_sequence};
pub use classic::{complete, cycle, grid, path, planted_partition, star, two_cliques};
pub use community::{community_graph, CommunityGraph, CommunityGraphConfig};
pub use erdos_renyi::erdos_renyi;
pub use rmat::{rmat, RmatConfig};
pub use sampling::AliasTable;
