//! Deterministic graph families used primarily by tests, plus the small
//! planted-partition model (the textbook ancestor of the community proxy).

use crate::builder::GraphBuilder;
use crate::{Graph, VertexId};
use rand::Rng;

/// Path `0 - 1 - ... - (n-1)`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge((v - 1) as VertexId, v as VertexId);
    }
    b.build()
}

/// Cycle on `n >= 3` vertices.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.add_edge(v as VertexId, ((v + 1) % n) as VertexId);
    }
    b.build()
}

/// `w × h` grid with 4-neighbour connectivity; vertex `(x, y)` has id
/// `y * w + x`.
pub fn grid(w: usize, h: usize) -> Graph {
    let mut b = GraphBuilder::new(w * h);
    for y in 0..h {
        for x in 0..w {
            let v = (y * w + x) as VertexId;
            if x + 1 < w {
                b.add_edge(v, v + 1);
            }
            if y + 1 < h {
                b.add_edge(v, v + w as VertexId);
            }
        }
    }
    b.build()
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u as VertexId, v as VertexId);
        }
    }
    b.build()
}

/// Star with `leaves` leaves; the hub is vertex 0.
pub fn star(leaves: usize) -> Graph {
    let mut b = GraphBuilder::new(leaves + 1);
    for v in 1..=leaves {
        b.add_edge(0, v as VertexId);
    }
    b.build()
}

/// Two cliques of size `s` joined by `bridges` edges — the canonical
/// "obvious bisection" instance: the optimal cut is exactly `bridges`.
pub fn two_cliques(s: usize, bridges: usize) -> Graph {
    assert!(s >= 1 && bridges <= s);
    let mut b = GraphBuilder::new(2 * s);
    for u in 0..s {
        for v in (u + 1)..s {
            b.add_edge(u as VertexId, v as VertexId);
            b.add_edge((s + u) as VertexId, (s + v) as VertexId);
        }
    }
    for i in 0..bridges {
        b.add_edge(i as VertexId, (s + i) as VertexId);
    }
    b.build()
}

/// Planted-partition model: `communities` equal groups over `n` vertices;
/// each intra-group pair is an edge with probability `p_in`, each
/// inter-group pair with `p_out`. O(n²) — intended for tests and small
/// demos; use [`super::community_graph`] at scale.
pub fn planted_partition<R: Rng>(
    n: usize,
    communities: usize,
    p_in: f64,
    p_out: f64,
    rng: &mut R,
) -> Graph {
    assert!(communities >= 1 && communities <= n.max(1));
    assert!((0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out));
    let group = |v: usize| v * communities / n.max(1);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if group(u) == group(v) { p_in } else { p_out };
            if rng.gen::<f64>() < p {
                b.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_degrees() {
        let g = path(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn cycle_is_2_regular() {
        let g = cycle(7);
        assert_eq!(g.num_edges(), 7);
        assert!(g.vertices().all(|v| g.degree(v) == 2));
    }

    #[test]
    fn grid_edge_count() {
        let g = grid(4, 3);
        // 3 * 3 horizontal rows of edges? No: h*(w-1) + w*(h-1) = 3*3 + 4*2.
        assert_eq!(g.num_edges(), 3 * 3 + 4 * 2);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(5), 4); // interior vertex (1,1)
    }

    #[test]
    fn complete_edge_count() {
        assert_eq!(complete(6).num_edges(), 15);
    }

    #[test]
    fn star_shape() {
        let g = star(4);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn two_cliques_bridge_count() {
        let g = two_cliques(5, 2);
        assert_eq!(g.num_edges(), 2 * 10 + 2);
        assert!(g.has_edge(0, 5));
        assert!(g.has_edge(1, 6));
        assert!(!g.has_edge(2, 7));
    }

    #[test]
    fn planted_partition_denser_inside() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = planted_partition(200, 2, 0.2, 0.01, &mut rng);
        let inside = g.edges().filter(|&(u, v)| (u < 100) == (v < 100)).count();
        let outside = g.num_edges() - inside;
        assert!(inside > 5 * outside, "inside={inside} outside={outside}");
    }

    #[test]
    fn planted_partition_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(planted_partition(20, 2, 0.0, 0.0, &mut rng).num_edges(), 0);
        let g = planted_partition(10, 2, 1.0, 1.0, &mut rng);
        assert_eq!(g.num_edges(), 45);
    }
}
