//! R-MAT (recursive matrix) generator — the standard scale-free benchmark
//! family (Graph500 uses it). Used for the FB-X proxy size sweep in the
//! scalability experiment (paper Fig. 11) because a single parameter set
//! yields a self-similar family across sizes.

use crate::builder::GraphBuilder;
use crate::Graph;
use rand::Rng;

/// R-MAT parameters. The quadrant probabilities must sum to 1.
#[derive(Clone, Copy, Debug)]
pub struct RmatConfig {
    /// `n = 2^scale` vertices.
    pub scale: u32,
    /// Average edges per vertex; `m = edge_factor * n` draws.
    pub edge_factor: usize,
    pub a: f64,
    pub b: f64,
    pub c: f64,
}

impl RmatConfig {
    /// Graph500 reference parameters (a=0.57, b=c=0.19, d=0.05).
    pub fn graph500(scale: u32, edge_factor: usize) -> Self {
        Self {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }

    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }

    fn validate(&self) {
        assert!(self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d() >= -1e-9);
        assert!(self.scale >= 1 && self.scale < 31);
    }
}

/// Generates an R-MAT graph. Duplicate and self-loop draws are discarded by
/// the builder, so the final edge count lands a little under
/// `edge_factor << scale`.
pub fn rmat<R: Rng>(config: RmatConfig, rng: &mut R) -> Graph {
    config.validate();
    let n = 1usize << config.scale;
    let m = config.edge_factor * n;
    let (a, b, c) = (config.a, config.b, config.c);
    let mut builder = GraphBuilder::with_edge_capacity(n, m);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..config.scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < a {
                // top-left quadrant: no bits set
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if u != v {
            builder.add_edge(u as u32, v as u32);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytics::degree_stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn size_and_determinism() {
        let cfg = RmatConfig::graph500(10, 8);
        let g1 = rmat(cfg, &mut StdRng::seed_from_u64(42));
        let g2 = rmat(cfg, &mut StdRng::seed_from_u64(42));
        assert_eq!(g1, g2);
        assert_eq!(g1.num_vertices(), 1024);
        let m = g1.num_edges();
        assert!(m > 4000 && m <= 8192, "m = {m}");
    }

    #[test]
    fn skewed_degree_distribution() {
        let g = rmat(RmatConfig::graph500(12, 16), &mut StdRng::seed_from_u64(1));
        let s = degree_stats(&g);
        assert!(
            s.top1_percent_share > 0.10,
            "R-MAT should be skewed, top1% share = {}",
            s.top1_percent_share
        );
        assert!(
            s.max > 8 * s.mean as usize,
            "max {} vs mean {}",
            s.max,
            s.mean
        );
    }

    #[test]
    fn uniform_parameters_lose_skew() {
        let cfg = RmatConfig {
            scale: 12,
            edge_factor: 16,
            a: 0.25,
            b: 0.25,
            c: 0.25,
        };
        let g = rmat(cfg, &mut StdRng::seed_from_u64(1));
        let s = degree_stats(&g);
        assert!(
            s.top1_percent_share < 0.05,
            "uniform R-MAT ≈ ER, got {}",
            s.top1_percent_share
        );
    }

    #[test]
    #[should_panic]
    fn invalid_probabilities_rejected() {
        let cfg = RmatConfig {
            scale: 4,
            edge_factor: 2,
            a: 0.9,
            b: 0.3,
            c: 0.3,
        };
        rmat(cfg, &mut StdRng::seed_from_u64(0));
    }
}
