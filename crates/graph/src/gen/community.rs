//! LFR-lite community graphs — the workhorse proxy for the paper's social
//! networks.
//!
//! The model plants power-law-sized communities, gives every vertex a
//! power-law degree, and splits each vertex's edge endpoints between its own
//! community (fraction `1 − mixing`) and the rest of the graph (fraction
//! `mixing`). Edges are realized with Chung–Lu sampling inside and across
//! communities. The result has the two properties the paper's experiments
//! hinge on — degree skew and clusterability — with independent knobs:
//!
//! * `mixing ≈ 0.1` mimics LiveJournal/Orkut (high achievable locality),
//! * `mixing ≈ 0.35` with `degree_exponent < 2.1` mimics Twitter (dense,
//!   hub-dominated, hard to balance on two dimensions simultaneously).

use super::chung_lu::power_law_sequence;
use super::sampling::AliasTable;
use crate::builder::GraphBuilder;
use crate::{Graph, VertexId};
use rand::Rng;

/// Parameters of the LFR-lite model.
#[derive(Clone, Debug)]
pub struct CommunityGraphConfig {
    pub num_vertices: usize,
    /// Target mean degree (edge count ≈ `num_vertices * mean_degree / 2`).
    pub mean_degree: f64,
    /// Power-law exponent of the degree distribution (2–3 for social nets).
    pub degree_exponent: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Fraction of each vertex's edges that leave its community (µ).
    pub mixing: f64,
    /// Power-law exponent of the community size distribution.
    pub community_exponent: f64,
    pub min_community: usize,
    pub max_community: usize,
    /// Community density heterogeneity: each community's member degrees
    /// are scaled by a log-uniform factor in `[1/spread, spread]` (then
    /// renormalized to keep the global mean). `1.0` = homogeneous. Real
    /// social networks have strongly heterogeneous community densities,
    /// which is what makes one-dimensional (vertex-count) balancing
    /// overload workers with edges (paper Figure 1).
    pub density_spread: f64,
}

impl CommunityGraphConfig {
    /// A reasonable social-network-like default for `n` vertices.
    pub fn social(n: usize) -> Self {
        Self {
            num_vertices: n,
            mean_degree: 16.0,
            degree_exponent: 2.5,
            max_degree: (n / 20).max(8),
            mixing: 0.12,
            community_exponent: 2.0,
            min_community: (n / 200).max(8),
            max_community: (n / 8).max(16),
            density_spread: 1.0,
        }
    }

    fn validate(&self) {
        assert!(self.num_vertices >= 2);
        assert!(self.mean_degree >= 1.0);
        assert!(self.degree_exponent > 1.0);
        assert!((0.0..=1.0).contains(&self.mixing));
        assert!(self.min_community >= 1 && self.min_community <= self.max_community);
        assert!(self.max_community <= self.num_vertices);
        assert!(self.density_spread >= 1.0, "density_spread must be >= 1");
    }
}

/// A generated community graph together with its planted ground truth.
#[derive(Clone, Debug)]
pub struct CommunityGraph {
    pub graph: Graph,
    /// Planted community of each vertex.
    pub community: Vec<u32>,
    pub num_communities: usize,
}

/// Generates an LFR-lite graph (see module docs).
pub fn community_graph<R: Rng>(config: &CommunityGraphConfig, rng: &mut R) -> CommunityGraph {
    config.validate();
    let n = config.num_vertices;

    // 1. Degrees: sample a truncated power law, then rescale to the target
    //    mean (the truncation shifts the raw mean unpredictably).
    let mut degrees = power_law_sequence(
        n,
        config.degree_exponent,
        1.0,
        config.max_degree as f64,
        rng,
    );
    let raw_mean = degrees.iter().sum::<f64>() / n as f64;
    let scale = config.mean_degree / raw_mean;
    for d in &mut degrees {
        *d = (*d * scale).clamp(1.0, config.max_degree as f64);
    }

    // 2. Community sizes: power law until all vertices are covered.
    let mut sizes: Vec<usize> = Vec::new();
    let mut covered = 0usize;
    while covered < n {
        let s = power_law_sequence(
            1,
            config.community_exponent,
            config.min_community as f64,
            config.max_community as f64,
            rng,
        )[0]
        .round() as usize;
        let s = s.clamp(1, n - covered);
        sizes.push(s);
        covered += s;
    }
    let num_communities = sizes.len();

    // 3. Contiguous block assignment (vertex order is random anyway since
    //    degrees are i.i.d.), keeping everything deterministic per seed.
    let mut community = vec![0u32; n];
    let mut starts = Vec::with_capacity(num_communities);
    let mut cursor = 0usize;
    for (c, &s) in sizes.iter().enumerate() {
        starts.push(cursor);
        for v in cursor..cursor + s {
            community[v] = c as u32;
        }
        cursor += s;
    }

    // 3b. Heterogeneous community densities: scale member degrees by a
    //     log-uniform per-community factor, then renormalize the global
    //     mean back to the target.
    if config.density_spread > 1.0 {
        let ln_s = config.density_spread.ln();
        for (c, &s) in sizes.iter().enumerate() {
            let factor = (rng.gen_range(-ln_s..=ln_s)).exp();
            for v in starts[c]..starts[c] + s {
                degrees[v] = (degrees[v] * factor).clamp(1.0, config.max_degree as f64);
            }
        }
        let new_mean = degrees.iter().sum::<f64>() / n as f64;
        let renorm = config.mean_degree / new_mean;
        for d in &mut degrees {
            *d = (*d * renorm).clamp(1.0, config.max_degree as f64);
        }
    }

    let mut builder = GraphBuilder::with_edge_capacity(n, (config.mean_degree * n as f64) as usize);

    // 4. Internal edges: Chung–Lu inside each community on (1 − µ)·deg.
    for (c, &s) in sizes.iter().enumerate() {
        if s < 2 {
            continue;
        }
        let start = starts[c];
        let internal: Vec<f64> = (start..start + s)
            .map(|v| (1.0 - config.mixing) * degrees[v])
            .collect();
        let total: f64 = internal.iter().sum();
        if total <= 0.0 {
            continue;
        }
        let table = AliasTable::new(&internal);
        let target = (total / 2.0).round() as usize;
        let draws = target + target / 10 + 4;
        for _ in 0..draws {
            let u = start as VertexId + table.sample(rng);
            let v = start as VertexId + table.sample(rng);
            if u != v {
                builder.add_edge(u, v);
            }
        }
    }

    // 5. External edges: global Chung–Lu on µ·deg, rejecting intra-community
    //    pairs so that µ really measures cross-community mixing.
    if config.mixing > 0.0 {
        let external: Vec<f64> = degrees.iter().map(|&d| config.mixing * d).collect();
        let total: f64 = external.iter().sum();
        if total > 0.0 {
            let table = AliasTable::new(&external);
            let target = (total / 2.0).round() as usize;
            let draws = target + target / 10 + 4;
            let mut emitted = 0usize;
            let mut attempts = 0usize;
            while emitted < draws && attempts < 4 * draws + 64 {
                attempts += 1;
                let u = table.sample(rng);
                let v = table.sample(rng);
                if u != v && community[u as usize] != community[v as usize] {
                    builder.add_edge(u, v);
                    emitted += 1;
                }
            }
        }
    }

    CommunityGraph {
        graph: builder.build(),
        community,
        num_communities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytics::degree_stats;
    use crate::Partition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make(n: usize, mixing: f64, seed: u64) -> CommunityGraph {
        let mut cfg = CommunityGraphConfig::social(n);
        cfg.mixing = mixing;
        community_graph(&cfg, &mut StdRng::seed_from_u64(seed))
    }

    /// Partition by grouping whole communities greedily into k ≈ equal parts.
    fn ground_truth_partition(cg: &CommunityGraph, k: usize) -> Partition {
        let mut comm_sizes = vec![0usize; cg.num_communities];
        for &c in &cg.community {
            comm_sizes[c as usize] += 1;
        }
        let mut order: Vec<usize> = (0..cg.num_communities).collect();
        order.sort_by_key(|&c| std::cmp::Reverse(comm_sizes[c]));
        let mut part_of_comm = vec![0u32; cg.num_communities];
        let mut loads = vec![0usize; k];
        for c in order {
            let target = (0..k).min_by_key(|&i| loads[i]).unwrap();
            part_of_comm[c] = target as u32;
            loads[target] += comm_sizes[c];
        }
        let parts = cg
            .community
            .iter()
            .map(|&c| part_of_comm[c as usize])
            .collect();
        Partition::new(parts, k)
    }

    #[test]
    fn size_and_mean_degree_close_to_target() {
        let cg = make(4000, 0.1, 3);
        assert_eq!(cg.graph.num_vertices(), 4000);
        let mean = cg.graph.mean_degree();
        assert!((mean - 16.0).abs() < 4.0, "mean degree {mean}");
    }

    #[test]
    fn low_mixing_gives_high_ground_truth_locality() {
        let cg = make(4000, 0.1, 5);
        let p = ground_truth_partition(&cg, 2);
        let loc = p.edge_locality(&cg.graph);
        assert!(loc > 0.8, "locality of planted partition = {loc}");
    }

    #[test]
    fn high_mixing_reduces_locality() {
        let lo = make(4000, 0.05, 7);
        let hi = make(4000, 0.5, 7);
        let loc_lo = ground_truth_partition(&lo, 2).edge_locality(&lo.graph);
        let loc_hi = ground_truth_partition(&hi, 2).edge_locality(&hi.graph);
        assert!(
            loc_lo > loc_hi + 0.2,
            "mixing must control locality: lo={loc_lo:.3} hi={loc_hi:.3}"
        );
    }

    #[test]
    fn degrees_are_skewed() {
        let cg = make(8000, 0.15, 9);
        let s = degree_stats(&cg.graph);
        assert!(
            s.max as f64 > 6.0 * s.mean,
            "max {} vs mean {:.1}",
            s.max,
            s.mean
        );
    }

    #[test]
    fn communities_cover_all_vertices() {
        let cg = make(1000, 0.2, 1);
        assert_eq!(cg.community.len(), 1000);
        assert!(cg.num_communities >= 2);
        assert!(cg
            .community
            .iter()
            .all(|&c| (c as usize) < cg.num_communities));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = make(1000, 0.2, 42);
        let b = make(1000, 0.2, 42);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.community, b.community);
    }

    #[test]
    fn density_spread_creates_heterogeneous_communities() {
        let mut cfg = CommunityGraphConfig::social(6000);
        cfg.density_spread = 6.0;
        let cg = community_graph(&cfg, &mut StdRng::seed_from_u64(13));
        // Mean degree per community must vary widely.
        let mut deg_sum = vec![0.0f64; cg.num_communities];
        let mut count = vec![0usize; cg.num_communities];
        for v in cg.graph.vertices() {
            let c = cg.community[v as usize] as usize;
            deg_sum[c] += cg.graph.degree(v) as f64;
            count[c] += 1;
        }
        let means: Vec<f64> = deg_sum
            .iter()
            .zip(&count)
            .filter(|(_, &c)| c >= 20)
            .map(|(s, &c)| s / c as f64)
            .collect();
        let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = means.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            hi > 2.5 * lo,
            "community densities should spread: {lo:.1}..{hi:.1}"
        );
        // Global mean still near target.
        let mean = cg.graph.mean_degree();
        assert!((mean - 16.0).abs() < 5.0, "global mean degree {mean}");
    }

    #[test]
    #[should_panic(expected = "density_spread")]
    fn rejects_sub_one_spread() {
        let mut cfg = CommunityGraphConfig::social(100);
        cfg.density_spread = 0.5;
        community_graph(&cfg, &mut StdRng::seed_from_u64(0));
    }
}
