//! Weighted sampling utilities shared by the random-graph generators.

use rand::Rng;

/// Walker's alias method: O(n) build, O(1) sample from a fixed discrete
/// distribution. The Chung–Lu and community generators draw millions of
/// endpoint samples, so constant-time sampling matters.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds an alias table for a distribution proportional to `weights`.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative/non-finite value,
    /// or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty distribution");
        let total: f64 = weights.iter().sum();
        assert!(
            total.is_finite() && total > 0.0,
            "weights must sum to a positive finite value"
        );
        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "negative or non-finite weight");
                w * scale
            })
            .collect();
        let mut alias = vec![0u32; n];
        // Split indices into under-full and over-full buckets, then pair.
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers are saturated to 1.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Draws one index.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i as u32
        } else {
            self.alias[i]
        }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table has no outcomes (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_table_is_roughly_uniform() {
        let table = AliasTable::new(&[1.0; 4]);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[table.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn skewed_table_matches_ratios() {
        let table = AliasTable::new(&[9.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(3);
        let hits0 = (0..50_000).filter(|_| table.sample(&mut rng) == 0).count();
        let frac = hits0 as f64 / 50_000.0;
        assert!((frac - 0.9).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn zero_weight_entries_never_sampled() {
        let table = AliasTable::new(&[0.0, 1.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert_eq!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    fn singleton_table() {
        let table = AliasTable::new(&[42.0]);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(table.sample(&mut rng), 0);
        assert_eq!(table.len(), 1);
    }

    #[test]
    #[should_panic(expected = "empty distribution")]
    fn empty_rejected() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn all_zero_rejected() {
        AliasTable::new(&[0.0, 0.0]);
    }
}
