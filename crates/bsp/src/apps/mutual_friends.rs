//! Mutual Friends — proxy for the Facebook friend-recommendation feature
//! builder (paper §4.2). For every edge `{u, v}` the job computes
//! `|N(u) ∩ N(v)|`; each vertex ships its full adjacency list to every
//! neighbour, making messages `O(deg)` bytes — by far the heaviest
//! communication pattern in the suite, which is why partition locality
//! moves its runtime so much.
//!
//! Simulation note: a real Giraph job materializes the neighbour lists on
//! the wire. The simulator has the whole graph in memory, so the message
//! carries only `(sender, list_len)` while [`VertexProgram::message_bytes`]
//! reports the *modeled* wire size `4 + 4·list_len` — the communication
//! accounting matches the real system without cloning `Σ deg²` list
//! entries.

use crate::engine::{Context, VertexProgram};
use mdbgp_graph::{Graph, VertexId};

/// An adjacency-list announcement: who sent it and how many ids it carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ListAd {
    pub sender: VertexId,
    pub list_len: u32,
}

/// Two-superstep neighbourhood exchange.
#[derive(Clone, Copy, Debug, Default)]
pub struct MutualFriends;

impl VertexProgram for MutualFriends {
    /// Total mutual-friend count over all incident edges.
    type State = u64;
    type Message = ListAd;

    fn init(&self, _v: VertexId, _graph: &Graph) -> u64 {
        0
    }

    fn compute(
        &self,
        ctx: &mut Context<'_, ListAd>,
        v: VertexId,
        state: &mut u64,
        messages: &[ListAd],
        graph: &Graph,
        superstep: usize,
    ) {
        match superstep {
            0 => {
                let ad = ListAd {
                    sender: v,
                    list_len: graph.degree(v) as u32,
                };
                for &u in graph.neighbors(v) {
                    ctx.send(u, ad);
                }
            }
            _ => {
                // Sorted-merge intersection of each announced list (read
                // back from the graph) with our own adjacency.
                let mine = graph.neighbors(v);
                for ad in messages {
                    let theirs = graph.neighbors(ad.sender);
                    let (mut i, mut j) = (0usize, 0usize);
                    while i < mine.len() && j < theirs.len() {
                        match mine[i].cmp(&theirs[j]) {
                            std::cmp::Ordering::Less => i += 1,
                            std::cmp::Ordering::Greater => j += 1,
                            std::cmp::Ordering::Equal => {
                                *state += 1;
                                i += 1;
                                j += 1;
                            }
                        }
                    }
                }
            }
        }
    }

    fn message_bytes(msg: &ListAd) -> usize {
        4 + 4 * msg.list_len as usize // length prefix + ids on the wire
    }

    fn max_supersteps(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BspEngine, CostModel};
    use mdbgp_graph::{builder::graph_from_edges, gen, Partition};

    #[test]
    fn triangle_counts_one_mutual_friend_per_edge() {
        let g = gen::complete(3);
        let p = Partition::new(vec![0, 0, 1], 2);
        let engine = BspEngine::new(&g, &p, CostModel::default());
        let (_, counts) = engine.run(&MutualFriends);
        // Each vertex has 2 incident edges, each with exactly 1 common
        // neighbour (the third vertex).
        assert_eq!(counts, vec![2, 2, 2]);
    }

    #[test]
    fn path_has_no_mutual_friends() {
        let g = gen::path(5);
        let p = Partition::new(vec![0; 5], 1);
        let engine = BspEngine::new(&g, &p, CostModel::default());
        let (_, counts) = engine.run(&MutualFriends);
        assert!(counts.iter().all(|&c| c == 0));
    }

    #[test]
    fn clique_counts_match_formula() {
        // In K_5 every edge has 3 common neighbours; each vertex has 4
        // incident edges → 12 per vertex.
        let g = gen::complete(5);
        let p = Partition::new(vec![0, 1, 0, 1, 0], 2);
        let engine = BspEngine::new(&g, &p, CostModel::default());
        let (_, counts) = engine.run(&MutualFriends);
        assert!(counts.iter().all(|&c| c == 12), "{counts:?}");
    }

    #[test]
    fn modeled_bytes_scale_with_degree() {
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let p = Partition::new(vec![0, 1, 1, 1], 2);
        let engine = BspEngine::new(&g, &p, CostModel::default());
        let (stats, _) = engine.run(&MutualFriends);
        let s0 = &stats.supersteps[0];
        // The hub ships its 3-id list to 3 leaves: 3 × (4 + 12) bytes,
        // all remote.
        assert_eq!(s0.workers[0].remote_bytes_sent, 3 * 16);
        // Each leaf ships a 1-id list to the hub: 3 × (4 + 4) bytes.
        assert_eq!(s0.workers[1].remote_bytes_sent, 3 * 8);
    }
}
