//! The four Giraph workloads of the paper's §4.2 evaluation.
//!
//! PageRank and Connected Components are the public benchmarks; Mutual
//! Friends and Hypergraph Clustering stand in for the two Facebook
//! production applications, which the paper characterizes only by their
//! communication behaviour ("extensively exchange messages between
//! adjacent vertices") — both proxies are neighbourhood-exchange programs
//! with heavy messages.

pub mod connected_components;
pub mod hypergraph;
pub mod mutual_friends;
pub mod pagerank;

pub use connected_components::ConnectedComponents;
pub use hypergraph::HypergraphClustering;
pub use mutual_friends::MutualFriends;
pub use pagerank::PageRank;
