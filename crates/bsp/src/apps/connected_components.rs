//! Connected Components by min-label propagation (paper §4.2: "a simple
//! label propagation technique in which vertices iteratively update their
//! labels based on the minimum label of their neighbors"; converges within
//! at most 50 rounds on their graphs).

use crate::engine::{Context, VertexProgram};
use mdbgp_graph::{Graph, VertexId};

/// Min-label propagation; vertices go quiet once their label stabilizes,
/// so the engine halts as soon as no messages are in flight.
#[derive(Clone, Copy, Debug)]
pub struct ConnectedComponents {
    /// Hard round limit (50 in the paper).
    pub max_rounds: usize,
}

impl Default for ConnectedComponents {
    fn default() -> Self {
        Self { max_rounds: 50 }
    }
}

impl VertexProgram for ConnectedComponents {
    type State = u32;
    type Message = u32;

    fn init(&self, v: VertexId, _graph: &Graph) -> u32 {
        v
    }

    fn compute(
        &self,
        ctx: &mut Context<'_, u32>,
        v: VertexId,
        state: &mut u32,
        messages: &[u32],
        graph: &Graph,
        superstep: usize,
    ) {
        let improved = if superstep == 0 {
            true // everyone announces its initial label
        } else {
            match messages.iter().min() {
                Some(&m) if m < *state => {
                    *state = m;
                    true
                }
                _ => false,
            }
        };
        if improved {
            for &u in graph.neighbors(v) {
                ctx.send(u, *state);
            }
        }
    }

    fn message_bytes(_m: &u32) -> usize {
        4
    }

    fn max_supersteps(&self) -> usize {
        self.max_rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BspEngine, CostModel};
    use mdbgp_graph::{analytics, gen, Partition};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_union_find_on_multi_component_graph() {
        // Several ER components + isolated vertices.
        let mut b = mdbgp_graph::GraphBuilder::new(120);
        let blocks = [(0u32, 40u32), (40, 80), (80, 110)];
        let mut rng = StdRng::seed_from_u64(3);
        use rand::Rng;
        for &(lo, hi) in &blocks {
            for _ in 0..120 {
                let u = rng.gen_range(lo..hi);
                let v = rng.gen_range(lo..hi);
                if u != v {
                    b.add_edge(u, v);
                }
            }
        }
        let g = b.build();
        let p = Partition::new((0..120).map(|v| (v % 3) as u32).collect(), 3);
        let engine = BspEngine::new(&g, &p, CostModel::default());
        let (_, labels) = engine.run(&ConnectedComponents::default());
        let (reference, _) = analytics::connected_components(&g);
        assert_eq!(labels, reference);
    }

    #[test]
    fn converges_and_halts_early() {
        let g = gen::two_cliques(10, 1);
        let p = Partition::new(vec![0; 20], 1);
        let engine = BspEngine::new(&g, &p, CostModel::default());
        let (stats, labels) = engine.run(&ConnectedComponents::default());
        assert!(labels.iter().all(|&l| l == 0), "single component");
        assert!(
            stats.num_supersteps() < 50,
            "cliques converge fast, took {}",
            stats.num_supersteps()
        );
    }

    #[test]
    fn round_limit_respected_on_long_paths() {
        // A path of 100 needs ~100 rounds; a limit of 10 must cut it off.
        let g = gen::path(100);
        let p = Partition::new(vec![0; 100], 1);
        let engine = BspEngine::new(&g, &p, CostModel::default());
        let (stats, labels) = engine.run(&ConnectedComponents { max_rounds: 10 });
        assert_eq!(stats.num_supersteps(), 10);
        assert!(labels[99] > 0, "far end not yet relabeled");
    }
}
