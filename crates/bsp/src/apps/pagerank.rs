//! Distributed PageRank (the paper's primary benchmark; 30 iterations).

use crate::engine::{Context, VertexProgram};
use mdbgp_graph::{Graph, VertexId};

/// Synchronous PageRank with uniform teleport.
///
/// Superstep 0 seeds every vertex with rank `1/n` and sends
/// `rank/deg` along every edge; superstep `t` accumulates
/// `(1−d)/n + d·Σ incoming` and keeps propagating until the iteration
/// budget is exhausted. Dangling mass is not redistributed (Giraph's
/// default behaviour without an aggregator), so ranks match the sequential
/// reference exactly on graphs without isolated vertices.
#[derive(Clone, Copy, Debug)]
pub struct PageRank {
    pub damping: f64,
    pub iterations: usize,
}

impl Default for PageRank {
    fn default() -> Self {
        // The paper's configuration: 30 iterations.
        Self {
            damping: 0.85,
            iterations: 30,
        }
    }
}

impl VertexProgram for PageRank {
    type State = f64;
    type Message = f64;

    fn init(&self, _v: VertexId, graph: &Graph) -> f64 {
        1.0 / graph.num_vertices().max(1) as f64
    }

    fn compute(
        &self,
        ctx: &mut Context<'_, f64>,
        v: VertexId,
        state: &mut f64,
        messages: &[f64],
        graph: &Graph,
        superstep: usize,
    ) {
        if superstep > 0 {
            let incoming: f64 = messages.iter().sum();
            *state = (1.0 - self.damping) / graph.num_vertices() as f64 + self.damping * incoming;
        }
        if superstep < self.iterations {
            let deg = graph.degree(v);
            if deg > 0 {
                let share = *state / deg as f64;
                for &u in graph.neighbors(v) {
                    ctx.send(u, share);
                }
            }
        }
    }

    fn message_bytes(_m: &f64) -> usize {
        8
    }

    fn max_supersteps(&self) -> usize {
        self.iterations + 1
    }

    fn run_all_supersteps(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BspEngine, CostModel};
    use mdbgp_graph::{analytics, gen, Partition};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_sequential_reference() {
        let g = gen::barabasi_albert(300, 3, &mut StdRng::seed_from_u64(1));
        let p = Partition::new((0..300).map(|v| (v % 4) as u32).collect(), 4);
        let engine = BspEngine::new(&g, &p, CostModel::default());
        let (_, ranks) = engine.run(&PageRank {
            damping: 0.85,
            iterations: 25,
        });
        let reference = analytics::pagerank(&g, 0.85, 25);
        for (a, b) in ranks.iter().zip(&reference) {
            assert!(
                (a - b).abs() < 1e-12,
                "BSP and sequential PageRank diverge: {a} vs {b}"
            );
        }
    }

    #[test]
    fn runs_exactly_iterations_plus_one_supersteps() {
        let g = gen::cycle(50);
        let p = Partition::new(vec![0; 50], 1);
        let engine = BspEngine::new(&g, &p, CostModel::default());
        let (stats, _) = engine.run(&PageRank {
            damping: 0.85,
            iterations: 10,
        });
        assert_eq!(stats.num_supersteps(), 11);
    }

    #[test]
    fn message_volume_is_two_m_per_superstep() {
        let g = gen::cycle(40);
        let p = Partition::new((0..40).map(|v| (v / 20) as u32).collect(), 2);
        let engine = BspEngine::new(&g, &p, CostModel::default());
        let (stats, _) = engine.run(&PageRank {
            damping: 0.85,
            iterations: 2,
        });
        let s = &stats.supersteps[0];
        let msgs: usize = s
            .workers
            .iter()
            .map(|w| w.local_messages + w.remote_messages)
            .sum();
        assert_eq!(msgs, 80, "every directed edge carries one message");
        // 4 cut edges (two boundaries × two directions).
        let remote: usize = s.workers.iter().map(|w| w.remote_messages).sum();
        assert_eq!(remote, 4);
    }
}
