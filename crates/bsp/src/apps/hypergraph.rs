//! Hypergraph Clustering proxy — stand-in for the Facebook production
//! application that "finds a certain clustering of the input graph by
//! converting it to a hypergraph" (paper §4.2).
//!
//! We model it as iterative weighted label propagation with oversized
//! messages: each vertex repeatedly advertises its current cluster label
//! plus a score vector (the hyperedge membership weights), and adopts the
//! highest-scoring label among its neighbours. What matters for the
//! partitioning experiments is faithful *communication behaviour*: many
//! supersteps, a message per edge per superstep, payloads several times a
//! PageRank message.

use crate::engine::{Context, VertexProgram};
use mdbgp_graph::{Graph, VertexId};

/// A label advertisement: cluster id + score + 2-slot score digest, 24
/// wire bytes (3× a PageRank message).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LabelAd {
    pub label: u32,
    pub score: f64,
    pub digest: [f32; 2],
}

/// Iterative weighted label propagation over hyperedge scores.
#[derive(Clone, Copy, Debug)]
pub struct HypergraphClustering {
    pub rounds: usize,
}

impl Default for HypergraphClustering {
    fn default() -> Self {
        Self { rounds: 10 }
    }
}

impl VertexProgram for HypergraphClustering {
    type State = u32;
    type Message = LabelAd;

    fn init(&self, v: VertexId, _graph: &Graph) -> u32 {
        v
    }

    fn compute(
        &self,
        ctx: &mut Context<'_, LabelAd>,
        v: VertexId,
        state: &mut u32,
        messages: &[LabelAd],
        graph: &Graph,
        superstep: usize,
    ) {
        if superstep > 0 && !messages.is_empty() {
            // Tally scores per label; adopt the heaviest (ties → smaller
            // label, keeping the program deterministic).
            let mut best_label = *state;
            let mut best_score = 0.0f64;
            let mut tally: Vec<(u32, f64)> = Vec::with_capacity(messages.len());
            for m in messages {
                match tally.iter_mut().find(|(l, _)| *l == m.label) {
                    Some((_, s)) => *s += m.score,
                    None => tally.push((m.label, m.score)),
                }
            }
            for &(label, score) in &tally {
                if score > best_score || (score == best_score && label < best_label) {
                    best_label = label;
                    best_score = score;
                }
            }
            *state = best_label;
        }
        if superstep < self.rounds {
            let deg = graph.degree(v).max(1) as f64;
            let ad = LabelAd {
                label: *state,
                score: 1.0 / deg.sqrt(),
                digest: [deg as f32, superstep as f32],
            };
            for &u in graph.neighbors(v) {
                ctx.send(u, ad);
            }
        }
    }

    fn message_bytes(_m: &LabelAd) -> usize {
        24
    }

    fn max_supersteps(&self) -> usize {
        self.rounds + 1
    }

    fn run_all_supersteps(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BspEngine, CostModel};
    use mdbgp_graph::{gen, Partition};

    #[test]
    fn cliques_converge_to_uniform_labels() {
        let g = gen::two_cliques(8, 1);
        let p = Partition::new((0..16).map(|v| (v / 8) as u32).collect(), 2);
        let engine = BspEngine::new(&g, &p, CostModel::default());
        let (_, labels) = engine.run(&HypergraphClustering { rounds: 8 });
        let first: Vec<u32> = labels[..8].to_vec();
        let second: Vec<u32> = labels[8..].to_vec();
        assert!(
            first.iter().all(|&l| l == first[0]),
            "clique 1 uniform: {first:?}"
        );
        assert!(
            second.iter().all(|&l| l == second[0]),
            "clique 2 uniform: {second:?}"
        );
    }

    #[test]
    fn messages_are_heavier_than_pagerank() {
        let g = gen::cycle(10);
        let p = Partition::new(vec![0; 10], 1);
        let engine = BspEngine::new(&g, &p, CostModel::default());
        let (stats, _) = engine.run(&HypergraphClustering { rounds: 2 });
        let bytes: usize = stats.supersteps[0]
            .workers
            .iter()
            .map(|w| w.local_bytes)
            .sum();
        assert_eq!(bytes, 20 * 24, "one 24-byte ad per directed edge");
    }

    #[test]
    fn runs_requested_rounds() {
        let g = gen::cycle(12);
        let p = Partition::new(vec![0; 12], 1);
        let engine = BspEngine::new(&g, &p, CostModel::default());
        let (stats, _) = engine.run(&HypergraphClustering { rounds: 5 });
        assert_eq!(stats.num_supersteps(), 6);
    }
}
