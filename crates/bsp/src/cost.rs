//! The worker cost model.
//!
//! Per superstep, worker `w`'s busy time is modeled as
//!
//! ```text
//! t_w = per_vertex · V_w            (bookkeeping + message serialization,
//!                                    "proportional to the number of
//!                                    vertices on a worker" — paper §1)
//!     + per_edge · E_w              (compute: edges scanned / messages
//!                                    created)
//!     + per_local_byte · L_w        (in-memory delivery)
//!     + per_remote_byte · R_w       (serialization + network + deserial.)
//! ```
//!
//! and the BSP barrier makes the iteration time `max_w t_w`. The default
//! constants are calibrated so the four partitioning policies of the
//! paper's Figure 1 reproduce their ordering on a mean-degree ≈ 16–20
//! power-law graph: vertex-only balancing loses to hash (edge-overloaded
//! straggler), edge-only gains a little (vertex-count straggler remains),
//! and vertex+edge wins outright. The ratio between `per_edge` and the
//! remote byte cost mirrors the paper's Table 2 finding that cutting
//! communication 2–3× moves the mean runtime by only ~10%: compute
//! dominates, stragglers decide.

/// Cost constants in arbitrary "microsecond" units.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Fixed per-vertex overhead per superstep.
    pub per_vertex: f64,
    /// Per edge scanned (≈ per message created).
    pub per_edge: f64,
    /// Per byte delivered worker-locally.
    pub per_local_byte: f64,
    /// Per byte crossing workers (charged once on send, once on receive).
    pub per_remote_byte: f64,
    /// Constant barrier/synchronization cost per superstep.
    pub barrier: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            per_vertex: 10.0,
            per_edge: 1.0,
            // 8-byte PageRank message: local ≈ 0.15, remote ≈ 1.4 per msg.
            per_local_byte: 0.019,
            per_remote_byte: 0.085,
            barrier: 50.0,
        }
    }
}

impl CostModel {
    /// Busy time of a worker given its per-superstep counters.
    pub fn worker_time(
        &self,
        vertices: usize,
        edges_scanned: usize,
        local_bytes: usize,
        remote_bytes_sent: usize,
        remote_bytes_received: usize,
    ) -> f64 {
        self.per_vertex * vertices as f64
            + self.per_edge * edges_scanned as f64
            + self.per_local_byte * local_bytes as f64
            + self.per_remote_byte * (remote_bytes_sent + remote_bytes_received) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_time_is_linear_in_counters() {
        let c = CostModel::default();
        let base = c.worker_time(100, 0, 0, 0, 0);
        assert!((base - 1000.0).abs() < 1e-9);
        let t = c.worker_time(100, 50, 0, 0, 0);
        assert!((t - base - 50.0).abs() < 1e-9);
    }

    #[test]
    fn remote_bytes_cost_more_than_local() {
        let c = CostModel::default();
        let local = c.worker_time(0, 0, 1000, 0, 0);
        let remote = c.worker_time(0, 0, 0, 1000, 0);
        assert!(remote > 2.0 * local, "remote {remote} vs local {local}");
    }

    #[test]
    fn straggler_dominates_by_construction() {
        // The calibration property behind Figure 1: a worker with 1.9× the
        // edges but good locality is slower than a balanced worker with
        // poor locality (mean degree 20, 8-byte messages).
        let c = CostModel::default();
        let n_w = 1000usize; // vertices per worker
        let e_w = 20 * n_w; // edges per worker at mean degree 20
        let msg = 8usize;
        // Hash: balanced, ~94% remote.
        let hash = c.worker_time(
            n_w,
            e_w,
            (e_w as f64 * 0.06 * 2.0) as usize * msg / 2,
            (e_w as f64 * 0.94) as usize * msg,
            (e_w as f64 * 0.94) as usize * msg,
        );
        // Vertex-balanced straggler: 1.9× edges, 70% locality.
        let straggler = c.worker_time(
            n_w,
            (1.9 * e_w as f64) as usize,
            (1.9 * e_w as f64 * 0.7) as usize * msg,
            (1.9 * e_w as f64 * 0.3) as usize * msg,
            (1.9 * e_w as f64 * 0.3) as usize * msg,
        );
        assert!(
            straggler > hash,
            "edge-overloaded worker must lag the hash worker: {straggler} vs {hash}"
        );
    }
}
