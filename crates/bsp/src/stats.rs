//! Per-worker and per-superstep statistics — the raw material of the
//! paper's Figure 1 (worker time histogram), Figure 7 (job speedups) and
//! Table 2 (runtime and communication mean/max/stdev).

/// Counters and modeled busy time of one worker in one superstep.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkerStats {
    pub vertices_processed: usize,
    pub edges_scanned: usize,
    pub local_messages: usize,
    pub remote_messages: usize,
    pub local_bytes: usize,
    pub remote_bytes_sent: usize,
    pub remote_bytes_received: usize,
    /// Modeled busy time (cost-model units).
    pub busy_time: f64,
}

/// One superstep across all workers.
#[derive(Clone, Debug)]
pub struct SuperstepStats {
    pub workers: Vec<WorkerStats>,
    /// Iteration time: max busy time + barrier (BSP semantics).
    pub time: f64,
}

impl SuperstepStats {
    /// Mean busy time over workers.
    pub fn mean_busy(&self) -> f64 {
        if self.workers.is_empty() {
            return 0.0;
        }
        self.workers.iter().map(|w| w.busy_time).sum::<f64>() / self.workers.len() as f64
    }

    /// Max busy time over workers.
    pub fn max_busy(&self) -> f64 {
        self.workers.iter().map(|w| w.busy_time).fold(0.0, f64::max)
    }
}

/// A whole job run.
#[derive(Clone, Debug)]
pub struct JobStats {
    pub supersteps: Vec<SuperstepStats>,
    pub num_workers: usize,
}

impl JobStats {
    /// Total modeled runtime: Σ per-superstep iteration times.
    pub fn total_time(&self) -> f64 {
        self.supersteps.iter().map(|s| s.time).sum()
    }

    /// Number of supersteps executed.
    pub fn num_supersteps(&self) -> usize {
        self.supersteps.len()
    }

    /// Per-worker busy time averaged over supersteps (the bars of Fig. 1).
    pub fn worker_mean_times(&self) -> Vec<f64> {
        let mut acc = vec![0.0f64; self.num_workers];
        for s in &self.supersteps {
            for (a, w) in acc.iter_mut().zip(&s.workers) {
                *a += w.busy_time;
            }
        }
        let steps = self.supersteps.len().max(1) as f64;
        acc.iter_mut().for_each(|a| *a /= steps);
        acc
    }

    /// (mean, max, stdev) of per-superstep worker busy times, averaged over
    /// supersteps — the "Runtime" columns of Table 2.
    pub fn runtime_summary(&self) -> (f64, f64, f64) {
        if self.supersteps.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let mut means = 0.0;
        let mut maxes = 0.0;
        let mut stdevs = 0.0;
        for s in &self.supersteps {
            let mean = s.mean_busy();
            means += mean;
            maxes += s.max_busy();
            let var = s
                .workers
                .iter()
                .map(|w| (w.busy_time - mean) * (w.busy_time - mean))
                .sum::<f64>()
                / s.workers.len().max(1) as f64;
            stdevs += var.sqrt();
        }
        let n = self.supersteps.len() as f64;
        (means / n, maxes / n, stdevs / n)
    }

    /// (mean, max, stdev) of per-worker total remote traffic in bytes
    /// (sent + received) — the "Communication" columns of Table 2.
    pub fn communication_summary(&self) -> (f64, f64, f64) {
        let mut per_worker = vec![0.0f64; self.num_workers];
        for s in &self.supersteps {
            for (acc, w) in per_worker.iter_mut().zip(&s.workers) {
                *acc += (w.remote_bytes_sent + w.remote_bytes_received) as f64;
            }
        }
        if per_worker.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let mean = per_worker.iter().sum::<f64>() / per_worker.len() as f64;
        let max = per_worker.iter().fold(0.0f64, |a, &b| a.max(b));
        let var = per_worker
            .iter()
            .map(|&t| (t - mean) * (t - mean))
            .sum::<f64>()
            / per_worker.len() as f64;
        (mean, max, var.sqrt())
    }

    /// Fraction of messages delivered locally over the whole job — the
    /// locality percentage annotated on Figure 1.
    pub fn local_message_fraction(&self) -> f64 {
        let (mut local, mut total) = (0usize, 0usize);
        for s in &self.supersteps {
            for w in &s.workers {
                local += w.local_messages;
                total += w.local_messages + w.remote_messages;
            }
        }
        if total == 0 {
            1.0
        } else {
            local as f64 / total as f64
        }
    }

    /// Total remote bytes over the whole job.
    pub fn total_remote_bytes(&self) -> usize {
        self.supersteps
            .iter()
            .flat_map(|s| s.workers.iter())
            .map(|w| w.remote_bytes_sent)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> JobStats {
        let mk = |busy: &[f64]| SuperstepStats {
            workers: busy
                .iter()
                .map(|&b| WorkerStats {
                    busy_time: b,
                    local_messages: 3,
                    remote_messages: 1,
                    remote_bytes_sent: 8,
                    remote_bytes_received: 8,
                    ..WorkerStats::default()
                })
                .collect(),
            time: busy.iter().fold(0.0f64, |a, &b| a.max(b)) + 1.0,
        };
        JobStats {
            supersteps: vec![mk(&[1.0, 3.0]), mk(&[2.0, 2.0])],
            num_workers: 2,
        }
    }

    #[test]
    fn total_time_sums_barriered_maxima() {
        assert!((job().total_time() - (4.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn worker_means_average_supersteps() {
        assert_eq!(job().worker_mean_times(), vec![1.5, 2.5]);
    }

    #[test]
    fn runtime_summary_matches_hand_computation() {
        let (mean, max, stdev) = job().runtime_summary();
        assert!((mean - 2.0).abs() < 1e-12);
        assert!((max - 2.5).abs() < 1e-12);
        assert!((stdev - 0.5).abs() < 1e-12, "stdev {stdev}");
    }

    #[test]
    fn communication_and_locality() {
        let j = job();
        let (mean, max, _) = j.communication_summary();
        assert_eq!(mean, 32.0);
        assert_eq!(max, 32.0);
        assert!((j.local_message_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(j.total_remote_bytes(), 32);
    }

    #[test]
    fn empty_job_is_zeroes() {
        let j = JobStats {
            supersteps: Vec::new(),
            num_workers: 0,
        };
        assert_eq!(j.total_time(), 0.0);
        assert_eq!(j.runtime_summary(), (0.0, 0.0, 0.0));
        assert_eq!(j.local_message_fraction(), 1.0);
    }
}
