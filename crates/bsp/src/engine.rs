//! The vertex-centric BSP engine.
//!
//! Pregel/Giraph semantics: computation proceeds in supersteps; in each
//! superstep every active vertex runs the program's `compute` with the
//! messages addressed to it in the previous superstep, possibly emitting
//! new messages; a global barrier separates supersteps. A vertex is active
//! in superstep 0, and later iff it received messages (programs that drive
//! themselves, like PageRank's fixed iteration count, report
//! `run_all_supersteps`). The job halts when no messages are in flight and
//! no program-driven work remains, or at `max_supersteps`.

use crate::cost::CostModel;
use crate::stats::{JobStats, SuperstepStats, WorkerStats};
use mdbgp_graph::{Graph, Partition, VertexId};

/// A vertex-centric program (the Giraph `Computation` analogue).
pub trait VertexProgram {
    /// Per-vertex state.
    type State: Clone;
    /// Message type exchanged along edges.
    type Message: Clone;

    /// Initial state of vertex `v`.
    fn init(&self, v: VertexId, graph: &Graph) -> Self::State;

    /// One superstep of vertex `v`. Send messages via `ctx`.
    fn compute(
        &self,
        ctx: &mut Context<'_, Self::Message>,
        v: VertexId,
        state: &mut Self::State,
        messages: &[Self::Message],
        graph: &Graph,
        superstep: usize,
    );

    /// Wire size of a message in bytes (for the communication model).
    fn message_bytes(msg: &Self::Message) -> usize;

    /// Hard superstep limit.
    fn max_supersteps(&self) -> usize;

    /// If true, every vertex runs every superstep regardless of messages
    /// (PageRank-style synchronous iteration). If false, only vertices
    /// with incoming messages run (label-propagation-style convergence).
    fn run_all_supersteps(&self) -> bool {
        false
    }
}

/// Message-sending handle passed to `compute`.
pub struct Context<'a, M> {
    outbox: &'a mut Vec<(VertexId, M)>,
}

impl<'a, M> Context<'a, M> {
    /// Sends `msg` to vertex `to` (delivered next superstep).
    #[inline]
    pub fn send(&mut self, to: VertexId, msg: M) {
        self.outbox.push((to, msg));
    }
}

/// The simulator: a graph, a worker assignment and a cost model.
pub struct BspEngine<'a> {
    graph: &'a Graph,
    assignment: &'a Partition,
    cost: CostModel,
}

impl<'a> BspEngine<'a> {
    /// Creates an engine; the partition's parts are the workers.
    ///
    /// # Panics
    /// Panics if the partition does not cover the graph.
    pub fn new(graph: &'a Graph, assignment: &'a Partition, cost: CostModel) -> Self {
        assert_eq!(
            graph.num_vertices(),
            assignment.num_vertices(),
            "partition must cover the graph"
        );
        Self {
            graph,
            assignment,
            cost,
        }
    }

    /// Number of simulated workers.
    pub fn num_workers(&self) -> usize {
        self.assignment.num_parts()
    }

    /// Runs `program` to completion and returns per-superstep statistics
    /// together with the final vertex states.
    pub fn run<P: VertexProgram>(&self, program: &P) -> (JobStats, Vec<P::State>) {
        let n = self.graph.num_vertices();
        let w = self.num_workers();
        let mut states: Vec<P::State> = (0..n)
            .map(|v| program.init(v as VertexId, self.graph))
            .collect();

        // Double-buffered inboxes.
        let mut inbox: Vec<Vec<P::Message>> = vec![Vec::new(); n];
        let mut next_inbox: Vec<Vec<P::Message>> = vec![Vec::new(); n];
        let mut outbox: Vec<(VertexId, P::Message)> = Vec::new();

        let mut supersteps = Vec::new();
        for step in 0..program.max_supersteps() {
            let mut workers = vec![WorkerStats::default(); w];
            let mut any_message = false;

            for v in 0..n as VertexId {
                let active =
                    step == 0 || program.run_all_supersteps() || !inbox[v as usize].is_empty();
                if !active {
                    continue;
                }
                let worker = self.assignment.part_of(v) as usize;
                let stats = &mut workers[worker];
                stats.vertices_processed += 1;

                outbox.clear();
                {
                    let mut ctx = Context {
                        outbox: &mut outbox,
                    };
                    // Temporarily move the state out to satisfy borrowck.
                    let mut state = states[v as usize].clone();
                    ctx_compute(
                        program,
                        &mut ctx,
                        v,
                        &mut state,
                        &inbox[v as usize],
                        self.graph,
                        step,
                    );
                    states[v as usize] = state;
                }
                stats.edges_scanned += outbox.len();

                for (to, msg) in outbox.drain(..) {
                    let bytes = P::message_bytes(&msg);
                    let to_worker = self.assignment.part_of(to) as usize;
                    if to_worker == worker {
                        workers[worker].local_messages += 1;
                        workers[worker].local_bytes += bytes;
                    } else {
                        workers[worker].remote_messages += 1;
                        workers[worker].remote_bytes_sent += bytes;
                        workers[to_worker].remote_bytes_received += bytes;
                    }
                    next_inbox[to as usize].push(msg);
                    any_message = true;
                }
            }

            for stats in &mut workers {
                stats.busy_time = self.cost.worker_time(
                    stats.vertices_processed,
                    stats.edges_scanned,
                    stats.local_bytes,
                    stats.remote_bytes_sent,
                    stats.remote_bytes_received,
                );
            }
            let time = workers.iter().map(|s| s.busy_time).fold(0.0, f64::max) + self.cost.barrier;
            supersteps.push(SuperstepStats { workers, time });

            // Swap buffers; clear the consumed inbox.
            for slot in inbox.iter_mut() {
                slot.clear();
            }
            std::mem::swap(&mut inbox, &mut next_inbox);

            let more_program_work =
                program.run_all_supersteps() && step + 1 < program.max_supersteps();
            if !any_message && !more_program_work {
                break;
            }
        }
        (
            JobStats {
                supersteps,
                num_workers: w,
            },
            states,
        )
    }
}

/// Free-function indirection so the borrow of `inbox[v]` (immutable) and the
/// outbox (mutable) can coexist without cloning the message vector.
#[inline]
fn ctx_compute<P: VertexProgram>(
    program: &P,
    ctx: &mut Context<'_, P::Message>,
    v: VertexId,
    state: &mut P::State,
    messages: &[P::Message],
    graph: &Graph,
    step: usize,
) {
    program.compute(ctx, v, state, messages, graph, step);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::{builder::graph_from_edges, VertexWeights};

    /// Toy program: floods a token along edges for a fixed number of steps.
    struct Flood {
        steps: usize,
    }

    impl VertexProgram for Flood {
        type State = u32; // tokens received in total
        type Message = u8;

        fn init(&self, _v: VertexId, _g: &Graph) -> u32 {
            0
        }

        fn compute(
            &self,
            ctx: &mut Context<'_, u8>,
            v: VertexId,
            state: &mut u32,
            messages: &[u8],
            graph: &Graph,
            superstep: usize,
        ) {
            *state += messages.len() as u32;
            if superstep == 0 || !messages.is_empty() {
                for &u in graph.neighbors(v) {
                    ctx.send(u, 1);
                }
            }
        }

        fn message_bytes(_m: &u8) -> usize {
            1
        }

        fn max_supersteps(&self) -> usize {
            self.steps
        }
    }

    fn setup() -> (Graph, Partition) {
        // Path 0-1-2-3 split across 2 workers: {0,1} and {2,3}.
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        (g, p)
    }

    #[test]
    fn message_routing_local_vs_remote() {
        let (g, p) = setup();
        let engine = BspEngine::new(&g, &p, CostModel::default());
        let (stats, _) = engine.run(&Flood { steps: 1 });
        let s = &stats.supersteps[0];
        // Superstep 0: all 4 vertices send along each incident edge:
        // 6 directed messages; edge (1,2) is the only cut edge → 2 remote.
        let local: usize = s.workers.iter().map(|w| w.local_messages).sum();
        let remote: usize = s.workers.iter().map(|w| w.remote_messages).sum();
        assert_eq!(local, 4);
        assert_eq!(remote, 2);
        // Remote bytes: each side sends 1 byte and receives 1 byte.
        assert_eq!(s.workers[0].remote_bytes_sent, 1);
        assert_eq!(s.workers[0].remote_bytes_received, 1);
    }

    #[test]
    fn states_accumulate_messages() {
        let (g, p) = setup();
        let engine = BspEngine::new(&g, &p, CostModel::default());
        let (_, states) = engine.run(&Flood { steps: 2 });
        // After step 1 each vertex has received deg(v) tokens.
        assert_eq!(states, vec![1, 2, 2, 1]);
    }

    #[test]
    fn halts_when_no_messages() {
        // Empty graph: superstep 0 sends nothing → engine stops after 1.
        let g = Graph::empty(3);
        let p = Partition::new(vec![0, 1, 0], 2);
        let engine = BspEngine::new(&g, &p, CostModel::default());
        let (stats, _) = engine.run(&Flood { steps: 10 });
        assert_eq!(stats.num_supersteps(), 1);
    }

    #[test]
    fn busy_time_reflects_assignment_imbalance() {
        // Star: hub on worker 0 with nothing else; leaves on worker 1.
        let g = graph_from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let hub_alone = Partition::new(vec![0, 1, 1, 1, 1], 2);
        let engine = BspEngine::new(&g, &hub_alone, CostModel::default());
        let (stats, _) = engine.run(&Flood { steps: 1 });
        let s = &stats.supersteps[0];
        // Worker 0 processes 1 vertex but sends 4 remote messages; worker 1
        // processes 4 vertices sending 4 remote messages.
        assert!(s.workers[1].busy_time > s.workers[0].busy_time);
        assert!(
            s.time >= s.max_busy(),
            "iteration time includes the barrier"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let (g, p) = setup();
        let engine = BspEngine::new(&g, &p, CostModel::default());
        let (a, _) = engine.run(&Flood { steps: 3 });
        let (b, _) = engine.run(&Flood { steps: 3 });
        assert_eq!(a.total_time(), b.total_time());
    }

    #[test]
    #[should_panic(expected = "cover the graph")]
    fn partition_size_mismatch_panics() {
        let g = Graph::empty(3);
        let p = Partition::new(vec![0, 1], 2);
        let w = VertexWeights::unit(3);
        let _ = w; // silence unused in this panic test
        BspEngine::new(&g, &p, CostModel::default());
    }
}
