// Tight numeric loops in this crate frequently index several parallel
// arrays at once; rewriting them with zipped iterators obscures the
// kernels, so this pedantic lint is disabled crate-wide (perf lints stay).
#![allow(clippy::needless_range_loop)]

//! # mdbgp-bsp — a Giraph-like distributed graph processing simulator
//!
//! The paper's evaluation (Figures 1 and 7, Table 2) runs vertex-centric
//! workloads on a Giraph cluster and measures how the graph partitioning
//! policy moves per-worker superstep times and network traffic. We cannot
//! ship a Hadoop cluster, so this crate simulates one at the level that
//! matters for those experiments:
//!
//! * a **BSP engine** ([`BspEngine`]) executes [`VertexProgram`]s superstep
//!   by superstep, routing messages between vertices, with each vertex
//!   pinned to the worker its partition assigns;
//! * a **cost model** ([`CostModel`]) converts each worker's measurable
//!   work — vertices processed, edges scanned, local and remote message
//!   bytes — into a modeled busy time. The BSP barrier makes the iteration
//!   time the *maximum* busy time over workers, which is precisely the
//!   mechanism behind the paper's observation that a single overloaded
//!   worker drags the whole job;
//! * **workloads** ([`apps`]): PageRank and Connected Components (the
//!   public benchmarks), plus Mutual Friends and a Hypergraph Clustering
//!   proxy standing in for the two Facebook-internal applications — both
//!   are neighbourhood-exchange programs with heavy messages, matching the
//!   communication pattern the paper describes.
//!
//! Everything is deterministic: the simulated times depend only on the
//! graph, the partition and the cost constants (documented in
//! [`cost`]), never on wall-clock noise.

pub mod apps;
pub mod cost;
pub mod engine;
pub mod stats;

pub use cost::CostModel;
pub use engine::{BspEngine, Context, VertexProgram};
pub use stats::{JobStats, SuperstepStats, WorkerStats};
