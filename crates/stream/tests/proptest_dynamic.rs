//! Property tests for the streaming substrate: applying an arbitrary
//! interleaving of deltas (with compactions at arbitrary points) must be
//! indistinguishable from building the final graph in one shot.

use mdbgp_graph::builder::graph_from_edges;
use mdbgp_graph::{GraphBuilder, VertexWeights};
use mdbgp_stream::DynamicGraph;
use proptest::prelude::*;

/// Base edges plus a scripted delta: edges tagged with "compact before
/// applying this one".
type StreamScript = (Vec<(u32, u32)>, Vec<(u32, u32, bool)>);

fn script_strategy(
    base_n: u32,
    extra_n: u32,
    max_ops: usize,
) -> impl Strategy<Value = StreamScript> {
    let n = base_n + extra_n;
    (
        proptest::collection::vec((0..base_n, 0..base_n), 0..60),
        proptest::collection::vec((0..n, 0..n, proptest::bool::ANY), 0..max_ops),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn deltas_plus_compaction_equal_direct_build(
        (base_edges, ops) in script_strategy(30, 10, 80),
    ) {
        let base = graph_from_edges(30, &base_edges);
        let w = VertexWeights::vertex_edge(&base);
        let mut dg = DynamicGraph::new(base.clone(), w);
        // Add the 10 streamed vertices up front so every scripted edge is
        // in range.
        for _ in 0..10 {
            dg.add_vertex(&[1.0, 1.0]);
        }

        let mut all_edges = base_edges.clone();
        for &(u, v, compact_first) in &ops {
            if compact_first {
                prop_assert!(dg.compact().is_none(), "no removals, no remap");
            }
            let inserted = dg.add_edge(u, v);
            // add_edge reports true exactly for novel non-loop edges.
            let novel = u != v && !graph_edges_contain(&all_edges, u, v);
            prop_assert_eq!(inserted, novel, "insert ({}, {})", u, v);
            all_edges.push((u, v));
        }

        let direct = GraphBuilder::new(40).edges(all_edges.iter().copied()).build();
        // Snapshot (no mutation) and compacted CSR must both equal the
        // one-shot build.
        prop_assert_eq!(&dg.snapshot(), &direct);
        prop_assert_eq!(dg.num_edges(), direct.num_edges());
        prop_assert!(dg.compact().is_none());
        prop_assert_eq!(dg.compacted_csr(), &direct);
        prop_assert_eq!(dg.delta_edge_count(), 0);
    }

    #[test]
    fn degrees_and_neighbors_match_compacted_view(
        (base_edges, ops) in script_strategy(20, 5, 40),
    ) {
        let base = graph_from_edges(20, &base_edges);
        let w = VertexWeights::unit(20);
        let mut dg = DynamicGraph::new(base, w);
        for _ in 0..5 {
            dg.add_vertex(&[1.0]);
        }
        for &(u, v, _) in &ops {
            dg.add_edge(u, v);
        }
        let csr = dg.snapshot();
        for v in 0..25u32 {
            prop_assert_eq!(dg.degree(v), csr.degree(v));
            let mut dyn_adj: Vec<u32> = dg.neighbors(v).collect();
            dyn_adj.sort_unstable();
            prop_assert_eq!(dyn_adj.as_slice(), csr.neighbors(v));
            for &u in csr.neighbors(v) {
                prop_assert!(dg.has_edge(v, u));
            }
        }
    }
}

/// Full-churn script: base edges plus ops over a padded id range. The op
/// selector picks add/remove edge, add/remove vertex, or a compaction
/// checkpoint; out-of-range or dead references are skipped by the driver
/// (identically on both replicas, since their states are identical).
type ChurnScript = (Vec<(u32, u32)>, Vec<(u8, u32, u32)>);

fn churn_strategy(base_n: u32, max_id: u32, max_ops: usize) -> impl Strategy<Value = ChurnScript> {
    (
        proptest::collection::vec((0..base_n, 0..base_n), 0..50),
        proptest::collection::vec((0u8..=255, 0..max_id, 0..max_id), 0..max_ops),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The parallel substrate is bit-identical to the serial one across
    /// arbitrary churn: a threads-4 replica driven through deferred
    /// mutation batches must match a threads-1 replica mutated directly —
    /// every return value, every purge remap, the compacted CSR, the
    /// restricted weights (exact float equality) and the free-list state.
    #[test]
    fn parallel_deferred_replica_matches_serial_direct(
        (base_edges, ops) in churn_strategy(24, 36, 100),
    ) {
        let base = graph_from_edges(24, &base_edges);
        let w = VertexWeights::unit(24);
        let mut serial = DynamicGraph::new(base.clone(), w.clone());
        let mut par = DynamicGraph::new(base, w);
        par.set_threads(4);

        let mut open = false;
        for &(sel, a, b) in &ops {
            let op = sel % 8;
            if op >= 5 {
                // Compaction checkpoint (possibly purging): identical
                // remaps, then identical renumbered state.
                if open {
                    par.flush_deferred();
                    open = false;
                }
                prop_assert_eq!(serial.compact(), par.compact());
                prop_assert_eq!(serial.compacted_csr(), par.compacted_csr());
                continue;
            }
            if !open {
                par.begin_deferred();
                open = true;
            }
            let n = serial.num_vertices() as u32;
            match op {
                0 | 1 => {
                    if a < n && b < n && a != b && serial.is_live(a) && serial.is_live(b) {
                        prop_assert_eq!(serial.add_edge(a, b), par.add_edge(a, b));
                    }
                }
                2 => {
                    if a < n && b < n && serial.is_live(a) && serial.is_live(b) {
                        prop_assert_eq!(serial.remove_edge(a, b), par.remove_edge(a, b));
                    }
                }
                3 => {
                    let row = [1.0 + (a % 4) as f64];
                    prop_assert_eq!(serial.add_vertex(&row), par.add_vertex(&row));
                }
                _ => {
                    if a < n && serial.is_live(a) {
                        prop_assert_eq!(serial.remove_vertex(a), par.remove_vertex(a));
                    }
                }
            }
        }
        if open {
            par.flush_deferred();
        }

        prop_assert_eq!(serial.num_edges(), par.num_edges());
        prop_assert_eq!(serial.delta_edge_count(), par.delta_edge_count());
        prop_assert_eq!(serial.tombstoned_edge_count(), par.tombstoned_edge_count());
        prop_assert_eq!(serial.free_ids(), par.free_ids());
        prop_assert_eq!(&serial.snapshot(), &par.snapshot());

        // Final compaction: same remap, bit-identical CSR and weights.
        prop_assert_eq!(serial.compact(), par.compact());
        prop_assert_eq!(serial.compacted_csr(), par.compacted_csr());
        prop_assert_eq!(serial.num_tombstoned(), 0);
        let (sw, pw) = (serial.weights(), par.weights());
        prop_assert_eq!(sw.dims(), pw.dims());
        for j in 0..sw.dims() {
            prop_assert_eq!(sw.dim(j), pw.dim(j), "weight column {} diverged", j);
            prop_assert!(
                sw.total(j).to_bits() == pw.total(j).to_bits(),
                "total {} diverged: {} vs {}", j, sw.total(j), pw.total(j)
            );
        }
        prop_assert_eq!(serial.free_ids(), par.free_ids());
    }
}

/// Whether the undirected edge {u, v} already occurs in `edges`.
fn graph_edges_contain(edges: &[(u32, u32)], u: u32, v: u32) -> bool {
    edges
        .iter()
        .any(|&(a, b)| (a == u && b == v) || (a == v && b == u))
}
