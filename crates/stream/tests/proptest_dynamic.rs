//! Property tests for the streaming substrate: applying an arbitrary
//! interleaving of deltas (with compactions at arbitrary points) must be
//! indistinguishable from building the final graph in one shot.

use mdbgp_graph::builder::graph_from_edges;
use mdbgp_graph::{GraphBuilder, VertexWeights};
use mdbgp_stream::DynamicGraph;
use proptest::prelude::*;

/// Base edges plus a scripted delta: edges tagged with "compact before
/// applying this one".
type StreamScript = (Vec<(u32, u32)>, Vec<(u32, u32, bool)>);

fn script_strategy(
    base_n: u32,
    extra_n: u32,
    max_ops: usize,
) -> impl Strategy<Value = StreamScript> {
    let n = base_n + extra_n;
    (
        proptest::collection::vec((0..base_n, 0..base_n), 0..60),
        proptest::collection::vec((0..n, 0..n, proptest::bool::ANY), 0..max_ops),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn deltas_plus_compaction_equal_direct_build(
        (base_edges, ops) in script_strategy(30, 10, 80),
    ) {
        let base = graph_from_edges(30, &base_edges);
        let w = VertexWeights::vertex_edge(&base);
        let mut dg = DynamicGraph::new(base.clone(), w);
        // Add the 10 streamed vertices up front so every scripted edge is
        // in range.
        for _ in 0..10 {
            dg.add_vertex(&[1.0, 1.0]);
        }

        let mut all_edges = base_edges.clone();
        for &(u, v, compact_first) in &ops {
            if compact_first {
                prop_assert!(dg.compact().is_none(), "no removals, no remap");
            }
            let inserted = dg.add_edge(u, v);
            // add_edge reports true exactly for novel non-loop edges.
            let novel = u != v && !graph_edges_contain(&all_edges, u, v);
            prop_assert_eq!(inserted, novel, "insert ({}, {})", u, v);
            all_edges.push((u, v));
        }

        let direct = GraphBuilder::new(40).edges(all_edges.iter().copied()).build();
        // Snapshot (no mutation) and compacted CSR must both equal the
        // one-shot build.
        prop_assert_eq!(&dg.snapshot(), &direct);
        prop_assert_eq!(dg.num_edges(), direct.num_edges());
        prop_assert!(dg.compact().is_none());
        prop_assert_eq!(dg.compacted_csr(), &direct);
        prop_assert_eq!(dg.delta_edge_count(), 0);
    }

    #[test]
    fn degrees_and_neighbors_match_compacted_view(
        (base_edges, ops) in script_strategy(20, 5, 40),
    ) {
        let base = graph_from_edges(20, &base_edges);
        let w = VertexWeights::unit(20);
        let mut dg = DynamicGraph::new(base, w);
        for _ in 0..5 {
            dg.add_vertex(&[1.0]);
        }
        for &(u, v, _) in &ops {
            dg.add_edge(u, v);
        }
        let csr = dg.snapshot();
        for v in 0..25u32 {
            prop_assert_eq!(dg.degree(v), csr.degree(v));
            let mut dyn_adj: Vec<u32> = dg.neighbors(v).collect();
            dyn_adj.sort_unstable();
            prop_assert_eq!(dyn_adj.as_slice(), csr.neighbors(v));
            for &u in csr.neighbors(v) {
                prop_assert!(dg.has_edge(v, u));
            }
        }
    }
}

/// Whether the undirected edge {u, v} already occurs in `edges`.
fn graph_edges_contain(edges: &[(u32, u32)], u: u32, v: u32) -> bool {
    edges
        .iter()
        .any(|&(a, b)| (a == u && b == v) || (a == v && b == u))
}
