//! Property tests for the threaded incremental path: running the engine
//! with worker threads must be *semantically invisible* — the pairwise
//! refinement rounds are part-disjoint and scheduled deterministically, so
//! threads ≥ 2 and threads = 1 must preserve the per-dimension ε guarantee
//! (and, since every parallel primitive is order-preserving, produce the
//! identical partition).

use mdbgp_core::GdConfig;
use mdbgp_graph::{gen, VertexWeights};
use mdbgp_stream::{StreamConfig, StreamingPartitioner, UpdateBatch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn engine(threads: usize, seed: u64, eps: f64) -> StreamingPartitioner {
    let cg = gen::community_graph(
        &gen::CommunityGraphConfig::social(300),
        &mut StdRng::seed_from_u64(seed),
    );
    let w = VertexWeights::vertex_edge(&cg.graph);
    let mut cfg = StreamConfig::new(4, eps).with_threads(threads);
    cfg.gd = GdConfig {
        iterations: 30,
        ..GdConfig::with_epsilon(eps)
    };
    cfg.max_rebalance_moves = 2048;
    cfg.seed = seed;
    StreamingPartitioner::bootstrap(cg.graph, w, cfg).expect("bootstrap")
}

/// Per-dimension imbalance of the live store (the ε guarantee is stated
/// per dimension; `max_imbalance` folds them, so recompute dimension-wise
/// from the store's live totals).
fn per_dim_imbalance(sp: &StreamingPartitioner) -> Vec<f64> {
    let store = sp.store();
    let k = store.num_parts();
    (0..sp.graph().weights().dims())
        .map(|j| {
            let avg = store.total(j) / k as f64;
            (0..k as u32)
                .map(|p| store.load(p, j) / avg - 1.0)
                .fold(f64::MIN, f64::max)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn parallel_and_serial_refinement_preserve_per_dimension_epsilon(
        seed in 0u64..1000,
        arrivals in 10usize..40,
        drifts in 20usize..80,
        drift_scale in 1.5f64..3.0,
    ) {
        const EPS: f64 = 0.05;
        let mut serial = engine(1, seed, EPS);
        let mut threaded = engine(4, seed, EPS);
        prop_assert_eq!(
            serial.partition().as_slice(),
            threaded.partition().as_slice(),
            "bootstrap must not depend on the thread count"
        );

        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
        for _ in 0..2 {
            let n = serial.graph().num_vertices() as u32;
            let mut batch = UpdateBatch::new();
            for _ in 0..arrivals {
                let nbrs: Vec<u32> = (0..3).map(|_| rng.gen_range(0..n)).collect();
                batch.add_vertex(vec![1.0, nbrs.len() as f64], nbrs);
            }
            // Concentrate the drift on one shard so it reliably crosses the
            // trigger band and the (parallel) refinement path actually runs.
            let victims: Vec<u32> = (0..n).filter(|&v| serial.shard_of(v) == 0).collect();
            for _ in 0..drifts {
                let v = victims[rng.gen_range(0..victims.len())];
                batch.set_weight(v, 0, drift_scale);
            }
            let rs = serial.ingest(&batch).expect("serial ingest");
            let rt = threaded.ingest(&batch).expect("threaded ingest");

            // Both paths hold ε in *every* dimension after every batch.
            for (label, sp) in [("serial", &serial), ("threads=4", &threaded)] {
                for (j, imb) in per_dim_imbalance(sp).iter().enumerate() {
                    prop_assert!(
                        *imb <= EPS + 1e-9,
                        "{} violated eps in dimension {}: {}", label, j, imb
                    );
                }
            }

            // The threading model is deterministic: same moves, same
            // partition, same telemetry-visible outcome.
            prop_assert_eq!(rs.refined, rt.refined);
            prop_assert_eq!(rs.refine_moves, rt.refine_moves);
            prop_assert_eq!(
                serial.partition().as_slice(),
                threaded.partition().as_slice(),
                "thread count changed the partition"
            );
        }
    }
}
