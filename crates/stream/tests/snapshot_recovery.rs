//! Crash-recovery harness for the snapshot subsystem: every corruption
//! and mismatch case must fail `restore` with its specific named
//! [`SnapshotError`] variant (no panics, no partial state), a restored
//! engine's rebuilt state must match a from-scratch oracle, and the
//! free-list contract — a snapshot taken between tombstone and purge
//! carries the free list verbatim — is pinned by regression test.

use mdbgp_core::GdConfig;
use mdbgp_graph::{gen, VertexWeights};
use mdbgp_stream::{
    SnapshotError, SnapshotExpectation, StreamConfig, StreamingPartitioner, UpdateBatch, TOMBSTONE,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn engine(seed: u64, churn: bool) -> StreamingPartitioner {
    let cg = gen::community_graph(
        &gen::CommunityGraphConfig::social(400),
        &mut StdRng::seed_from_u64(seed),
    );
    let w = VertexWeights::vertex_edge(&cg.graph);
    let mut cfg = StreamConfig::new(4, 0.05);
    cfg.gd = GdConfig {
        iterations: 30,
        ..GdConfig::with_epsilon(0.05)
    };
    cfg.max_rebalance_moves = 2048;
    cfg.seed = seed;
    if churn {
        // Keep tombstones pending at snapshot time: no slack-triggered
        // purge, no refinement-triggered compaction.
        cfg.compact_slack = 0.9;
        cfg.drift_headroom = 50.0;
    }
    StreamingPartitioner::bootstrap(cg.graph, w, cfg).expect("bootstrap")
}

/// An engine mid-churn: tombstoned-but-unpurged vertices, a non-empty
/// free list, arrivals, edge churn and weight drift all in flight.
fn churned_engine(seed: u64) -> StreamingPartitioner {
    let mut sp = engine(seed, true);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let mut batch = UpdateBatch::new();
    // Victims stay clear of the arrival neighbours (1..=3) and the drift
    // targets (20..30) below.
    for _ in 0..12 {
        let v = rng.gen_range(100..400u32);
        if sp.graph().is_live(v)
            && !batch
                .updates
                .iter()
                .any(|u| matches!(u, mdbgp_stream::StreamUpdate::RemoveVertex { v: x } if *x == v))
        {
            batch.remove_vertex(v);
        }
    }
    for _ in 0..8 {
        batch.add_vertex(vec![1.0, 2.0], vec![1, 2, 3]);
    }
    for v in 0..10u32 {
        batch.set_weight(v + 20, 0, 1.5);
    }
    sp.ingest(&batch).expect("churn batch");
    assert!(
        sp.graph().num_tombstoned() > 0,
        "test needs pending tombstones"
    );
    sp
}

fn snapshot_bytes(sp: &mut StreamingPartitioner) -> Vec<u8> {
    let mut buf = Vec::new();
    sp.save_snapshot(&mut buf).expect("save");
    buf
}

#[test]
fn truncated_snapshots_fail_with_named_errors() {
    let mut sp = churned_engine(1);
    let bytes = snapshot_bytes(&mut sp);
    // Mid-header and mid-payload truncations, including the empty file.
    for cut in [0, 1, 10, 43, 44, 100, bytes.len() - 1] {
        let err = StreamingPartitioner::restore(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(err, SnapshotError::Truncated { .. }),
            "cut at {cut}: {err}"
        );
    }
}

#[test]
fn flipped_bytes_fail_the_checksum() {
    let mut sp = churned_engine(2);
    let bytes = snapshot_bytes(&mut sp);
    // Flip one byte at several payload positions (after the 44-byte
    // header) and one in the stored checksum itself.
    let mut positions = vec![36, 44, 60, bytes.len() / 2, bytes.len() - 1];
    positions.dedup();
    for pos in positions {
        let mut broken = bytes.clone();
        broken[pos] ^= 0x20;
        let err = StreamingPartitioner::restore(&broken[..]).unwrap_err();
        assert!(
            matches!(err, SnapshotError::ChecksumMismatch { .. }),
            "flip at {pos}: {err}"
        );
    }
}

#[test]
fn wrong_version_and_magic_are_rejected() {
    let mut sp = churned_engine(3);
    let bytes = snapshot_bytes(&mut sp);
    let mut wrong_version = bytes.clone();
    wrong_version[8] = 0xEE;
    assert!(matches!(
        StreamingPartitioner::restore(&wrong_version[..]).unwrap_err(),
        SnapshotError::UnsupportedVersion { found: 0xEE, .. }
    ));
    let mut wrong_magic = bytes.clone();
    wrong_magic[3] = b'X';
    assert!(matches!(
        StreamingPartitioner::restore(&wrong_magic[..]).unwrap_err(),
        SnapshotError::BadMagic { .. }
    ));
}

#[test]
fn corrupt_header_length_cannot_force_a_huge_allocation() {
    // The payload-length field lives in the unchecksummed header; a bit
    // flip there must produce a named error, not a multi-exabyte
    // allocation (process abort). An inflated length reads to EOF and
    // reports truncation; a deflated one checksums a short prefix and
    // reports the mismatch.
    let mut sp = churned_engine(6);
    let bytes = snapshot_bytes(&mut sp);
    let mut inflated = bytes.clone();
    inflated[34] = 0xFF; // high byte of the u64 length at offset 28..36
    let err = StreamingPartitioner::restore(&inflated[..]).unwrap_err();
    assert!(
        matches!(err, SnapshotError::Truncated { .. }),
        "inflated length: {err}"
    );
    let mut deflated = bytes.clone();
    deflated[29] = 0; // drop the length well below the real payload
    let err = StreamingPartitioner::restore(&deflated[..]).unwrap_err();
    assert!(
        matches!(
            err,
            SnapshotError::ChecksumMismatch { .. } | SnapshotError::Truncated { .. }
        ),
        "deflated length: {err}"
    );
}

#[test]
fn corrupt_header_epoch_is_caught_by_the_payload_echo() {
    // The header epoch is outside the checksum; the payload opens with a
    // checksummed echo that restore cross-validates, so a rotted header
    // epoch cannot pass an expectation check it shouldn't — or smuggle an
    // engine into the wrong id space.
    let mut sp = churned_engine(9);
    let bytes = snapshot_bytes(&mut sp);
    let mut rotted = bytes.clone();
    rotted[12] ^= 0x02; // low byte of the header epoch at offset 12..20
    let err = StreamingPartitioner::restore(&rotted[..]).unwrap_err();
    assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");
    assert!(err.to_string().contains("id epoch"), "{err}");
    // Even when the corrupted value matches the caller's expectation.
    let err = StreamingPartitioner::restore_expecting(
        &rotted[..],
        &SnapshotExpectation::default().with_id_epoch(2),
    )
    .unwrap_err();
    assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");
}

#[test]
fn shape_and_epoch_expectations_are_enforced() {
    let mut sp = churned_engine(4);
    let bytes = snapshot_bytes(&mut sp);
    let err = StreamingPartitioner::restore_expecting(
        &bytes[..],
        &SnapshotExpectation::default().with_k(8),
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            SnapshotError::KMismatch {
                snapshot: 4,
                expected: 8
            }
        ),
        "{err}"
    );
    let err = StreamingPartitioner::restore_expecting(
        &bytes[..],
        &SnapshotExpectation::default().with_dims(3),
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            SnapshotError::DimensionMismatch {
                snapshot: 2,
                expected: 3
            }
        ),
        "{err}"
    );
    // The churned engine never purged: its snapshot is at epoch 0 and a
    // caller at epoch 0 accepts it...
    assert_eq!(sp.id_epoch(), 0);
    let ok = StreamingPartitioner::restore_expecting(
        &bytes[..],
        &SnapshotExpectation::default()
            .with_k(4)
            .with_dims(2)
            .with_id_epoch(0),
    );
    assert!(ok.is_ok());
    // ...while a snapshot taken after a purge is stale for that caller.
    sp.purge().expect("pending tombstones must purge");
    assert_eq!(sp.id_epoch(), 1);
    let purged = snapshot_bytes(&mut sp);
    let err = StreamingPartitioner::restore_expecting(
        &purged[..],
        &SnapshotExpectation::default().with_id_epoch(0),
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            SnapshotError::StaleEpoch {
                snapshot: 1,
                expected: 0
            }
        ),
        "{err}"
    );
}

#[test]
fn restored_state_matches_the_saver_and_a_rebuild_oracle() {
    let mut sp = churned_engine(5);
    let bytes = snapshot_bytes(&mut sp);
    let restored = StreamingPartitioner::restore(&bytes[..]).expect("restore");

    // Serialized accounting is bitwise identical to the saver's.
    assert_eq!(restored.store().as_slice(), sp.store().as_slice());
    let (s, r) = (sp.store(), restored.store());
    let dims = sp.graph().weights().dims();
    for j in 0..dims {
        assert_eq!(s.total(j).to_bits(), r.total(j).to_bits(), "total {j}");
        for p in 0..s.num_parts() as u32 {
            assert_eq!(
                s.load(p, j).to_bits(),
                r.load(p, j).to_bits(),
                "load ({p}, {j})"
            );
        }
    }
    assert_eq!(s.cut_edges(), r.cut_edges());
    assert_eq!(s.edge_locality(), r.edge_locality());
    assert_eq!(sp.max_imbalance(), restored.max_imbalance());
    assert_eq!(sp.telemetry(), restored.telemetry());
    assert_eq!(sp.id_epoch(), restored.id_epoch());
    assert_eq!(sp.graph().num_vertices(), restored.graph().num_vertices());
    assert_eq!(sp.graph().num_edges(), restored.graph().num_edges());
    assert_eq!(sp.graph().free_ids(), restored.graph().free_ids());

    // Rebuild oracle (the PR 3 edge-stats oracle pattern, extended):
    // recomputing loads, totals, heaps and edge counters from scratch
    // must agree with the restored state — exactly on the counters and
    // candidate queues, within float tolerance on the re-summed totals.
    let weights = restored.graph().weights();
    let mut rebuilt = restored.store().clone();
    rebuilt.rebuild_loads(weights);
    let mut live = restored.store().clone();
    for j in 0..dims {
        assert!(
            (live.total(j) - rebuilt.total(j)).abs() < 1e-9,
            "live total {j} drifted from the rebuild oracle"
        );
        for p in 0..live.num_parts() as u32 {
            assert!((live.load(p, j) - rebuilt.load(p, j)).abs() < 1e-9);
        }
    }
    assert_eq!(live.num_assigned(), rebuilt.num_assigned());
    for p in 0..live.num_parts() as u32 {
        assert_eq!(live.part_size(p), rebuilt.part_size(p), "part {p} size");
        for j in 0..dims {
            // Heap candidate queues: rebuilt-on-restore must pop the same
            // vertices in the same order as a wholesale rebuild (the
            // weights here are small integers, so the totals — and hence
            // the composite relief keys — are float-exact either way).
            let limit = live.part_size(p);
            assert_eq!(
                live.top_movable(p, j, limit),
                rebuilt.top_movable(p, j, limit),
                "candidate queue ({p}, {j}) diverged from the rebuild oracle"
            );
        }
    }
    // Edge counters vs. a recount of the live edge set.
    let mut edge_oracle = restored.store().clone();
    edge_oracle.rebuild_edge_stats(restored.graph().snapshot().edges());
    assert_eq!(restored.store().cut_edges(), edge_oracle.cut_edges());
    assert!((restored.store().edge_locality() - edge_oracle.edge_locality()).abs() < 1e-12);
    // Telemetry the serving layer alarms on, against the oracle.
    assert!((restored.max_imbalance() - rebuilt.max_imbalance()).abs() < 1e-12);
    assert!((restored.store().min_headroom(0.05) - rebuilt.min_headroom(0.05)).abs() < 1e-12);
}

#[test]
fn free_list_is_carried_verbatim_between_tombstone_and_purge() {
    // The contract: a snapshot taken *between* tombstone and purge carries
    // the free list verbatim, so the restored engine recycles the same
    // ids in the same LIFO order as the saver would have. (Before this
    // was pinned, the interaction was untested/undefined.)
    let mut sp = engine(7, true);
    let mut batch = UpdateBatch::new();
    batch.remove_vertex(11).remove_vertex(23).remove_vertex(5);
    sp.ingest(&batch).expect("removals");
    assert_eq!(sp.graph().free_ids(), &[11, 23, 5]);

    let bytes = snapshot_bytes(&mut sp);
    let mut restored = StreamingPartitioner::restore(&bytes[..]).expect("restore");
    assert_eq!(
        restored.graph().free_ids(),
        &[11, 23, 5],
        "snapshot must carry the free list verbatim"
    );

    // Both engines recycle identically: 5 first (LIFO), then 23, then 11,
    // then a fresh id — reported identically in arrival_ids.
    let mut arrivals = UpdateBatch::new();
    for _ in 0..4 {
        arrivals.add_vertex(vec![1.0, 1.0], vec![0, 1]);
    }
    let ra = sp.ingest(&arrivals).expect("saver ingest");
    let rb = restored.ingest(&arrivals).expect("restored ingest");
    assert_eq!(ra.arrival_ids, vec![5, 23, 11, 400]);
    assert_eq!(ra, rb, "restored engine diverged from the saver");
    assert_eq!(sp.store().as_slice(), restored.store().as_slice());

    // After a purge the free list is gone — and the snapshot says so.
    let mut more = UpdateBatch::new();
    more.remove_vertex(11); // the recycled id, now naming the new vertex
    restored.ingest(&more).expect("remove again");
    assert_eq!(restored.graph().free_ids(), &[11]);
    let remap = restored.purge().expect("pending tombstone must purge");
    assert_eq!(remap[11], TOMBSTONE);
    assert!(restored.graph().free_ids().is_empty());
    let bytes = snapshot_bytes(&mut restored);
    let post_purge = StreamingPartitioner::restore(&bytes[..]).expect("restore post-purge");
    assert!(post_purge.graph().free_ids().is_empty());
    assert_eq!(post_purge.id_epoch(), restored.id_epoch());
}

#[test]
fn snapshot_info_is_peekable_without_the_payload() {
    let mut sp = churned_engine(8);
    let bytes = snapshot_bytes(&mut sp);
    let info = mdbgp_stream::snapshot::read_info(&bytes[..]).expect("info");
    assert_eq!(info.k, 4);
    assert_eq!(info.dims, 2);
    assert_eq!(info.id_epoch, 0);
    assert_eq!(
        info.payload_bytes + mdbgp_stream::snapshot::SNAPSHOT_HEADER_BYTES,
        bytes.len()
    );
}

/// PR-6 observability satellite: the telemetry block must survive a
/// save/restore cycle **bit-identically**, field by field — counters so a
/// resumed run's dashboards continue instead of resetting, and the one
/// float (`last_refine_secs`) compared via `to_bits` because "close" is
/// not round-tripping. The metrics registry, by contrast, is
/// intentionally NOT serialized: a restored engine starts a fresh
/// registry whose journal opens with a `snapshot.restore` event.
#[test]
fn telemetry_round_trips_bit_identically() {
    let mut sp = churned_engine(9);
    // Force a refinement pass so last_refine_secs is a real measurement,
    // not the 0.0 default (which would round-trip trivially).
    sp.refine_now().expect("refine");
    let saved = sp.telemetry().clone();
    assert!(saved.refinements >= 1, "test needs a refinement on record");
    assert!(
        saved.last_refine_secs > 0.0,
        "test needs a nonzero float field"
    );

    let bytes = snapshot_bytes(&mut sp);
    let mut restored = StreamingPartitioner::restore(&bytes[..]).expect("restore");
    let got = restored.telemetry().clone();

    assert_eq!(got.batches, saved.batches);
    assert_eq!(got.vertices_placed, saved.vertices_placed);
    assert_eq!(got.vertices_removed, saved.vertices_removed);
    assert_eq!(got.edges_added, saved.edges_added);
    assert_eq!(got.edges_removed, saved.edges_removed);
    assert_eq!(got.weight_updates, saved.weight_updates);
    assert_eq!(got.compactions, saved.compactions);
    assert_eq!(got.remaps, saved.remaps);
    assert_eq!(got.refinements, saved.refinements);
    assert_eq!(got.rebalance_moves, saved.rebalance_moves);
    assert_eq!(got.rebalance_full_scans, saved.rebalance_full_scans);
    assert_eq!(got.refine_moves, saved.refine_moves);
    assert_eq!(got.placement_conflicts, saved.placement_conflicts);
    assert_eq!(got.repair_passes, saved.repair_passes);
    assert_eq!(
        got.last_refine_secs.to_bits(),
        saved.last_refine_secs.to_bits(),
        "float field must round-trip bit-identically, not approximately"
    );

    // The registry starts fresh on the restored side and announces the
    // restore in its journal.
    let m = restored.metrics();
    assert_eq!(m.counter("stream.snapshot.restores"), 1);
    let events: Vec<&str> = m.events().map(|e| e.event).collect();
    assert!(events.contains(&"snapshot.restore"), "{events:?}");
    assert_eq!(
        m.counter("stream.ingest.batches"),
        0,
        "per-run metrics must not leak through the snapshot"
    );
}
