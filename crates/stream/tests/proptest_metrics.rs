//! Property tests for the observability layer's determinism contract:
//! every metric that measures *work* (counters, the GD iteration
//! histogram, gauges over committed state) must be identical between a
//! serial and a threaded engine fed the same batches — the instrumented
//! quantities are recorded at deterministic barriers, so a divergence is
//! a real scheduling leak, not noise. Time-valued metrics (`_us`/`_ms`/
//! `_secs` suffixes), spans and the journal are measurement rather than
//! outcome; [`mdbgp_stream::MetricsRegistry::deterministic_json`] excludes
//! exactly those, and this suite pins that the remainder matches
//! byte-for-byte.

use mdbgp_core::GdConfig;
use mdbgp_graph::{gen, VertexWeights};
use mdbgp_stream::{StreamConfig, StreamingPartitioner, UpdateBatch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn engine(threads: usize, seed: u64, eps: f64) -> StreamingPartitioner {
    let cg = gen::community_graph(
        &gen::CommunityGraphConfig::social(300),
        &mut StdRng::seed_from_u64(seed),
    );
    let w = VertexWeights::vertex_edge(&cg.graph);
    let mut cfg = StreamConfig::new(4, eps).with_threads(threads);
    cfg.gd = GdConfig {
        iterations: 30,
        ..GdConfig::with_epsilon(eps)
    };
    cfg.max_rebalance_moves = 2048;
    cfg.seed = seed;
    StreamingPartitioner::bootstrap(cg.graph, w, cfg).expect("bootstrap")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn deterministic_metrics_match_across_thread_counts(
        seed in 0u64..1000,
        arrivals in 10usize..40,
        removals in 3usize..10,
        drifts in 20usize..80,
        drift_scale in 1.5f64..3.0,
    ) {
        const EPS: f64 = 0.05;
        let mut serial = engine(1, seed, EPS);
        let mut threaded = engine(4, seed, EPS);

        // Mixed churn: arrivals, removals and shard-concentrated drift so
        // placement, tombstoning, conflict repair and the (parallel) GD
        // refinement path all leave traces in the registry.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        for round in 0..2 {
            let n = serial.graph().num_vertices() as u32;
            let mut batch = UpdateBatch::new();
            for _ in 0..arrivals {
                let nbrs: Vec<u32> = (0..3).map(|_| rng.gen_range(0..n)).collect();
                batch.add_vertex(vec![1.0, nbrs.len() as f64], nbrs);
            }
            let mut removed = Vec::new();
            for _ in 0..removals {
                let v = rng.gen_range(0..n);
                if serial.graph().is_live(v) && !removed.contains(&v) {
                    batch.remove_vertex(v);
                    removed.push(v);
                }
            }
            let victims: Vec<u32> = (0..n)
                .filter(|&v| serial.graph().is_live(v) && !removed.contains(&v))
                .filter(|&v| {
                    // `stream.store.lookups` counts serving-path queries,
                    // so the determinism contract is "same query traffic →
                    // same count": mirror every lookup on both engines.
                    let t = threaded.shard_of(v);
                    let s = serial.shard_of(v);
                    debug_assert_eq!(s, t);
                    s == 0
                })
                .collect();
            for _ in 0..drifts {
                let v = victims[rng.gen_range(0..victims.len())];
                batch.set_weight(v, 0, drift_scale);
            }
            serial.ingest(&batch).expect("serial ingest");
            threaded.ingest(&batch).expect("threaded ingest");

            // Byte-for-byte after every batch, not just at the end —
            // divergence should name the round that introduced it.
            prop_assert_eq!(
                serial.metrics().deterministic_json(),
                threaded.metrics().deterministic_json(),
                "deterministic metric subset diverged across thread counts in round {}",
                round
            );
        }

        // Sanity: the comparison above covered real work, and the filter
        // kept the GD iteration histogram (work-valued) while the full
        // dump still carries the time-valued span histograms it excludes.
        let m = serial.metrics();
        prop_assert!(m.counter("stream.ingest.batches") >= 2);
        let det = m.deterministic_json();
        prop_assert!(det.contains("core.gd.refine_iterations") || m.counter("stream.refine.passes") == 0);
        prop_assert!(!det.contains("_us\""), "time-valued metric leaked into the deterministic dump");
    }
}
