//! Property test for the snapshot round-trip guarantee: an engine saved
//! mid-stream and restored in a "fresh process" must continue ingesting
//! with **byte-identical** [`BatchReport`]s — remaps, arrival ids,
//! refinement outcomes and the float telemetry included — to the
//! uninterrupted saver, across mixed add/remove/drift batches, threads 1
//! and 4, and snapshots taken mid-churn in both pre-purge (tombstones and
//! free list pending) and post-purge (frequent compactions) regimes.
//!
//! The comparison baseline is the engine that *saved*: `save_snapshot`
//! canonicalizes the live rebalance heaps (re-keying every entry at the
//! current totals) so that the saver-that-survived and the
//! restored-from-bytes engine continue from one candidate-queue state —
//! exactly the production kill-and-resume scenario, where the alternative
//! to the restored replica is the original process having kept running
//! after its save.

use mdbgp_core::GdConfig;
use mdbgp_graph::{gen, VertexWeights};
use mdbgp_stream::{BatchReport, StreamConfig, StreamingPartitioner, UpdateBatch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn engine(threads: usize, seed: u64, pre_purge: bool) -> StreamingPartitioner {
    const EPS: f64 = 0.05;
    let cg = gen::community_graph(
        &gen::CommunityGraphConfig::social(300),
        &mut StdRng::seed_from_u64(seed),
    );
    let w = VertexWeights::vertex_edge(&cg.graph);
    let mut cfg = StreamConfig::new(4, EPS).with_threads(threads);
    cfg.gd = GdConfig {
        iterations: 30,
        ..GdConfig::with_epsilon(EPS)
    };
    cfg.max_rebalance_moves = 2048;
    cfg.seed = seed;
    // Pre-purge regime: churn accumulates (tombstones + free list pending
    // at snapshot time). Post-purge regime: a tiny slack forces a purging
    // compaction nearly every batch, so snapshots land just after remaps.
    cfg.compact_slack = if pre_purge { 0.9 } else { 0.02 };
    if pre_purge {
        cfg.drift_headroom = 50.0; // refinement (and its purge) stays off
    }
    StreamingPartitioner::bootstrap(cg.graph, w, cfg).expect("bootstrap")
}

/// One scripted mixed batch against the engine's *current* state (both
/// engines are kept bitwise identical, so scripting against either is
/// equivalent).
fn build_batch(
    sp: &StreamingPartitioner,
    rng: &mut StdRng,
    arrivals: usize,
    removals: usize,
    drifts: usize,
) -> UpdateBatch {
    let n = sp.graph().num_vertices() as u32;
    let mut batch = UpdateBatch::new();
    let mut removed: Vec<u32> = Vec::new();
    for _ in 0..removals {
        let v = rng.gen_range(0..n);
        if sp.graph().is_live(v) && !removed.contains(&v) {
            batch.remove_vertex(v);
            removed.push(v);
        }
    }
    let alive = |v: u32, removed: &[u32]| sp.graph().is_live(v) && !removed.contains(&v);
    for _ in 0..arrivals {
        let nbrs: Vec<u32> = (0..3)
            .map(|_| rng.gen_range(0..n))
            .filter(|&u| alive(u, &removed))
            .collect();
        batch.add_vertex(vec![1.0, (nbrs.len().max(1)) as f64], nbrs);
    }
    for _ in 0..removals {
        let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if alive(u, &removed) && alive(v, &removed) {
            if rng.gen_range(0..2) == 0 {
                batch.add_edge(u, v);
            } else {
                batch.remove_edge(u, v);
            }
        }
    }
    // Drift concentrated on one shard so the refinement path runs on some
    // batches (exercising the post-restore GD/rebalance determinism too).
    let victims: Vec<u32> = (0..n)
        .filter(|&v| alive(v, &removed) && sp.shard_of(v) == 0)
        .collect();
    if !victims.is_empty() {
        for _ in 0..drifts {
            let v = victims[rng.gen_range(0..victims.len())];
            batch.set_weight(v, 0, rng.gen_range(1.2..2.5));
        }
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// save → restore → ingest produces byte-identical reports vs. the
    /// uninterrupted run, at threads 1 and 4, in both churn regimes.
    #[test]
    fn save_restore_ingest_round_trips_byte_identically(
        seed in 0u64..500,
        arrivals in 10usize..160,
        removals in 4usize..20,
        drifts in 0usize..40,
        snapshot_after in 1usize..3,
        pre_purge in proptest::bool::ANY,
    ) {
        for threads in [1usize, 4] {
            // The uninterrupted engine and its eventual replacement run
            // the same stream; `survivor` also saves (to a sink) at the
            // snapshot point, because in the crash scenario the baseline
            // is the very process that produced the snapshot.
            let mut survivor = engine(threads, seed, pre_purge);
            let mut interrupted = engine(threads, seed, pre_purge);

            let mut rng_a = StdRng::seed_from_u64(seed ^ 0xF00D);
            let mut rng_b = StdRng::seed_from_u64(seed ^ 0xF00D);
            let mut survivor_reports: Vec<BatchReport> = Vec::new();
            let mut restored_reports: Vec<BatchReport> = Vec::new();

            for batch_no in 0..4usize {
                let ba = build_batch(&survivor, &mut rng_a, arrivals, removals, drifts);
                let bb = build_batch(&interrupted, &mut rng_b, arrivals, removals, drifts);
                prop_assert_eq!(&ba, &bb, "script diverged before the snapshot");
                survivor_reports.push(survivor.ingest(&ba).expect("survivor ingest"));
                restored_reports.push(interrupted.ingest(&bb).expect("interrupted ingest"));

                if batch_no + 1 == snapshot_after {
                    // "Crash": serialize, drop the process, restore fresh.
                    let mut sink = Vec::new();
                    let info_a = survivor.save_snapshot(&mut sink).expect("survivor save");
                    let mut bytes = Vec::new();
                    let info_b = interrupted.save_snapshot(&mut bytes).expect("save");
                    // Identical logical state → identical snapshot shape
                    // (the payloads differ only in the serialized
                    // wall-clock telemetry, which is measurement).
                    prop_assert_eq!(info_a, info_b);
                    drop(interrupted);
                    interrupted =
                        StreamingPartitioner::restore(&bytes[..]).expect("restore");
                    prop_assert_eq!(
                        survivor.store().as_slice(),
                        interrupted.store().as_slice(),
                        "restored assignment diverged"
                    );
                    // Restore publishes view #0: readers attaching to the
                    // replacement see the same epoch-stamped state the
                    // survivor's readers are pinned to.
                    let sv = survivor.read_view();
                    let rv = interrupted.read_view();
                    prop_assert_eq!(sv.epoch(), rv.epoch(), "restored view epoch");
                    prop_assert_eq!(
                        sv.as_slice(),
                        rv.as_slice(),
                        "restored view assignment diverged"
                    );
                    prop_assert!(rv.verify_checksum());
                    if pre_purge {
                        prop_assert_eq!(
                            survivor.graph().free_ids(),
                            interrupted.graph().free_ids(),
                            "free list not carried verbatim"
                        );
                    }
                }
            }

            // Every post-snapshot report (and the pre-snapshot ones, which
            // ran on bitwise-identical engines) matches byte for byte —
            // including remaps and arrival ids. BatchReport equality spans
            // everything but wall-clock timings; the imbalance/locality
            // floats are compared exactly.
            for (i, (a, b)) in survivor_reports.iter().zip(&restored_reports).enumerate() {
                prop_assert_eq!(a, b, "report {} diverged after restore", i);
                prop_assert_eq!(
                    a.max_imbalance.to_bits(),
                    b.max_imbalance.to_bits(),
                    "imbalance bits diverged at report {}",
                    i
                );
            }
            prop_assert_eq!(
                survivor.store().as_slice(),
                interrupted.store().as_slice(),
                "final assignments diverged"
            );
            // Views stay in lockstep through the post-restore batches too.
            prop_assert_eq!(
                survivor.read_view().epoch(),
                interrupted.read_view().epoch(),
                "final view epochs diverged"
            );
            prop_assert_eq!(
                survivor.read_view().as_slice(),
                interrupted.read_view().as_slice(),
                "final views diverged"
            );
            // Lifetime telemetry matches counter for counter (the last
            // refinement's wall-clock is measurement, not outcome).
            let normalized = |t: &mdbgp_stream::StreamTelemetry| {
                let mut t = t.clone();
                t.last_refine_secs = 0.0;
                t
            };
            prop_assert_eq!(
                normalized(survivor.telemetry()),
                normalized(interrupted.telemetry())
            );
            prop_assert_eq!(survivor.id_epoch(), interrupted.id_epoch());
        }
    }
}
