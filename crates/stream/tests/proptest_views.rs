//! Property + stress tests for the epoch-swapped read path: for any
//! interleaving of reader pins and batch publishes under mixed churn,
//! every view a reader observes is **exactly** the post-batch state of
//! some prefix of the batch sequence — never a torn or intermediate
//! state — with remaps consistent with the view's epoch, and the
//! published view sequence is identical at threads 1 and 4. A
//! multi-threaded stress test hammers lookups from spinning readers
//! across ≥ 2 purges while the engine ingests, asserting zero
//! checksum failures and zero stale-epoch reads.

use mdbgp_core::GdConfig;
use mdbgp_graph::{gen, VertexWeights};
use mdbgp_stream::{StreamConfig, StreamingPartitioner, UpdateBatch, TOMBSTONE};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn engine(threads: usize, seed: u64, frequent_purges: bool) -> StreamingPartitioner {
    const EPS: f64 = 0.05;
    let cg = gen::community_graph(
        &gen::CommunityGraphConfig::social(300),
        &mut StdRng::seed_from_u64(seed),
    );
    let w = VertexWeights::vertex_edge(&cg.graph);
    let mut cfg = StreamConfig::new(4, EPS).with_threads(threads);
    cfg.gd = GdConfig {
        iterations: 30,
        ..GdConfig::with_epsilon(EPS)
    };
    cfg.max_rebalance_moves = 2048;
    cfg.seed = seed;
    // A tiny slack forces a purging compaction nearly every batch, so
    // views cross id epochs often; the loose regime keeps tombstones
    // pending so readers see TOMBSTONE lookups within an epoch.
    cfg.compact_slack = if frequent_purges { 0.02 } else { 0.9 };
    StreamingPartitioner::bootstrap(cg.graph, w, cfg).expect("bootstrap")
}

/// One scripted mixed batch against the engine's current state (same
/// recipe as the churn/snapshot proptests).
fn build_batch(
    sp: &StreamingPartitioner,
    rng: &mut StdRng,
    arrivals: usize,
    removals: usize,
    drifts: usize,
) -> UpdateBatch {
    let n = sp.graph().num_vertices() as u32;
    let mut batch = UpdateBatch::new();
    let mut removed: Vec<u32> = Vec::new();
    for _ in 0..removals {
        let v = rng.gen_range(0..n);
        if sp.graph().is_live(v) && !removed.contains(&v) {
            batch.remove_vertex(v);
            removed.push(v);
        }
    }
    let alive = |v: u32, removed: &[u32]| sp.graph().is_live(v) && !removed.contains(&v);
    for _ in 0..arrivals {
        let nbrs: Vec<u32> = (0..3)
            .map(|_| rng.gen_range(0..n))
            .filter(|&u| alive(u, &removed))
            .collect();
        batch.add_vertex(vec![1.0, (nbrs.len().max(1)) as f64], nbrs);
    }
    for _ in 0..removals {
        let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if alive(u, &removed) && alive(v, &removed) {
            if rng.gen_range(0..2) == 0 {
                batch.add_edge(u, v);
            } else {
                batch.remove_edge(u, v);
            }
        }
    }
    let victims: Vec<u32> = (0..n)
        .filter(|&v| alive(v, &removed) && sp.shard_of(v) == 0)
        .collect();
    if !victims.is_empty() {
        for _ in 0..drifts {
            let v = victims[rng.gen_range(0..victims.len())];
            batch.set_weight(v, 0, rng.gen_range(1.2..2.5));
        }
    }
    batch
}

const READERS: usize = 4;
const BATCHES: usize = 6;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any interleaving of reader pins and publishes observes only exact
    /// prefix states: a pinned view at `batch_seq = s` is bitwise the
    /// engine's post-batch-`s` assignment, its checksum verifies (no torn
    /// reads), a view that crossed a purge carries the remap that
    /// translates ids into its epoch, and the published view sequence is
    /// identical at threads 1 and 4.
    #[test]
    fn pinned_views_are_exact_prefix_states(
        seed in 0u64..500,
        arrivals in 10usize..120,
        removals in 4usize..20,
        drifts in 0usize..30,
        frequent_purges in proptest::bool::ANY,
        refresh_mask in proptest::collection::vec(proptest::bool::ANY, READERS * BATCHES),
    ) {
        let mut serial = engine(1, seed, frequent_purges);
        let mut threaded = engine(4, seed, frequent_purges);
        let mut rng_a = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let mut rng_b = StdRng::seed_from_u64(seed ^ 0xBEEF);
        // Arrivals recycle tombstoned ids before extending the id space,
        // so purges only happen while removals outnumber arrivals — the
        // frequent-purge regime shrinks every batch to guarantee views
        // cross id epochs.
        let (arrivals, removals) = if frequent_purges {
            (4usize, removals + 8)
        } else {
            (arrivals, removals)
        };

        // expected[s] = (id_epoch, assignment) right after publish #s;
        // s = 0 is the bootstrap view.
        let mut expected: Vec<(u64, Vec<u32>)> =
            vec![(0, serial.store().as_slice().to_vec())];
        // Lazily-refreshing readers: pin on an arbitrary schedule.
        let mut lazy: Vec<_> = (0..READERS).map(|_| serial.reader()).collect();
        // A diligent reader: re-pins at every publish and carries a set of
        // tracked ids across epochs via the views' remaps.
        let mut diligent = serial.reader();
        let mut tracked: Vec<u32> = (0..serial.graph().num_vertices() as u32)
            .step_by(7)
            .collect();

        for batch_no in 0..BATCHES {
            let ba = build_batch(&serial, &mut rng_a, arrivals, removals, drifts);
            let bb = build_batch(&threaded, &mut rng_b, arrivals, removals, drifts);
            prop_assert_eq!(&ba, &bb, "script diverged");
            serial.ingest(&ba).expect("serial ingest");
            threaded.ingest(&bb).expect("threaded ingest");
            expected.push((serial.id_epoch(), serial.store().as_slice().to_vec()));

            // threads 1 ≡ 4, down to the published views.
            let vs = serial.read_view();
            let vt = threaded.read_view();
            prop_assert_eq!(vs.epoch(), vt.epoch(), "view epochs diverged");
            prop_assert_eq!(vs.as_slice(), vt.as_slice(), "view states diverged");
            prop_assert_eq!(vs.remap(), vt.remap(), "view remaps diverged");

            // Diligent reader: every publish observed, ids translated
            // through exactly the remap the view carries.
            prop_assert!(diligent.refresh(), "a publish per batch");
            if diligent.needs_adoption() {
                let remap = diligent
                    .view()
                    .remap()
                    .expect("epoch crossed without a remap")
                    .to_vec();
                prop_assert!(remap.len() >= tracked.iter().map(|&v| v as usize + 1).max().unwrap_or(0));
                tracked = tracked
                    .iter()
                    .filter_map(|&v| {
                        let nv = remap[v as usize];
                        (nv != TOMBSTONE).then_some(nv)
                    })
                    .collect();
                diligent.adopt();
            }
            for &v in &tracked {
                let oracle = match serial.store().as_slice()[v as usize] {
                    TOMBSTONE => None,
                    p => Some(p),
                };
                prop_assert_eq!(
                    diligent.lookup(v),
                    oracle,
                    "translated id {} answered wrong at batch {}",
                    v,
                    batch_no
                );
            }

            // Lazy readers: whatever they pin is an exact prefix state.
            for (r, h) in lazy.iter_mut().enumerate() {
                if refresh_mask[batch_no * READERS + r] {
                    h.refresh();
                    if h.needs_adoption() {
                        h.adopt();
                    }
                }
                let view = h.view();
                prop_assert!(view.verify_checksum(), "torn read observed");
                let (id_epoch, parts) = &expected[view.epoch().batch_seq as usize];
                prop_assert_eq!(view.epoch().id_epoch, *id_epoch);
                prop_assert_eq!(
                    view.as_slice(),
                    parts.as_slice(),
                    "reader {} pinned a non-prefix state at batch {}",
                    r,
                    batch_no
                );
            }
        }
        // A correct reader loop never reads across an unadopted epoch.
        prop_assert_eq!(serial.store().stale_epoch_read_count(), 0);
    }
}

/// Reader threads spin lookups against live handles while the engine
/// ingests churn heavy enough to purge (and renumber ids) at least twice.
/// Every pinned view must verify its checksum, every lookup answers from
/// a consistent epoch (readers adopt on refresh, so the stale-epoch
/// counter stays zero), and lookups keep flowing throughout.
#[test]
fn readers_spin_across_purges_without_torn_or_stale_reads() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    let mut sp = engine(1, 7, true);
    let stop = AtomicBool::new(false);
    let torn = AtomicU64::new(0);
    let handles: Vec<_> = (0..4).map(|_| sp.reader()).collect();

    std::thread::scope(|scope| {
        for (t, mut h) in handles.into_iter().enumerate() {
            let stop = &stop;
            let torn = &torn;
            scope.spawn(move || {
                let mut lcg = 0x2545_F491_4F6C_DD1Du64.wrapping_add(t as u64);
                while !stop.load(Ordering::Relaxed) {
                    if h.refresh() {
                        if !h.view().verify_checksum() {
                            torn.fetch_add(1, Ordering::Relaxed);
                        }
                        if h.needs_adoption() {
                            // Ids are resampled below from the view's own
                            // id space — that *is* the re-resolution.
                            h.adopt();
                        }
                    }
                    let n = h.view().num_vertices();
                    for _ in 0..64 {
                        lcg = lcg
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        if n > 0 {
                            let v = ((lcg >> 33) as usize % n) as u32;
                            // Tombstoned ids answer None; both are valid.
                            let _ = h.lookup(v);
                        }
                    }
                }
            });
        }

        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..24 {
            // Removals outnumber arrivals so tombstones survive the batch
            // (arrivals recycle freed ids first) and compaction purges.
            let batch = build_batch(&sp, &mut rng, 10, 25, 10);
            sp.ingest(&batch).expect("ingest under readers");
            if sp.telemetry().remaps >= 2 {
                break;
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert!(
        sp.telemetry().remaps >= 2,
        "stress run must cross at least two purges, got {}",
        sp.telemetry().remaps
    );
    assert_eq!(
        torn.load(std::sync::atomic::Ordering::Relaxed),
        0,
        "torn reads"
    );
    assert_eq!(
        sp.store().stale_epoch_read_count(),
        0,
        "readers adopted on every refresh; no lookup may cross an epoch"
    );
    assert!(
        sp.store().lookup_count() > 0,
        "readers must actually have served lookups"
    );
    assert!(sp.store().lookup_latency().count() > 0);
}
