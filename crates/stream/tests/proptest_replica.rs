//! Property test for the replication guarantee: a [`Follower`]
//! bootstrapped from a leader snapshot that tails the leader's batch log
//! publishes a [`ReadView`] sequence whose `(id_epoch, batch_seq)`
//! stamps and checksums are **bitwise identical** to the leader's, across
//! purging compactions (the stream is scripted to cross at least two id
//! epochs), mid-stream log rotation, and a follower that joins late from
//! a rotated segment. The whole scenario is run at `threads = 1` and
//! `threads = 4` and the two stamp streams must be identical — the
//! replication tier inherits the engine's thread-count invariance.

use mdbgp_core::GdConfig;
use mdbgp_graph::{gen, VertexWeights};
use mdbgp_stream::{Follower, Leader, StreamConfig, StreamingPartitioner, UpdateBatch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn engine(threads: usize, seed: u64) -> StreamingPartitioner {
    const EPS: f64 = 0.05;
    let cg = gen::community_graph(
        &gen::CommunityGraphConfig::social(300),
        &mut StdRng::seed_from_u64(seed),
    );
    let w = VertexWeights::vertex_edge(&cg.graph);
    let mut cfg = StreamConfig::new(4, EPS).with_threads(threads);
    cfg.gd = GdConfig {
        iterations: 30,
        ..GdConfig::with_epsilon(EPS)
    };
    cfg.max_rebalance_moves = 2048;
    cfg.seed = seed;
    // A tiny slack forces purging compactions every few churny batches,
    // so the stream crosses id epochs — the hard case for replication
    // (followers must purge at exactly the same batches).
    cfg.compact_slack = 0.02;
    StreamingPartitioner::bootstrap(cg.graph, w, cfg).expect("bootstrap")
}

/// One scripted mixed batch against the leader's *current* state (the
/// follower is bitwise identical, so scripting against the leader is
/// scripting against both).
fn build_batch(
    sp: &StreamingPartitioner,
    rng: &mut StdRng,
    arrivals: usize,
    removals: usize,
    drifts: usize,
) -> UpdateBatch {
    let n = sp.graph().num_vertices() as u32;
    let mut batch = UpdateBatch::new();
    let alive = |v: u32, removed: &[u32]| sp.graph().is_live(v) && !removed.contains(&v);
    // Arrivals first, removals after: tombstones created at the *end* of
    // the batch survive to the refine stage's compaction check instead
    // of being recycled by the same batch's arrivals, so the tiny
    // `compact_slack` actually forces purges.
    for _ in 0..arrivals {
        let nbrs: Vec<u32> = (0..3)
            .map(|_| rng.gen_range(0..n))
            .filter(|&u| alive(u, &[]))
            .collect();
        batch.add_vertex(vec![1.0, (nbrs.len().max(1)) as f64], nbrs);
    }
    let mut removed: Vec<u32> = Vec::new();
    for _ in 0..removals {
        let v = rng.gen_range(0..n);
        if sp.graph().is_live(v) && !removed.contains(&v) {
            batch.remove_vertex(v);
            removed.push(v);
        }
    }
    for _ in 0..removals {
        let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if alive(u, &removed) && alive(v, &removed) {
            if rng.gen_range(0..2) == 0 {
                batch.add_edge(u, v);
            } else {
                batch.remove_edge(u, v);
            }
        }
    }
    let victims: Vec<u32> = (0..n)
        .filter(|&v| alive(v, &removed) && sp.shard_of(v) == 0)
        .collect();
    if !victims.is_empty() {
        for _ in 0..drifts {
            let v = victims[rng.gen_range(0..victims.len())];
            batch.set_weight(v, 0, rng.gen_range(1.2..2.5));
        }
    }
    batch
}

/// Runs the full leader + tailing-follower scenario at one thread count
/// and returns the leader's per-batch stamp stream as
/// `(id_epoch, batch_seq, view_checksum)` triples.
fn run_scenario(
    threads: usize,
    seed: u64,
    arrivals: usize,
    removals: usize,
    drifts: usize,
) -> Vec<(u64, u64, u64)> {
    let mut leader = Leader::new(engine(threads, seed)).expect("leader");
    let mut follower = Follower::bootstrap(leader.snapshot_bytes()).expect("bootstrap");
    let mut late_follower: Option<Follower> = None;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF0110);
    let mut stamps = Vec::new();

    // Keep ingesting until the stream has crossed at least two id epochs
    // (i.e. two purging compactions replayed through the follower), with
    // a floor of 6 batches and a generous ceiling as a safety valve.
    let mut batch_no = 0usize;
    while batch_no < 6 || (leader.engine().id_epoch() < 2 && batch_no < 40) {
        let batch = build_batch(leader.engine(), &mut rng, arrivals, removals, drifts);
        leader.ingest(&batch).expect("leader ingest");
        batch_no += 1;

        // Tail first: each replay call applies exactly the new record.
        let applied = follower
            .replay(leader.log_bytes())
            .expect("follower replay");
        assert_eq!(applied, 1, "batch {batch_no} applied more than its record");

        // Mid-stream rotation (after the tailer caught up, as a real
        // retention policy would ensure): the tailing follower must
        // adopt the new segment seamlessly, and a second follower joins
        // late from the rotated pair alone.
        if batch_no == 3 {
            leader.rotate().expect("rotate");
            late_follower = Some(Follower::bootstrap(leader.snapshot_bytes()).expect("late"));
        }
        if let Some(lf) = late_follower.as_mut() {
            lf.replay(leader.log_bytes()).expect("late replay");
        }

        // The per-batch published views line up bitwise: stamp, checksum
        // and the assignment vector itself.
        let (lv, fv) = (leader.engine().read_view(), follower.view());
        assert_eq!(lv.epoch(), fv.epoch());
        assert_eq!(lv.checksum(), fv.checksum());
        assert_eq!(lv.as_slice(), fv.as_slice());
        if let Some(lf) = late_follower.as_ref() {
            assert_eq!(lv.epoch(), lf.view().epoch());
            assert_eq!(lv.checksum(), lf.view().checksum());
        }
        stamps.push((lv.epoch().id_epoch, lv.epoch().batch_seq, lv.checksum()));
    }
    assert!(
        leader.engine().id_epoch() >= 2,
        "stream failed to cross two purges (epoch {})",
        leader.engine().id_epoch()
    );
    stamps
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Leader and tailing followers stay bitwise identical across ≥ 2
    /// purges and a mid-stream rotation, and the whole stamp stream is
    /// thread-count invariant (threads 1 ≡ 4).
    #[test]
    fn followers_track_leader_across_purges_and_threads(
        seed in 0u64..500,
        arrivals in 10usize..60,
        removals in 6usize..20,
        drifts in 0usize..30,
    ) {
        let serial = run_scenario(1, seed, arrivals, removals, drifts);
        let parallel = run_scenario(4, seed, arrivals, removals, drifts);
        prop_assert_eq!(serial, parallel);
    }
}
