//! Property tests for the deletion paths: arbitrary interleavings of
//! arrivals, edge insertions/removals, vertex removals and weight drift
//! must (a) keep the per-dimension ε guarantee after every batch, (b) be
//! thread-count invariant, and (c) leave `DynamicGraph` indistinguishable
//! from a graph built directly from the surviving edge set — including
//! across a purging compaction and its id remap.

use mdbgp_core::GdConfig;
use mdbgp_graph::{gen, GraphBuilder, VertexWeights};
use mdbgp_stream::{StreamConfig, StreamingPartitioner, UpdateBatch, TOMBSTONE};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// One scripted mutation over a `DynamicGraph` (vertex ids are taken
/// modulo the current id space so every op lands in range).
#[derive(Clone, Debug)]
enum Op {
    AddVertex,
    AddEdge(u32, u32),
    RemoveEdge(u32, u32),
    RemoveVertex(u32),
    Compact,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored prop_oneof! is uniform; repeat AddEdge to skew the mix
    // toward insertions so graphs stay interesting under the removals.
    prop_oneof![
        Just(Op::AddVertex),
        (0u32..64, 0u32..64).prop_map(|(u, v)| Op::AddEdge(u, v)),
        (0u32..64, 0u32..64).prop_map(|(u, v)| Op::AddEdge(u, v)),
        (0u32..64, 0u32..64).prop_map(|(u, v)| Op::AddEdge(u, v)),
        (0u32..64, 0u32..64).prop_map(|(u, v)| Op::RemoveEdge(u, v)),
        (0u32..64).prop_map(Op::RemoveVertex),
        Just(Op::Compact),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (c) `compact()` after removals round-trips degrees/neighbours
    /// against a brute-force edge set maintained alongside, with the
    /// old→new map applied to the oracle at every purge.
    #[test]
    fn removals_round_trip_against_brute_force(
        base_edges in proptest::collection::vec((0u32..24, 0u32..24), 0..50),
        ops in proptest::collection::vec(op_strategy(), 0..120),
    ) {
        let base = mdbgp_graph::builder::graph_from_edges(24, &base_edges);
        let w = VertexWeights::vertex_edge(&base);
        let mut dg = mdbgp_stream::DynamicGraph::new(base, w);

        // Oracle state in *current* ids: live flags + undirected edge set.
        let mut live: Vec<bool> = vec![true; 24];
        let mut edges: BTreeSet<(u32, u32)> = base_edges
            .iter()
            .filter(|(u, v)| u != v)
            .map(|&(u, v)| (u.min(v), u.max(v)))
            .collect();

        for op in &ops {
            let n = dg.num_vertices() as u32;
            match *op {
                Op::AddVertex => {
                    // Arrivals recycle tombstoned ids (LIFO) before
                    // extending the id space.
                    let v = dg.add_vertex(&[1.0, 1.0]) as usize;
                    if v == live.len() {
                        live.push(true);
                    } else {
                        prop_assert!(!live[v], "recycled id {} was live", v);
                        live[v] = true;
                    }
                }
                Op::AddEdge(u, v) => {
                    let (u, v) = (u % n, v % n);
                    if !live[u as usize] || !live[v as usize] {
                        continue;
                    }
                    let inserted = dg.add_edge(u, v);
                    let novel = u != v && edges.insert((u.min(v), u.max(v)));
                    prop_assert_eq!(inserted, novel, "add ({}, {})", u, v);
                }
                Op::RemoveEdge(u, v) => {
                    let (u, v) = (u % n, v % n);
                    if !live[u as usize] || !live[v as usize] {
                        continue;
                    }
                    let removed = dg.remove_edge(u, v);
                    let existed = u != v && edges.remove(&(u.min(v), u.max(v)));
                    prop_assert_eq!(removed, existed, "remove ({}, {})", u, v);
                }
                Op::RemoveVertex(v) => {
                    let v = v % n;
                    if !live[v as usize] || live.iter().filter(|&&l| l).count() <= 2 {
                        continue;
                    }
                    let shed = dg.remove_vertex(v);
                    let expected: BTreeSet<u32> = edges
                        .iter()
                        .filter(|&&(a, b)| a == v || b == v)
                        .map(|&(a, b)| if a == v { b } else { a })
                        .collect();
                    prop_assert_eq!(
                        shed.iter().copied().collect::<BTreeSet<u32>>(),
                        expected
                    );
                    edges.retain(|&(a, b)| a != v && b != v);
                    live[v as usize] = false;
                }
                Op::Compact => {
                    if let Some(map) = dg.compact() {
                        // Remap the oracle exactly as instructed.
                        prop_assert!(map
                            .iter()
                            .enumerate()
                            .all(|(old, &new)| (new == TOMBSTONE) != live[old]));
                        edges = edges
                            .iter()
                            .map(|&(a, b)| {
                                let (a, b) = (map[a as usize], map[b as usize]);
                                (a.min(b), a.max(b))
                            })
                            .collect();
                        live = vec![true; live.iter().filter(|&&l| l).count()];
                    }
                }
            }
        }

        // Final check: the dynamic view, its snapshot and a one-shot build
        // of the oracle edge set agree on everything.
        let n = dg.num_vertices();
        prop_assert_eq!(dg.num_live_vertices(), live.iter().filter(|&&l| l).count());
        prop_assert_eq!(dg.num_edges(), edges.len());
        let mut builder = GraphBuilder::new(n);
        for &(a, b) in &edges {
            builder.add_edge(a, b);
        }
        let direct = builder.build();
        prop_assert_eq!(&dg.snapshot(), &direct);
        for v in 0..n as u32 {
            prop_assert_eq!(dg.degree(v), direct.degree(v), "degree of {}", v);
            let mut adj: Vec<u32> = dg.neighbors(v).collect();
            adj.sort_unstable();
            prop_assert_eq!(adj.as_slice(), direct.neighbors(v), "adjacency of {}", v);
        }
        // And a final purge agrees with its own remap.
        let live_before = dg.num_live_vertices();
        if let Some(map) = dg.compact() {
            let kept = map.iter().filter(|&&m| m != TOMBSTONE).count();
            prop_assert_eq!(kept, live_before);
        }
        prop_assert_eq!(dg.num_vertices(), live_before);
        prop_assert_eq!(dg.num_edges(), edges.len());
    }
}

fn engine(threads: usize, seed: u64, eps: f64) -> StreamingPartitioner {
    let cg = gen::community_graph(
        &gen::CommunityGraphConfig::social(300),
        &mut StdRng::seed_from_u64(seed),
    );
    let w = VertexWeights::vertex_edge(&cg.graph);
    let mut cfg = StreamConfig::new(4, eps).with_threads(threads);
    cfg.gd = GdConfig {
        iterations: 30,
        ..GdConfig::with_epsilon(eps)
    };
    cfg.max_rebalance_moves = 2048;
    cfg.seed = seed;
    StreamingPartitioner::bootstrap(cg.graph, w, cfg).expect("bootstrap")
}

/// Per-dimension imbalance of the live store (the ε guarantee is stated
/// per dimension; `max_imbalance` folds them, so recompute dimension-wise
/// from the live totals).
fn per_dim_imbalance(sp: &StreamingPartitioner) -> Vec<f64> {
    let store = sp.store();
    let k = store.num_parts();
    (0..sp.graph().weights().dims())
        .map(|j| {
            let avg = store.total(j) / k as f64;
            (0..k as u32)
                .map(|p| store.load(p, j) / avg - 1.0)
                .fold(f64::MIN, f64::max)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// (a) + (b): mixed add/remove/drift batches hold per-dimension ε
    /// after every batch, and the serial and threaded engines stay
    /// bit-identical — including the remaps they report.
    #[test]
    fn mixed_churn_batches_hold_epsilon_at_any_thread_count(
        seed in 0u64..1000,
        // Crosses SPECULATIVE_CHUNK (128): large draws exercise the
        // multi-chunk speculative placement + conflict repair, small ones
        // the single-chunk path.
        arrivals in 16usize..260,
        removals in 5usize..25,
        drifts in 10usize..60,
        drift_scale in 1.5f64..3.0,
    ) {
        const EPS: f64 = 0.05;
        let mut serial = engine(1, seed, EPS);
        let mut threaded = engine(4, seed, EPS);
        prop_assert_eq!(
            serial.partition().as_slice(),
            threaded.partition().as_slice(),
            "bootstrap must not depend on the thread count"
        );

        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        for _ in 0..3 {
            let n = serial.graph().num_vertices() as u32;
            let mut batch = UpdateBatch::new();
            // Removals first (sampled from live ids), so later updates in
            // the same batch never reference a removed vertex.
            let mut removed: Vec<u32> = Vec::new();
            for _ in 0..removals {
                let v = rng.gen_range(0..n);
                if serial.graph().is_live(v) && !removed.contains(&v) {
                    batch.remove_vertex(v);
                    removed.push(v);
                }
            }
            let alive = |v: u32, removed: &[u32]| {
                serial.graph().is_live(v) && !removed.contains(&v)
            };
            for _ in 0..arrivals {
                let nbrs: Vec<u32> = (0..3)
                    .map(|_| rng.gen_range(0..n))
                    .filter(|&u| alive(u, &removed))
                    .collect();
                batch.add_vertex(vec![1.0, (nbrs.len().max(1)) as f64], nbrs);
            }
            // Edge churn between survivors.
            for _ in 0..removals {
                let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
                if alive(u, &removed) && alive(v, &removed) {
                    if rng.gen_range(0..2) == 0 {
                        batch.add_edge(u, v);
                    } else {
                        batch.remove_edge(u, v);
                    }
                }
            }
            // Drift concentrated on one shard so the trigger fires.
            let victims: Vec<u32> = (0..n)
                .filter(|&v| alive(v, &removed) && serial.shard_of(v) == 0)
                .collect();
            prop_assume!(!victims.is_empty());
            for _ in 0..drifts {
                let v = victims[rng.gen_range(0..victims.len())];
                batch.set_weight(v, 0, drift_scale);
            }

            let rs = serial.ingest(&batch).expect("serial ingest");
            let rt = threaded.ingest(&batch).expect("threaded ingest");

            // (a) ε holds in every dimension after every batch.
            for (label, sp) in [("serial", &serial), ("threads=4", &threaded)] {
                for (j, imb) in per_dim_imbalance(sp).iter().enumerate() {
                    prop_assert!(
                        *imb <= EPS + 1e-9,
                        "{} violated eps in dimension {}: {} (refined {}, rebalance {}, gd {}, full_scans {})",
                        label, j, imb, rs.refined, rs.rebalance_moves, rs.refine_moves,
                        sp.telemetry().rebalance_full_scans
                    );
                }
            }

            // (b) Thread count is semantically invisible: the entire
            // report must match — counts, refinement outcome, placement
            // conflicts/repair passes, remaps and assigned arrival ids
            // (BatchReport equality ignores only the wall-clock timings).
            prop_assert_eq!(&rs, &rt, "threads 1 vs 4 diverged");
            prop_assert_eq!(
                serial.store().as_slice(),
                threaded.store().as_slice(),
                "thread count changed the assignment"
            );
        }
    }
}
