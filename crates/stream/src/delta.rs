//! The update language of the stream: batched vertex arrivals and
//! departures, edge insertions and deletions, and weight drift.
//!
//! Updates are applied in order within a batch. A vertex arrives *with* its
//! adjacency to already-present vertices (the standard streaming-partitioning
//! model: the placement decision is made once, online, with exactly that
//! information). Edges between already-present vertices, removals and weight
//! updates model the graph evolving — and churning — underneath the
//! partition.

use mdbgp_graph::VertexId;

/// One stream event.
#[derive(Clone, Debug, PartialEq)]
pub enum StreamUpdate {
    /// A new vertex arrives. It receives the next free id (the id-space
    /// size at application time — removed ids are not recycled until a
    /// purge), carries one weight per balance dimension, and lists its
    /// edges to already-present vertices (out-of-range, duplicate or
    /// removed endpoints are ignored).
    AddVertex {
        weights: Vec<f64>,
        neighbors: Vec<VertexId>,
    },
    /// An edge appears between two already-present vertices. Self-loops and
    /// duplicates are ignored.
    AddEdge { u: VertexId, v: VertexId },
    /// The edge `{u, v}` disappears. Removing a non-existent edge (or a
    /// self-loop) is ignored, mirroring the duplicate policy of
    /// [`Self::AddEdge`]; a *removed endpoint* is an error, like on adds.
    RemoveEdge { u: VertexId, v: VertexId },
    /// Vertex `v` leaves, taking its incident edges with it. Its id stays
    /// addressable (but unassigned) until the next compaction purges it —
    /// see [`crate::engine::BatchReport::remap`]. Removing an unknown or
    /// already-removed vertex is an error.
    RemoveVertex { v: VertexId },
    /// Weight dimension `dim` of vertex `v` drifts to `value` (e.g. an
    /// activity counter used as a balance dimension).
    SetWeight { v: VertexId, dim: usize, value: f64 },
}

/// An ordered batch of stream events, the unit of ingestion (and of
/// refinement triggering) in [`crate::StreamingPartitioner`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct UpdateBatch {
    pub updates: Vec<StreamUpdate>,
}

impl UpdateBatch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a vertex arrival; returns `self` for chaining.
    pub fn add_vertex(&mut self, weights: Vec<f64>, neighbors: Vec<VertexId>) -> &mut Self {
        self.updates
            .push(StreamUpdate::AddVertex { weights, neighbors });
        self
    }

    /// Queues an edge insertion.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.updates.push(StreamUpdate::AddEdge { u, v });
        self
    }

    /// Queues an edge removal.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.updates.push(StreamUpdate::RemoveEdge { u, v });
        self
    }

    /// Queues a vertex removal.
    pub fn remove_vertex(&mut self, v: VertexId) -> &mut Self {
        self.updates.push(StreamUpdate::RemoveVertex { v });
        self
    }

    /// Queues a weight update.
    pub fn set_weight(&mut self, v: VertexId, dim: usize, value: f64) -> &mut Self {
        self.updates.push(StreamUpdate::SetWeight { v, dim, value });
        self
    }

    pub fn len(&self) -> usize {
        self.updates.len()
    }

    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }
}
