//! Versioned snapshot/restore wire format for
//! [`crate::StreamingPartitioner`] — warm-restart persistence for a
//! serving fleet.
//!
//! A process serving shard lookups cannot afford to replay the whole
//! stream after a restart; every production streaming partitioner
//! (cf. the restreaming/serving designs surveyed in Buluç et al., *Recent
//! Advances in Graph Partitioning*) persists its partition state and
//! restarts warm. [`crate::StreamingPartitioner::save_snapshot`] writes
//! the engine's full state to any `io::Write`;
//! [`crate::StreamingPartitioner::restore`] rebuilds an identical engine
//! from any `io::Read` — *identical* in the strong sense: the restored
//! engine continues ingesting with byte-identical
//! [`crate::BatchReport`]s to the process that saved (property-tested in
//! `proptest_snapshot`).
//!
//! ## File layout
//!
//! Everything is little-endian. A fixed self-describing header is
//! followed by one checksummed payload:
//!
//! | offset | size | field                                                |
//! |--------|------|------------------------------------------------------|
//! | 0      | 8    | magic `b"MDBGPSNP"`                                  |
//! | 8      | 4    | format version (`u32`, currently 2)                  |
//! | 12     | 8    | id epoch (`u64`, see below)                          |
//! | 20     | 4    | part count `k` (`u32`)                               |
//! | 24     | 4    | weight dimensions `d` (`u32`)                        |
//! | 28     | 8    | payload length in bytes (`u64`)                      |
//! | 36     | 8    | FNV-1a 64 checksum of the payload (`u64`)            |
//! | 44     | 8    | payload: id-epoch echo (`u64`, checksummed)          |
//! | 52     | …    | payload: CONFIG, GRAPH, STORE, ENGINE sections + END |
//!
//! The header duplicates `k`, `d` and the id epoch from the payload so a
//! router can [`read_info`] them without parsing (or trusting) the body,
//! and so mismatch rejection happens before any state is built. The
//! header itself is *outside* the checksum, so none of its fields are
//! trusted beyond routing: the payload length only bounds an incremental
//! read (a corrupt length reports truncation, never a huge allocation),
//! `k`/`d` are re-validated against the payload's config/store/weights
//! sections, and the id epoch is cross-checked against the checksummed
//! echo at the start of the payload.
//!
//! ## What is serialized vs. rebuilt
//!
//! * **Serialized verbatim** — the base CSR, delta adjacency, edge/vertex
//!   tombstones, the free list, the weight rows *and their live totals*
//!   (incrementally-maintained floats; re-summing would diverge bitwise),
//!   the store's assignments/loads/totals/edge counters, the full
//!   [`crate::StreamConfig`], the dirty set, lifetime telemetry, and the
//!   refinement seed/schedule state.
//! * **Rebuilt on load** — the per-`(part, dimension)` rebalance heaps and
//!   their invalidation stamps. Heap entries carry push-*time* keys, so a
//!   long-lived engine holds mixed-vintage entries; to keep saver and
//!   restorer bitwise in lockstep, `save_snapshot` **canonicalizes** the
//!   live engine's heaps (re-keys every entry at the current totals,
//!   resets the stamps) before writing — both sides then continue from the
//!   same candidate queues. Derived store state (`part_sizes`, stamps) is
//!   likewise recomputed.
//!
//! ## Id epochs
//!
//! Vertex ids are stable *between* purges; each purging compaction
//! renumbers them and reports the old→new map in
//! [`crate::BatchReport::remap`]. The engine counts those purges as its
//! **id epoch** ([`crate::StreamingPartitioner::id_epoch`]); the snapshot
//! records it. An external id holder (a router, a replay harness) that has
//! applied `E` remaps is "at epoch `E`" and can only adopt a snapshot at
//! the same epoch — pass the expectation to
//! [`crate::StreamingPartitioner::restore_expecting`] and a mismatch fails
//! with [`SnapshotError::StaleEpoch`] instead of silently serving wrong
//! shards.
//!
//! ## Serving views after restore
//!
//! The snapshot payload itself is unchanged by the epoch-published read
//! path: no [`crate::ReadView`] state is serialized. Instead, a restoring
//! engine *publishes* view #0 as its final construction step, stamped
//! with the restored `(id_epoch, batches)` — exactly the stamp of the
//! saver's last published view — so serving threads attaching to a
//! warm-restarted replica pin the same epoch-stamped assignment the
//! saver's readers were pinned to (asserted by `proptest_snapshot`
//! alongside the byte-identical-report guarantee).
//!
//! ## Failure model
//!
//! `restore` is all-or-nothing: every rejection — bad magic, unsupported
//! version, truncation, checksum mismatch, expectation mismatch, or an
//! internally inconsistent payload — returns the specific named
//! [`SnapshotError`] variant with nothing constructed. The checksum is an
//! *integrity* check (bit rot, torn writes), not an authenticity one;
//! feed snapshots from trusted storage.

use mdbgp_core::{GdConfig, NoiseSchedule, ProjectionMethod, StepSchedule};
use std::io::{Read, Write};

use crate::engine::StreamConfig;

/// First 8 bytes of every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"MDBGPSNP";

/// Current snapshot format version. Version 2 extended the serialized
/// [`GdConfig`] with the delta-gradient fields (`grad_recompute_period`,
/// `grad_check`); version-1 snapshots are rejected with
/// [`SnapshotError::UnsupportedVersion`] — re-save from a live engine.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Fixed header size in bytes (magic + version + epoch + k + dims +
/// payload length + checksum).
pub const SNAPSHOT_HEADER_BYTES: usize = 8 + 4 + 8 + 4 + 4 + 8 + 8;

/// Everything that can go wrong saving or restoring a snapshot. Restore
/// failures are all-or-nothing: no partially built engine ever escapes.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying reader/writer failed. Carries the same section
    /// context string as [`Self::Truncated`], so a failed restore (or a
    /// follower bootstrap over a flaky transport) names which part of the
    /// snapshot was in flight when the I/O layer gave up.
    Io {
        /// What was being read or written when the I/O call failed.
        context: &'static str,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The stream does not start with [`SNAPSHOT_MAGIC`] — not a snapshot.
    BadMagic { found: [u8; 8] },
    /// The snapshot was written by an unknown (newer or retired) format
    /// version.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The stream ended before the declared structure was complete (e.g. a
    /// partially written file after a crash mid-save).
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
        /// Bytes the structure needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The payload bytes do not hash to the checksum in the header.
    ChecksumMismatch { stored: u64, computed: u64 },
    /// The snapshot's part count differs from the caller's expectation.
    KMismatch { snapshot: usize, expected: usize },
    /// The snapshot's weight-dimension count differs from the caller's
    /// expectation.
    DimensionMismatch { snapshot: usize, expected: usize },
    /// The snapshot's id epoch differs from the caller's: the caller's
    /// vertex ids went through a different number of purge renumberings
    /// than the snapshot's, so they name different vertices.
    StaleEpoch { snapshot: u64, expected: u64 },
    /// The payload parsed but violates an internal invariant (impossible
    /// for a file written by [`crate::StreamingPartitioner::save_snapshot`]
    /// that passes the checksum; names the violation for forensics).
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io { context, source } => {
                write!(
                    f,
                    "snapshot I/O failed while processing {context}: {source}"
                )
            }
            SnapshotError::BadMagic { found } => {
                write!(
                    f,
                    "not a snapshot: magic bytes {found:?} != {SNAPSHOT_MAGIC:?}"
                )
            }
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads version \
                 {supported})"
            ),
            SnapshotError::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "snapshot truncated while reading {context}: needed {needed} bytes, {available} \
                 available"
            ),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: header says {stored:#018x}, payload hashes to \
                 {computed:#018x}"
            ),
            SnapshotError::KMismatch { snapshot, expected } => write!(
                f,
                "snapshot has k = {snapshot} parts but the caller expects k = {expected}"
            ),
            SnapshotError::DimensionMismatch { snapshot, expected } => write!(
                f,
                "snapshot has {snapshot} weight dimensions but the caller expects {expected}"
            ),
            SnapshotError::StaleEpoch { snapshot, expected } => write!(
                f,
                "snapshot is at id epoch {snapshot} but the caller's ids are at epoch \
                 {expected} — the id spaces went through different purge renumberings"
            ),
            SnapshotError::Corrupt(why) => write!(f, "snapshot payload is corrupt: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl SnapshotError {
    /// Wraps an I/O error with the section being processed. There is
    /// deliberately no `From<std::io::Error>`: every I/O failure must name
    /// its context, like every truncation does.
    pub(crate) fn io(context: &'static str, source: std::io::Error) -> Self {
        SnapshotError::Io { context, source }
    }
}

/// The header of a snapshot, readable without parsing (or trusting) the
/// payload — what a fleet controller lists before deciding which snapshot
/// to hand to a restarting replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Format version the snapshot was written with.
    pub format_version: u32,
    /// Purge count of the saving engine — see the module docs on epochs.
    pub id_epoch: u64,
    /// Part count `k`.
    pub k: usize,
    /// Weight dimensions `d`.
    pub dims: usize,
    /// Payload size in bytes (the full file is
    /// [`SNAPSHOT_HEADER_BYTES`] + this).
    pub payload_bytes: usize,
}

/// What a restoring caller knows about the snapshot it wants — checked
/// against the header before any state is built. `None` fields are not
/// checked; [`Default`] checks nothing (the behaviour of
/// [`crate::StreamingPartitioner::restore`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct SnapshotExpectation {
    /// Required part count ([`SnapshotError::KMismatch`] otherwise).
    pub k: Option<usize>,
    /// Required weight-dimension count
    /// ([`SnapshotError::DimensionMismatch`] otherwise).
    pub dims: Option<usize>,
    /// Required id epoch ([`SnapshotError::StaleEpoch`] otherwise).
    pub id_epoch: Option<u64>,
}

impl SnapshotExpectation {
    /// Requires part count `k` (builder style).
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Requires `dims` weight dimensions.
    pub fn with_dims(mut self, dims: usize) -> Self {
        self.dims = Some(dims);
        self
    }

    /// Requires id epoch `epoch`.
    pub fn with_id_epoch(mut self, epoch: u64) -> Self {
        self.id_epoch = Some(epoch);
        self
    }

    /// Checks an already-read header against the expectation.
    pub fn check(&self, info: &SnapshotInfo) -> Result<(), SnapshotError> {
        if let Some(k) = self.k {
            if info.k != k {
                return Err(SnapshotError::KMismatch {
                    snapshot: info.k,
                    expected: k,
                });
            }
        }
        if let Some(dims) = self.dims {
            if info.dims != dims {
                return Err(SnapshotError::DimensionMismatch {
                    snapshot: info.dims,
                    expected: dims,
                });
            }
        }
        if let Some(epoch) = self.id_epoch {
            if info.id_epoch != epoch {
                return Err(SnapshotError::StaleEpoch {
                    snapshot: info.id_epoch,
                    expected: epoch,
                });
            }
        }
        Ok(())
    }
}

/// FNV-1a 64-bit — tiny, dependency-free, and plenty for the integrity
/// check this format needs (any accidental byte flip changes the hash).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Reads only the header: identity, version, epoch, shape — without
/// touching the payload.
pub fn read_info<R: Read>(mut r: R) -> Result<SnapshotInfo, SnapshotError> {
    let mut header = [0u8; SNAPSHOT_HEADER_BYTES];
    read_exact_or_truncated(&mut r, &mut header, "header")?;
    parse_header(&header)
}

fn parse_header(header: &[u8; SNAPSHOT_HEADER_BYTES]) -> Result<SnapshotInfo, SnapshotError> {
    // The `try_into().unwrap()`s below are invariants, not I/O: each
    // subslice has a compile-time-constant length taken from an array of
    // fixed size, so the conversions cannot fail whatever bytes arrived.
    let magic: [u8; 8] = header[0..8].try_into().unwrap();
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic { found: magic });
    }
    let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    Ok(SnapshotInfo {
        format_version: version,
        id_epoch: u64::from_le_bytes(header[12..20].try_into().unwrap()),
        k: u32::from_le_bytes(header[20..24].try_into().unwrap()) as usize,
        dims: u32::from_le_bytes(header[24..28].try_into().unwrap()) as usize,
        payload_bytes: u64::from_le_bytes(header[28..36].try_into().unwrap()) as usize,
    })
}

fn header_checksum(header: &[u8; SNAPSHOT_HEADER_BYTES]) -> u64 {
    // Invariant: an 8-byte subslice of a fixed-size array — cannot fail.
    u64::from_le_bytes(header[36..44].try_into().unwrap())
}

fn read_exact_or_truncated<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), SnapshotError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(SnapshotError::Truncated {
                    context,
                    needed: buf.len(),
                    available: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(SnapshotError::io(context, e)),
        }
    }
    Ok(())
}

/// Frames and writes one snapshot: header (with the payload's checksum)
/// followed by the payload.
pub(crate) fn write_snapshot<W: Write>(
    w: &mut W,
    id_epoch: u64,
    k: usize,
    dims: usize,
    payload: &[u8],
) -> Result<SnapshotInfo, SnapshotError> {
    let info = SnapshotInfo {
        format_version: SNAPSHOT_VERSION,
        id_epoch,
        k,
        dims,
        payload_bytes: payload.len(),
    };
    let hdr = |e| SnapshotError::io("header", e);
    w.write_all(&SNAPSHOT_MAGIC).map_err(hdr)?;
    w.write_all(&SNAPSHOT_VERSION.to_le_bytes()).map_err(hdr)?;
    w.write_all(&id_epoch.to_le_bytes()).map_err(hdr)?;
    w.write_all(&(k as u32).to_le_bytes()).map_err(hdr)?;
    w.write_all(&(dims as u32).to_le_bytes()).map_err(hdr)?;
    w.write_all(&(payload.len() as u64).to_le_bytes())
        .map_err(hdr)?;
    w.write_all(&fnv1a(payload).to_le_bytes()).map_err(hdr)?;
    w.write_all(payload)
        .map_err(|e| SnapshotError::io("payload", e))?;
    w.flush().map_err(|e| SnapshotError::io("payload", e))?;
    Ok(info)
}

/// Reads and integrity-checks one snapshot: header parse, exact-length
/// payload read (a short file is [`SnapshotError::Truncated`], not EOF),
/// checksum verification.
///
/// The payload length comes from the header, which the checksum does
/// **not** cover — so it is never trusted for an up-front allocation: the
/// payload is read incrementally up to the declared length, and the
/// buffer only ever grows to what the stream actually holds. A corrupt
/// length therefore reports [`SnapshotError::Truncated`] (or a checksum
/// mismatch) instead of aborting the process on a multi-exabyte
/// allocation.
pub(crate) fn read_snapshot<R: Read>(mut r: R) -> Result<(SnapshotInfo, Vec<u8>), SnapshotError> {
    let mut header = [0u8; SNAPSHOT_HEADER_BYTES];
    read_exact_or_truncated(&mut r, &mut header, "header")?;
    let info = parse_header(&header)?;
    let stored = header_checksum(&header);
    let mut payload = Vec::new();
    (&mut r)
        .take(info.payload_bytes as u64)
        .read_to_end(&mut payload)
        .map_err(|e| SnapshotError::io("payload", e))?;
    if payload.len() < info.payload_bytes {
        return Err(SnapshotError::Truncated {
            context: "payload",
            needed: info.payload_bytes,
            available: payload.len(),
        });
    }
    let computed = fnv1a(&payload);
    if computed != stored {
        return Err(SnapshotError::ChecksumMismatch { stored, computed });
    }
    Ok((info, payload))
}

// ---------------------------------------------------------------------
// Payload primitives
// ---------------------------------------------------------------------

/// Section tags: cheap structural markers inside the payload so a parse
/// that drifts out of sync fails loudly at the next boundary instead of
/// misreading gigabytes.
pub(crate) const SEC_CONFIG: u8 = 1;
pub(crate) const SEC_GRAPH: u8 = 2;
pub(crate) const SEC_STORE: u8 = 3;
pub(crate) const SEC_ENGINE: u8 = 4;
pub(crate) const SEC_END: u8 = 0xFE;

/// Append-only payload encoder (little-endian scalars, length-prefixed
/// sequences).
#[derive(Default)]
pub(crate) struct PayloadWriter {
    pub(crate) buf: Vec<u8>,
}

impl PayloadWriter {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    pub(crate) fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub(crate) fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    pub(crate) fn put_section(&mut self, tag: u8) {
        self.put_u8(tag);
    }

    pub(crate) fn put_vec_u32(&mut self, v: &[u32]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_u32(x);
        }
    }

    pub(crate) fn put_vec_usize(&mut self, v: &[usize]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_usize(x);
        }
    }

    pub(crate) fn put_vec_f64(&mut self, v: &[f64]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_f64(x);
        }
    }

    pub(crate) fn put_vec_bool(&mut self, v: &[bool]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_bool(x);
        }
    }
}

/// Bounds-checked payload decoder; every overrun is a named
/// [`SnapshotError::Truncated`], never a panic.
pub(crate) struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Whether every payload byte was consumed (trailing garbage would
    /// mean the parse and the writer disagree about the format).
    pub(crate) fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        if self.buf.len() - self.pos < n {
            return Err(SnapshotError::Truncated {
                context,
                needed: n,
                available: self.buf.len() - self.pos,
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn get_u8(&mut self, context: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, context)?[0])
    }

    pub(crate) fn get_u32(&mut self, context: &'static str) -> Result<u32, SnapshotError> {
        // Invariant: `take(4, ..)` either errors or yields exactly 4
        // bytes, so the array conversion cannot fail (same for u64).
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().unwrap(),
        ))
    }

    pub(crate) fn get_u64(&mut self, context: &'static str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().unwrap(),
        ))
    }

    pub(crate) fn get_usize(&mut self, context: &'static str) -> Result<usize, SnapshotError> {
        let v = self.get_u64(context)?;
        usize::try_from(v)
            .map_err(|_| SnapshotError::Corrupt(format!("{context}: length {v} overflows usize")))
    }

    /// A length prefix that will be multiplied by a per-item byte size:
    /// bounded by the remaining payload so a corrupt length cannot ask for
    /// an absurd allocation before the element reads fail.
    fn get_len(
        &mut self,
        item_bytes: usize,
        context: &'static str,
    ) -> Result<usize, SnapshotError> {
        let len = self.get_usize(context)?;
        let available = (self.buf.len() - self.pos) / item_bytes.max(1);
        if len > available {
            return Err(SnapshotError::Truncated {
                context,
                needed: len * item_bytes,
                available: self.buf.len() - self.pos,
            });
        }
        Ok(len)
    }

    pub(crate) fn get_f64(&mut self, context: &'static str) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.get_u64(context)?))
    }

    pub(crate) fn get_bool(&mut self, context: &'static str) -> Result<bool, SnapshotError> {
        match self.get_u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Corrupt(format!(
                "{context}: boolean byte is {other}"
            ))),
        }
    }

    pub(crate) fn expect_section(&mut self, tag: u8) -> Result<(), SnapshotError> {
        let found = self.get_u8("section tag")?;
        if found != tag {
            return Err(SnapshotError::Corrupt(format!(
                "expected section tag {tag:#04x}, found {found:#04x}"
            )));
        }
        Ok(())
    }

    pub(crate) fn get_vec_u32(&mut self, context: &'static str) -> Result<Vec<u32>, SnapshotError> {
        let len = self.get_len(4, context)?;
        (0..len).map(|_| self.get_u32(context)).collect()
    }

    pub(crate) fn get_vec_usize(
        &mut self,
        context: &'static str,
    ) -> Result<Vec<usize>, SnapshotError> {
        let len = self.get_len(8, context)?;
        (0..len).map(|_| self.get_usize(context)).collect()
    }

    pub(crate) fn get_vec_f64(&mut self, context: &'static str) -> Result<Vec<f64>, SnapshotError> {
        let len = self.get_len(8, context)?;
        (0..len).map(|_| self.get_f64(context)).collect()
    }

    pub(crate) fn get_vec_bool(
        &mut self,
        context: &'static str,
    ) -> Result<Vec<bool>, SnapshotError> {
        let len = self.get_len(1, context)?;
        (0..len).map(|_| self.get_bool(context)).collect()
    }
}

// ---------------------------------------------------------------------
// Configuration encoding
// ---------------------------------------------------------------------

pub(crate) fn encode_config(w: &mut PayloadWriter, cfg: &StreamConfig) {
    w.put_usize(cfg.k);
    w.put_f64(cfg.epsilon);
    w.put_usize(cfg.refine_iterations);
    w.put_usize(cfg.max_refine_pairs);
    w.put_f64(cfg.compact_slack);
    w.put_usize(cfg.refine_every);
    w.put_f64(cfg.drift_headroom);
    w.put_usize(cfg.max_rebalance_moves);
    w.put_u64(cfg.seed);
    w.put_usize(cfg.threads);
    encode_gd_config(w, &cfg.gd);
}

pub(crate) fn decode_config(r: &mut PayloadReader) -> Result<StreamConfig, SnapshotError> {
    Ok(StreamConfig {
        k: r.get_usize("config.k")?,
        epsilon: r.get_f64("config.epsilon")?,
        refine_iterations: r.get_usize("config.refine_iterations")?,
        max_refine_pairs: r.get_usize("config.max_refine_pairs")?,
        compact_slack: r.get_f64("config.compact_slack")?,
        refine_every: r.get_usize("config.refine_every")?,
        drift_headroom: r.get_f64("config.drift_headroom")?,
        max_rebalance_moves: r.get_usize("config.max_rebalance_moves")?,
        seed: r.get_u64("config.seed")?,
        threads: r.get_usize("config.threads")?,
        gd: decode_gd_config(r)?,
    })
}

fn encode_gd_config(w: &mut PayloadWriter, gd: &GdConfig) {
    w.put_f64(gd.epsilon);
    w.put_usize(gd.iterations);
    match gd.step {
        StepSchedule::Constant { gamma } => {
            w.put_u8(0);
            w.put_f64(gamma);
        }
        StepSchedule::FixedLength { factor } => {
            w.put_u8(1);
            w.put_f64(factor);
        }
    }
    w.put_u8(match gd.projection {
        ProjectionMethod::OneShotAlternating => 0,
        ProjectionMethod::AlternatingConverged => 1,
        ProjectionMethod::Dykstra => 2,
        ProjectionMethod::Exact => 3,
    });
    w.put_f64(gd.noise.initial_std);
    w.put_f64(gd.noise.later_std);
    w.put_bool(gd.fixing_threshold.is_some());
    w.put_f64(gd.fixing_threshold.unwrap_or(0.0));
    w.put_usize(gd.rounding_attempts);
    w.put_usize(gd.final_projection_passes);
    w.put_usize(gd.threads);
    w.put_bool(gd.track_history);
    w.put_usize(gd.grad_recompute_period);
    w.put_bool(gd.grad_check);
}

fn decode_gd_config(r: &mut PayloadReader) -> Result<GdConfig, SnapshotError> {
    let epsilon = r.get_f64("gd.epsilon")?;
    let iterations = r.get_usize("gd.iterations")?;
    let step = match r.get_u8("gd.step tag")? {
        0 => StepSchedule::Constant {
            gamma: r.get_f64("gd.step.gamma")?,
        },
        1 => StepSchedule::FixedLength {
            factor: r.get_f64("gd.step.factor")?,
        },
        other => {
            return Err(SnapshotError::Corrupt(format!(
                "unknown step-schedule tag {other}"
            )))
        }
    };
    let projection = match r.get_u8("gd.projection tag")? {
        0 => ProjectionMethod::OneShotAlternating,
        1 => ProjectionMethod::AlternatingConverged,
        2 => ProjectionMethod::Dykstra,
        3 => ProjectionMethod::Exact,
        other => {
            return Err(SnapshotError::Corrupt(format!(
                "unknown projection-method tag {other}"
            )))
        }
    };
    let noise = NoiseSchedule {
        initial_std: r.get_f64("gd.noise.initial_std")?,
        later_std: r.get_f64("gd.noise.later_std")?,
    };
    let has_fixing = r.get_bool("gd.fixing_threshold flag")?;
    let fixing_value = r.get_f64("gd.fixing_threshold")?;
    Ok(GdConfig {
        epsilon,
        iterations,
        step,
        projection,
        noise,
        fixing_threshold: has_fixing.then_some(fixing_value),
        rounding_attempts: r.get_usize("gd.rounding_attempts")?,
        final_projection_passes: r.get_usize("gd.final_projection_passes")?,
        threads: r.get_usize("gd.threads")?,
        track_history: r.get_bool("gd.track_history")?,
        grad_recompute_period: r.get_usize("gd.grad_recompute_period")?,
        grad_check: r.get_bool("gd.grad_check")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_primitives_round_trip() {
        let mut w = PayloadWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_usize(12345);
        w.put_f64(-0.125);
        w.put_bool(true);
        w.put_vec_u32(&[1, 2, 3]);
        w.put_vec_usize(&[9, 0]);
        w.put_vec_f64(&[1.5, f64::MIN_POSITIVE]);
        w.put_vec_bool(&[true, false, true]);
        let mut r = PayloadReader::new(&w.buf);
        assert_eq!(r.get_u8("a").unwrap(), 7);
        assert_eq!(r.get_u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.get_usize("d").unwrap(), 12345);
        assert_eq!(r.get_f64("e").unwrap(), -0.125);
        assert!(r.get_bool("f").unwrap());
        assert_eq!(r.get_vec_u32("g").unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_vec_usize("h").unwrap(), vec![9, 0]);
        assert_eq!(r.get_vec_f64("i").unwrap(), vec![1.5, f64::MIN_POSITIVE]);
        assert_eq!(r.get_vec_bool("j").unwrap(), vec![true, false, true]);
        assert!(r.finished());
    }

    #[test]
    fn reader_overruns_are_truncation_errors() {
        let mut w = PayloadWriter::new();
        w.put_u32(5);
        let mut r = PayloadReader::new(&w.buf);
        assert!(r.get_u64("too big").is_err());
        // A corrupt length prefix cannot demand more than the payload has.
        let mut w = PayloadWriter::new();
        w.put_usize(1_000_000); // claims a million u32s follow
        w.put_u32(1);
        let mut r = PayloadReader::new(&w.buf);
        let err = r.get_vec_u32("bogus len").unwrap_err();
        assert!(matches!(err, SnapshotError::Truncated { .. }), "{err}");
    }

    #[test]
    fn header_round_trips_and_detects_corruption() {
        let payload = b"hello snapshot payload".to_vec();
        let mut bytes = Vec::new();
        let info = write_snapshot(&mut bytes, 3, 8, 2, &payload).unwrap();
        assert_eq!(info.id_epoch, 3);
        assert_eq!(info.k, 8);
        assert_eq!(info.dims, 2);
        assert_eq!(info.payload_bytes, payload.len());

        // read_info sees the header without consuming the payload fully.
        let peeked = read_info(&bytes[..]).unwrap();
        assert_eq!(peeked, info);

        let (parsed, body) = read_snapshot(&bytes[..]).unwrap();
        assert_eq!(parsed, info);
        assert_eq!(body, payload);

        // Bad magic.
        let mut broken = bytes.clone();
        broken[0] ^= 0xFF;
        assert!(matches!(
            read_snapshot(&broken[..]).unwrap_err(),
            SnapshotError::BadMagic { .. }
        ));

        // Unsupported version.
        let mut broken = bytes.clone();
        broken[8] = 99;
        assert!(matches!(
            read_snapshot(&broken[..]).unwrap_err(),
            SnapshotError::UnsupportedVersion { found: 99, .. }
        ));

        // Truncated header and truncated payload.
        assert!(matches!(
            read_snapshot(&bytes[..10]).unwrap_err(),
            SnapshotError::Truncated {
                context: "header",
                ..
            }
        ));
        assert!(matches!(
            read_snapshot(&bytes[..bytes.len() - 3]).unwrap_err(),
            SnapshotError::Truncated {
                context: "payload",
                ..
            }
        ));

        // A flipped payload byte fails the checksum; so does a flipped
        // checksum byte.
        let mut broken = bytes.clone();
        let last = broken.len() - 1;
        broken[last] ^= 0x01;
        assert!(matches!(
            read_snapshot(&broken[..]).unwrap_err(),
            SnapshotError::ChecksumMismatch { .. }
        ));
        let mut broken = bytes.clone();
        broken[36] ^= 0x01; // first checksum byte in the header
        assert!(matches!(
            read_snapshot(&broken[..]).unwrap_err(),
            SnapshotError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn io_errors_name_their_context() {
        struct FailingReader;
        impl Read for FailingReader {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk unplugged"))
            }
        }
        let err = read_info(FailingReader).unwrap_err();
        match &err {
            SnapshotError::Io { context, .. } => assert_eq!(*context, "header"),
            other => panic!("expected Io, got {other}"),
        }
        assert!(err.to_string().contains("header"), "{err}");
        assert!(err.to_string().contains("disk unplugged"), "{err}");
    }

    #[test]
    fn expectation_checks_name_the_mismatch() {
        let info = SnapshotInfo {
            format_version: SNAPSHOT_VERSION,
            id_epoch: 2,
            k: 8,
            dims: 2,
            payload_bytes: 0,
        };
        assert!(SnapshotExpectation::default().check(&info).is_ok());
        let ok = SnapshotExpectation::default()
            .with_k(8)
            .with_dims(2)
            .with_id_epoch(2);
        assert!(ok.check(&info).is_ok());
        assert!(matches!(
            SnapshotExpectation::default().with_k(4).check(&info),
            Err(SnapshotError::KMismatch {
                snapshot: 8,
                expected: 4
            })
        ));
        assert!(matches!(
            SnapshotExpectation::default().with_dims(3).check(&info),
            Err(SnapshotError::DimensionMismatch {
                snapshot: 2,
                expected: 3
            })
        ));
        assert!(matches!(
            SnapshotExpectation::default().with_id_epoch(0).check(&info),
            Err(SnapshotError::StaleEpoch {
                snapshot: 2,
                expected: 0
            })
        ));
    }

    #[test]
    fn config_round_trips_every_enum_arm() {
        let mut cfg = StreamConfig::new(8, 0.05);
        cfg.gd.step = StepSchedule::Constant { gamma: 0.7 };
        cfg.gd.projection = ProjectionMethod::Dykstra;
        cfg.gd.fixing_threshold = None;
        cfg.gd.track_history = true;
        cfg.refine_every = 3;
        cfg.threads = 4;
        cfg.seed = 1234567;
        let mut w = PayloadWriter::new();
        encode_config(&mut w, &cfg);
        let mut r = PayloadReader::new(&w.buf);
        let back = decode_config(&mut r).unwrap();
        assert!(r.finished());
        assert_eq!(back.k, cfg.k);
        assert_eq!(back.seed, cfg.seed);
        assert_eq!(back.threads, 4);
        assert_eq!(back.refine_every, 3);
        assert_eq!(back.gd.step, cfg.gd.step);
        assert_eq!(back.gd.projection, cfg.gd.projection);
        assert_eq!(back.gd.fixing_threshold, None);
        assert!(back.gd.track_history);

        // The other enum arms too.
        cfg.gd.step = StepSchedule::FixedLength { factor: 2.0 };
        cfg.gd.projection = ProjectionMethod::Exact;
        cfg.gd.fixing_threshold = Some(0.99);
        let mut w = PayloadWriter::new();
        encode_config(&mut w, &cfg);
        let back = decode_config(&mut PayloadReader::new(&w.buf)).unwrap();
        assert_eq!(back.gd.step, cfg.gd.step);
        assert_eq!(back.gd.projection, cfg.gd.projection);
        assert_eq!(back.gd.fixing_threshold, Some(0.99));

        // An unknown enum tag is Corrupt, not a panic.
        let mut w = PayloadWriter::new();
        encode_config(&mut w, &cfg);
        // step tag sits after k(8) + epsilon(8) + 4 usizes/f64s... locate
        // it by re-encoding with a poisoned byte: the tag is the first u8
        // in the stream, so scan for it structurally instead.
        let mut r = PayloadReader::new(&w.buf);
        let _ = decode_config(&mut r).unwrap();
        let tag_pos = 8 * 10 + 8 + 8; // scalars before gd.step tag
        w.buf[tag_pos] = 77;
        let err = decode_config(&mut PayloadReader::new(&w.buf)).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");
    }
}
