//! Versioned, checksummed wire format for the per-batch replication log —
//! the second half of the warm-restart story in [`crate::snapshot`].
//!
//! A snapshot moves a whole engine; the **batch log** moves everything
//! that happened *since*. A leader appends one framed record per ingested
//! [`UpdateBatch`], stamped with the post-batch [`ViewEpoch`] and the
//! published view's checksum; a follower bootstraps from the snapshot and
//! replays the log tail through its own ingest pipeline
//! ([`crate::replica`]). Because ingestion is deterministic (threads 1 ≡
//! threads N, restore is byte-identical), replaying the same records
//! reproduces the leader's view sequence bit for bit — the stamps and
//! checksums in the records are the divergence detector, not the
//! mechanism of consistency.
//!
//! ## Log layout
//!
//! Everything is little-endian. A fixed self-describing header is
//! followed by zero or more framed records:
//!
//! | offset | size | field                                           |
//! |--------|------|-------------------------------------------------|
//! | 0      | 8    | magic `b"MDBGPLOG"`                             |
//! | 8      | 4    | format version (`u32`, currently 1)             |
//! | 12     | 4    | part count `k` (`u32`)                          |
//! | 16     | 4    | weight dimensions `d` (`u32`)                   |
//! | 20     | 8    | segment number (`u64`, 0 at birth, +1 per rotation) |
//! | 28     | 8    | base id epoch (`u64`)                           |
//! | 36     | 8    | base batch seq (`u64`)                          |
//! | 44     | 8    | FNV-1a 64 checksum of header bytes 8..44        |
//!
//! The **base** stamp is the [`ViewEpoch`] of the snapshot this log
//! continues from: record 1 applies on top of exactly that state. A
//! follower checks its restored stamp against the base before replaying a
//! single record ([`LogHeader::check_adoption`]) — an epoch-mismatched
//! log tail fails with the named [`WireError::BaseMismatch`], never with
//! a half-applied stream. Unlike the snapshot header, every byte after
//! the magic is covered by the header checksum: the log has no payload
//! length to cross-validate against, so a rotted shape/base field would
//! otherwise be trusted.
//!
//! Each record is framed as:
//!
//! | size | field                                     |
//! |------|-------------------------------------------|
//! | 4    | payload length in bytes (`u32`)           |
//! | 8    | FNV-1a 64 checksum of the payload (`u64`) |
//! | …    | payload                                   |
//!
//! and the payload holds the post-batch stamp (`id_epoch`, `batch_seq`,
//! both `u64`), the leader's published view checksum (`u64`,
//! [`crate::ReadView::checksum`]), and the serialized updates (count +
//! one tagged [`StreamUpdate`] each). A clean EOF at a frame boundary
//! ends the log ([`read_record`] returns `None`); bytes that stop inside
//! a frame are [`WireError::Truncated`] with the section named. The
//! frame's length prefix only bounds an incremental read — a corrupt
//! length reports truncation, never a huge allocation — exactly the
//! discipline of the snapshot codec's `read_snapshot`.
//!
//! ## Failure model
//!
//! Reading is all-or-nothing per record: every rejection — bad magic,
//! unsupported version, truncation, checksum mismatch, an unknown update
//! tag — returns the specific named [`WireError`] variant with no partial
//! record surfaced. Like the snapshot checksum, FNV-1a here is an
//! *integrity* check (bit rot, torn appends), not authenticity; feed logs
//! from trusted storage.

use std::io::{Read, Write};

use crate::delta::{StreamUpdate, UpdateBatch};
use crate::snapshot::{fnv1a, PayloadReader, PayloadWriter, SnapshotError};
use crate::ViewEpoch;

/// First 8 bytes of every batch log.
pub const LOG_MAGIC: [u8; 8] = *b"MDBGPLOG";

/// Current log format version.
pub const LOG_VERSION: u32 = 1;

/// Fixed log header size in bytes (magic + version + k + dims + segment
/// + base epoch + base seq + checksum).
pub const LOG_HEADER_BYTES: usize = 8 + 4 + 4 + 4 + 8 + 8 + 8 + 8;

/// Per-record frame overhead in bytes (payload length + checksum).
pub const RECORD_FRAME_BYTES: usize = 4 + 8;

/// Everything that can go wrong writing or replaying a batch log. Reads
/// are all-or-nothing per record: no partially decoded record escapes.
#[derive(Debug)]
pub enum WireError {
    /// The underlying reader/writer failed; names what was in flight.
    Io {
        /// What was being read or written when the I/O call failed.
        context: &'static str,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The stream does not start with [`LOG_MAGIC`] — not a batch log.
    BadMagic { found: [u8; 8] },
    /// The log was written by an unknown (newer or retired) format
    /// version.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The stream ended inside a declared structure (e.g. a torn append
    /// after a leader crash).
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
        /// Bytes the structure needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Bytes do not hash to their recorded checksum (header or record).
    ChecksumMismatch { stored: u64, computed: u64 },
    /// The log's part count differs from the adopting engine's.
    KMismatch { log: usize, expected: usize },
    /// The log's weight-dimension count differs from the adopting
    /// engine's.
    DimensionMismatch { log: usize, expected: usize },
    /// The log continues from a different state than the one the follower
    /// restored: its base stamp is not the follower's `(id_epoch,
    /// batch_seq)` — this log tail belongs to a different snapshot.
    BaseMismatch { log: ViewEpoch, state: ViewEpoch },
    /// The record parsed but violates the format (unknown update tag,
    /// trailing bytes, a stamp that runs backwards).
    Corrupt(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io { context, source } => {
                write!(
                    f,
                    "batch log I/O failed while processing {context}: {source}"
                )
            }
            WireError::BadMagic { found } => {
                write!(f, "not a batch log: magic bytes {found:?} != {LOG_MAGIC:?}")
            }
            WireError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported batch-log format version {found} (this build reads version \
                 {supported})"
            ),
            WireError::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "batch log truncated while reading {context}: needed {needed} bytes, {available} \
                 available"
            ),
            WireError::ChecksumMismatch { stored, computed } => write!(
                f,
                "batch-log checksum mismatch: stored {stored:#018x}, bytes hash to \
                 {computed:#018x}"
            ),
            WireError::KMismatch { log, expected } => write!(
                f,
                "batch log is for k = {log} parts but the adopting engine has k = {expected}"
            ),
            WireError::DimensionMismatch { log, expected } => write!(
                f,
                "batch log carries {log} weight dimensions but the adopting engine has {expected}"
            ),
            WireError::BaseMismatch { log, state } => write!(
                f,
                "batch log continues from (id_epoch {}, batch_seq {}) but the follower's \
                 restored state is at (id_epoch {}, batch_seq {}) — this log tail belongs to a \
                 different snapshot",
                log.id_epoch, log.batch_seq, state.id_epoch, state.batch_seq
            ),
            WireError::Corrupt(why) => write!(f, "batch-log record is corrupt: {why}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl WireError {
    fn io(context: &'static str, source: std::io::Error) -> Self {
        WireError::Io { context, source }
    }
}

/// Record payloads are decoded with the snapshot module's bounds-checked
/// `PayloadReader`, whose errors are [`SnapshotError`]s — translate
/// them into the log's namespace without losing the variant.
impl From<SnapshotError> for WireError {
    fn from(e: SnapshotError) -> Self {
        match e {
            SnapshotError::Io { context, source } => WireError::Io { context, source },
            SnapshotError::Truncated {
                context,
                needed,
                available,
            } => WireError::Truncated {
                context,
                needed,
                available,
            },
            SnapshotError::ChecksumMismatch { stored, computed } => {
                WireError::ChecksumMismatch { stored, computed }
            }
            SnapshotError::Corrupt(why) => WireError::Corrupt(why),
            // The remaining variants (magic/version/shape/epoch) describe
            // snapshot headers and cannot come out of a payload decode.
            other => WireError::Corrupt(other.to_string()),
        }
    }
}

/// The header of a batch log: which state it continues from and the
/// stream shape — readable without touching any record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogHeader {
    /// Format version the log was written with.
    pub format_version: u32,
    /// Part count `k` of the stream the log belongs to.
    pub k: usize,
    /// Weight dimensions `d`.
    pub dims: usize,
    /// Which segment of the leader's log this is: 0 for the segment
    /// opened at the leader's birth, +1 per rotation. A follower
    /// canonicalizes its rebalance heaps when it first adopts a segment
    /// (mirroring the canonicalization the leader's snapshot performed
    /// at rotation — [`crate::StreamingPartitioner::canonicalize_heaps`]),
    /// and the number tells re-reads of the same segment apart from a
    /// genuinely new one.
    pub segment: u64,
    /// The [`ViewEpoch`] of the snapshot this log continues from: record
    /// 1 applies on top of exactly that state.
    pub base: ViewEpoch,
}

impl LogHeader {
    /// Checks the log against an adopting engine: shape must match and
    /// the engine's current stamp must be the log's base. Each mismatch
    /// fails with its named [`WireError`] variant; nothing is applied.
    pub fn check_adoption(&self, k: usize, dims: usize, state: ViewEpoch) -> Result<(), WireError> {
        if self.k != k {
            return Err(WireError::KMismatch {
                log: self.k,
                expected: k,
            });
        }
        if self.dims != dims {
            return Err(WireError::DimensionMismatch {
                log: self.dims,
                expected: dims,
            });
        }
        if self.base != state {
            return Err(WireError::BaseMismatch {
                log: self.base,
                state,
            });
        }
        Ok(())
    }
}

/// One replication unit: the batch the leader ingested, the `(id_epoch,
/// batch_seq)` stamp of the view it published afterwards, and that view's
/// checksum. A follower replays `batch`, then proves it arrived at the
/// same place by comparing its own published view against `stamp` +
/// `view_checksum` ([`crate::replica::Follower`]).
#[derive(Clone, Debug, PartialEq)]
pub struct LogRecord {
    /// The leader's post-batch published [`ViewEpoch`].
    pub stamp: ViewEpoch,
    /// [`crate::ReadView::checksum`] of the leader's post-batch view.
    pub view_checksum: u64,
    /// The ingested batch, verbatim.
    pub batch: UpdateBatch,
}

/// Writes the log header: magic, version, shape, base stamp, and the
/// header checksum covering everything after the magic.
pub fn write_log_header<W: Write>(
    w: &mut W,
    k: usize,
    dims: usize,
    segment: u64,
    base: ViewEpoch,
) -> Result<(), WireError> {
    let mut body = Vec::with_capacity(LOG_HEADER_BYTES - 8);
    body.extend_from_slice(&LOG_VERSION.to_le_bytes());
    body.extend_from_slice(&(k as u32).to_le_bytes());
    body.extend_from_slice(&(dims as u32).to_le_bytes());
    body.extend_from_slice(&segment.to_le_bytes());
    body.extend_from_slice(&base.id_epoch.to_le_bytes());
    body.extend_from_slice(&base.batch_seq.to_le_bytes());
    let hdr = |e| WireError::io("log header", e);
    w.write_all(&LOG_MAGIC).map_err(hdr)?;
    w.write_all(&body).map_err(hdr)?;
    w.write_all(&fnv1a(&body).to_le_bytes()).map_err(hdr)?;
    w.flush().map_err(hdr)?;
    Ok(())
}

/// Reads and integrity-checks the log header.
pub fn read_log_header<R: Read>(r: &mut R) -> Result<LogHeader, WireError> {
    let mut header = [0u8; LOG_HEADER_BYTES];
    read_exact_or_truncated(r, &mut header, "log header")?;
    // Magic check precedes the checksum: "not a log at all" should say
    // so, not report a hash mismatch.
    let magic: [u8; 8] = header[0..8].try_into().expect("8-byte slice of 52");
    if magic != LOG_MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    let body = &header[8..LOG_HEADER_BYTES - 8];
    let stored = u64::from_le_bytes(
        header[LOG_HEADER_BYTES - 8..]
            .try_into()
            .expect("8-byte slice of 52"),
    );
    let computed = fnv1a(body);
    if stored != computed {
        return Err(WireError::ChecksumMismatch { stored, computed });
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4-byte slice"));
    if version != LOG_VERSION {
        return Err(WireError::UnsupportedVersion {
            found: version,
            supported: LOG_VERSION,
        });
    }
    Ok(LogHeader {
        format_version: version,
        k: u32::from_le_bytes(header[12..16].try_into().expect("4-byte slice")) as usize,
        dims: u32::from_le_bytes(header[16..20].try_into().expect("4-byte slice")) as usize,
        segment: u64::from_le_bytes(header[20..28].try_into().expect("8-byte slice")),
        base: ViewEpoch {
            id_epoch: u64::from_le_bytes(header[28..36].try_into().expect("8-byte slice")),
            batch_seq: u64::from_le_bytes(header[36..44].try_into().expect("8-byte slice")),
        },
    })
}

/// Frames and appends one record; returns the bytes written (frame +
/// payload), the quantity a rotation policy meters.
pub fn write_record<W: Write>(w: &mut W, record: &LogRecord) -> Result<usize, WireError> {
    let mut pw = PayloadWriter::new();
    pw.put_u64(record.stamp.id_epoch);
    pw.put_u64(record.stamp.batch_seq);
    pw.put_u64(record.view_checksum);
    pw.put_usize(record.batch.updates.len());
    for update in &record.batch.updates {
        encode_update(&mut pw, update);
    }
    let frame = |e| WireError::io("record frame", e);
    w.write_all(&(pw.buf.len() as u32).to_le_bytes())
        .map_err(frame)?;
    w.write_all(&fnv1a(&pw.buf).to_le_bytes()).map_err(frame)?;
    w.write_all(&pw.buf)
        .map_err(|e| WireError::io("record payload", e))?;
    w.flush().map_err(|e| WireError::io("record payload", e))?;
    Ok(RECORD_FRAME_BYTES + pw.buf.len())
}

/// Reads the next record, `Ok(None)` at a clean end of log (EOF exactly
/// at a frame boundary). Bytes that stop inside a frame are
/// [`WireError::Truncated`]; a payload that fails its checksum is
/// [`WireError::ChecksumMismatch`] — in every error case no record (and
/// no partial record) is returned.
pub fn read_record<R: Read>(r: &mut R) -> Result<Option<LogRecord>, WireError> {
    let mut frame = [0u8; RECORD_FRAME_BYTES];
    // A clean EOF before the first frame byte ends the log; EOF after it
    // is a torn append.
    let mut filled = 0usize;
    while filled < frame.len() {
        match r.read(&mut frame[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(WireError::Truncated {
                    context: "record frame",
                    needed: frame.len(),
                    available: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::io("record frame", e)),
        }
    }
    let len = u32::from_le_bytes(frame[0..4].try_into().expect("4-byte slice")) as usize;
    let stored = u64::from_le_bytes(frame[4..12].try_into().expect("8-byte slice"));
    // The declared length is untrusted: read incrementally up to it, so a
    // corrupt frame reports truncation instead of a huge allocation.
    let mut payload = Vec::new();
    r.take(len as u64)
        .read_to_end(&mut payload)
        .map_err(|e| WireError::io("record payload", e))?;
    if payload.len() < len {
        return Err(WireError::Truncated {
            context: "record payload",
            needed: len,
            available: payload.len(),
        });
    }
    let computed = fnv1a(&payload);
    if computed != stored {
        return Err(WireError::ChecksumMismatch { stored, computed });
    }
    let mut pr = PayloadReader::new(&payload);
    let stamp = ViewEpoch {
        id_epoch: pr.get_u64("record stamp id_epoch")?,
        batch_seq: pr.get_u64("record stamp batch_seq")?,
    };
    let view_checksum = pr.get_u64("record view checksum")?;
    let count = pr.get_usize("record update count")?;
    let mut updates = Vec::new();
    for _ in 0..count {
        // No pre-reservation from the untrusted count: each update is at
        // least 1 byte, so a corrupt count fails on the tag read below
        // long before memory becomes a concern.
        updates.push(decode_update(&mut pr)?);
    }
    if !pr.finished() {
        return Err(WireError::Corrupt(
            "trailing bytes after the last update".into(),
        ));
    }
    Ok(Some(LogRecord {
        stamp,
        view_checksum,
        batch: UpdateBatch { updates },
    }))
}

// Update tags. The numbering is part of the wire format: renumbering is a
// version bump.
const TAG_ADD_VERTEX: u8 = 0;
const TAG_ADD_EDGE: u8 = 1;
const TAG_REMOVE_EDGE: u8 = 2;
const TAG_REMOVE_VERTEX: u8 = 3;
const TAG_SET_WEIGHT: u8 = 4;

fn encode_update(w: &mut PayloadWriter, update: &StreamUpdate) {
    match update {
        StreamUpdate::AddVertex { weights, neighbors } => {
            w.put_u8(TAG_ADD_VERTEX);
            w.put_vec_f64(weights);
            w.put_vec_u32(neighbors);
        }
        StreamUpdate::AddEdge { u, v } => {
            w.put_u8(TAG_ADD_EDGE);
            w.put_u32(*u);
            w.put_u32(*v);
        }
        StreamUpdate::RemoveEdge { u, v } => {
            w.put_u8(TAG_REMOVE_EDGE);
            w.put_u32(*u);
            w.put_u32(*v);
        }
        StreamUpdate::RemoveVertex { v } => {
            w.put_u8(TAG_REMOVE_VERTEX);
            w.put_u32(*v);
        }
        StreamUpdate::SetWeight { v, dim, value } => {
            w.put_u8(TAG_SET_WEIGHT);
            w.put_u32(*v);
            w.put_usize(*dim);
            w.put_f64(*value);
        }
    }
}

fn decode_update(r: &mut PayloadReader) -> Result<StreamUpdate, WireError> {
    Ok(match r.get_u8("update tag")? {
        TAG_ADD_VERTEX => StreamUpdate::AddVertex {
            weights: r.get_vec_f64("update.add_vertex.weights")?,
            neighbors: r.get_vec_u32("update.add_vertex.neighbors")?,
        },
        TAG_ADD_EDGE => StreamUpdate::AddEdge {
            u: r.get_u32("update.add_edge.u")?,
            v: r.get_u32("update.add_edge.v")?,
        },
        TAG_REMOVE_EDGE => StreamUpdate::RemoveEdge {
            u: r.get_u32("update.remove_edge.u")?,
            v: r.get_u32("update.remove_edge.v")?,
        },
        TAG_REMOVE_VERTEX => StreamUpdate::RemoveVertex {
            v: r.get_u32("update.remove_vertex.v")?,
        },
        TAG_SET_WEIGHT => StreamUpdate::SetWeight {
            v: r.get_u32("update.set_weight.v")?,
            dim: r.get_usize("update.set_weight.dim")?,
            value: r.get_f64("update.set_weight.value")?,
        },
        other => return Err(WireError::Corrupt(format!("unknown update tag {other}"))),
    })
}

fn read_exact_or_truncated<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), WireError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(WireError::Truncated {
                    context,
                    needed: buf.len(),
                    available: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::io(context, e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> (Vec<u8>, Vec<LogRecord>) {
        let base = ViewEpoch {
            id_epoch: 1,
            batch_seq: 7,
        };
        let mut batch1 = UpdateBatch::new();
        batch1.add_vertex(vec![1.0, 2.5], vec![0, 3]);
        batch1.add_edge(1, 2);
        batch1.remove_edge(0, 3);
        batch1.set_weight(2, 1, 0.75);
        let mut batch2 = UpdateBatch::new();
        batch2.remove_vertex(3);
        let records = vec![
            LogRecord {
                stamp: ViewEpoch {
                    id_epoch: 1,
                    batch_seq: 8,
                },
                view_checksum: 0xDEAD_BEEF_CAFE_F00D,
                batch: batch1,
            },
            LogRecord {
                stamp: ViewEpoch {
                    id_epoch: 2,
                    batch_seq: 9,
                },
                view_checksum: 42,
                batch: batch2,
            },
            // An empty batch is legal on the wire (a leader may log
            // heartbeat batches).
            LogRecord {
                stamp: ViewEpoch {
                    id_epoch: 2,
                    batch_seq: 10,
                },
                view_checksum: 7,
                batch: UpdateBatch::new(),
            },
        ];
        let mut bytes = Vec::new();
        write_log_header(&mut bytes, 8, 2, 3, base).unwrap();
        for rec in &records {
            let written = write_record(&mut bytes, rec).unwrap();
            assert!(written > RECORD_FRAME_BYTES);
        }
        (bytes, records)
    }

    fn read_all(bytes: &[u8]) -> Result<(LogHeader, Vec<LogRecord>), WireError> {
        let mut r = bytes;
        let header = read_log_header(&mut r)?;
        let mut records = Vec::new();
        while let Some(rec) = read_record(&mut r)? {
            records.push(rec);
        }
        Ok((header, records))
    }

    #[test]
    fn log_round_trips_every_update_arm() {
        let (bytes, records) = sample_log();
        let (header, back) = read_all(&bytes).unwrap();
        assert_eq!(header.format_version, LOG_VERSION);
        assert_eq!(header.k, 8);
        assert_eq!(header.dims, 2);
        assert_eq!(header.segment, 3);
        assert_eq!(
            header.base,
            ViewEpoch {
                id_epoch: 1,
                batch_seq: 7
            }
        );
        assert_eq!(back, records);
    }

    #[test]
    fn adoption_checks_name_the_mismatch() {
        let (bytes, _) = sample_log();
        let header = read_log_header(&mut &bytes[..]).unwrap();
        let base = header.base;
        assert!(header.check_adoption(8, 2, base).is_ok());
        assert!(matches!(
            header.check_adoption(4, 2, base),
            Err(WireError::KMismatch {
                log: 8,
                expected: 4
            })
        ));
        assert!(matches!(
            header.check_adoption(8, 3, base),
            Err(WireError::DimensionMismatch {
                log: 2,
                expected: 3
            })
        ));
        // The epoch-mismatched log tail: a snapshot from a different
        // purge generation (or batch count) cannot adopt this log.
        let stale = ViewEpoch {
            id_epoch: base.id_epoch + 1,
            batch_seq: base.batch_seq,
        };
        assert!(matches!(
            header.check_adoption(8, 2, stale),
            Err(WireError::BaseMismatch { .. })
        ));
    }

    #[test]
    fn header_corruption_is_named() {
        let (bytes, _) = sample_log();

        // Bad magic.
        let mut broken = bytes.clone();
        broken[0] ^= 0xFF;
        assert!(matches!(
            read_all(&broken).unwrap_err(),
            WireError::BadMagic { .. }
        ));

        // Wrong version — the checksum covers the version field, so the
        // flip must be paired with a recomputed checksum to reach the
        // version check (a plain flip is a checksum mismatch, also
        // named).
        let mut broken = bytes.clone();
        broken[8] = 99;
        assert!(matches!(
            read_all(&broken).unwrap_err(),
            WireError::ChecksumMismatch { .. }
        ));
        let body: Vec<u8> = broken[8..LOG_HEADER_BYTES - 8].to_vec();
        broken[LOG_HEADER_BYTES - 8..LOG_HEADER_BYTES].copy_from_slice(&fnv1a(&body).to_le_bytes());
        assert!(matches!(
            read_all(&broken).unwrap_err(),
            WireError::UnsupportedVersion { found: 99, .. }
        ));

        // Truncated header.
        assert!(matches!(
            read_all(&bytes[..10]).unwrap_err(),
            WireError::Truncated {
                context: "log header",
                ..
            }
        ));
    }

    #[test]
    fn record_corruption_is_named_and_yields_no_record() {
        let (bytes, records) = sample_log();

        // Truncation mid-record: cut inside the final record's payload.
        let cut = bytes.len() - 3;
        let err = read_all(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(
                err,
                WireError::Truncated {
                    context: "record payload",
                    ..
                }
            ),
            "{err}"
        );
        // ...and inside a frame header.
        let mut r = &bytes[..LOG_HEADER_BYTES + 5];
        read_log_header(&mut r).unwrap();
        assert!(matches!(
            read_record(&mut r).unwrap_err(),
            WireError::Truncated {
                context: "record frame",
                ..
            }
        ));

        // A flipped payload byte fails the record checksum — and the
        // earlier, untouched records still replay.
        let mut broken = bytes.clone();
        let last = broken.len() - 1;
        broken[last] ^= 0x01;
        let mut r = &broken[..];
        read_log_header(&mut r).unwrap();
        assert_eq!(read_record(&mut r).unwrap().unwrap(), records[0]);
        assert_eq!(read_record(&mut r).unwrap().unwrap(), records[1]);
        assert!(matches!(
            read_record(&mut r).unwrap_err(),
            WireError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn unknown_update_tag_is_corrupt_not_a_panic() {
        // Hand-frame a record whose only update has tag 200.
        let mut pw = PayloadWriter::new();
        pw.put_u64(0); // id_epoch
        pw.put_u64(1); // batch_seq
        pw.put_u64(0); // view checksum
        pw.put_usize(1); // one update
        pw.put_u8(200); // bogus tag
        let mut bytes = Vec::new();
        write_log_header(&mut bytes, 2, 2, 0, ViewEpoch::default()).unwrap();
        bytes.extend_from_slice(&(pw.buf.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&fnv1a(&pw.buf).to_le_bytes());
        bytes.extend_from_slice(&pw.buf);
        let mut r = &bytes[..];
        read_log_header(&mut r).unwrap();
        let err = read_record(&mut r).unwrap_err();
        assert!(matches!(err, WireError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("unknown update tag 200"), "{err}");
    }

    #[test]
    fn clean_eof_ends_the_log() {
        let base = ViewEpoch::default();
        let mut bytes = Vec::new();
        write_log_header(&mut bytes, 2, 2, 0, base).unwrap();
        let mut r = &bytes[..];
        read_log_header(&mut r).unwrap();
        assert!(read_record(&mut r).unwrap().is_none());
        // And stays None on repeated polls (a tailing reader).
        assert!(read_record(&mut r).unwrap().is_none());
    }

    #[test]
    fn io_errors_name_their_context() {
        struct FailingReader;
        impl Read for FailingReader {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("link down"))
            }
        }
        let err = read_log_header(&mut FailingReader).unwrap_err();
        match &err {
            WireError::Io { context, .. } => assert_eq!(*context, "log header"),
            other => panic!("expected Io, got {other}"),
        }
        assert!(err.to_string().contains("link down"), "{err}");
    }
}
