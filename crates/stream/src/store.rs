//! [`PartitionStore`]: the serving-side view of the evolving partition.
//!
//! A router in front of a sharded graph store needs exactly three things
//! from the partitioner: O(1) `vertex → shard` lookups, cheap imbalance /
//! locality telemetry to alarm on, and a stable snapshot to hand to the
//! refinement pass. The store keeps per-part per-dimension loads and
//! incremental intra/cut edge counters so every query is O(1) or O(d·k) —
//! nothing on the serving path ever touches the graph itself.
//!
//! ## Rebalance heaps
//!
//! The store additionally maintains one lazy max-heap per `(part,
//! dimension)` pair, keyed by the vertex weight in that dimension — the
//! *relief* a move out of the part offers its binding dimension. The
//! greedy rebalance pass ([`crate::StreamingPartitioner`]) pops the top
//! few candidates of the overloaded part's binding dimension instead of
//! rescanning every member, making candidate generation O(log n) per move
//! at serving scale. Entries are invalidated by a per-`(vertex, dimension)`
//! stamp — every move or weight drift bumps the stamp and pushes a fresh
//! entry, and stale entries are discarded when popped (with an occasional
//! compaction when a heap outgrows its live membership 4×), so maintenance
//! stays amortized O(d·log n) per mutation.

use mdbgp_graph::{Partition, VertexId, VertexWeights};
use std::collections::BinaryHeap;

/// One candidate in a per-`(part, dimension)` rebalance heap: vertex `v`
/// had weight `key` in that dimension at stamp `stamp`. Stale entries
/// (stamp mismatch, or `v` no longer in the part) are skipped on pop.
#[derive(Clone, Copy, Debug)]
struct HeapEntry {
    key: f64,
    stamp: u64,
    v: VertexId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Weights are validated positive finite upstream; total_cmp keeps
        // the order total regardless. Ties break on vertex id for
        // determinism.
        self.key
            .total_cmp(&other.key)
            .then_with(|| self.v.cmp(&other.v))
    }
}

/// Vertex→shard map plus live load / locality accounting.
#[derive(Clone, Debug)]
pub struct PartitionStore {
    parts: Vec<u32>,
    k: usize,
    dims: usize,
    /// `loads[p * dims + j] = w^{(j)}(V_p)`.
    loads: Vec<f64>,
    /// Vertices currently assigned to each part (drives heap compaction).
    part_sizes: Vec<usize>,
    /// `stamps[v * dims + j]`: version of the live heap entry of `(v, j)`.
    stamps: Vec<u64>,
    /// `heaps[p * dims + j]`: max-heap of part `p`'s members keyed by
    /// weight in dimension `j` (plus stale entries awaiting lazy removal).
    heaps: Vec<BinaryHeap<HeapEntry>>,
    intra_edges: usize,
    cut_edges: usize,
}

impl PartitionStore {
    /// Builds the store from a partition and weights; edge counters start
    /// at zero — call [`Self::rebuild_edge_stats`] with the graph's edges.
    pub fn new(partition: &Partition, weights: &VertexWeights) -> Self {
        assert_eq!(partition.num_vertices(), weights.num_vertices());
        let k = partition.num_parts();
        let dims = weights.dims();
        let n = partition.num_vertices();
        let mut loads = vec![0.0f64; k * dims];
        let mut part_sizes = vec![0usize; k];
        let mut heaps = vec![BinaryHeap::new(); k * dims];
        for v in 0..n {
            let p = partition.part_of(v as VertexId) as usize;
            part_sizes[p] += 1;
            for j in 0..dims {
                let w = weights.weight(j, v as VertexId);
                loads[p * dims + j] += w;
                heaps[p * dims + j].push(HeapEntry {
                    key: w,
                    stamp: 0,
                    v: v as VertexId,
                });
            }
        }
        Self {
            parts: partition.as_slice().to_vec(),
            k,
            dims,
            loads,
            part_sizes,
            stamps: vec![0; n * dims],
            heaps,
            intra_edges: 0,
            cut_edges: 0,
        }
    }

    /// Number of parts `k`.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.k
    }

    /// Number of vertices currently assigned.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.parts.len()
    }

    /// O(1) shard lookup — the serving hot path.
    #[inline]
    pub fn shard_of(&self, v: VertexId) -> u32 {
        self.parts[v as usize]
    }

    /// Raw assignment slice.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.parts
    }

    /// Load of part `p` in dimension `j`.
    #[inline]
    pub fn load(&self, p: u32, j: usize) -> f64 {
        self.loads[p as usize * self.dims + j]
    }

    /// Number of vertices currently assigned to part `p`.
    #[inline]
    pub fn part_size(&self, p: u32) -> usize {
        self.part_sizes[p as usize]
    }

    /// Appends a newly placed vertex.
    pub fn push_assignment(&mut self, part: u32, weight_row: &[f64]) {
        debug_assert!((part as usize) < self.k);
        debug_assert_eq!(weight_row.len(), self.dims);
        let v = self.parts.len() as VertexId;
        self.parts.push(part);
        self.part_sizes[part as usize] += 1;
        for (j, &w) in weight_row.iter().enumerate() {
            self.loads[part as usize * self.dims + j] += w;
            self.stamps.push(0);
            self.heaps[part as usize * self.dims + j].push(HeapEntry {
                key: w,
                stamp: 0,
                v,
            });
        }
    }

    /// Moves `v` to `part`, shifting its weight row between loads.
    pub fn move_vertex(&mut self, v: VertexId, part: u32, weight_row: &[f64]) {
        debug_assert!((part as usize) < self.k);
        let old = self.parts[v as usize] as usize;
        if old == part as usize {
            return;
        }
        self.part_sizes[old] -= 1;
        self.part_sizes[part as usize] += 1;
        for (j, &w) in weight_row.iter().enumerate() {
            self.loads[old * self.dims + j] -= w;
            self.loads[part as usize * self.dims + j] += w;
            let stamp = self.bump_stamp(v, j);
            self.push_entry(part, j, HeapEntry { key: w, stamp, v });
        }
        self.parts[v as usize] = part;
    }

    /// Accounts a weight drift of `v` in dimension `j`.
    pub fn apply_weight_change(&mut self, v: VertexId, j: usize, old: f64, new: f64) {
        let p = self.parts[v as usize];
        self.loads[p as usize * self.dims + j] += new - old;
        let stamp = self.bump_stamp(v, j);
        self.push_entry(p, j, HeapEntry { key: new, stamp, v });
    }

    /// Invalidates the live heap entry of `(v, j)` and returns the new
    /// stamp for its replacement.
    fn bump_stamp(&mut self, v: VertexId, j: usize) -> u64 {
        let slot = &mut self.stamps[v as usize * self.dims + j];
        *slot += 1;
        *slot
    }

    /// Pushes a fresh entry, compacting the heap first when its stale
    /// backlog has outgrown the live membership 4×. The check must live on
    /// the *push* side: queries only ever touch the currently-binding
    /// `(part, dim)` slots, so a long stream whose drift never crosses the
    /// trigger would otherwise leak stale entries in every other heap
    /// linearly with the update count. Compaction removes ≥ 3/4 of the
    /// entries it scans, each of which paid O(1) at its own push —
    /// amortized constant.
    fn push_entry(&mut self, p: u32, j: usize, entry: HeapEntry) {
        let slot = p as usize * self.dims + j;
        if self.heaps[slot].len() >= 4 * self.part_sizes[p as usize] + 64 {
            self.compact_heap(p, j);
        }
        self.heaps[slot].push(entry);
    }

    /// The up-to-`limit` heaviest vertices of part `p` in dimension `j` —
    /// the rebalance candidate queue, heaviest first. Pops lazily: stale
    /// entries are discarded, live ones are pushed back, so the amortized
    /// cost is O(limit · log n) plus the stale backlog (bounded by the 4×
    /// compaction rule). Returns fewer than `limit` when the part is small.
    pub fn top_movable(&mut self, p: u32, j: usize, limit: usize) -> Vec<VertexId> {
        let slot = p as usize * self.dims + j;
        if self.heaps[slot].len() > 4 * self.part_sizes[p as usize] + 64 {
            self.compact_heap(p, j);
        }
        let mut live = Vec::with_capacity(limit.min(self.part_sizes[p as usize]));
        let mut out = Vec::with_capacity(limit);
        while out.len() < limit {
            let Some(entry) = self.heaps[slot].pop() else {
                break;
            };
            if self.parts[entry.v as usize] == p
                && self.stamps[entry.v as usize * self.dims + j] == entry.stamp
            {
                out.push(entry.v);
                live.push(entry);
            }
        }
        for entry in live {
            self.heaps[slot].push(entry);
        }
        out
    }

    /// Raw entry count of heap `(p, j)`, stale entries included (tests the
    /// push-side compaction bound).
    #[cfg(test)]
    fn heap_len(&self, p: u32, j: usize) -> usize {
        self.heaps[p as usize * self.dims + j].len()
    }

    /// Drops every stale entry of heap `(p, j)` in one O(len) pass.
    fn compact_heap(&mut self, p: u32, j: usize) {
        let slot = p as usize * self.dims + j;
        let heap = std::mem::take(&mut self.heaps[slot]);
        self.heaps[slot] = heap
            .into_iter()
            .filter(|e| {
                self.parts[e.v as usize] == p
                    && self.stamps[e.v as usize * self.dims + j] == e.stamp
            })
            .collect();
    }

    /// Accounts a new edge for the locality counters.
    pub fn on_edge_added(&mut self, u: VertexId, v: VertexId) {
        if self.parts[u as usize] == self.parts[v as usize] {
            self.intra_edges += 1;
        } else {
            self.cut_edges += 1;
        }
    }

    /// Recomputes the locality counters from an edge iterator (used after
    /// a refinement pass moved vertices).
    pub fn rebuild_edge_stats(&mut self, edges: impl Iterator<Item = (VertexId, VertexId)>) {
        self.intra_edges = 0;
        self.cut_edges = 0;
        for (u, v) in edges {
            self.on_edge_added(u, v);
        }
    }

    /// Overwrites the locality counters with externally computed totals —
    /// the engine recounts them in parallel over CSR row ranges after a
    /// refinement pass, where the serial O(m) sweep was the last
    /// single-threaded stretch of the refinement path.
    pub fn set_edge_stats(&mut self, intra_edges: usize, cut_edges: usize) {
        self.intra_edges = intra_edges;
        self.cut_edges = cut_edges;
    }

    /// Fraction of edges with both endpoints in one shard (1.0 when there
    /// are no edges, matching [`Partition::edge_locality`]).
    pub fn edge_locality(&self) -> f64 {
        let m = self.intra_edges + self.cut_edges;
        if m == 0 {
            1.0
        } else {
            self.intra_edges as f64 / m as f64
        }
    }

    /// Cut edges seen by the incremental counters.
    #[inline]
    pub fn cut_edges(&self) -> usize {
        self.cut_edges
    }

    /// `max_j max_p w^{(j)}(V_p) / (w^{(j)}(V)/k) − 1`, the metric the
    /// ε-guarantee is stated in. O(k·d).
    pub fn max_imbalance(&self, weights: &VertexWeights) -> f64 {
        let mut worst: f64 = 0.0;
        for j in 0..self.dims {
            let avg = weights.total(j) / self.k as f64;
            if avg <= 0.0 {
                continue;
            }
            for p in 0..self.k {
                worst = worst.max(self.loads[p * self.dims + j] / avg - 1.0);
            }
        }
        worst
    }

    /// Per-dimension normalized headroom `(cap_j − load_pj) / cap_j` of the
    /// least-loaded part — how close the stream is to violating ε
    /// (drift telemetry; negative means some part is over budget).
    pub fn min_headroom(&self, weights: &VertexWeights, epsilon: f64) -> f64 {
        let mut min_head = f64::INFINITY;
        for j in 0..self.dims {
            let cap = (1.0 + epsilon) * weights.total(j) / self.k as f64;
            if cap <= 0.0 {
                continue;
            }
            for p in 0..self.k {
                min_head = min_head.min((cap - self.loads[p * self.dims + j]) / cap);
            }
        }
        min_head
    }

    /// Snapshot as a [`Partition`] (O(n); used at refinement boundaries).
    pub fn to_partition(&self) -> Partition {
        Partition::new(self.parts.clone(), self.k)
    }

    /// Recomputes loads — and the rebalance heaps — from scratch
    /// (float-drift hygiene after long runs).
    pub fn rebuild_loads(&mut self, weights: &VertexWeights) {
        assert_eq!(weights.num_vertices(), self.parts.len());
        self.loads.iter_mut().for_each(|l| *l = 0.0);
        self.part_sizes.iter_mut().for_each(|s| *s = 0);
        self.stamps.iter_mut().for_each(|s| *s = 0);
        self.heaps.iter_mut().for_each(BinaryHeap::clear);
        for (v, &p) in self.parts.iter().enumerate() {
            self.part_sizes[p as usize] += 1;
            for j in 0..self.dims {
                let w = weights.weight(j, v as VertexId);
                self.loads[p as usize * self.dims + j] += w;
                self.heaps[p as usize * self.dims + j].push(HeapEntry {
                    key: w,
                    stamp: 0,
                    v: v as VertexId,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::builder::graph_from_edges;

    fn store() -> (PartitionStore, VertexWeights) {
        let g = graph_from_edges(4, &[(0, 1), (2, 3), (1, 2)]);
        let w = VertexWeights::vertex_edge(&g);
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        let mut s = PartitionStore::new(&p, &w);
        s.rebuild_edge_stats(g.edges());
        (s, w)
    }

    #[test]
    fn lookups_and_loads() {
        let (s, _) = store();
        assert_eq!(s.shard_of(0), 0);
        assert_eq!(s.shard_of(3), 1);
        assert_eq!(s.load(0, 0), 2.0);
        assert_eq!(s.load(1, 0), 2.0);
        assert_eq!(s.edge_locality(), 2.0 / 3.0);
        assert_eq!(s.cut_edges(), 1);
    }

    #[test]
    fn push_and_move_update_loads() {
        let (mut s, mut w) = store();
        w.push_vertex(&[1.0, 1.0]);
        s.push_assignment(1, &[1.0, 1.0]);
        assert_eq!(s.shard_of(4), 1);
        assert_eq!(s.load(1, 0), 3.0);
        s.move_vertex(4, 0, &[1.0, 1.0]);
        assert_eq!(s.load(0, 0), 3.0);
        assert_eq!(s.load(1, 0), 2.0);
        s.move_vertex(4, 0, &[1.0, 1.0]); // no-op
        assert_eq!(s.load(0, 0), 3.0);
    }

    #[test]
    fn imbalance_and_headroom() {
        let (mut s, w) = store();
        assert_eq!(s.max_imbalance(&w), 0.0);
        // Overload part 0: unit dimension hits 3/2 (imbalance 0.5), degree
        // dimension hits 5/3 (imbalance 2/3, the max).
        s.move_vertex(2, 0, &[1.0, 2.0]);
        assert!(
            (s.max_imbalance(&w) - 2.0 / 3.0).abs() < 1e-12,
            "{}",
            s.max_imbalance(&w)
        );
        assert!(
            s.min_headroom(&w, 0.05) < 0.0,
            "part over cap must go negative"
        );
    }

    #[test]
    fn weight_drift_accounted() {
        let (mut s, mut w) = store();
        let old = w.weight(1, 0);
        w.set_weight(1, 0, old + 4.0);
        s.apply_weight_change(0, 1, old, old + 4.0);
        assert_eq!(s.load(0, 1), 3.0 + 4.0);
    }

    #[test]
    fn partition_snapshot_round_trips() {
        let (s, _) = store();
        let p = s.to_partition();
        assert_eq!(p.as_slice(), s.as_slice());
        assert_eq!(p.num_parts(), 2);
    }

    #[test]
    fn heaps_stay_bounded_without_queries() {
        // A serving-scale stream may drift for hours without the rebalance
        // ever querying most (part, dim) slots; the push-side compaction
        // must keep every heap O(part size) regardless.
        let w = VertexWeights::unit(16);
        let p = Partition::new((0..16).map(|v| (v % 2) as u32).collect(), 2);
        let mut s = PartitionStore::new(&p, &w);
        let mut w = w;
        for round in 0..5_000 {
            let v = (round % 16) as u32;
            let old = w.weight(0, v);
            let new = 1.0 + (round % 9) as f64;
            w.set_weight(0, v, new);
            s.apply_weight_change(v, 0, old, new);
        }
        for part in 0..2u32 {
            assert!(
                s.heap_len(part, 0) < 4 * s.part_size(part) + 64 + 1,
                "heap leaked: {} entries for {} members",
                s.heap_len(part, 0),
                s.part_size(part)
            );
        }
        // And the live view is still correct.
        let top = s.top_movable(0, 0, 1);
        let brute = brute_force_top(&s, &w, 0, 0);
        assert_eq!(w.weight(0, top[0]), w.weight(0, brute[0]));
    }

    #[test]
    fn top_movable_returns_heaviest_first() {
        let w = VertexWeights::from_vectors(vec![vec![1.0, 4.0, 2.0, 3.0], vec![9.0; 4]]);
        let p = Partition::new(vec![0, 0, 0, 1], 2);
        let mut s = PartitionStore::new(&p, &w);
        assert_eq!(s.top_movable(0, 0, 2), vec![1, 2]);
        assert_eq!(
            s.top_movable(0, 0, 10),
            vec![1, 2, 0],
            "limit caps at membership"
        );
        assert_eq!(s.top_movable(1, 0, 10), vec![3]);
        // Repeat pops see the same live entries (pushed back).
        assert_eq!(s.top_movable(0, 0, 1), vec![1]);
    }

    /// Oracle: heaviest-first members of `p` in dimension `j` by rescoring
    /// every vertex.
    fn brute_force_top(s: &PartitionStore, w: &VertexWeights, p: u32, j: usize) -> Vec<u32> {
        let mut members: Vec<u32> = (0..s.num_vertices() as u32)
            .filter(|&v| s.shard_of(v) == p)
            .collect();
        members.sort_by(|&a, &b| {
            w.weight(j, b)
                .total_cmp(&w.weight(j, a))
                .then_with(|| b.cmp(&a))
        });
        members
    }

    #[test]
    fn rebalance_heap_matches_brute_force_after_random_drift() {
        // Stamp-invalidated heaps must agree with a full rescore no matter
        // how moves / drifts / arrivals interleave.
        let mut rng_state = 0x9E37u64;
        let mut rng = move || {
            rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng_state >> 33) as usize
        };
        let n0 = 40;
        let dims = 2;
        let k = 3;
        let mut w = VertexWeights::from_vectors(vec![
            (0..n0).map(|v| 1.0 + (v % 7) as f64).collect(),
            (0..n0).map(|v| 1.0 + (v % 5) as f64).collect(),
        ]);
        let labels: Vec<u32> = (0..n0).map(|v| (v % k) as u32).collect();
        let mut s = PartitionStore::new(&Partition::new(labels, k), &w);
        for step in 0..300 {
            match rng() % 3 {
                0 => {
                    // Weight drift.
                    let v = (rng() % s.num_vertices()) as u32;
                    let j = rng() % dims;
                    let old = w.weight(j, v);
                    let new = 0.5 + (rng() % 100) as f64 / 10.0;
                    w.set_weight(j, v, new);
                    s.apply_weight_change(v, j, old, new);
                }
                1 => {
                    // Move between parts.
                    let v = (rng() % s.num_vertices()) as u32;
                    let dst = (rng() % k) as u32;
                    let row: Vec<f64> = (0..dims).map(|j| w.weight(j, v)).collect();
                    s.move_vertex(v, dst, &row);
                }
                _ => {
                    // Arrival.
                    let row = vec![1.0 + (rng() % 40) as f64 / 7.0, 1.0 + (rng() % 9) as f64];
                    w.push_vertex(&row);
                    s.push_assignment((rng() % k) as u32, &row);
                }
            }
            if step % 10 == 0 {
                for p in 0..k as u32 {
                    for j in 0..dims {
                        let expect = brute_force_top(&s, &w, p, j);
                        let got = s.top_movable(p, j, expect.len() + 3);
                        // Keys must match position-wise (ids may differ only
                        // on exactly-equal keys; the tie-break makes even
                        // that deterministic, so compare keys).
                        assert_eq!(got.len(), expect.len(), "step {step} part {p} dim {j}");
                        for (a, b) in got.iter().zip(&expect) {
                            assert_eq!(
                                w.weight(j, *a),
                                w.weight(j, *b),
                                "step {step} part {p} dim {j}: heap {got:?} vs brute {expect:?}"
                            );
                        }
                    }
                }
            }
        }
        // After heavy churn a full rebuild must be a behavioural no-op.
        let before: Vec<Vec<u32>> = (0..k as u32).map(|p| s.top_movable(p, 0, 5)).collect();
        s.rebuild_loads(&w);
        let after: Vec<Vec<u32>> = (0..k as u32).map(|p| s.top_movable(p, 0, 5)).collect();
        assert_eq!(before, after);
    }
}
