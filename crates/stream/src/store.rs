//! [`PartitionStore`]: the serving-side view of the evolving partition.
//!
//! A router in front of a sharded graph store needs exactly three things
//! from the partitioner: O(1) `vertex → shard` lookups, cheap imbalance /
//! locality telemetry to alarm on, and a stable snapshot to hand to the
//! refinement pass. The store keeps per-part per-dimension loads, live
//! per-dimension weight totals, and incremental intra/cut edge counters so
//! every query is O(1) or O(d·k) — nothing on the serving path ever
//! touches the graph itself.
//!
//! Under churn the store is the authority on *live* weight: a released
//! vertex ([`PartitionStore::release_vertex`]) leaves the loads **and**
//! the totals immediately, even though its weight row lingers in the
//! graph's [`mdbgp_graph::VertexWeights`] until the next purge — so the
//! imbalance/headroom telemetry and the placement capacities never count
//! weight that already left the system.
//!
//! ## Batch ingestion: snapshot → reserve → commit
//!
//! The staged ingest pipeline ([`crate::StreamingPartitioner`]) never
//! places arrivals against live, mutating loads. It takes a frozen
//! [`LoadSnapshot`] ([`PartitionStore::load_snapshot`]), scores
//! speculative placements against `snapshot + reservations` on worker
//! threads, repairs capacity conflicts, and only then commits the final
//! assignments — [`PartitionStore::push_assignment`] for a fresh id,
//! [`PartitionStore::assign_slot`] for a recycled one, and
//! [`PartitionStore::push_tombstone`] for an arrival that was removed
//! again inside its own batch (the slot must still exist so store ids stay
//! aligned with graph ids). The snapshot is plain owned data, which also
//! makes it the natural serialization unit for a future snapshot/restore.
//!
//! ## Rebalance heaps
//!
//! The store additionally maintains one lazy max-heap per `(part,
//! dimension)` pair, keyed by the **composite relief score** of the vertex
//! ([`PartitionStore::relief_key`]): its normalized weight in that
//! dimension minus the mean normalized weight across the other dimensions.
//! A move out of the part relieves the binding dimension most — and
//! disturbs the others least — when that score is large, so the top of
//! heap `(p, j)` is the best candidate queue for a rebalance step whose
//! binding dimension is `j` (a plain per-dimension weight key ranks heavy
//! all-around vertices first, which overshoot in the off-dimensions and
//! force full-membership rescans). Normalization uses the live totals at
//! push time; totals drift slowly between pushes, and candidate order is a
//! heuristic — the rebalance evaluates every candidate against the exact
//! potential before moving. The greedy rebalance pass pops the top few
//! candidates of the overloaded part's binding dimension instead of
//! rescanning every member, making candidate generation O(log n) per move
//! at serving scale. Entries are invalidated by a per-`(vertex, dimension)`
//! stamp — every move or weight drift bumps the stamp and pushes a fresh
//! entry, and stale entries are discarded when popped (with an occasional
//! compaction when a heap outgrows its live membership 4×, and an
//! immediate one when releases drain a part to zero live members — a
//! drained part sees no further pushes, so the ratio trigger alone would
//! leak its stale entries until process end), so maintenance stays
//! amortized O(d·log n) per mutation.
//!
//! ## Read path: epoch-stamped published views
//!
//! Everything above is the **write side** — engine-private mutable state.
//! Concurrent serving never touches it. At every batch boundary the engine
//! publishes an immutable [`ReadView`] — the frozen assignment vector, the
//! [`LoadSnapshot`] and the purge remap composed since the previous view —
//! stamped with a [`ViewEpoch`] `(id_epoch, batch_seq)`. [`ReadHandle`]s
//! (from [`PartitionStore::reader`]) pin the latest view with one relaxed
//! atomic probe and serve lock-free lookups from the pinned allocation, so
//! a reader fleet runs at full speed while the engine commits and refines.
//! Purge remaps are only ever observed at a pin switch (*swap-on-remap*):
//! a pinned view is internally consistent by construction, and the remap
//! it carries tells the reader how to translate ids it held against the
//! previous epoch. See the "Read path & epoch publication" section of
//! `docs/ARCHITECTURE.md` for the full lifecycle.

use crate::TOMBSTONE;
use mdbgp_core::parallel::{even_boundaries, for_each_chunk_mut, prefix_boundaries};
use mdbgp_graph::{Partition, VertexId, VertexWeights};
use mdbgp_obs::{Histogram, SharedHistogram};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One candidate in a per-`(part, dimension)` rebalance heap: vertex `v`
/// had weight `key` in that dimension at stamp `stamp`. Stale entries
/// (stamp mismatch, or `v` no longer in the part) are skipped on pop.
#[derive(Clone, Copy, Debug)]
struct HeapEntry {
    key: f64,
    stamp: u64,
    v: VertexId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Weights are validated positive finite upstream; total_cmp keeps
        // the order total regardless. Ties break on vertex id for
        // determinism.
        self.key
            .total_cmp(&other.key)
            .then_with(|| self.v.cmp(&other.v))
    }
}

/// Staging buffer for a parallel commit: the accounting half of
/// [`PartitionStore::push_assignment_collect`] /
/// [`PartitionStore::assign_slot_collect`] runs serially (float loads and
/// totals are order-sensitive), while the O(log n) rebalance-heap pushes
/// land here — bucketed per `(part, dimension)` slot in call order — and
/// are applied concurrently over disjoint slot ranges by
/// [`PartitionStore::apply_heap_entries`]. Obtain one from
/// [`PartitionStore::heap_sink`].
pub struct HeapSink {
    buckets: Vec<Vec<HeapEntry>>,
}

/// A frozen copy of the per-`(part, dimension)` loads and the live
/// per-dimension totals — what the speculative placement stage scores
/// against while the real store stays untouched until commit, and the
/// accounting half of every published [`ReadView`].
///
/// `Arc`-backed: cloning shares one immutable allocation, so handing the
/// snapshot to placement workers (or embedding it in a view) is O(1). The
/// store caches the allocation and only rebuilds it after a load/total
/// mutation — consecutive pure-topology batches reuse the exact snapshot
/// the last view published ([`PartitionStore::snapshot_rebuild_count`]
/// regression-tests this).
#[derive(Clone, Debug, PartialEq)]
pub struct LoadSnapshot {
    inner: Arc<SnapshotInner>,
}

#[derive(Debug, PartialEq)]
struct SnapshotInner {
    k: usize,
    dims: usize,
    loads: Vec<f64>,
    totals: Vec<f64>,
}

impl LoadSnapshot {
    /// Number of parts.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.inner.k
    }

    /// Number of weight dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.inner.dims
    }

    /// Frozen load of part `p` in dimension `j`.
    #[inline]
    pub fn load(&self, p: u32, j: usize) -> f64 {
        self.inner.loads[p as usize * self.inner.dims + j]
    }

    /// Frozen live total of dimension `j`.
    #[inline]
    pub fn total(&self, j: usize) -> f64 {
        self.inner.totals[j]
    }

    /// True when both snapshots share one underlying allocation — i.e. no
    /// rebuild happened between taking them (the hook the reuse-on-publish
    /// regression test asserts on).
    #[inline]
    pub fn shares_storage(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

// ---------------------------------------------------------------------------
// Published read views
// ---------------------------------------------------------------------------

/// Version stamp of a published [`ReadView`]: which purge generation its
/// vertex ids belong to, and how many batches the engine had ingested when
/// it was published. Ordered lexicographically — `(id_epoch, batch_seq)`
/// both only ever grow.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct ViewEpoch {
    /// Purge generation of the id space the view's slots are indexed in
    /// (mirrors [`crate::StreamingPartitioner::id_epoch`]).
    pub id_epoch: u64,
    /// Batches the engine had ingested when the view was published.
    pub batch_seq: u64,
}

/// One immutable published state of the partition: the vertex→part
/// assignment, the frozen [`LoadSnapshot`], and — when a purge happened
/// since the previous view — the composed old→new id remap. Readers get
/// views through a [`ReadHandle`]; the engine publishes one per batch at
/// the end of commit/refine.
///
/// A view is never mutated after publication (all fields are private and
/// behind an `Arc`), so any number of threads can read it without
/// synchronization; `verify_checksum` lets a paranoid reader prove that
/// empirically.
#[derive(Debug)]
pub struct ReadView {
    epoch: ViewEpoch,
    /// Assignment at publication; [`TOMBSTONE`] marks a released slot.
    parts: Vec<u32>,
    snapshot: LoadSnapshot,
    /// Old→new id map from the *previous published view's* id space into
    /// this one — present iff a purge happened between the two views, and
    /// composed across purges if several did. [`TOMBSTONE`] = dropped.
    remap: Option<Arc<Vec<u32>>>,
    /// FNV-1a over the epoch and the assignment vector, fixed at publish.
    checksum: u64,
}

impl ReadView {
    /// The `(id_epoch, batch_seq)` stamp of this view.
    #[inline]
    pub fn epoch(&self) -> ViewEpoch {
        self.epoch
    }

    /// Number of parts.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.snapshot.num_parts()
    }

    /// Size of the view's vertex-id space (tombstoned slots included).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.parts.len()
    }

    /// Shard of `v` in this view, or `None` when `v` is outside the
    /// view's id space or tombstoned — the forgiving accessor for readers
    /// holding ids that may predate the view.
    #[inline]
    pub fn get(&self, v: VertexId) -> Option<u32> {
        match self.parts.get(v as usize) {
            Some(&p) if p != TOMBSTONE => Some(p),
            _ => None,
        }
    }

    /// O(1) shard lookup, [`TOMBSTONE`] for a released slot. Panics when
    /// `v` is outside the view's id space (use [`Self::get`] across
    /// epochs).
    #[inline]
    pub fn shard_of(&self, v: VertexId) -> u32 {
        self.parts[v as usize]
    }

    /// Raw assignment slice of the view.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.parts
    }

    /// The frozen load/total accounting published with the view.
    #[inline]
    pub fn load_snapshot(&self) -> &LoadSnapshot {
        &self.snapshot
    }

    /// Old→new remap from the previous published view's id space, present
    /// iff that view's `id_epoch` differs from this one.
    #[inline]
    pub fn remap(&self) -> Option<&[u32]> {
        self.remap.as_deref().map(Vec::as_slice)
    }

    /// Recomputes the publish-time checksum; `false` would mean the
    /// immutable view was somehow observed torn or corrupted. The stress
    /// tests call this on every pin and assert it never fails.
    pub fn verify_checksum(&self) -> bool {
        view_checksum(self.epoch, &self.parts) == self.checksum
    }

    /// The publish-time FNV-1a checksum over the epoch stamp and the
    /// assignment vector. Two engines that published bitwise-identical
    /// assignments at the same [`ViewEpoch`] report the same value — the
    /// comparison a replication follower makes against the leader's
    /// per-batch stamp stream to detect divergence.
    #[inline]
    pub fn checksum(&self) -> u64 {
        self.checksum
    }
}

/// FNV-1a over the epoch stamp and the assignment vector.
fn view_checksum(epoch: ViewEpoch, parts: &[u32]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |word: u64| {
        for b in word.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(epoch.id_epoch);
    mix(epoch.batch_seq);
    mix(parts.len() as u64);
    for &p in parts {
        mix(p as u64);
    }
    h
}

/// The publication slot shared between the write side and every
/// [`ReadHandle`], plus the serving-path counters (atomics, so reader
/// threads record without the engine's involvement; the engine mirrors
/// them into its metrics registry at sync points).
///
/// The std-only stand-in for an `Arc`-swap: the current view lives behind
/// a mutex, but the mutex is only taken to *re-pin* after the atomic
/// `seq` probe says a new view was published — once per publish per
/// reader, never per lookup. Lookups themselves are lock-free reads of
/// the pinned immutable view.
#[derive(Debug)]
struct ViewShared {
    /// Publish sequence. Bumped under the `current` lock, read with a
    /// relaxed probe by readers deciding whether to re-pin.
    seq: AtomicU64,
    current: Mutex<Arc<ReadView>>,
    /// Views published after construction (`stream.store.view_swaps`).
    swaps: AtomicU64,
    /// Lookups served — handle lookups and the engine's counted serving
    /// path combined (`stream.store.lookups`).
    lookups: AtomicU64,
    /// Handle lookups served from a view whose `id_epoch` the reader had
    /// not adopted yet (`stream.store.stale_epoch_reads`): the caller was
    /// using ids from a pre-purge epoch. Zero in a correct reader loop.
    stale_epoch_reads: AtomicU64,
    /// Per-lookup latency in microseconds (`stream.store.lookup_us`).
    lookup_us: SharedHistogram,
}

impl ViewShared {
    fn new(initial: Arc<ReadView>) -> Arc<Self> {
        Arc::new(Self {
            seq: AtomicU64::new(0),
            current: Mutex::new(initial),
            swaps: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            stale_epoch_reads: AtomicU64::new(0),
            lookup_us: SharedHistogram::new(),
        })
    }

    fn current(&self) -> Arc<ReadView> {
        // Invariant: the publication lock only ever guards an Arc clone /
        // swap and a seq bump — none of which can panic — so the mutex
        // cannot be poisoned; the expect documents that, not an I/O path.
        Arc::clone(&self.current.lock().expect("view slot poisoned"))
    }
}

/// A reader's pin on the published view sequence. Obtained from
/// [`PartitionStore::reader`]; independent of the store's lifetime (the
/// handle owns `Arc`s), so serving threads keep answering while the engine
/// mutates — or even after it dropped.
///
/// The intended reader loop:
///
/// 1. [`Self::refresh`] — one relaxed atomic probe; re-pins only when a
///    new view was published since the last refresh.
/// 2. If [`Self::needs_adoption`], the pinned view crossed a purge: the
///    ids the reader holds belong to a previous epoch. Translate them
///    (via [`ReadView::remap`], or by re-resolving from the new view) and
///    call [`Self::adopt`].
/// 3. [`Self::lookup`] — lock-free lookups against the pinned view.
///
/// Lookups against a non-adopted epoch still answer (from the pinned
/// view) but tick the `stale_epoch_reads` counter — the observable signal
/// that a reader skipped step 2.
#[derive(Debug)]
pub struct ReadHandle {
    shared: Arc<ViewShared>,
    pinned: Arc<ReadView>,
    pinned_seq: u64,
    adopted_epoch: u64,
}

impl ReadHandle {
    /// Re-pins to the latest published view if one was published since
    /// the last refresh. Returns `true` when the pin moved. O(1); takes
    /// the publication lock only when the atomic probe saw a new seq.
    pub fn refresh(&mut self) -> bool {
        if self.shared.seq.load(Ordering::Acquire) == self.pinned_seq {
            return false;
        }
        // Poisoning unreachable: see `ViewShared::current` for the proof.
        let slot = self.shared.current.lock().expect("view slot poisoned");
        self.pinned = Arc::clone(&slot);
        // Re-read under the lock: seq and slot move together there.
        self.pinned_seq = self.shared.seq.load(Ordering::Acquire);
        true
    }

    /// The currently pinned view (no refresh — stable until the next
    /// [`Self::refresh`], however many publishes happen meanwhile).
    #[inline]
    pub fn view(&self) -> &Arc<ReadView> {
        &self.pinned
    }

    /// Refresh, then return the pinned view.
    pub fn pin(&mut self) -> &Arc<ReadView> {
        self.refresh();
        &self.pinned
    }

    /// True when the pinned view's id epoch differs from the one the
    /// reader last [`Self::adopt`]ed — i.e. a purge remap lies between
    /// the reader's ids and the view.
    #[inline]
    pub fn needs_adoption(&self) -> bool {
        self.pinned.epoch.id_epoch != self.adopted_epoch
    }

    /// Declares that the reader translated its held ids into the pinned
    /// view's epoch (after applying [`ReadView::remap`] or re-resolving).
    #[inline]
    pub fn adopt(&mut self) {
        self.adopted_epoch = self.pinned.epoch.id_epoch;
    }

    /// Serves `vertex → part` from the pinned view: lock-free, counted,
    /// and latency-sampled into the `stream.store.lookup_us` histogram.
    /// `None` for tombstoned or out-of-range ids. Ticks
    /// `stale_epoch_reads` when the reader hasn't adopted the pinned
    /// epoch (its ids may be pre-purge).
    pub fn lookup(&self, v: VertexId) -> Option<u32> {
        let start = Instant::now();
        let out = self.pinned.get(v);
        if self.needs_adoption() {
            self.shared
                .stale_epoch_reads
                .fetch_add(1, Ordering::Relaxed);
        }
        self.shared.lookups.fetch_add(1, Ordering::Relaxed);
        self.shared
            .lookup_us
            .observe(start.elapsed().as_micros() as u64);
        out
    }
}

/// Vertex→shard map plus live load / locality accounting.
#[derive(Debug)]
pub struct PartitionStore {
    /// Part of each vertex; [`TOMBSTONE`] marks a released vertex.
    parts: Vec<u32>,
    k: usize,
    dims: usize,
    /// `loads[p * dims + j] = w^{(j)}(V_p)` over currently assigned vertices.
    loads: Vec<f64>,
    /// `totals[j]` = live total weight in dimension `j` (assigned vertices
    /// only — released weight leaves immediately).
    totals: Vec<f64>,
    /// Vertices currently assigned to each part (drives heap compaction).
    part_sizes: Vec<usize>,
    /// `stamps[v * dims + j]`: version of the live heap entry of `(v, j)`.
    stamps: Vec<u64>,
    /// `heaps[p * dims + j]`: max-heap of part `p`'s members keyed by
    /// weight in dimension `j` (plus stale entries awaiting lazy removal).
    heaps: Vec<BinaryHeap<HeapEntry>>,
    intra_edges: usize,
    cut_edges: usize,
    /// Publication slot + serving counters, shared with every
    /// [`ReadHandle`] this store handed out. Not part of snapshots.
    views: Arc<ViewShared>,
    /// Cached [`LoadSnapshot`] allocation; `None` after any load/total
    /// mutation, refilled (and counted) by [`Self::load_snapshot`].
    snapshot_cache: Option<LoadSnapshot>,
    /// Times [`Self::load_snapshot`] had to rebuild the allocation (the
    /// reuse-on-publish regression hook). Not part of snapshots.
    snapshot_rebuilds: u64,
    /// Entries popped off the rebalance heaps by [`Self::top_movable`]
    /// (stale pops included). Not part of snapshots.
    heap_pops: u64,
    /// Worker count for the parallel remap scatter, heap rebuild and
    /// commit-sink apply. Not part of snapshots; never influences results
    /// — parallel passes here are pure data movement (or per-slot heap
    /// pushes replayed in the serial order) into disjoint ranges.
    threads: usize,
}

// Manual impl: the view cell is not `Clone` — and must not be shared: one
// writer per publication slot, so a cloned store gets a *fresh* cell
// seeded with the original's current view and counter values (the latter
// so observability mirrors stay monotone across engine clones).
impl Clone for PartitionStore {
    fn clone(&self) -> Self {
        let views = ViewShared::new(self.views.current());
        views
            .swaps
            .store(self.views.swaps.load(Ordering::Relaxed), Ordering::Relaxed);
        views.lookups.store(
            self.views.lookups.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        views.stale_epoch_reads.store(
            self.views.stale_epoch_reads.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        Self {
            parts: self.parts.clone(),
            k: self.k,
            dims: self.dims,
            loads: self.loads.clone(),
            totals: self.totals.clone(),
            part_sizes: self.part_sizes.clone(),
            stamps: self.stamps.clone(),
            heaps: self.heaps.clone(),
            intra_edges: self.intra_edges,
            cut_edges: self.cut_edges,
            views,
            snapshot_cache: self.snapshot_cache.clone(),
            snapshot_rebuilds: self.snapshot_rebuilds,
            heap_pops: self.heap_pops,
            threads: self.threads,
        }
    }
}

impl PartitionStore {
    /// Builds the store from a partition and weights; edge counters start
    /// at zero — call [`Self::rebuild_edge_stats`] with the graph's edges.
    pub fn new(partition: &Partition, weights: &VertexWeights) -> Self {
        assert_eq!(partition.num_vertices(), weights.num_vertices());
        let k = partition.num_parts();
        let dims = weights.dims();
        let n = partition.num_vertices();
        let mut store = Self {
            parts: partition.as_slice().to_vec(),
            k,
            dims,
            loads: vec![0.0f64; k * dims],
            // Totals first: the composite heap keys normalize by them.
            totals: (0..dims).map(|j| weights.total(j)).collect(),
            part_sizes: vec![0usize; k],
            stamps: vec![0; n * dims],
            heaps: vec![BinaryHeap::new(); k * dims],
            intra_edges: 0,
            cut_edges: 0,
            views: ViewShared::new(Arc::new(ReadView {
                epoch: ViewEpoch::default(),
                parts: Vec::new(),
                snapshot: LoadSnapshot {
                    inner: Arc::new(SnapshotInner {
                        k,
                        dims,
                        loads: Vec::new(),
                        totals: Vec::new(),
                    }),
                },
                remap: None,
                checksum: view_checksum(ViewEpoch::default(), &[]),
            })),
            snapshot_cache: None,
            snapshot_rebuilds: 0,
            heap_pops: 0,
            threads: 1,
        };
        let mut row = vec![0.0f64; dims];
        for v in 0..n {
            let p = partition.part_of(v as VertexId) as usize;
            store.part_sizes[p] += 1;
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = weights.weight(j, v as VertexId);
                store.loads[p * dims + j] += *slot;
            }
            for j in 0..dims {
                let key = store.relief_key(j, &row);
                store.heaps[p * dims + j].push(HeapEntry {
                    key,
                    stamp: 0,
                    v: v as VertexId,
                });
            }
        }
        // Seed the publication slot with the bootstrap state so handles
        // taken before any ingest already see a real view. Construction is
        // not a swap: `view_swaps` counts publishes after this.
        store.install_view(ViewEpoch::default(), None, false);
        store
    }

    /// The composite relief score the rebalance heaps are keyed by: the
    /// vertex's weight in dimension `j` normalized by the live total of
    /// `j`, minus the mean normalized weight across the other dimensions.
    /// Moving a high-key vertex out of a part sheds a lot of the binding
    /// dimension `j` while disturbing the off-dimensions little — exactly
    /// the candidates a multi-constraint rebalance step wants first. With
    /// one dimension there is nothing to trade off and the key is the
    /// plain weight. Uses the *current* totals (push-time totals for heap
    /// entries); a drained dimension contributes 0.
    pub fn relief_key(&self, j: usize, row: &[f64]) -> f64 {
        if self.dims == 1 {
            return row[0];
        }
        let norm = |i: usize| {
            let t = self.totals[i];
            if t > 0.0 {
                row[i] / t
            } else {
                0.0
            }
        };
        let off: f64 = (0..self.dims).filter(|&i| i != j).map(norm).sum();
        norm(j) - off / (self.dims - 1) as f64
    }

    /// Sets the worker count for the parallel remap scatter, heap rebuild
    /// and commit-sink apply. Results are identical for every count —
    /// only wall-clock changes.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Number of parts `k`.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.k
    }

    /// Size of the vertex-id space (released vertices included — they keep
    /// their slot, mapped to [`TOMBSTONE`], until a remap drops them).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.parts.len()
    }

    /// Number of vertices currently assigned to a part.
    #[inline]
    pub fn num_assigned(&self) -> usize {
        self.part_sizes.iter().sum()
    }

    /// O(1) shard lookup — the serving hot path. Returns [`TOMBSTONE`] for
    /// a vertex released by [`Self::release_vertex`].
    #[inline]
    pub fn shard_of(&self, v: VertexId) -> u32 {
        self.parts[v as usize]
    }

    /// [`Self::shard_of`] plus a lookup-count tick — the serving wrapper the
    /// engine's public `shard_of` goes through, so the observability layer
    /// sees query volume without taxing internal placement/recount loops.
    /// Shares the counter with [`ReadHandle::lookup`]: `stream.store.
    /// lookups` is total serving volume regardless of the path.
    #[inline]
    pub fn shard_of_counted(&self, v: VertexId) -> u32 {
        self.views.lookups.fetch_add(1, Ordering::Relaxed);
        self.shard_of(v)
    }

    /// Lookups served through [`Self::shard_of_counted`] and
    /// [`ReadHandle::lookup`] combined.
    #[inline]
    pub fn lookup_count(&self) -> u64 {
        self.views.lookups.load(Ordering::Relaxed)
    }

    /// Views published (excluding the construction-time seed view).
    #[inline]
    pub fn view_swap_count(&self) -> u64 {
        self.views.swaps.load(Ordering::Relaxed)
    }

    /// Handle lookups served against a not-yet-adopted id epoch (see
    /// [`ReadHandle::adopt`]). Zero in a correct reader loop.
    #[inline]
    pub fn stale_epoch_read_count(&self) -> u64 {
        self.views.stale_epoch_reads.load(Ordering::Relaxed)
    }

    /// Point-in-time snapshot of the serving-path lookup latency
    /// histogram (microseconds), for mirroring into a metrics registry.
    pub fn lookup_latency(&self) -> Histogram {
        self.views.lookup_us.snapshot()
    }

    /// Heap entries popped by [`Self::top_movable`] since construction.
    #[inline]
    pub fn heap_pop_count(&self) -> u64 {
        self.heap_pops
    }

    /// Raw assignment slice ([`TOMBSTONE`] entries are released vertices).
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.parts
    }

    /// Load of part `p` in dimension `j`.
    #[inline]
    pub fn load(&self, p: u32, j: usize) -> f64 {
        self.loads[p as usize * self.dims + j]
    }

    /// Live total weight of dimension `j` across all parts — the
    /// denominator of every capacity/imbalance ratio. Tracks releases
    /// immediately, unlike the graph-side weight totals which only shrink
    /// at the next purge.
    #[inline]
    pub fn total(&self, j: usize) -> f64 {
        self.totals[j]
    }

    /// Number of vertices currently assigned to part `p`.
    #[inline]
    pub fn part_size(&self, p: u32) -> usize {
        self.part_sizes[p as usize]
    }

    /// A frozen view of the loads and live totals for the speculative
    /// placement stage: decisions are scored against `snapshot +
    /// reservations` while the store itself stays unmutated until the
    /// commit stage.
    ///
    /// O(1) when the accounting hasn't changed since the last call — the
    /// `Arc`-backed allocation is cached and shared (typically with the
    /// last published [`ReadView`], making this a cheap clone-on-publish);
    /// any load/total mutation invalidates the cache and the next call
    /// rebuilds ([`Self::snapshot_rebuild_count`]).
    pub fn load_snapshot(&mut self) -> LoadSnapshot {
        if let Some(snap) = &self.snapshot_cache {
            return snap.clone();
        }
        self.snapshot_rebuilds += 1;
        let snap = LoadSnapshot {
            inner: Arc::new(SnapshotInner {
                k: self.k,
                dims: self.dims,
                loads: self.loads.clone(),
                totals: self.totals.clone(),
            }),
        };
        self.snapshot_cache = Some(snap.clone());
        snap
    }

    /// Times [`Self::load_snapshot`] rebuilt its allocation instead of
    /// reusing the cached one.
    #[inline]
    pub fn snapshot_rebuild_count(&self) -> u64 {
        self.snapshot_rebuilds
    }

    /// Drops the cached [`LoadSnapshot`]; called by every load/total
    /// mutation so a stale allocation can never be served.
    #[inline]
    fn invalidate_snapshot(&mut self) {
        self.snapshot_cache = None;
    }

    /// Publishes the current assignment + accounting as an immutable
    /// [`ReadView`] stamped `(id_epoch, batch_seq)`, swapping it into the
    /// slot every [`ReadHandle`] probes. `remap` is the old→new id map
    /// composed since the previous publish (present iff a purge happened);
    /// readers only ever observe remaps through this swap. Returns the
    /// published view.
    pub(crate) fn publish_view(
        &mut self,
        epoch: ViewEpoch,
        remap: Option<Vec<u32>>,
    ) -> Arc<ReadView> {
        self.install_view(epoch, remap, true)
    }

    fn install_view(
        &mut self,
        epoch: ViewEpoch,
        remap: Option<Vec<u32>>,
        count_swap: bool,
    ) -> Arc<ReadView> {
        let snapshot = self.load_snapshot();
        let parts = self.parts.clone();
        let checksum = view_checksum(epoch, &parts);
        let view = Arc::new(ReadView {
            epoch,
            parts,
            snapshot,
            remap: remap.map(Arc::new),
            checksum,
        });
        {
            // Swap + seq bump under the lock so a re-pinning reader can
            // never pair the new seq with the old view (or vice versa).
            // Poisoning unreachable: see `ViewShared::current` for the proof.
            let mut slot = self.views.current.lock().expect("view slot poisoned");
            *slot = Arc::clone(&view);
            self.views.seq.fetch_add(1, Ordering::Release);
        }
        if count_swap {
            self.views.swaps.fetch_add(1, Ordering::Relaxed);
        }
        view
    }

    /// The latest published [`ReadView`].
    pub fn read_view(&self) -> Arc<ReadView> {
        self.views.current()
    }

    /// A new [`ReadHandle`] pinned to the latest published view, with
    /// that view's id epoch already adopted. Handles are independent of
    /// the store's lifetime and cheap to create (two `Arc` clones).
    pub fn reader(&self) -> ReadHandle {
        let pinned = self.views.current();
        let pinned_seq = self.views.seq.load(Ordering::Acquire);
        let adopted_epoch = pinned.epoch.id_epoch;
        ReadHandle {
            shared: Arc::clone(&self.views),
            pinned,
            pinned_seq,
            adopted_epoch,
        }
    }

    /// Appends a newly placed vertex.
    pub fn push_assignment(&mut self, part: u32, weight_row: &[f64]) {
        debug_assert!((part as usize) < self.k);
        debug_assert_eq!(weight_row.len(), self.dims);
        self.invalidate_snapshot();
        let v = self.parts.len() as VertexId;
        self.parts.push(part);
        self.part_sizes[part as usize] += 1;
        for (j, &w) in weight_row.iter().enumerate() {
            self.loads[part as usize * self.dims + j] += w;
            self.totals[j] += w;
            self.stamps.push(0);
        }
        for j in 0..self.dims {
            let key = self.relief_key(j, weight_row);
            self.heaps[part as usize * self.dims + j].push(HeapEntry { key, stamp: 0, v });
        }
    }

    /// Appends a slot that is already dead: an arrival that was removed
    /// again inside its own batch never gets an assignment, but its vertex
    /// id exists in the graph's id space until the next purge, so the
    /// store must keep the id→slot alignment. The slot reads
    /// [`TOMBSTONE`] and is dropped by the purge remap like any released
    /// vertex.
    pub fn push_tombstone(&mut self) {
        self.parts.push(TOMBSTONE);
        for _ in 0..self.dims {
            self.stamps.push(0);
        }
    }

    /// Re-activates the slot of a recycled vertex id: the commit stage's
    /// counterpart of [`Self::push_assignment`] for an arrival whose id
    /// came off the [`crate::DynamicGraph`] free list instead of extending
    /// the id space.
    ///
    /// # Panics
    /// Panics (in debug builds) if the slot is not currently released.
    pub fn assign_slot(&mut self, v: VertexId, part: u32, weight_row: &[f64]) {
        debug_assert!((part as usize) < self.k);
        debug_assert_eq!(weight_row.len(), self.dims);
        debug_assert_eq!(
            self.parts[v as usize], TOMBSTONE,
            "assign_slot target {v} is still assigned"
        );
        self.invalidate_snapshot();
        self.parts[v as usize] = part;
        self.part_sizes[part as usize] += 1;
        for (j, &w) in weight_row.iter().enumerate() {
            self.loads[part as usize * self.dims + j] += w;
            self.totals[j] += w;
        }
        for j in 0..self.dims {
            let stamp = self.bump_stamp(v, j);
            let entry = HeapEntry {
                key: self.relief_key(j, weight_row),
                stamp,
                v,
            };
            self.push_entry(part, j, entry);
        }
    }

    /// An empty [`HeapSink`] shaped for this store's `(part, dimension)`
    /// slots.
    pub fn heap_sink(&self) -> HeapSink {
        HeapSink {
            buckets: vec![Vec::new(); self.k * self.dims],
        }
    }

    /// [`Self::push_assignment`] with the heap pushes staged into `sink`
    /// instead of applied inline — the serial accounting half of a
    /// parallel commit (see [`Self::apply_heap_entries`]).
    pub fn push_assignment_collect(&mut self, part: u32, weight_row: &[f64], sink: &mut HeapSink) {
        debug_assert!((part as usize) < self.k);
        debug_assert_eq!(weight_row.len(), self.dims);
        self.invalidate_snapshot();
        let v = self.parts.len() as VertexId;
        self.parts.push(part);
        self.part_sizes[part as usize] += 1;
        for (j, &w) in weight_row.iter().enumerate() {
            self.loads[part as usize * self.dims + j] += w;
            self.totals[j] += w;
            self.stamps.push(0);
        }
        for j in 0..self.dims {
            let key = self.relief_key(j, weight_row);
            sink.buckets[part as usize * self.dims + j].push(HeapEntry { key, stamp: 0, v });
        }
    }

    /// [`Self::assign_slot`] with the heap pushes staged into `sink`
    /// instead of applied inline — the serial accounting half of a
    /// parallel commit (see [`Self::apply_heap_entries`]).
    ///
    /// # Panics
    /// Panics (in debug builds) if the slot is not currently released.
    pub fn assign_slot_collect(
        &mut self,
        v: VertexId,
        part: u32,
        weight_row: &[f64],
        sink: &mut HeapSink,
    ) {
        debug_assert!((part as usize) < self.k);
        debug_assert_eq!(weight_row.len(), self.dims);
        debug_assert_eq!(
            self.parts[v as usize], TOMBSTONE,
            "assign_slot target {v} is still assigned"
        );
        self.invalidate_snapshot();
        self.parts[v as usize] = part;
        self.part_sizes[part as usize] += 1;
        for (j, &w) in weight_row.iter().enumerate() {
            self.loads[part as usize * self.dims + j] += w;
            self.totals[j] += w;
        }
        for j in 0..self.dims {
            let stamp = self.bump_stamp(v, j);
            let entry = HeapEntry {
                key: self.relief_key(j, weight_row),
                stamp,
                v,
            };
            sink.buckets[part as usize * self.dims + j].push(entry);
        }
    }

    /// Applies every staged heap entry, in parallel over disjoint slot
    /// ranges balanced by entry count. Each slot replays its bucket in
    /// the order the collect calls staged it — the order the serial
    /// `push_assignment` / `assign_slot` path would have pushed — and the
    /// stale-backlog compaction trigger runs per push exactly as the
    /// serial `push_entry` path would, so the resulting heap layout is
    /// bitwise identical for every thread count.
    pub fn apply_heap_entries(&mut self, sink: HeapSink) {
        assert_eq!(sink.buckets.len(), self.heaps.len(), "sink shape mismatch");
        let dims = self.dims;
        let Self {
            heaps,
            parts,
            stamps,
            part_sizes,
            ..
        } = self;
        let (parts, stamps, part_sizes) = (&*parts, &*stamps, &*part_sizes);
        let mut prefix = Vec::with_capacity(sink.buckets.len() + 1);
        prefix.push(0usize);
        for b in &sink.buckets {
            // Invariant: `prefix` was seeded with one element above.
            prefix.push(prefix.last().unwrap() + b.len() + 1);
        }
        let bounds = prefix_boundaries(&prefix, self.threads);
        for_each_chunk_mut(heaps, &bounds, |range, chunk| {
            for (off, heap) in chunk.iter_mut().enumerate() {
                let slot = range.start + off;
                let bucket = &sink.buckets[slot];
                if bucket.is_empty() {
                    continue;
                }
                let (p, j) = (slot / dims, slot % dims);
                for &entry in bucket {
                    if heap.len() >= 4 * part_sizes[p] + 64 {
                        let old = std::mem::take(heap);
                        *heap = old
                            .into_iter()
                            .filter(|e| {
                                parts[e.v as usize] == p as u32
                                    && stamps[e.v as usize * dims + j] == e.stamp
                            })
                            .collect();
                    }
                    heap.push(entry);
                }
            }
        });
    }

    /// Releases a removed vertex: its weight leaves the part loads and the
    /// live totals, its heap entries are invalidated, and its slot maps to
    /// [`TOMBSTONE`] until a purge-time [`Self::apply_remap`] drops it.
    ///
    /// # Panics
    /// Panics (in debug builds) if `v` was already released.
    pub fn release_vertex(&mut self, v: VertexId, weight_row: &[f64]) {
        debug_assert_eq!(weight_row.len(), self.dims);
        let p = self.parts[v as usize] as usize;
        debug_assert!(p != TOMBSTONE as usize, "vertex {v} already released");
        self.invalidate_snapshot();
        self.part_sizes[p] -= 1;
        for (j, &w) in weight_row.iter().enumerate() {
            self.loads[p * self.dims + j] -= w;
            self.totals[j] -= w;
            self.bump_stamp(v, j);
        }
        self.parts[v as usize] = TOMBSTONE;
        self.compact_if_drained(p as u32);
    }

    /// Moves `v` to `part`, shifting its weight row between loads.
    pub fn move_vertex(&mut self, v: VertexId, part: u32, weight_row: &[f64]) {
        debug_assert!((part as usize) < self.k);
        let old = self.parts[v as usize] as usize;
        debug_assert!(old != TOMBSTONE as usize, "cannot move released vertex {v}");
        if old == part as usize {
            return;
        }
        self.invalidate_snapshot();
        self.part_sizes[old] -= 1;
        self.part_sizes[part as usize] += 1;
        for (j, &w) in weight_row.iter().enumerate() {
            self.loads[old * self.dims + j] -= w;
            self.loads[part as usize * self.dims + j] += w;
        }
        for j in 0..self.dims {
            let stamp = self.bump_stamp(v, j);
            let entry = HeapEntry {
                key: self.relief_key(j, weight_row),
                stamp,
                v,
            };
            self.push_entry(part, j, entry);
        }
        self.parts[v as usize] = part;
        self.compact_if_drained(old as u32);
    }

    /// Accounts a weight drift of `v` in dimension `j`: `new_row` is the
    /// full weight row *after* the change, `old` the previous value of
    /// dimension `j`. The whole row is needed because the composite heap
    /// keys ([`Self::relief_key`]) mix every dimension — a drift in one
    /// dimension re-ranks the vertex in all of them.
    pub fn apply_weight_change(&mut self, v: VertexId, j: usize, old: f64, new_row: &[f64]) {
        debug_assert_eq!(new_row.len(), self.dims);
        let p = self.parts[v as usize];
        self.invalidate_snapshot();
        self.loads[p as usize * self.dims + j] += new_row[j] - old;
        self.totals[j] += new_row[j] - old;
        for i in 0..self.dims {
            let stamp = self.bump_stamp(v, i);
            let entry = HeapEntry {
                key: self.relief_key(i, new_row),
                stamp,
                v,
            };
            self.push_entry(p, i, entry);
        }
    }

    /// Invalidates the live heap entry of `(v, j)` and returns the new
    /// stamp for its replacement.
    fn bump_stamp(&mut self, v: VertexId, j: usize) -> u64 {
        let slot = &mut self.stamps[v as usize * self.dims + j];
        *slot += 1;
        *slot
    }

    /// Pushes a fresh entry, compacting the heap first when its stale
    /// backlog has outgrown the live membership 4×. The check must live on
    /// the *push* side: queries only ever touch the currently-binding
    /// `(part, dim)` slots, so a long stream whose drift never crosses the
    /// trigger would otherwise leak stale entries in every other heap
    /// linearly with the update count. Compaction removes ≥ 3/4 of the
    /// entries it scans, each of which paid O(1) at its own push —
    /// amortized constant.
    fn push_entry(&mut self, p: u32, j: usize, entry: HeapEntry) {
        let slot = p as usize * self.dims + j;
        if self.heaps[slot].len() >= 4 * self.part_sizes[p as usize] + 64 {
            self.compact_heap(p, j);
        }
        self.heaps[slot].push(entry);
    }

    /// Drops every heap of a part that just lost its last live member. A
    /// drained part receives neither pushes nor queries, so the ratio
    /// triggers in [`Self::push_entry`] / [`Self::top_movable`] never run
    /// for it and its stale backlog would leak until process end.
    fn compact_if_drained(&mut self, p: u32) {
        if self.part_sizes[p as usize] == 0 {
            for j in 0..self.dims {
                if !self.heaps[p as usize * self.dims + j].is_empty() {
                    self.compact_heap(p, j);
                }
            }
        }
    }

    /// The up-to-`limit` heaviest vertices of part `p` in dimension `j` —
    /// the rebalance candidate queue, heaviest first. Pops lazily: stale
    /// entries are discarded, live ones are pushed back, so the amortized
    /// cost is O(limit · log n) plus the stale backlog (bounded by the 4×
    /// compaction rule). Returns fewer than `limit` when the part is small.
    pub fn top_movable(&mut self, p: u32, j: usize, limit: usize) -> Vec<VertexId> {
        let slot = p as usize * self.dims + j;
        let live_members = self.part_sizes[p as usize];
        if self.heaps[slot].len() > 4 * live_members + 64
            || (live_members == 0 && !self.heaps[slot].is_empty())
        {
            self.compact_heap(p, j);
        }
        let mut live = Vec::with_capacity(limit.min(self.part_sizes[p as usize]));
        let mut out = Vec::with_capacity(limit);
        while out.len() < limit {
            let Some(entry) = self.heaps[slot].pop() else {
                break;
            };
            self.heap_pops += 1;
            if self.parts[entry.v as usize] == p
                && self.stamps[entry.v as usize * self.dims + j] == entry.stamp
            {
                out.push(entry.v);
                live.push(entry);
            }
        }
        for entry in live {
            self.heaps[slot].push(entry);
        }
        out
    }

    /// Raw entry count of heap `(p, j)`, stale entries included (tests the
    /// push-side compaction bound).
    #[cfg(test)]
    fn heap_len(&self, p: u32, j: usize) -> usize {
        self.heaps[p as usize * self.dims + j].len()
    }

    /// Drops every stale entry of heap `(p, j)` in one O(len) pass.
    fn compact_heap(&mut self, p: u32, j: usize) {
        let slot = p as usize * self.dims + j;
        let heap = std::mem::take(&mut self.heaps[slot]);
        self.heaps[slot] = heap
            .into_iter()
            .filter(|e| {
                self.parts[e.v as usize] == p
                    && self.stamps[e.v as usize * self.dims + j] == e.stamp
            })
            .collect();
    }

    /// Accounts a new edge for the locality counters. Callers must report
    /// each live edge exactly once: gate on the graph's own dedup (e.g.
    /// [`crate::DynamicGraph::add_edge`] returning `true`), or the
    /// counters drift from the graph until the next
    /// [`Self::rebuild_edge_stats`].
    pub fn on_edge_added(&mut self, u: VertexId, v: VertexId) {
        if self.parts[u as usize] == self.parts[v as usize] {
            self.intra_edges += 1;
        } else {
            self.cut_edges += 1;
        }
    }

    /// Reverses [`Self::on_edge_added`] for a removed edge, classified by
    /// the endpoints' *current* parts — correct because moves only happen
    /// inside refinement passes, which end with a wholesale recount. Call
    /// before releasing either endpoint.
    pub fn on_edge_removed(&mut self, u: VertexId, v: VertexId) {
        if self.parts[u as usize] == self.parts[v as usize] {
            debug_assert!(self.intra_edges > 0, "intra counter underflow");
            self.intra_edges = self.intra_edges.saturating_sub(1);
        } else {
            debug_assert!(self.cut_edges > 0, "cut counter underflow");
            self.cut_edges = self.cut_edges.saturating_sub(1);
        }
    }

    /// Recomputes the locality counters from an edge iterator (used after
    /// a refinement pass moved vertices).
    pub fn rebuild_edge_stats(&mut self, edges: impl Iterator<Item = (VertexId, VertexId)>) {
        self.intra_edges = 0;
        self.cut_edges = 0;
        for (u, v) in edges {
            self.on_edge_added(u, v);
        }
    }

    /// Overwrites the locality counters with externally computed totals —
    /// the engine recounts them in parallel over CSR row ranges after a
    /// refinement pass, where the serial O(m) sweep was the last
    /// single-threaded stretch of the refinement path.
    pub fn set_edge_stats(&mut self, intra_edges: usize, cut_edges: usize) {
        self.intra_edges = intra_edges;
        self.cut_edges = cut_edges;
    }

    /// Fraction of edges with both endpoints in one shard (1.0 when there
    /// are no edges, matching [`Partition::edge_locality`]).
    pub fn edge_locality(&self) -> f64 {
        let m = self.intra_edges + self.cut_edges;
        if m == 0 {
            1.0
        } else {
            self.intra_edges as f64 / m as f64
        }
    }

    /// Cut edges seen by the incremental counters.
    #[inline]
    pub fn cut_edges(&self) -> usize {
        self.cut_edges
    }

    /// `max_j max_p w^{(j)}(V_p) / (w^{(j)}(V)/k) − 1`, the metric the
    /// ε-guarantee is stated in, over the **live** totals — so removals
    /// register in both directions: weight leaving an overloaded part
    /// relaxes its ratio, while draining one part shrinks the average and
    /// surfaces the *relative* overload of every other part. O(k·d).
    pub fn max_imbalance(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for j in 0..self.dims {
            let avg = self.totals[j] / self.k as f64;
            if avg <= 0.0 {
                continue;
            }
            for p in 0..self.k {
                worst = worst.max(self.loads[p * self.dims + j] / avg - 1.0);
            }
        }
        worst
    }

    /// Per-dimension normalized headroom `(cap_j − load_pj) / cap_j` of the
    /// least-loaded part — how close the stream is to violating ε
    /// (drift telemetry; negative means some part is over budget). Uses
    /// the live totals, like [`Self::max_imbalance`].
    pub fn min_headroom(&self, epsilon: f64) -> f64 {
        let mut min_head = f64::INFINITY;
        for j in 0..self.dims {
            let cap = (1.0 + epsilon) * self.totals[j] / self.k as f64;
            if cap <= 0.0 {
                continue;
            }
            for p in 0..self.k {
                min_head = min_head.min((cap - self.loads[p * self.dims + j]) / cap);
            }
        }
        min_head
    }

    /// Snapshot as a [`Partition`] (O(n); used at refinement boundaries).
    ///
    /// # Panics
    /// Panics if any vertex is released but not yet purged — a
    /// [`TOMBSTONE`] is not a valid part label. Compact the graph and
    /// [`Self::apply_remap`] first (the engine does this at the top of
    /// every refinement pass).
    pub fn to_partition(&self) -> Partition {
        assert!(
            self.parts.iter().all(|&p| p != TOMBSTONE),
            "released vertices pending: apply the compaction remap before snapshotting"
        );
        Partition::new(self.parts.clone(), self.k)
    }

    /// Applies a purge-time id remap (`old_to_new[old]` = new id, or
    /// [`TOMBSTONE`] for a dropped vertex — the map returned by
    /// [`crate::DynamicGraph::compact`]): compresses the assignment vector
    /// and rebuilds loads, totals and heaps from the post-purge `weights`.
    /// Every released slot must be dropped by the map and vice versa; the
    /// edge counters are unaffected (they count edges, not ids).
    pub fn apply_remap(&mut self, old_to_new: &[u32], weights: &VertexWeights) {
        assert_eq!(old_to_new.len(), self.parts.len(), "remap length mismatch");
        let live = self.num_assigned();
        assert_eq!(
            weights.num_vertices(),
            live,
            "post-purge weights must cover exactly the live vertices"
        );
        // Serial validation pass doubles as the inverse-map build
        // (`live_olds[new] = old`); the purge renumbering is monotone, so
        // the inverse turns the scatter into a gather over disjoint
        // output ranges that parallelizes freely.
        let mut live_olds: Vec<u32> = Vec::with_capacity(live);
        for (old, &new) in old_to_new.iter().enumerate() {
            let assigned = self.parts[old] != TOMBSTONE;
            assert_eq!(
                new != TOMBSTONE,
                assigned,
                "remap disagrees with release state at old id {old}"
            );
            if new != TOMBSTONE {
                debug_assert_eq!(new as usize, live_olds.len(), "purge remap not monotone");
                live_olds.push(old as u32);
            }
        }
        let mut parts = vec![TOMBSTONE; live];
        let bounds = even_boundaries(live, self.threads);
        let old_parts = &self.parts;
        for_each_chunk_mut(&mut parts, &bounds, |range, chunk| {
            for (slot, &old) in chunk.iter_mut().zip(&live_olds[range]) {
                *slot = old_parts[old as usize];
            }
        });
        self.parts = parts;
        self.rebuild_loads(weights);
    }

    /// Recomputes loads, totals — and the rebalance heaps — from scratch
    /// (float-drift hygiene after long runs; also the second phase of
    /// [`Self::apply_remap`]). Released-but-unpurged slots contribute
    /// nothing.
    pub fn rebuild_loads(&mut self, weights: &VertexWeights) {
        assert_eq!(weights.num_vertices(), self.parts.len());
        self.invalidate_snapshot();
        self.loads.iter_mut().for_each(|l| *l = 0.0);
        self.totals.iter_mut().for_each(|t| *t = 0.0);
        self.part_sizes.iter_mut().for_each(|s| *s = 0);
        // The composite heap keys normalize by the live totals, so every
        // total must be final before `rebuild_heaps` pushes the first
        // entry.
        for (v, &p) in self.parts.iter().enumerate() {
            if p == TOMBSTONE {
                continue;
            }
            self.part_sizes[p as usize] += 1;
            for j in 0..self.dims {
                let w = weights.weight(j, v as VertexId);
                self.loads[p as usize * self.dims + j] += w;
                self.totals[j] += w;
            }
        }
        self.rebuild_heaps(weights);
    }

    /// Drops every heap entry and stamp and re-pushes one entry per
    /// assigned `(vertex, dimension)`, keyed at the **current** totals.
    /// This canonicalizes the candidate queues: a long-lived store holds
    /// mixed-vintage push-time keys, and two stores that agree on
    /// parts/loads/totals but diverge in entry vintage can pop different
    /// candidate orders. [`crate::StreamingPartitioner::save_snapshot`]
    /// calls this on the *live* store before serializing so that saver and
    /// restorer (whose heaps are rebuilt the same way) continue from
    /// identical state. O(n·d·log n).
    pub(crate) fn rebuild_heaps(&mut self, weights: &VertexWeights) {
        debug_assert_eq!(weights.num_vertices(), self.parts.len());
        self.stamps.iter_mut().for_each(|s| *s = 0);
        self.stamps.resize(self.parts.len() * self.dims, 0);
        // Serial bucket pass: one entry list per (part, dimension) slot in
        // ascending vertex order, keyed against the final totals (the
        // composite keys read `self.totals`, so key computation cannot
        // move off this thread anyway).
        let mut buckets: Vec<Vec<HeapEntry>> = vec![Vec::new(); self.k * self.dims];
        let mut row = vec![0.0f64; self.dims];
        for (v, &p) in self.parts.iter().enumerate() {
            if p == TOMBSTONE {
                continue;
            }
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = weights.weight(j, v as VertexId);
            }
            for j in 0..self.dims {
                let key = self.relief_key(j, &row);
                buckets[p as usize * self.dims + j].push(HeapEntry {
                    key,
                    stamp: 0,
                    v: v as VertexId,
                });
            }
        }
        // Parallel per-slot heap builds over disjoint slot ranges,
        // balanced by entry count. Each slot replays its bucket in the
        // exact order the serial loop would have pushed, so the heap
        // layout is bitwise identical for every thread count.
        let mut prefix = Vec::with_capacity(buckets.len() + 1);
        prefix.push(0usize);
        for b in &buckets {
            prefix.push(prefix.last().unwrap() + b.len() + 1);
        }
        let bounds = prefix_boundaries(&prefix, self.threads);
        for_each_chunk_mut(&mut self.heaps, &bounds, |range, chunk| {
            for (heap, bucket) in chunk.iter_mut().zip(&buckets[range]) {
                heap.clear();
                for &e in bucket {
                    heap.push(e);
                }
            }
        });
    }

    /// Serializes the accounting state — assignments, loads, live totals
    /// and edge counters, all **verbatim floats** (they are maintained
    /// incrementally; re-deriving them from the weights would diverge
    /// bitwise from the live store). Heaps, stamps and `part_sizes` are
    /// derived state and are rebuilt by [`Self::decode_snapshot`].
    pub(crate) fn encode_snapshot(&self, w: &mut crate::snapshot::PayloadWriter) {
        w.put_usize(self.k);
        w.put_usize(self.dims);
        w.put_vec_u32(&self.parts);
        w.put_vec_f64(&self.loads);
        w.put_vec_f64(&self.totals);
        w.put_usize(self.intra_edges);
        w.put_usize(self.cut_edges);
    }

    /// Rebuilds a store from [`Self::encode_snapshot`] bytes: serialized
    /// accounting verbatim, then `part_sizes` recounted from the
    /// assignments and the rebalance heaps/stamps rebuilt from `weights`
    /// at the restored totals (see [`Self::rebuild_heaps`]).
    pub(crate) fn decode_snapshot(
        r: &mut crate::snapshot::PayloadReader,
        weights: &VertexWeights,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let corrupt = |why: String| SnapshotError::Corrupt(why);
        let k = r.get_usize("store.k")?;
        let dims = r.get_usize("store.dims")?;
        if k == 0 || dims == 0 {
            return Err(corrupt(format!("store shape k = {k}, dims = {dims}")));
        }
        let parts = r.get_vec_u32("store.parts")?;
        if parts.len() != weights.num_vertices() || dims != weights.dims() {
            return Err(corrupt(format!(
                "store covers {} vertices x {dims} dims, weights {} x {}",
                parts.len(),
                weights.num_vertices(),
                weights.dims()
            )));
        }
        let mut part_sizes = vec![0usize; k];
        for &p in &parts {
            if p == TOMBSTONE {
                continue;
            }
            if (p as usize) >= k {
                return Err(corrupt(format!("assignment names part {p} of {k}")));
            }
            part_sizes[p as usize] += 1;
        }
        let loads = r.get_vec_f64("store.loads")?;
        if loads.len() != k * dims || loads.iter().any(|l| !l.is_finite()) {
            return Err(corrupt("per-part loads are malformed".into()));
        }
        let totals = r.get_vec_f64("store.totals")?;
        if totals.len() != dims || totals.iter().any(|t| !t.is_finite()) {
            return Err(corrupt("live totals are malformed".into()));
        }
        let n = parts.len();
        let mut store = Self {
            parts,
            k,
            dims,
            loads,
            totals,
            part_sizes,
            stamps: vec![0; n * dims],
            heaps: vec![BinaryHeap::new(); k * dims],
            intra_edges: r.get_usize("store.intra_edges")?,
            cut_edges: r.get_usize("store.cut_edges")?,
            views: ViewShared::new(Arc::new(ReadView {
                epoch: ViewEpoch::default(),
                parts: Vec::new(),
                snapshot: LoadSnapshot {
                    inner: Arc::new(SnapshotInner {
                        k,
                        dims,
                        loads: Vec::new(),
                        totals: Vec::new(),
                    }),
                },
                remap: None,
                checksum: view_checksum(ViewEpoch::default(), &[]),
            })),
            snapshot_cache: None,
            snapshot_rebuilds: 0,
            heap_pops: 0,
            threads: 1,
        };
        store.rebuild_heaps(weights);
        // The restoring engine publishes view #0 (at the restored id
        // epoch) once telemetry is rebuilt; until then handles see this
        // seed. Not counted as a swap — mirrors `Self::new`.
        store.install_view(ViewEpoch::default(), None, false);
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::builder::graph_from_edges;

    fn store() -> (PartitionStore, VertexWeights) {
        let g = graph_from_edges(4, &[(0, 1), (2, 3), (1, 2)]);
        let w = VertexWeights::vertex_edge(&g);
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        let mut s = PartitionStore::new(&p, &w);
        s.rebuild_edge_stats(g.edges());
        (s, w)
    }

    #[test]
    fn lookups_and_loads() {
        let (s, _) = store();
        assert_eq!(s.shard_of(0), 0);
        assert_eq!(s.shard_of(3), 1);
        assert_eq!(s.load(0, 0), 2.0);
        assert_eq!(s.load(1, 0), 2.0);
        assert_eq!(s.total(0), 4.0);
        assert_eq!(s.edge_locality(), 2.0 / 3.0);
        assert_eq!(s.cut_edges(), 1);
    }

    #[test]
    fn push_and_move_update_loads() {
        let (mut s, mut w) = store();
        w.push_vertex(&[1.0, 1.0]);
        s.push_assignment(1, &[1.0, 1.0]);
        assert_eq!(s.shard_of(4), 1);
        assert_eq!(s.load(1, 0), 3.0);
        assert_eq!(s.total(0), 5.0);
        s.move_vertex(4, 0, &[1.0, 1.0]);
        assert_eq!(s.load(0, 0), 3.0);
        assert_eq!(s.load(1, 0), 2.0);
        assert_eq!(s.total(0), 5.0, "moves do not change the totals");
        s.move_vertex(4, 0, &[1.0, 1.0]); // no-op
        assert_eq!(s.load(0, 0), 3.0);
    }

    #[test]
    fn release_frees_capacity_and_tombstones_the_slot() {
        let (mut s, w) = store();
        let row: Vec<f64> = (0..w.dims()).map(|j| w.weight(j, 1)).collect();
        s.release_vertex(1, &row);
        assert_eq!(s.shard_of(1), TOMBSTONE);
        assert_eq!(s.part_size(0), 1);
        assert_eq!(s.num_assigned(), 3);
        assert_eq!(s.load(0, 0), 1.0);
        assert_eq!(s.total(0), 3.0, "released weight leaves the live total");
        assert_eq!(s.total(1), 6.0 - row[1]);
        // The released vertex never surfaces as a rebalance candidate.
        assert!(!s.top_movable(0, 0, 10).contains(&1));
    }

    #[test]
    fn edge_removal_reverses_the_counters() {
        let (mut s, _) = store();
        s.on_edge_removed(1, 2); // cut edge
        assert_eq!(s.cut_edges(), 0);
        assert_eq!(s.edge_locality(), 1.0);
        s.on_edge_removed(0, 1); // intra edge
        assert_eq!(s.edge_locality(), 1.0);
        s.on_edge_added(0, 1);
        assert_eq!(s.edge_locality(), 1.0, "1 intra of 1 edge");
    }

    #[test]
    fn imbalance_and_headroom() {
        let (mut s, _) = store();
        assert_eq!(s.max_imbalance(), 0.0);
        // Overload part 0: unit dimension hits 3/2 (imbalance 0.5), degree
        // dimension hits 5/3 (imbalance 2/3, the max).
        s.move_vertex(2, 0, &[1.0, 2.0]);
        assert!(
            (s.max_imbalance() - 2.0 / 3.0).abs() < 1e-12,
            "{}",
            s.max_imbalance()
        );
        assert!(s.min_headroom(0.05) < 0.0, "part over cap must go negative");
    }

    #[test]
    fn releases_register_in_the_imbalance_both_ways() {
        // k=2, unit weights, 3/3 split.
        let w = VertexWeights::unit(6);
        let p = Partition::new(vec![0, 0, 0, 1, 1, 1], 2);
        let mut s = PartitionStore::new(&p, &w);
        assert_eq!(s.max_imbalance(), 0.0);
        // Draining part 1 shrinks the average, so part 0 shows up as
        // relatively overloaded: 3 / (4/2) − 1 = 0.5.
        s.release_vertex(3, &[1.0]);
        s.release_vertex(4, &[1.0]);
        assert!(
            (s.max_imbalance() - 0.5).abs() < 1e-12,
            "{}",
            s.max_imbalance()
        );
        // Releasing from the (now relatively overloaded) part relaxes it.
        s.release_vertex(0, &[1.0]);
        assert!((s.max_imbalance() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn weight_drift_accounted() {
        let (mut s, mut w) = store();
        let old = w.weight(1, 0);
        w.set_weight(1, 0, old + 4.0);
        let row: Vec<f64> = (0..w.dims()).map(|j| w.weight(j, 0)).collect();
        s.apply_weight_change(0, 1, old, &row);
        assert_eq!(s.load(0, 1), 3.0 + 4.0);
        assert_eq!(s.total(1), 6.0 + 4.0);
    }

    #[test]
    fn load_snapshot_freezes_the_accounting() {
        let (mut s, _) = store();
        let snap = s.load_snapshot();
        assert_eq!(snap.num_parts(), 2);
        assert_eq!(snap.dims(), 2);
        assert_eq!(snap.load(0, 0), s.load(0, 0));
        assert_eq!(snap.total(1), s.total(1));
        // Mutating the store afterwards leaves the snapshot untouched.
        s.push_assignment(0, &[1.0, 1.0]);
        assert_eq!(snap.load(0, 0), 2.0);
        assert_eq!(snap.total(0), 4.0);
        assert_eq!(s.total(0), 5.0);
    }

    #[test]
    fn tombstone_and_slot_reassignment_keep_alignment() {
        let (mut s, w) = store();
        // An arrival removed inside its own batch: the slot exists, reads
        // TOMBSTONE, and counts nowhere.
        s.push_tombstone();
        assert_eq!(s.num_vertices(), 5);
        assert_eq!(s.num_assigned(), 4);
        assert_eq!(s.shard_of(4), TOMBSTONE);
        assert_eq!(s.total(0), 4.0);
        // Releasing a vertex frees its id; assign_slot re-activates it for
        // a recycled arrival.
        let row: Vec<f64> = (0..w.dims()).map(|j| w.weight(j, 1)).collect();
        s.release_vertex(1, &row);
        assert_eq!(s.shard_of(1), TOMBSTONE);
        s.assign_slot(1, 1, &[1.0, 5.0]);
        assert_eq!(s.shard_of(1), 1);
        assert_eq!(s.part_size(1), 3);
        assert_eq!(s.load(1, 1), 3.0 + 5.0);
        assert_eq!(s.total(0), 4.0);
        // The recycled vertex surfaces as a rebalance candidate again (its
        // degree-dimension weight 5 tops part 1).
        assert_eq!(s.top_movable(1, 1, 1), vec![1]);
    }

    #[test]
    fn partition_snapshot_round_trips() {
        let (s, _) = store();
        let p = s.to_partition();
        assert_eq!(p.as_slice(), s.as_slice());
        assert_eq!(p.num_parts(), 2);
    }

    #[test]
    #[should_panic(expected = "released vertices pending")]
    fn partition_snapshot_rejects_unpurged_tombstones() {
        let (mut s, _) = store();
        s.release_vertex(0, &[1.0, 1.0]);
        let _ = s.to_partition();
    }

    #[test]
    fn apply_remap_compresses_and_rebuilds() {
        let (mut s, w) = store();
        let row: Vec<f64> = (0..w.dims()).map(|j| w.weight(j, 1)).collect();
        s.release_vertex(1, &row);
        // Purge: old ids [0, 2, 3] survive as [0, 1, 2].
        let live_w = w.restrict(&[0, 2, 3]);
        s.apply_remap(&[0, TOMBSTONE, 1, 2], &live_w);
        assert_eq!(s.num_vertices(), 3);
        assert_eq!(s.as_slice(), &[0, 1, 1]);
        assert_eq!(s.load(0, 0), 1.0);
        assert_eq!(s.load(1, 0), 2.0);
        assert_eq!(s.total(0), 3.0);
        let p = s.to_partition();
        assert_eq!(p.num_vertices(), 3);
        // Heaps follow: part 1's heaviest in the degree dimension is old
        // vertex 2 (degree 2) at its new id 1.
        assert_eq!(s.top_movable(1, 1, 1), vec![1]);
    }

    #[test]
    fn heaps_stay_bounded_without_queries() {
        // A serving-scale stream may drift for hours without the rebalance
        // ever querying most (part, dim) slots; the push-side compaction
        // must keep every heap O(part size) regardless.
        let w = VertexWeights::unit(16);
        let p = Partition::new((0..16).map(|v| (v % 2) as u32).collect(), 2);
        let mut s = PartitionStore::new(&p, &w);
        let mut w = w;
        for round in 0..5_000 {
            let v = (round % 16) as u32;
            let old = w.weight(0, v);
            let new = 1.0 + (round % 9) as f64;
            w.set_weight(0, v, new);
            s.apply_weight_change(v, 0, old, &[new]);
        }
        for part in 0..2u32 {
            assert!(
                s.heap_len(part, 0) < 4 * s.part_size(part) + 64 + 1,
                "heap leaked: {} entries for {} members",
                s.heap_len(part, 0),
                s.part_size(part)
            );
        }
        // And the live view is still correct.
        let top = s.top_movable(0, 0, 1);
        let brute = brute_force_top(&s, &w, 0, 0);
        assert_eq!(w.weight(0, top[0]), w.weight(0, brute[0]));

        // Draining a part to zero live members must compact its heaps
        // immediately: a drained part sees no pushes and no queries, so
        // the ratio trigger alone would leak its stale entries forever.
        for v in (0..16u32).filter(|v| v % 2 == 1) {
            let row = [w.weight(0, v)];
            s.release_vertex(v, &row);
        }
        assert_eq!(s.part_size(1), 0);
        assert_eq!(
            s.heap_len(1, 0),
            0,
            "drained part kept {} stale heap entries",
            s.heap_len(1, 0)
        );
        assert!(s.top_movable(1, 0, 5).is_empty());
    }

    #[test]
    fn draining_via_moves_also_compacts() {
        let w = VertexWeights::unit(4);
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        let mut s = PartitionStore::new(&p, &w);
        s.move_vertex(2, 0, &[1.0]);
        s.move_vertex(3, 0, &[1.0]);
        assert_eq!(s.part_size(1), 0);
        assert_eq!(s.heap_len(1, 0), 0, "move-drained part must compact");
    }

    #[test]
    fn top_movable_returns_heaviest_first() {
        let w = VertexWeights::from_vectors(vec![vec![1.0, 4.0, 2.0, 3.0], vec![9.0; 4]]);
        let p = Partition::new(vec![0, 0, 0, 1], 2);
        let mut s = PartitionStore::new(&p, &w);
        assert_eq!(s.top_movable(0, 0, 2), vec![1, 2]);
        assert_eq!(
            s.top_movable(0, 0, 10),
            vec![1, 2, 0],
            "limit caps at membership"
        );
        assert_eq!(s.top_movable(1, 0, 10), vec![3]);
        // Repeat pops see the same live entries (pushed back).
        assert_eq!(s.top_movable(0, 0, 1), vec![1]);
    }

    /// Oracle: heaviest-first members of `p` in dimension `j` by rescoring
    /// every vertex.
    fn brute_force_top(s: &PartitionStore, w: &VertexWeights, p: u32, j: usize) -> Vec<u32> {
        let mut members: Vec<u32> = (0..s.num_vertices() as u32)
            .filter(|&v| s.shard_of(v) == p)
            .collect();
        members.sort_by(|&a, &b| {
            w.weight(j, b)
                .total_cmp(&w.weight(j, a))
                .then_with(|| b.cmp(&a))
        });
        members
    }

    #[test]
    fn rebalance_heap_matches_shadow_keys_after_random_drift() {
        // Stamp-invalidated heaps must agree with a shadow rescore no
        // matter how moves / drifts / arrivals / releases interleave. The
        // composite keys normalize by the live totals *at push time*, so
        // the oracle records the key alongside every operation (calling
        // the same `relief_key` right after the store op) instead of
        // recomputing from current weights.
        let mut rng_state = 0x9E37u64;
        let mut rng = move || {
            rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng_state >> 33) as usize
        };
        let n0 = 40;
        let dims = 2;
        let k = 3;
        let mut w = VertexWeights::from_vectors(vec![
            (0..n0).map(|v| 1.0 + (v % 7) as f64).collect(),
            (0..n0).map(|v| 1.0 + (v % 5) as f64).collect(),
        ]);
        let labels: Vec<u32> = (0..n0).map(|v| (v % k) as u32).collect();
        let mut s = PartitionStore::new(&Partition::new(labels, k), &w);
        let mut released = vec![false; n0];
        // Shadow of the live heap entry keys: `keys[v][j]` is the key the
        // store pushed last for `(v, j)` — recorded via the same
        // `relief_key` immediately after each operation.
        let rescore = |s: &PartitionStore, w: &VertexWeights, v: u32| -> Vec<f64> {
            let row: Vec<f64> = (0..dims).map(|j| w.weight(j, v)).collect();
            (0..dims).map(|j| s.relief_key(j, &row)).collect()
        };
        let mut keys: Vec<Vec<f64>> = (0..n0 as u32).map(|v| rescore(&s, &w, v)).collect();
        // Expected `top_movable(p, j, ..)`: live members of `p` by shadow
        // key descending, ties to the larger id (the heap tie-break).
        let expected_top = |s: &PartitionStore, keys: &[Vec<f64>], p: u32, j: usize| -> Vec<u32> {
            let mut members: Vec<u32> = (0..s.num_vertices() as u32)
                .filter(|&v| s.shard_of(v) == p)
                .collect();
            members.sort_by(|&a, &b| {
                keys[b as usize][j]
                    .total_cmp(&keys[a as usize][j])
                    .then_with(|| b.cmp(&a))
            });
            members
        };
        for step in 0..400 {
            match rng() % 4 {
                0 => {
                    // Weight drift.
                    let v = (rng() % s.num_vertices()) as u32;
                    if released[v as usize] {
                        continue;
                    }
                    let j = rng() % dims;
                    let old = w.weight(j, v);
                    let new = 0.5 + (rng() % 100) as f64 / 10.0;
                    w.set_weight(j, v, new);
                    let row: Vec<f64> = (0..dims).map(|i| w.weight(i, v)).collect();
                    s.apply_weight_change(v, j, old, &row);
                    keys[v as usize] = rescore(&s, &w, v);
                }
                1 => {
                    // Move between parts.
                    let v = (rng() % s.num_vertices()) as u32;
                    if released[v as usize] {
                        continue;
                    }
                    let dst = (rng() % k) as u32;
                    let moved = s.shard_of(v) != dst;
                    let row: Vec<f64> = (0..dims).map(|j| w.weight(j, v)).collect();
                    s.move_vertex(v, dst, &row);
                    if moved {
                        // A same-part move is a no-op: no re-push, so the
                        // live entry keeps its older push-time key.
                        keys[v as usize] = rescore(&s, &w, v);
                    }
                }
                2 => {
                    // Arrival.
                    let row = vec![1.0 + (rng() % 40) as f64 / 7.0, 1.0 + (rng() % 9) as f64];
                    w.push_vertex(&row);
                    released.push(false);
                    s.push_assignment((rng() % k) as u32, &row);
                    keys.push(rescore(&s, &w, (s.num_vertices() - 1) as u32));
                }
                _ => {
                    // Release (keep a healthy majority assigned).
                    let v = (rng() % s.num_vertices()) as u32;
                    if released[v as usize] || s.num_assigned() < 20 {
                        continue;
                    }
                    let row: Vec<f64> = (0..dims).map(|j| w.weight(j, v)).collect();
                    s.release_vertex(v, &row);
                    released[v as usize] = true;
                }
            }
            if step % 10 == 0 {
                for p in 0..k as u32 {
                    for j in 0..dims {
                        let expect = expected_top(&s, &keys, p, j);
                        let got = s.top_movable(p, j, expect.len() + 3);
                        // Keys must match position-wise (ids may differ
                        // only on exactly-equal keys; the tie-break makes
                        // even that deterministic, so compare keys).
                        assert_eq!(got.len(), expect.len(), "step {step} part {p} dim {j}");
                        for (a, b) in got.iter().zip(&expect) {
                            assert_eq!(
                                keys[*a as usize][j], keys[*b as usize][j],
                                "step {step} part {p} dim {j}: heap {got:?} vs shadow {expect:?}"
                            );
                        }
                    }
                }
            }
        }
        // A full rebuild re-keys every entry at the *current* totals; the
        // shadow oracle does the same and must still agree exactly.
        s.rebuild_loads(&w);
        for v in 0..s.num_vertices() as u32 {
            if s.shard_of(v) != TOMBSTONE {
                keys[v as usize] = rescore(&s, &w, v);
            }
        }
        for p in 0..k as u32 {
            let expect: Vec<u32> = expected_top(&s, &keys, p, 0).into_iter().take(5).collect();
            assert_eq!(s.top_movable(p, 0, 5), expect, "post-rebuild part {p}");
        }
    }

    #[test]
    fn snapshot_cache_reuses_until_a_load_mutation() {
        let (mut s, _) = store();
        let first = s.load_snapshot();
        let again = s.load_snapshot();
        assert!(
            first.shares_storage(&again),
            "no mutation between calls: same allocation expected"
        );
        let baseline = s.snapshot_rebuild_count();
        // Pure-topology mutations (edge counters) leave loads untouched —
        // the cache must survive them.
        s.on_edge_added(0, 2);
        s.on_edge_removed(0, 2);
        assert!(s.load_snapshot().shares_storage(&first));
        assert_eq!(s.snapshot_rebuild_count(), baseline);
        // A load mutation invalidates; the next call rebuilds once.
        s.push_assignment(0, &[1.0, 1.0]);
        let fresh = s.load_snapshot();
        assert!(!fresh.shares_storage(&first), "stale snapshot served");
        assert_eq!(fresh.total(0), 5.0);
        assert_eq!(s.snapshot_rebuild_count(), baseline + 1);
    }

    #[test]
    fn published_view_serves_the_frozen_assignment() {
        let (mut s, _) = store();
        // The constructor seeds an uncounted bootstrap view.
        assert_eq!(s.view_swap_count(), 0);
        let seed = s.read_view();
        assert_eq!(seed.epoch(), ViewEpoch::default());
        assert_eq!(seed.as_slice(), &[0, 0, 1, 1]);
        assert!(seed.verify_checksum());

        let epoch = ViewEpoch {
            id_epoch: 0,
            batch_seq: 1,
        };
        let view = s.publish_view(epoch, None);
        assert_eq!(s.view_swap_count(), 1);
        assert_eq!(view.epoch(), epoch);
        assert!(view.remap().is_none());
        // The view shares the snapshot allocation with the store's cache
        // (clone-on-publish, not rebuild).
        assert!(view.load_snapshot().shares_storage(&s.load_snapshot()));
        // Mutating the store does not leak into the published view.
        s.move_vertex(0, 1, &[1.0, 1.0]);
        assert_eq!(view.shard_of(0), 0);
        assert_eq!(view.get(0), Some(0));
        assert_eq!(s.shard_of(0), 1);
        assert!(view.verify_checksum());
        // get() is forgiving about dead / out-of-range ids.
        assert_eq!(view.get(17), None);
    }

    #[test]
    fn read_handle_repins_only_on_publish_and_flags_unadopted_epochs() {
        let (mut s, w) = store();
        let mut h = s.reader();
        assert!(!h.refresh(), "nothing published since the pin");
        assert_eq!(h.lookup(0), Some(0));

        // Publish within the same id epoch: re-pin, no adoption needed.
        s.move_vertex(0, 1, &[1.0, 1.0]);
        s.publish_view(
            ViewEpoch {
                id_epoch: 0,
                batch_seq: 1,
            },
            None,
        );
        assert_eq!(h.lookup(0), Some(0), "pinned view is stable");
        assert!(h.refresh());
        assert!(!h.refresh(), "second probe sees the same seq");
        assert_eq!(h.lookup(0), Some(1));
        assert!(!h.needs_adoption());
        assert_eq!(s.stale_epoch_read_count(), 0);

        // A purge crosses an id epoch: old id 1 dies, [0,2,3] -> [0,1,2].
        let row: Vec<f64> = (0..w.dims()).map(|j| w.weight(j, 1)).collect();
        s.release_vertex(1, &row);
        let remap = vec![0, TOMBSTONE, 1, 2];
        s.apply_remap(&remap, &w.restrict(&[0, 2, 3]));
        s.publish_view(
            ViewEpoch {
                id_epoch: 1,
                batch_seq: 2,
            },
            Some(remap),
        );
        h.refresh();
        assert!(h.needs_adoption(), "pinned view crossed a purge");
        // Serving before adopting answers but ticks the stale counter.
        assert_eq!(h.lookup(0), Some(1));
        assert_eq!(s.stale_epoch_read_count(), 1);
        // The view carries the remap the reader translates with.
        let carried = h.view().remap().expect("purge view carries its remap");
        assert_eq!(carried, &[0, TOMBSTONE, 1, 2]);
        h.adopt();
        assert!(!h.needs_adoption());
        assert_eq!(h.lookup(2), Some(1)); // old id 3, translated
        assert_eq!(s.stale_epoch_read_count(), 1, "adopted reads are clean");
        assert!(s.lookup_count() >= 5);
        assert!(s.lookup_latency().count() >= 5);
    }

    #[test]
    fn read_handles_outlive_the_store() {
        let (mut s, _) = store();
        s.publish_view(
            ViewEpoch {
                id_epoch: 0,
                batch_seq: 1,
            },
            None,
        );
        let h = s.reader();
        drop(s);
        assert_eq!(h.lookup(3), Some(1), "pinned view survives the engine");
        assert!(h.view().verify_checksum());
    }

    #[test]
    fn cloned_store_gets_an_independent_view_cell() {
        let (mut s, _) = store();
        s.publish_view(
            ViewEpoch {
                id_epoch: 0,
                batch_seq: 1,
            },
            None,
        );
        let mut c = s.clone();
        assert_eq!(c.view_swap_count(), 1, "counters carry over");
        assert_eq!(c.read_view().epoch(), s.read_view().epoch());
        // Publishing on the clone must not disturb the original's readers.
        let mut h = s.reader();
        c.move_vertex(0, 1, &[1.0, 1.0]);
        c.publish_view(
            ViewEpoch {
                id_epoch: 0,
                batch_seq: 2,
            },
            None,
        );
        assert!(!h.refresh(), "original's slot saw no publish");
        assert_eq!(s.read_view().epoch().batch_seq, 1);
        assert_eq!(c.read_view().epoch().batch_seq, 2);
    }
}
