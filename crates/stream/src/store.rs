//! [`PartitionStore`]: the serving-side view of the evolving partition.
//!
//! A router in front of a sharded graph store needs exactly three things
//! from the partitioner: O(1) `vertex → shard` lookups, cheap imbalance /
//! locality telemetry to alarm on, and a stable snapshot to hand to the
//! refinement pass. The store keeps per-part per-dimension loads and
//! incremental intra/cut edge counters so every query is O(1) or O(d·k) —
//! nothing on the serving path ever touches the graph itself.

use mdbgp_graph::{Partition, VertexId, VertexWeights};

/// Vertex→shard map plus live load / locality accounting.
#[derive(Clone, Debug)]
pub struct PartitionStore {
    parts: Vec<u32>,
    k: usize,
    dims: usize,
    /// `loads[p * dims + j] = w^{(j)}(V_p)`.
    loads: Vec<f64>,
    intra_edges: usize,
    cut_edges: usize,
}

impl PartitionStore {
    /// Builds the store from a partition and weights; edge counters start
    /// at zero — call [`Self::rebuild_edge_stats`] with the graph's edges.
    pub fn new(partition: &Partition, weights: &VertexWeights) -> Self {
        assert_eq!(partition.num_vertices(), weights.num_vertices());
        let k = partition.num_parts();
        let dims = weights.dims();
        let mut loads = vec![0.0f64; k * dims];
        for v in 0..partition.num_vertices() {
            let p = partition.part_of(v as VertexId) as usize;
            for j in 0..dims {
                loads[p * dims + j] += weights.weight(j, v as VertexId);
            }
        }
        Self {
            parts: partition.as_slice().to_vec(),
            k,
            dims,
            loads,
            intra_edges: 0,
            cut_edges: 0,
        }
    }

    /// Number of parts `k`.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.k
    }

    /// Number of vertices currently assigned.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.parts.len()
    }

    /// O(1) shard lookup — the serving hot path.
    #[inline]
    pub fn shard_of(&self, v: VertexId) -> u32 {
        self.parts[v as usize]
    }

    /// Raw assignment slice.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.parts
    }

    /// Load of part `p` in dimension `j`.
    #[inline]
    pub fn load(&self, p: u32, j: usize) -> f64 {
        self.loads[p as usize * self.dims + j]
    }

    /// Appends a newly placed vertex.
    pub fn push_assignment(&mut self, part: u32, weight_row: &[f64]) {
        debug_assert!((part as usize) < self.k);
        debug_assert_eq!(weight_row.len(), self.dims);
        self.parts.push(part);
        for (j, &w) in weight_row.iter().enumerate() {
            self.loads[part as usize * self.dims + j] += w;
        }
    }

    /// Moves `v` to `part`, shifting its weight row between loads.
    pub fn move_vertex(&mut self, v: VertexId, part: u32, weight_row: &[f64]) {
        debug_assert!((part as usize) < self.k);
        let old = self.parts[v as usize] as usize;
        if old == part as usize {
            return;
        }
        for (j, &w) in weight_row.iter().enumerate() {
            self.loads[old * self.dims + j] -= w;
            self.loads[part as usize * self.dims + j] += w;
        }
        self.parts[v as usize] = part;
    }

    /// Accounts a weight drift of `v` in dimension `j`.
    pub fn apply_weight_change(&mut self, v: VertexId, j: usize, old: f64, new: f64) {
        let p = self.parts[v as usize] as usize;
        self.loads[p * self.dims + j] += new - old;
    }

    /// Accounts a new edge for the locality counters.
    pub fn on_edge_added(&mut self, u: VertexId, v: VertexId) {
        if self.parts[u as usize] == self.parts[v as usize] {
            self.intra_edges += 1;
        } else {
            self.cut_edges += 1;
        }
    }

    /// Recomputes the locality counters from an edge iterator (used after
    /// a refinement pass moved vertices).
    pub fn rebuild_edge_stats(&mut self, edges: impl Iterator<Item = (VertexId, VertexId)>) {
        self.intra_edges = 0;
        self.cut_edges = 0;
        for (u, v) in edges {
            self.on_edge_added(u, v);
        }
    }

    /// Fraction of edges with both endpoints in one shard (1.0 when there
    /// are no edges, matching [`Partition::edge_locality`]).
    pub fn edge_locality(&self) -> f64 {
        let m = self.intra_edges + self.cut_edges;
        if m == 0 {
            1.0
        } else {
            self.intra_edges as f64 / m as f64
        }
    }

    /// Cut edges seen by the incremental counters.
    #[inline]
    pub fn cut_edges(&self) -> usize {
        self.cut_edges
    }

    /// `max_j max_p w^{(j)}(V_p) / (w^{(j)}(V)/k) − 1`, the metric the
    /// ε-guarantee is stated in. O(k·d).
    pub fn max_imbalance(&self, weights: &VertexWeights) -> f64 {
        let mut worst: f64 = 0.0;
        for j in 0..self.dims {
            let avg = weights.total(j) / self.k as f64;
            if avg <= 0.0 {
                continue;
            }
            for p in 0..self.k {
                worst = worst.max(self.loads[p * self.dims + j] / avg - 1.0);
            }
        }
        worst
    }

    /// Per-dimension normalized headroom `(cap_j − load_pj) / cap_j` of the
    /// least-loaded part — how close the stream is to violating ε
    /// (drift telemetry; negative means some part is over budget).
    pub fn min_headroom(&self, weights: &VertexWeights, epsilon: f64) -> f64 {
        let mut min_head = f64::INFINITY;
        for j in 0..self.dims {
            let cap = (1.0 + epsilon) * weights.total(j) / self.k as f64;
            if cap <= 0.0 {
                continue;
            }
            for p in 0..self.k {
                min_head = min_head.min((cap - self.loads[p * self.dims + j]) / cap);
            }
        }
        min_head
    }

    /// Snapshot as a [`Partition`] (O(n); used at refinement boundaries).
    pub fn to_partition(&self) -> Partition {
        Partition::new(self.parts.clone(), self.k)
    }

    /// Recomputes loads from scratch (float-drift hygiene after long runs).
    pub fn rebuild_loads(&mut self, weights: &VertexWeights) {
        assert_eq!(weights.num_vertices(), self.parts.len());
        self.loads.iter_mut().for_each(|l| *l = 0.0);
        for (v, &p) in self.parts.iter().enumerate() {
            for j in 0..self.dims {
                self.loads[p as usize * self.dims + j] += weights.weight(j, v as VertexId);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::builder::graph_from_edges;

    fn store() -> (PartitionStore, VertexWeights) {
        let g = graph_from_edges(4, &[(0, 1), (2, 3), (1, 2)]);
        let w = VertexWeights::vertex_edge(&g);
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        let mut s = PartitionStore::new(&p, &w);
        s.rebuild_edge_stats(g.edges());
        (s, w)
    }

    #[test]
    fn lookups_and_loads() {
        let (s, _) = store();
        assert_eq!(s.shard_of(0), 0);
        assert_eq!(s.shard_of(3), 1);
        assert_eq!(s.load(0, 0), 2.0);
        assert_eq!(s.load(1, 0), 2.0);
        assert_eq!(s.edge_locality(), 2.0 / 3.0);
        assert_eq!(s.cut_edges(), 1);
    }

    #[test]
    fn push_and_move_update_loads() {
        let (mut s, mut w) = store();
        w.push_vertex(&[1.0, 1.0]);
        s.push_assignment(1, &[1.0, 1.0]);
        assert_eq!(s.shard_of(4), 1);
        assert_eq!(s.load(1, 0), 3.0);
        s.move_vertex(4, 0, &[1.0, 1.0]);
        assert_eq!(s.load(0, 0), 3.0);
        assert_eq!(s.load(1, 0), 2.0);
        s.move_vertex(4, 0, &[1.0, 1.0]); // no-op
        assert_eq!(s.load(0, 0), 3.0);
    }

    #[test]
    fn imbalance_and_headroom() {
        let (mut s, w) = store();
        assert_eq!(s.max_imbalance(&w), 0.0);
        // Overload part 0: unit dimension hits 3/2 (imbalance 0.5), degree
        // dimension hits 5/3 (imbalance 2/3, the max).
        s.move_vertex(2, 0, &[1.0, 2.0]);
        assert!(
            (s.max_imbalance(&w) - 2.0 / 3.0).abs() < 1e-12,
            "{}",
            s.max_imbalance(&w)
        );
        assert!(
            s.min_headroom(&w, 0.05) < 0.0,
            "part over cap must go negative"
        );
    }

    #[test]
    fn weight_drift_accounted() {
        let (mut s, mut w) = store();
        let old = w.weight(1, 0);
        w.set_weight(1, 0, old + 4.0);
        s.apply_weight_change(0, 1, old, old + 4.0);
        assert_eq!(s.load(0, 1), 3.0 + 4.0);
    }

    #[test]
    fn partition_snapshot_round_trips() {
        let (s, _) = store();
        let p = s.to_partition();
        assert_eq!(p.as_slice(), s.as_slice());
        assert_eq!(p.num_parts(), 2);
    }
}
