//! Leader/follower replication: one writer feeds a fleet of read
//! replicas by shipping a snapshot plus the batch log defined in
//! [`crate::wire`].
//!
//! ## Why replay, not state shipping
//!
//! The engine's two standing guarantees make replication almost free:
//! restore is **byte-identical** (the restored engine continues ingesting
//! with the same [`BatchReport`]s as the saver — [`crate::snapshot`]),
//! and ingestion is **deterministic across thread counts** (threads 1 ≡
//! threads N by construction — [`crate::pipeline`]). So a follower that
//! bootstraps from the leader's snapshot and pushes the same
//! [`UpdateBatch`] sequence through its *own* ingest pipeline arrives at
//! bitwise the same state — same assignments, same purges at the same
//! batches, same published [`crate::ReadView`] sequence. The log carries
//! updates (tens of bytes per vertex), not assignment vectors, and every
//! follower serves lookups from views it computed itself.
//!
//! Determinism is the mechanism; the wire format's stamps are the
//! **detector**. Each log record carries the leader's post-batch
//! `(id_epoch, batch_seq)` stamp and published-view checksum; after
//! applying a record the follower compares its own published view against
//! both ([`Follower::replay`]) and fails with [`ReplicaError::Divergence`]
//! on the first mismatch — a replica can drift silently for exactly zero
//! batches.
//!
//! ## Leader protocol
//!
//! A [`Leader`] owns the engine. Creating it (or calling
//! [`Leader::rotate`]) takes a full snapshot and starts a fresh log
//! segment whose header base is the snapshot's stamp; every
//! [`Leader::ingest`] appends one record. The pair
//! ([`Leader::snapshot_bytes`], [`Leader::log_bytes`]) is therefore
//! always a complete bootstrap kit: restore the snapshot, replay the
//! log, and you are the leader as of its last batch. Rotation bounds
//! replay time for fresh followers and retires old segments.
//!
//! **All mutation must flow through the leader.** An out-of-band
//! [`StreamingPartitioner::purge`] or
//! [`StreamingPartitioner::refine_now`] on the wrapped engine publishes a
//! view no log record describes, and followers diverge at the next
//! batch. Purges that happen *inside* ingest (churn outgrowing the
//! compaction slack) are fine — they are deterministic consequences of
//! the batch and replay identically on followers. For an explicit purge
//! use [`Leader::purge_and_rotate`], which folds the unreplayable epoch
//! bump into a fresh segment base.
//!
//! ## Follower protocol
//!
//! [`Follower::bootstrap`] restores an engine from snapshot bytes (the
//! restore itself publishes view #0 at the snapshot's stamp);
//! [`Follower::replay`] then applies a log. Adoption is checked before a
//! single record applies — shape (`k`, dims) and base stamp, each
//! failing with its named [`WireError`] ([`crate::wire::LogHeader`]) —
//! and replay is resumable: re-reading a longer copy of the same segment
//! skips records at or below the follower's current stamp (verifying the
//! checksum of the one that matches it exactly), so tailing a growing
//! log is just calling `replay` again on the new bytes.

use std::io::Read;

use mdbgp_graph::PartitionError;

use crate::delta::UpdateBatch;
use crate::engine::{BatchReport, StreamingPartitioner};
use crate::snapshot::SnapshotError;
use crate::store::{ReadHandle, ReadView, ViewEpoch};
use crate::wire::{
    read_log_header, read_record, write_log_header, write_record, LogRecord, WireError,
};
use crate::SnapshotExpectation;

/// Everything that can go wrong shipping state between a leader and a
/// follower.
#[derive(Debug)]
pub enum ReplicaError {
    /// Snapshot serialization or restore failed (bootstrap path).
    Snapshot(SnapshotError),
    /// The batch log could not be written or read.
    Wire(WireError),
    /// A replayed batch was rejected by the follower's own ingest
    /// validation — on a healthy pair this cannot happen (the leader
    /// ingested the same batch), so it indicates the log and snapshot
    /// are from different lineages.
    Ingest(PartitionError),
    /// The follower applied a record and arrived at a different state
    /// than the leader stamped: the replica is divergent and must
    /// re-bootstrap. `at` is the leader's stamp for the record.
    Divergence {
        /// The leader's post-batch stamp from the log record.
        at: ViewEpoch,
        /// The leader's published-view checksum from the log record.
        expected_checksum: u64,
        /// The follower's post-batch stamp.
        found: ViewEpoch,
        /// The follower's published-view checksum.
        found_checksum: u64,
    },
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::Snapshot(e) => write!(f, "replica snapshot exchange failed: {e}"),
            ReplicaError::Wire(e) => write!(f, "replica log exchange failed: {e}"),
            ReplicaError::Ingest(e) => write!(
                f,
                "follower rejected a replayed batch (log and snapshot are from different \
                 lineages?): {e}"
            ),
            ReplicaError::Divergence {
                at,
                expected_checksum,
                found,
                found_checksum,
            } => write!(
                f,
                "follower diverged from the leader at (id_epoch {}, batch_seq {}): leader \
                 published checksum {expected_checksum:#018x}, follower is at (id_epoch {}, \
                 batch_seq {}) with checksum {found_checksum:#018x}; re-bootstrap from a fresh \
                 snapshot",
                at.id_epoch, at.batch_seq, found.id_epoch, found.batch_seq
            ),
        }
    }
}

impl std::error::Error for ReplicaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplicaError::Snapshot(e) => Some(e),
            ReplicaError::Wire(e) => Some(e),
            ReplicaError::Ingest(e) => Some(e),
            ReplicaError::Divergence { .. } => None,
        }
    }
}

impl From<SnapshotError> for ReplicaError {
    fn from(e: SnapshotError) -> Self {
        ReplicaError::Snapshot(e)
    }
}

impl From<WireError> for ReplicaError {
    fn from(e: WireError) -> Self {
        ReplicaError::Wire(e)
    }
}

impl From<PartitionError> for ReplicaError {
    fn from(e: PartitionError) -> Self {
        ReplicaError::Ingest(e)
    }
}

/// The write side of replication: wraps a [`StreamingPartitioner`] and
/// keeps a (snapshot, batch log) pair from which any number of
/// [`Follower`]s can bootstrap and tail. See the module docs for the
/// protocol and the one rule: all mutation flows through the leader.
pub struct Leader {
    engine: StreamingPartitioner,
    snapshot: Vec<u8>,
    log: Vec<u8>,
    segment_records: u64,
    rotations: u64,
}

impl Leader {
    /// Wraps an engine, takes its bootstrap snapshot, and opens the
    /// first log segment based at the engine's current published stamp.
    pub fn new(mut engine: StreamingPartitioner) -> Result<Self, ReplicaError> {
        let (snapshot, log) = Self::fresh_segment(&mut engine, 0)?;
        Ok(Leader {
            engine,
            snapshot,
            log,
            segment_records: 0,
            rotations: 0,
        })
    }

    fn fresh_segment(
        engine: &mut StreamingPartitioner,
        segment: u64,
    ) -> Result<(Vec<u8>, Vec<u8>), ReplicaError> {
        let mut snapshot = Vec::new();
        engine.save_snapshot(&mut snapshot)?;
        let base = engine.read_view().epoch();
        let k = engine.config().k;
        let dims = engine.graph().weights().dims();
        let mut log = Vec::new();
        write_log_header(&mut log, k, dims, segment, base)?;
        Ok((snapshot, log))
    }

    /// Ingests a batch through the wrapped engine and appends one log
    /// record stamped with the post-batch published view. The
    /// [`BatchReport`] is the engine's, verbatim.
    pub fn ingest(&mut self, batch: &UpdateBatch) -> Result<BatchReport, ReplicaError> {
        let report = self.engine.ingest(batch)?;
        let view = self.engine.read_view();
        let record = LogRecord {
            stamp: view.epoch(),
            view_checksum: view.checksum(),
            batch: batch.clone(),
        };
        let written = write_record(&mut self.log, &record)?;
        self.segment_records += 1;
        let obs = self.engine.metrics_mut();
        obs.counter_add("stream.log.records", 1);
        obs.counter_add("stream.log.bytes", written as u64);
        Ok(report)
    }

    /// Retires the current segment: takes a fresh full snapshot and
    /// starts an empty log based at the current stamp. New followers
    /// bootstrap from the new pair; followers already tailing the old
    /// segment are complete as of the rotation point and can re-adopt
    /// the new segment seamlessly (its base is exactly their stamp).
    pub fn rotate(&mut self) -> Result<(), ReplicaError> {
        self.rotations += 1;
        let (snapshot, log) = Self::fresh_segment(&mut self.engine, self.rotations)?;
        self.snapshot = snapshot;
        self.log = log;
        self.segment_records = 0;
        self.engine
            .metrics_mut()
            .counter_add("stream.log.rotations", 1);
        Ok(())
    }

    /// Forces a purging compaction and immediately rotates. The explicit
    /// purge publishes a view no log record can describe (it bumps the
    /// id epoch outside any batch), so the only replayable continuation
    /// is a fresh segment based on the post-purge state — this method is
    /// the safe form of [`StreamingPartitioner::purge`] under
    /// replication. Returns the old→new id remap when anything was
    /// purged, exactly like the engine call.
    pub fn purge_and_rotate(&mut self) -> Result<Option<Vec<u32>>, ReplicaError> {
        let remap = self.engine.purge();
        self.rotate()?;
        Ok(remap)
    }

    /// The wrapped engine, read-only. Use [`Self::ingest`] /
    /// [`Self::purge_and_rotate`] to mutate — see the module docs for
    /// why out-of-band mutation breaks followers.
    pub fn engine(&self) -> &StreamingPartitioner {
        &self.engine
    }

    /// Mutable access to the engine's metrics registry (the leader's own
    /// log counters live there too: `stream.log.records`,
    /// `stream.log.bytes`, `stream.log.rotations`).
    pub fn metrics_mut(&mut self) -> &mut mdbgp_obs::MetricsRegistry {
        self.engine.metrics_mut()
    }

    /// A detached serving handle onto the leader's own published views.
    pub fn reader(&self) -> ReadHandle {
        self.engine.reader()
    }

    /// The current segment's base snapshot — a follower's bootstrap
    /// input.
    pub fn snapshot_bytes(&self) -> &[u8] {
        &self.snapshot
    }

    /// The current segment's log bytes (header + every record since the
    /// snapshot) — a follower replays these on top of the snapshot.
    pub fn log_bytes(&self) -> &[u8] {
        &self.log
    }

    /// Records appended to the current segment since the last rotation.
    pub fn segment_records(&self) -> u64 {
        self.segment_records
    }

    /// Segments retired so far.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Unwraps the engine (ends replication; the final segment is
    /// dropped).
    pub fn into_engine(self) -> StreamingPartitioner {
        self.engine
    }
}

/// The read side of replication: an engine bootstrapped from a leader
/// snapshot that replays log records through its own ingest pipeline,
/// publishing one [`ReadView`] per applied batch and checking each
/// against the leader's stamp. See the module docs.
pub struct Follower {
    engine: StreamingPartitioner,
    /// The segment number last adopted by [`Self::replay`] — used to
    /// tell a re-read (tail) of the same segment apart from a genuinely
    /// new one, which requires a heap canonicalization (see `replay`).
    segment: Option<u64>,
    replayed: u64,
}

impl Follower {
    /// Restores an engine from leader snapshot bytes. The restore
    /// publishes view #0 at the snapshot's stamp, so [`Self::view`] serves
    /// immediately — a follower is useful before its first replay.
    pub fn bootstrap(snapshot: &[u8]) -> Result<Self, ReplicaError> {
        Self::bootstrap_expecting(snapshot, &SnapshotExpectation::default())
    }

    /// [`Self::bootstrap`] with a caller expectation on the snapshot
    /// header (shape, id epoch) checked before anything is built.
    pub fn bootstrap_expecting(
        snapshot: &[u8],
        expect: &SnapshotExpectation,
    ) -> Result<Self, ReplicaError> {
        let engine = StreamingPartitioner::restore_expecting(snapshot, expect)?;
        Ok(Follower {
            engine,
            segment: None,
            replayed: 0,
        })
    }

    /// Replays a log on top of the current state; returns the number of
    /// records applied by this call.
    ///
    /// Adoption is all-or-nothing and checked first: the log's shape
    /// must match the engine's and its base stamp must not be ahead of
    /// the follower's current stamp (each mismatch fails with its named
    /// [`WireError`] before any record applies). Records at or below the
    /// current stamp are skipped — that is what makes tailing work: feed
    /// a longer copy of the same segment and only the new tail applies —
    /// except that a skipped record stamped *exactly* at the current
    /// stamp must carry the current view's checksum (a cheap lineage
    /// check). Every applied record is divergence-checked: the
    /// follower's post-batch published view must match the leader's
    /// stamp and checksum, else [`ReplicaError::Divergence`].
    pub fn replay<R: Read>(&mut self, mut log: R) -> Result<u64, ReplicaError> {
        let header = read_log_header(&mut log)?;
        let view = self.engine.read_view();
        let mine = view.epoch();
        header.check_adoption(
            self.engine.config().k,
            self.engine.graph().weights().dims(),
            // `check_adoption` wants the base to *equal* the adopting
            // state. A log whose base is *behind* us is still adoptable
            // (the skip loop below consumes the already-applied prefix),
            // so echo the base back for that comparison; a base *ahead*
            // of us is a gap we cannot bridge — present our real stamp
            // and let the named `BaseMismatch` fire.
            if header.base <= mine {
                header.base
            } else {
                mine
            },
        )?;
        if self.segment != Some(header.segment) {
            // First adoption of this segment. The leader's rotation
            // snapshot canonicalized *its* rebalance heaps
            // (`save_snapshot` re-keys the saver's queue); mirror that
            // here so heap-driven refinement stays bitwise in lockstep.
            // Idempotent, and at first adoption the follower is exactly
            // at the segment base — the same state the leader
            // canonicalized at.
            self.engine.canonicalize_heaps();
            self.segment = Some(header.segment);
        }
        let mut current = mine;
        let mut current_checksum = view.checksum();
        let mut applied = 0u64;
        let mut last_seen: Option<ViewEpoch> = None;
        while let Some(record) = read_record(&mut log)? {
            if let Some(prev) = last_seen {
                if record.stamp <= prev {
                    return Err(ReplicaError::Wire(WireError::Corrupt(format!(
                        "record stamps run backwards: (id_epoch {}, batch_seq {}) after \
                         (id_epoch {}, batch_seq {})",
                        record.stamp.id_epoch,
                        record.stamp.batch_seq,
                        prev.id_epoch,
                        prev.batch_seq
                    ))));
                }
            }
            last_seen = Some(record.stamp);
            if record.stamp <= current {
                // Already-applied prefix (a re-read of a growing
                // segment). The record that lands exactly on our stamp
                // doubles as a lineage check.
                if record.stamp == current && record.view_checksum != current_checksum {
                    return Err(ReplicaError::Divergence {
                        at: record.stamp,
                        expected_checksum: record.view_checksum,
                        found: current,
                        found_checksum: current_checksum,
                    });
                }
                continue;
            }
            self.apply(&record)?;
            let view = self.engine.read_view();
            current = view.epoch();
            current_checksum = view.checksum();
            applied += 1;
        }
        Ok(applied)
    }

    /// Applies one record and divergence-checks the resulting view.
    fn apply(&mut self, record: &LogRecord) -> Result<(), ReplicaError> {
        self.engine.ingest(&record.batch)?;
        let view = self.engine.read_view();
        let (found, found_checksum) = (view.epoch(), view.checksum());
        self.replayed += 1;
        let obs = self.engine.metrics_mut();
        obs.counter_add("stream.replica.batches_replayed", 1);
        obs.counter_add("stream.replica.divergence_checks", 1);
        if found != record.stamp || found_checksum != record.view_checksum {
            return Err(ReplicaError::Divergence {
                at: record.stamp,
                expected_checksum: record.view_checksum,
                found,
                found_checksum,
            });
        }
        Ok(())
    }

    /// The follower's current published view (stamped and checksummed —
    /// compare [`ReadView::epoch`] / [`ReadView::checksum`] against the
    /// leader's to audit freshness).
    pub fn view(&self) -> std::sync::Arc<ReadView> {
        self.engine.read_view()
    }

    /// A detached serving handle onto the follower's own views — this is
    /// how replica serving threads answer lookups.
    pub fn reader(&self) -> ReadHandle {
        self.engine.reader()
    }

    /// The wrapped engine, read-only.
    pub fn engine(&self) -> &StreamingPartitioner {
        &self.engine
    }

    /// Mutable access to the engine's metrics registry (replay counters
    /// `stream.replica.batches_replayed` /
    /// `stream.replica.divergence_checks` live there).
    pub fn metrics_mut(&mut self) -> &mut mdbgp_obs::MetricsRegistry {
        self.engine.metrics_mut()
    }

    /// Records applied over this follower's lifetime.
    pub fn replayed(&self) -> u64 {
        self.replayed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StreamConfig;
    use mdbgp_core::GdConfig;
    use mdbgp_graph::{gen, VertexWeights};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn leader_engine(n: usize, seed: u64) -> StreamingPartitioner {
        let cg = gen::community_graph(
            &gen::CommunityGraphConfig::social(n),
            &mut StdRng::seed_from_u64(seed),
        );
        let w = VertexWeights::vertex_edge(&cg.graph);
        let mut cfg = StreamConfig::new(4, 0.05);
        cfg.gd = GdConfig {
            iterations: 40,
            ..GdConfig::with_epsilon(0.05)
        };
        StreamingPartitioner::bootstrap(cg.graph, w, cfg).unwrap()
    }

    fn churny_batch(rng: &mut StdRng, live_hint: u32) -> UpdateBatch {
        let mut batch = UpdateBatch::new();
        for _ in 0..12 {
            let nbrs: Vec<u32> = (0..3).map(|_| rng.gen_range(0..live_hint)).collect();
            batch.add_vertex(vec![1.0, 3.0], nbrs);
        }
        for _ in 0..4 {
            batch.add_edge(rng.gen_range(0..live_hint), rng.gen_range(0..live_hint));
        }
        batch.set_weight(
            rng.gen_range(0..live_hint),
            0,
            1.0 + rng.gen_range(0.0..1.0),
        );
        batch
    }

    #[test]
    fn follower_tracks_leader_bitwise() {
        let mut leader = Leader::new(leader_engine(400, 11)).unwrap();
        let mut follower = Follower::bootstrap(leader.snapshot_bytes()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for round in 0..4 {
            for _ in 0..2 {
                let batch = churny_batch(&mut rng, 400);
                leader.ingest(&batch).unwrap();
            }
            let applied = follower.replay(leader.log_bytes()).unwrap();
            assert_eq!(applied, 2, "round {round}");
            let (lv, fv) = (leader.engine().read_view(), follower.view());
            assert_eq!(lv.epoch(), fv.epoch());
            assert_eq!(lv.checksum(), fv.checksum());
            assert_eq!(lv.as_slice(), fv.as_slice());
        }
        assert_eq!(follower.replayed(), 8);
        // Replaying the full segment again is a no-op (everything is at
        // or below the follower's stamp).
        assert_eq!(follower.replay(leader.log_bytes()).unwrap(), 0);
    }

    #[test]
    fn rotation_hands_followers_a_seamless_new_segment() {
        let mut leader = Leader::new(leader_engine(300, 3)).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        leader.ingest(&churny_batch(&mut rng, 300)).unwrap();
        let mut follower = Follower::bootstrap(leader.snapshot_bytes()).unwrap();
        follower.replay(leader.log_bytes()).unwrap();
        leader.rotate().unwrap();
        assert_eq!(leader.rotations(), 1);
        assert_eq!(leader.segment_records(), 0);
        leader.ingest(&churny_batch(&mut rng, 300)).unwrap();
        // The old-segment follower adopts the new segment directly: its
        // base is exactly the follower's stamp.
        assert_eq!(follower.replay(leader.log_bytes()).unwrap(), 1);
        assert_eq!(
            follower.view().checksum(),
            leader.engine().read_view().checksum()
        );
        // A brand-new follower bootstraps from the rotated pair alone.
        let mut fresh = Follower::bootstrap(leader.snapshot_bytes()).unwrap();
        fresh.replay(leader.log_bytes()).unwrap();
        assert_eq!(fresh.view().epoch(), follower.view().epoch());
        assert_eq!(fresh.view().checksum(), follower.view().checksum());
    }

    #[test]
    fn purge_and_rotate_keeps_the_fleet_replayable() {
        let mut leader = Leader::new(leader_engine(300, 7)).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        // Remove some vertices so the purge has something to drop.
        let mut batch = UpdateBatch::new();
        for v in 0..40u32 {
            batch.remove_vertex(v);
        }
        leader.ingest(&batch).unwrap();
        leader.purge_and_rotate().unwrap();
        // The 40 tombstoned vertices are out of the id space by now —
        // whether the ingest's own refine-stage compaction purged them
        // or the explicit purge did, the epoch moved at least once and
        // the rotated segment is based on the post-purge state.
        assert!(leader.engine().id_epoch() >= 1);
        assert_eq!(leader.segment_records(), 0);
        let mut follower = Follower::bootstrap(leader.snapshot_bytes()).unwrap();
        leader.ingest(&churny_batch(&mut rng, 200)).unwrap();
        assert_eq!(follower.replay(leader.log_bytes()).unwrap(), 1);
        assert_eq!(
            follower.view().checksum(),
            leader.engine().read_view().checksum()
        );
    }

    #[test]
    fn epoch_mismatched_log_tail_is_rejected_before_any_state_applies() {
        let mut leader = Leader::new(leader_engine(300, 13)).unwrap();
        let stale_snapshot = leader.snapshot_bytes().to_vec();
        let mut rng = StdRng::seed_from_u64(2);
        leader.ingest(&churny_batch(&mut rng, 300)).unwrap();
        leader.rotate().unwrap(); // new segment based past the stale snapshot
        leader.ingest(&churny_batch(&mut rng, 300)).unwrap();
        let mut follower = Follower::bootstrap(&stale_snapshot).unwrap();
        let before = follower.view().epoch();
        let err = follower.replay(leader.log_bytes()).unwrap_err();
        assert!(
            matches!(err, ReplicaError::Wire(WireError::BaseMismatch { .. })),
            "{err}"
        );
        // No partial state: the follower did not move.
        assert_eq!(follower.view().epoch(), before);
        assert_eq!(follower.replayed(), 0);
    }

    #[test]
    fn tampered_record_reports_divergence() {
        let mut leader = Leader::new(leader_engine(300, 17)).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        leader.ingest(&churny_batch(&mut rng, 300)).unwrap();
        // Re-frame the single record with a wrong view checksum but a
        // valid payload checksum — the wire layer accepts it, the
        // divergence check must not.
        let mut log = Vec::new();
        let mut src = leader.log_bytes();
        let header = read_log_header(&mut src).unwrap();
        write_log_header(&mut log, header.k, header.dims, header.segment, header.base).unwrap();
        let mut record = read_record(&mut src).unwrap().unwrap();
        record.view_checksum ^= 1;
        write_record(&mut log, &record).unwrap();
        let mut follower = Follower::bootstrap(leader.snapshot_bytes()).unwrap();
        let err = follower.replay(&log[..]).unwrap_err();
        assert!(matches!(err, ReplicaError::Divergence { .. }), "{err}");
    }
}
