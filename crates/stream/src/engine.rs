//! [`StreamingPartitioner`]: ingest → place → watch drift → refine.
//!
//! The engine owns the [`DynamicGraph`], the serving-side
//! [`PartitionStore`], and the refinement machinery. Per batch it
//!
//! 1. applies the updates, placing arriving vertices with the
//!    multi-dimensional LDG placer ([`crate::placement::LdgPlacer`]),
//! 2. compacts the delta once it outgrows the base CSR,
//! 3. checks the drift telemetry, and — when ε is threatened or a
//!    scheduled interval elapses — runs **incremental refinement**: a
//!    greedy multi-constraint rebalance (restores ε-feasibility, in the
//!    spirit of Maas-style greedy repartitioning) followed by warm-started
//!    pairwise GD ([`GdPartitioner::refine_pair`]) that re-optimizes
//!    locality around the churn with all untouched vertices frozen.
//!
//! The result is that a batch of updates costs a placement sweep plus a few
//! cheap GD iterations over the affected pairs, instead of a full
//! from-scratch solve.

use crate::delta::{StreamUpdate, UpdateBatch};
use crate::dynamic::DynamicGraph;
use crate::placement::LdgPlacer;
use crate::store::PartitionStore;
use mdbgp_core::{GdConfig, GdPartitioner};
use mdbgp_graph::{Graph, Partition, PartitionError, Partitioner, VertexId, VertexWeights};
use std::time::Instant;

/// Configuration of the streaming subsystem.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Number of shards `k`.
    pub k: usize,
    /// Balance tolerance ε maintained across every weight dimension.
    pub epsilon: f64,
    /// GD configuration template (bootstrap and refinement inherit
    /// everything except `epsilon` and, for refinement, `iterations`).
    pub gd: GdConfig,
    /// GD iterations per warm-started pair refinement — the paper uses 100
    /// for a cold solve; a warm start needs far fewer.
    pub refine_iterations: usize,
    /// Maximum part pairs re-bisected per refinement pass.
    pub max_refine_pairs: usize,
    /// Compact the delta once it exceeds this fraction of base edges.
    pub compact_slack: f64,
    /// Refine every this many batches even without drift (0 = drift-only).
    pub refine_every: usize,
    /// Drift trigger: refine when `max_imbalance > drift_headroom · ε`.
    pub drift_headroom: f64,
    /// Upper bound on greedy rebalance moves per refinement pass.
    pub max_rebalance_moves: usize,
    /// Seed for bootstrap and refinement (incremented per refinement).
    pub seed: u64,
}

impl StreamConfig {
    /// Defaults tuned for social-graph streams: drift-triggered refinement
    /// with 15 warm GD iterations over at most 4 pairs.
    pub fn new(k: usize, epsilon: f64) -> Self {
        Self {
            k,
            epsilon,
            gd: GdConfig::with_epsilon(epsilon),
            refine_iterations: 15,
            max_refine_pairs: 4,
            compact_slack: 0.15,
            refine_every: 0,
            drift_headroom: 0.9,
            max_rebalance_moves: 256,
            seed: 42,
        }
    }

    fn validate(&self) -> Result<(), PartitionError> {
        if self.k == 0 {
            return Err(PartitionError::Config("k must be positive".into()));
        }
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(PartitionError::Config(format!(
                "epsilon must be in (0, 1), got {}",
                self.epsilon
            )));
        }
        if self.refine_iterations == 0 {
            return Err(PartitionError::Config(
                "refine_iterations must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Lifetime counters exposed for dashboards and tests.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StreamTelemetry {
    pub batches: usize,
    pub vertices_placed: usize,
    pub edges_added: usize,
    pub weight_updates: usize,
    pub compactions: usize,
    pub refinements: usize,
    pub rebalance_moves: usize,
    pub refine_moves: usize,
    /// Wall-clock seconds of the most recent refinement pass.
    pub last_refine_secs: f64,
}

/// Per-batch outcome returned by [`StreamingPartitioner::ingest`].
#[derive(Clone, Debug)]
pub struct BatchReport {
    pub vertices_added: usize,
    pub edges_added: usize,
    pub weight_updates: usize,
    /// Whether a refinement pass ran after this batch.
    pub refined: bool,
    pub rebalance_moves: usize,
    pub refine_moves: usize,
    /// Post-batch (post-refinement) imbalance.
    pub max_imbalance: f64,
    /// Post-batch (post-refinement) edge locality.
    pub edge_locality: f64,
}

/// The online partitioning engine.
pub struct StreamingPartitioner {
    cfg: StreamConfig,
    graph: DynamicGraph,
    store: PartitionStore,
    /// Vertices touched since the last refinement (new, re-weighted, or
    /// endpoint of a new edge) — the refinement active set grows a 1-hop
    /// halo around these.
    dirty: Vec<bool>,
    telemetry: StreamTelemetry,
    batches_since_refine: usize,
    refine_seed: u64,
}

impl StreamingPartitioner {
    /// Partitions `graph` from scratch with the paper's GD and starts
    /// streaming on top of the result.
    pub fn bootstrap(
        graph: Graph,
        weights: VertexWeights,
        cfg: StreamConfig,
    ) -> Result<Self, PartitionError> {
        cfg.validate()?;
        let mut gd_cfg = cfg.gd.clone();
        gd_cfg.epsilon = cfg.epsilon;
        let partition = GdPartitioner::new(gd_cfg).partition(&graph, &weights, cfg.k, cfg.seed)?;
        Self::from_partition(graph, weights, &partition, cfg)
    }

    /// Starts streaming on top of an existing partition (e.g. one loaded
    /// from a snapshot).
    pub fn from_partition(
        graph: Graph,
        weights: VertexWeights,
        partition: &Partition,
        cfg: StreamConfig,
    ) -> Result<Self, PartitionError> {
        cfg.validate()?;
        let n = graph.num_vertices();
        if partition.num_vertices() != n || weights.num_vertices() != n {
            return Err(PartitionError::DimensionMismatch {
                weights_n: weights.num_vertices(),
                graph_n: n,
            });
        }
        if partition.num_parts() != cfg.k {
            return Err(PartitionError::Config(format!(
                "partition has {} parts but config wants k = {}",
                partition.num_parts(),
                cfg.k
            )));
        }
        let mut store = PartitionStore::new(partition, &weights);
        store.rebuild_edge_stats(graph.edges());
        let refine_seed = cfg.seed;
        Ok(Self {
            cfg,
            graph: DynamicGraph::new(graph, weights),
            store,
            dirty: vec![false; n],
            telemetry: StreamTelemetry::default(),
            batches_since_refine: 0,
            refine_seed,
        })
    }

    /// Cold start: no vertices yet, everything arrives on the stream.
    pub fn empty(dims: usize, cfg: StreamConfig) -> Result<Self, PartitionError> {
        cfg.validate()?;
        let refine_seed = cfg.seed;
        let k = cfg.k;
        Ok(Self {
            cfg,
            graph: DynamicGraph::empty(dims),
            store: PartitionStore::new(
                &Partition::new(Vec::new(), k),
                &VertexWeights::from_vectors(vec![Vec::new(); dims]),
            ),
            dirty: Vec::new(),
            telemetry: StreamTelemetry::default(),
            batches_since_refine: 0,
            refine_seed,
        })
    }

    /// The serving-side store (O(1) `shard_of`, loads, locality).
    pub fn store(&self) -> &PartitionStore {
        &self.store
    }

    /// The evolving graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Lifetime telemetry.
    pub fn telemetry(&self) -> &StreamTelemetry {
        &self.telemetry
    }

    /// O(1) shard lookup.
    pub fn shard_of(&self, v: VertexId) -> u32 {
        self.store.shard_of(v)
    }

    /// Current partition snapshot (O(n)).
    pub fn partition(&self) -> Partition {
        self.store.to_partition()
    }

    /// Current maximum imbalance across dimensions.
    pub fn max_imbalance(&self) -> f64 {
        self.store.max_imbalance(self.graph.weights())
    }

    /// Validates a whole batch against the current state without applying
    /// anything, so `ingest` is all-or-nothing: an `Err` means no update
    /// was applied. Tracks the running vertex count so updates may
    /// reference vertices added earlier in the same batch.
    fn validate_batch(&self, batch: &UpdateBatch) -> Result<(), PartitionError> {
        let dims = self.graph.weights().dims();
        let positive = |w: f64| w.is_finite() && w > 0.0;
        let mut n = self.graph.num_vertices() as u64;
        for (i, update) in batch.updates.iter().enumerate() {
            match update {
                StreamUpdate::AddVertex { weights, .. } => {
                    if weights.len() != dims {
                        return Err(PartitionError::Config(format!(
                            "update {i}: arriving vertex has {} weights, stream has {dims} \
                             dimensions",
                            weights.len()
                        )));
                    }
                    if let Some(&w) = weights.iter().find(|&&w| !positive(w)) {
                        return Err(PartitionError::Config(format!(
                            "update {i}: vertex weight {w} must be positive finite"
                        )));
                    }
                    n += 1;
                }
                StreamUpdate::AddEdge { u, v } => {
                    if *u as u64 >= n || *v as u64 >= n {
                        return Err(PartitionError::Config(format!(
                            "update {i}: edge ({u}, {v}) references unknown vertices (n = {n})"
                        )));
                    }
                }
                StreamUpdate::SetWeight { v, dim, value } => {
                    if *v as u64 >= n || *dim >= dims {
                        return Err(PartitionError::Config(format!(
                            "update {i}: weight update ({v}, dim {dim}) out of range"
                        )));
                    }
                    if !positive(*value) {
                        return Err(PartitionError::Config(format!(
                            "update {i}: weight {value} must be positive finite"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Applies one batch: placement, compaction, drift check, refinement.
    /// All-or-nothing: the batch is validated up front, and an `Err`
    /// leaves the engine untouched.
    pub fn ingest(&mut self, batch: &UpdateBatch) -> Result<BatchReport, PartitionError> {
        self.validate_batch(batch)?;
        let mut vertices_added = 0usize;
        let mut edges_added = 0usize;
        let mut weight_updates = 0usize;
        let placer = LdgPlacer::new(self.cfg.epsilon);
        let mut neighbor_counts = vec![0usize; self.cfg.k];

        for update in &batch.updates {
            match update {
                StreamUpdate::AddVertex { weights, neighbors } => {
                    let v = self.graph.add_vertex(weights);
                    self.dirty.push(true);
                    vertices_added += 1;
                    // Materialize the adjacency, then place with it.
                    neighbor_counts.iter_mut().for_each(|c| *c = 0);
                    let mut new_edges: Vec<VertexId> = Vec::with_capacity(neighbors.len());
                    for &u in neighbors {
                        if u < v && self.graph.add_edge(v, u) {
                            neighbor_counts[self.store.shard_of(u) as usize] += 1;
                            new_edges.push(u);
                        }
                    }
                    let part =
                        placer.place(&self.store, self.graph.weights(), &neighbor_counts, weights);
                    self.store.push_assignment(part, weights);
                    for &u in &new_edges {
                        self.store.on_edge_added(v, u);
                        self.dirty[u as usize] = true;
                        edges_added += 1;
                    }
                    self.telemetry.vertices_placed += 1;
                }
                StreamUpdate::AddEdge { u, v } => {
                    if self.graph.add_edge(*u, *v) {
                        self.store.on_edge_added(*u, *v);
                        self.dirty[*u as usize] = true;
                        self.dirty[*v as usize] = true;
                        edges_added += 1;
                    }
                }
                StreamUpdate::SetWeight { v, dim, value } => {
                    let old = self.graph.weights().weight(*dim, *v);
                    self.graph.set_weight(*v, *dim, *value);
                    self.store.apply_weight_change(*v, *dim, old, *value);
                    self.dirty[*v as usize] = true;
                    weight_updates += 1;
                }
            }
        }

        self.telemetry.batches += 1;
        self.telemetry.edges_added += edges_added;
        self.telemetry.weight_updates += weight_updates;
        self.batches_since_refine += 1;

        if self.graph.needs_compaction(self.cfg.compact_slack) {
            self.graph.compact();
            self.telemetry.compactions += 1;
        }

        // Drift telemetry: refine when ε is threatened, or on schedule.
        let imbalance = self.max_imbalance();
        let drift_trigger = imbalance > self.cfg.drift_headroom * self.cfg.epsilon;
        let schedule_trigger =
            self.cfg.refine_every > 0 && self.batches_since_refine >= self.cfg.refine_every;
        let (rebalance_moves, refine_moves) = if drift_trigger || schedule_trigger {
            self.refine_now()?
        } else {
            (0, 0)
        };

        Ok(BatchReport {
            vertices_added,
            edges_added,
            weight_updates,
            refined: drift_trigger || schedule_trigger,
            rebalance_moves,
            refine_moves,
            max_imbalance: self.max_imbalance(),
            edge_locality: self.store.edge_locality(),
        })
    }

    /// Runs a refinement pass unconditionally. Returns
    /// `(rebalance_moves, refine_moves)`.
    pub fn refine_now(&mut self) -> Result<(usize, usize), PartitionError> {
        let started = Instant::now();
        self.graph.compact();

        let rebalance_moves = self.greedy_rebalance();

        // Active set: dirty vertices (including any the rebalance just
        // moved) plus their 1-hop halo — the GD pass may move exactly
        // these; everything else is frozen.
        let n = self.graph.num_vertices();
        let mut active = self.dirty.clone();
        for v in 0..n as VertexId {
            if self.dirty[v as usize] {
                for u in self.graph.neighbors(v) {
                    active[u as usize] = true;
                }
            }
        }

        // Warm-started pairwise GD around the churn. The graph was just
        // compacted, so the immutable `csr()` view is the full graph.
        let mut refine_moves = 0usize;
        if n > 0 {
            let mut partition = self.partition();
            let frozen: Vec<bool> = active.iter().map(|&a| !a).collect();
            let mut gd_cfg = self.cfg.gd.clone();
            gd_cfg.epsilon = self.cfg.epsilon;
            gd_cfg.iterations = self.cfg.refine_iterations;
            gd_cfg.track_history = false;
            let gd = GdPartitioner::new(gd_cfg);

            let pairs = GdPartitioner::rank_pairs_by_active_cut(
                self.graph.csr(),
                &partition,
                &active,
                self.cfg.max_refine_pairs,
            );
            for pair in pairs {
                self.refine_seed = self
                    .refine_seed
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(1);
                let outcome = gd.refine_pair(
                    self.graph.csr(),
                    self.graph.weights(),
                    &partition,
                    pair,
                    &frozen,
                    self.refine_seed,
                )?;
                for &(v, part) in &outcome.moves {
                    let row: Vec<f64> = (0..self.graph.weights().dims())
                        .map(|j| self.graph.weights().weight(j, v))
                        .collect();
                    self.store.move_vertex(v, part, &row);
                    partition.assign(v, part);
                    refine_moves += 1;
                }
            }
        }

        // Locality counters are cheapest to rebuild wholesale after moves.
        self.store.rebuild_edge_stats(self.graph.csr().edges());

        self.dirty.iter_mut().for_each(|d| *d = false);
        self.batches_since_refine = 0;
        self.telemetry.refinements += 1;
        self.telemetry.rebalance_moves += rebalance_moves;
        self.telemetry.refine_moves += refine_moves;
        self.telemetry.last_refine_secs = started.elapsed().as_secs_f64();
        Ok((rebalance_moves, refine_moves))
    }

    /// Greedy multi-constraint rebalance toward the drift-trigger
    /// threshold.
    ///
    /// Minimizes the potential `Φ = Σ_{p,j} max(0, load_ratio(p,j) − t)²`
    /// with `t = drift_headroom · ε` (sum of squared per-part
    /// per-dimension violations of the *trigger* threshold, not ε itself —
    /// repairing only to ε would leave the imbalance inside the trigger
    /// band and re-run refinement on every subsequent batch): each step
    /// applies the single vertex move — or, when every single move is
    /// blocked by a cross-dimension deadlock, the best sampled vertex
    /// *swap* — that decreases Φ the most. Squared violations make the
    /// pass handle ties at the maximum (where a strict max-decrease rule
    /// stalls) and guarantee monotone progress; Φ = 0 restores slack below
    /// the trigger. Locality is repaired afterwards by the pairwise GD
    /// pass. One pass over the vertices per move (plus O(deg) locality
    /// scoring for improving candidates). Returns the number of moved
    /// vertices.
    fn greedy_rebalance(&mut self) -> usize {
        let target = self.cfg.epsilon * self.cfg.drift_headroom.min(1.0);
        let k = self.cfg.k;
        let dims = self.graph.weights().dims();
        let mut moves = 0usize;
        while moves < self.cfg.max_rebalance_moves {
            let weights = self.graph.weights();
            let avgs: Vec<f64> = (0..dims).map(|j| weights.total(j) / k as f64).collect();
            // Per-part potential contribution.
            let part_phi = |store: &PartitionStore, p: u32| -> f64 {
                (0..dims)
                    .map(|j| {
                        let viol = (store.load(p, j) / avgs[j] - 1.0 - target).max(0.0);
                        viol * viol
                    })
                    .sum()
            };
            let phis: Vec<f64> = (0..k as u32).map(|p| part_phi(&self.store, p)).collect();
            let phi_total: f64 = phis.iter().sum();
            if phi_total <= 0.0 {
                break; // below the trigger threshold in every dimension
            }
            // Work on the worst offender; its most violated dimension
            // steers the swap sampling below.
            let src = (0..k as u32)
                .max_by(|&a, &b| phis[a as usize].partial_cmp(&phis[b as usize]).unwrap())
                .unwrap();
            let dim = (0..dims)
                .max_by(|&a, &b| {
                    let ra = self.store.load(src, a) / avgs[a];
                    let rb = self.store.load(src, b) / avgs[b];
                    ra.partial_cmp(&rb).unwrap()
                })
                .unwrap();

            // Post-move Φ of the two affected parts, given the signed
            // weight delta `dv[j]` leaving src for dst.
            let pair_phi_after = |store: &PartitionStore, dst: u32, dv: &[f64]| -> f64 {
                let mut phi = 0.0;
                for j in 0..dims {
                    let s = ((store.load(src, j) - dv[j]) / avgs[j] - 1.0 - target).max(0.0);
                    let d = ((store.load(dst, j) + dv[j]) / avgs[j] - 1.0 - target).max(0.0);
                    phi += s * s + d * d;
                }
                phi
            };

            // Best single move: minimize Φ, tie-break on locality gain.
            // One pass over the vertices; inner loop over the k−1
            // destinations reuses the weight row.
            let mut dv = vec![0.0f64; dims];
            let mut best_move: Option<(VertexId, u32, f64, i64)> = None;
            for v in 0..self.store.num_vertices() as VertexId {
                if self.store.shard_of(v) != src {
                    continue;
                }
                for (j, slot) in dv.iter_mut().enumerate() {
                    *slot = weights.weight(j, v);
                }
                for dst in (0..k as u32).filter(|&q| q != src) {
                    let pair_before = phis[src as usize] + phis[dst as usize];
                    let delta = pair_phi_after(&self.store, dst, &dv) - pair_before;
                    if delta >= -1e-18 {
                        continue;
                    }
                    let new_phi = phi_total + delta;
                    let gain = self.locality_gain(v, src, dst);
                    let better = match best_move {
                        None => true,
                        Some((_, _, bp, bg)) => {
                            new_phi < bp - 1e-15 || (new_phi < bp + 1e-15 && gain > bg)
                        }
                    };
                    if better {
                        best_move = Some((v, dst, new_phi, gain));
                    }
                }
            }
            if let Some((v, dst, _, _)) = best_move {
                let row: Vec<f64> = (0..dims).map(|j| weights.weight(j, v)).collect();
                self.store.move_vertex(v, dst, &row);
                self.dirty[v as usize] = true;
                moves += 1;
                continue;
            }

            // Cross-dimension deadlock (e.g. the only part with headroom in
            // `dim` is itself pinned in another dimension): sample swaps
            // that shed `dim` outbound and relieve the partner's own
            // binding dimension inbound. Membership lists are collected
            // once per move and the top candidates selected in O(p).
            let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); k];
            for v in 0..self.store.num_vertices() as VertexId {
                members[self.store.shard_of(v) as usize].push(v);
            }
            let mut best_swap: Option<(VertexId, VertexId, u32, f64)> = None;
            for dst in (0..k as u32).filter(|&q| q != src) {
                let pair_before = phis[src as usize] + phis[dst as usize];
                let binding = (0..dims)
                    .max_by(|&a, &b| {
                        let ra = self.store.load(dst, a) / avgs[a];
                        let rb = self.store.load(dst, b) / avgs[b];
                        ra.partial_cmp(&rb).unwrap()
                    })
                    .unwrap();
                let out_score = |v: VertexId| {
                    weights.weight(dim, v) / avgs[dim] - weights.weight(binding, v) / avgs[binding]
                };
                let in_score = |u: VertexId| {
                    weights.weight(binding, u) / avgs[binding] - weights.weight(dim, u) / avgs[dim]
                };
                let src_out = top_by(&members[src as usize], 16, out_score);
                let dst_in = top_by(&members[dst as usize], 16, in_score);
                for &v in &src_out {
                    for &u in &dst_in {
                        for (j, slot) in dv.iter_mut().enumerate() {
                            *slot = weights.weight(j, v) - weights.weight(j, u);
                        }
                        let delta = pair_phi_after(&self.store, dst, &dv) - pair_before;
                        if delta >= -1e-18 {
                            continue;
                        }
                        let new_phi = phi_total + delta;
                        if best_swap.as_ref().is_none_or(|&(_, _, _, bp)| new_phi < bp) {
                            best_swap = Some((v, u, dst, new_phi));
                        }
                    }
                }
            }
            let Some((v, u, dst, _)) = best_swap else {
                break; // genuinely stuck — the pass is best-effort
            };
            let row_v: Vec<f64> = (0..dims).map(|j| weights.weight(j, v)).collect();
            let row_u: Vec<f64> = (0..dims).map(|j| weights.weight(j, u)).collect();
            self.store.move_vertex(v, dst, &row_v);
            self.store.move_vertex(u, src, &row_u);
            self.dirty[v as usize] = true;
            self.dirty[u as usize] = true;
            moves += 2;
        }
        moves
    }

    /// Net intra-edge change if `v` moved from `src` to `dst`.
    fn locality_gain(&self, v: VertexId, src: u32, dst: u32) -> i64 {
        let mut gain = 0i64;
        for u in self.graph.neighbors(v) {
            let pu = self.store.shard_of(u);
            if pu == dst {
                gain += 1;
            } else if pu == src {
                gain -= 1;
            }
        }
        gain
    }
}

/// The `limit` highest-scoring vertices of `list` (O(p) selection, order
/// within the result unspecified).
fn top_by(list: &[VertexId], limit: usize, score: impl Fn(VertexId) -> f64) -> Vec<VertexId> {
    let mut v = list.to_vec();
    if v.len() > limit {
        v.select_nth_unstable_by(limit - 1, |&a, &b| score(b).partial_cmp(&score(a)).unwrap());
        v.truncate(limit);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::gen;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn community(n: usize, seed: u64) -> (Graph, VertexWeights) {
        let cg = gen::community_graph(
            &gen::CommunityGraphConfig::social(n),
            &mut StdRng::seed_from_u64(seed),
        );
        let w = VertexWeights::vertex_edge(&cg.graph);
        (cg.graph, w)
    }

    fn fast_cfg(k: usize, eps: f64) -> StreamConfig {
        let mut cfg = StreamConfig::new(k, eps);
        cfg.gd = GdConfig {
            iterations: 40,
            ..GdConfig::with_epsilon(eps)
        };
        cfg
    }

    #[test]
    fn bootstrap_and_serve() {
        let (g, w) = community(800, 1);
        let sp = StreamingPartitioner::bootstrap(g, w, fast_cfg(4, 0.05)).unwrap();
        assert!(sp.max_imbalance() <= 0.05 + 1e-9);
        assert!(sp.store().edge_locality() > 0.25);
        assert!(sp.shard_of(0) < 4);
    }

    #[test]
    fn ingest_places_arrivals_within_epsilon() {
        let (g, w) = community(600, 2);
        let mut sp = StreamingPartitioner::bootstrap(g, w, fast_cfg(4, 0.05)).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5 {
            let mut batch = UpdateBatch::new();
            for _ in 0..30 {
                let n = 600; // conservative: attach to bootstrap vertices
                let nbrs: Vec<u32> = (0..4).map(|_| rng.gen_range(0..n as u32)).collect();
                batch.add_vertex(vec![1.0, nbrs.len() as f64], nbrs);
            }
            let report = sp.ingest(&batch).unwrap();
            assert!(
                report.max_imbalance <= 0.05 + 1e-9,
                "imbalance {} after batch",
                report.max_imbalance
            );
        }
        assert_eq!(sp.graph().num_vertices(), 750);
        assert_eq!(sp.telemetry().vertices_placed, 150);
    }

    #[test]
    fn weight_drift_triggers_refinement_and_recovers_epsilon() {
        let (g, w) = community(600, 3);
        let mut cfg = fast_cfg(4, 0.05);
        cfg.max_rebalance_moves = 1024;
        let mut sp = StreamingPartitioner::bootstrap(g, w, cfg).unwrap();
        // Drift: inflate the unit weight of one shard's vertices 3x.
        let victims: Vec<u32> = (0..600u32).filter(|&v| sp.shard_of(v) == 0).collect();
        let mut batch = UpdateBatch::new();
        for &v in &victims {
            batch.set_weight(v, 0, 3.0);
        }
        let report = sp.ingest(&batch).unwrap();
        assert!(report.refined, "drift must trigger refinement");
        assert!(
            report.max_imbalance <= 0.05 + 1e-9,
            "refinement must restore ε, got {}",
            report.max_imbalance
        );
        assert!(sp.telemetry().refinements >= 1);
    }

    #[test]
    fn edge_stream_between_existing_vertices() {
        let (g, w) = community(400, 4);
        let m0 = g.num_edges();
        let mut sp = StreamingPartitioner::bootstrap(g, w, fast_cfg(2, 0.05)).unwrap();
        let mut batch = UpdateBatch::new();
        batch.add_edge(0, 200).add_edge(1, 300).add_edge(0, 200); // dup ignored
        let report = sp.ingest(&batch).unwrap();
        assert!(report.edges_added <= 2);
        assert!(sp.graph().num_edges() <= m0 + 2);
    }

    #[test]
    fn cold_start_streams_from_nothing() {
        let mut cfg = fast_cfg(2, 0.3);
        cfg.refine_every = 0;
        let mut sp = StreamingPartitioner::empty(1, cfg).unwrap();
        let mut batch = UpdateBatch::new();
        for i in 0..40u32 {
            let nbrs = if i == 0 { vec![] } else { vec![i - 1] };
            batch.add_vertex(vec![1.0], nbrs);
        }
        sp.ingest(&batch).unwrap();
        assert_eq!(sp.graph().num_vertices(), 40);
        assert_eq!(sp.graph().num_edges(), 39);
        assert!(sp.max_imbalance() <= 0.3 + 1e-9, "{}", sp.max_imbalance());
    }

    #[test]
    fn rejects_malformed_updates() {
        let (g, w) = community(100, 5);
        let mut sp = StreamingPartitioner::bootstrap(g, w, fast_cfg(2, 0.1)).unwrap();
        let mut bad_arity = UpdateBatch::new();
        bad_arity.add_vertex(vec![1.0], vec![]);
        assert!(sp.ingest(&bad_arity).is_err(), "dims mismatch");
        let mut bad_edge = UpdateBatch::new();
        bad_edge.add_edge(0, 10_000);
        assert!(sp.ingest(&bad_edge).is_err());
        let mut bad_weight = UpdateBatch::new();
        bad_weight.set_weight(0, 7, 1.0);
        assert!(sp.ingest(&bad_weight).is_err());
        // Non-positive / non-finite weight values are Err, not panics.
        let mut zero_weight = UpdateBatch::new();
        zero_weight.set_weight(0, 0, 0.0);
        assert!(sp.ingest(&zero_weight).is_err());
        let mut nan_vertex = UpdateBatch::new();
        nan_vertex.add_vertex(vec![1.0, f64::NAN], vec![]);
        assert!(sp.ingest(&nan_vertex).is_err());
    }

    #[test]
    fn ingest_is_all_or_nothing() {
        // A bad update anywhere in the batch must leave the engine
        // untouched — callers may retry a corrected batch safely.
        let (g, w) = community(100, 7);
        let mut sp = StreamingPartitioner::bootstrap(g, w, fast_cfg(2, 0.1)).unwrap();
        let before_n = sp.graph().num_vertices();
        let before_m = sp.graph().num_edges();
        let before_t = sp.telemetry().clone();
        let mut batch = UpdateBatch::new();
        batch.add_vertex(vec![1.0, 2.0], vec![0, 1]);
        batch.add_edge(0, 50_000); // invalid mid-batch
        assert!(sp.ingest(&batch).is_err());
        assert_eq!(
            sp.graph().num_vertices(),
            before_n,
            "vertex leaked from failed batch"
        );
        assert_eq!(sp.graph().num_edges(), before_m);
        assert_eq!(
            sp.telemetry(),
            &before_t,
            "telemetry advanced on failed batch"
        );
        // An edge referencing a vertex added earlier in the same batch is
        // valid.
        let mut ok = UpdateBatch::new();
        ok.add_vertex(vec![1.0, 1.0], vec![0]);
        ok.add_edge(100, 5);
        let report = sp.ingest(&ok).unwrap();
        assert_eq!(report.vertices_added, 1);
        assert_eq!(report.edges_added, 2);
    }

    #[test]
    fn drift_trigger_clears_after_refinement() {
        // Rebalance must repair below the trigger threshold
        // (drift_headroom·ε), not merely to ε, or every subsequent batch
        // re-runs a full refinement pass.
        let (g, w) = community(600, 9);
        let mut cfg = fast_cfg(4, 0.05);
        cfg.max_rebalance_moves = 2048;
        let mut sp = StreamingPartitioner::bootstrap(g, w, cfg.clone()).unwrap();
        let victims: Vec<u32> = (0..600u32).filter(|&v| sp.shard_of(v) == 0).collect();
        let mut batch = UpdateBatch::new();
        for &v in &victims {
            batch.set_weight(v, 0, 3.0);
        }
        let report = sp.ingest(&batch).unwrap();
        assert!(report.refined);
        assert!(
            sp.max_imbalance() <= cfg.drift_headroom * cfg.epsilon + 1e-9,
            "rebalance must clear the trigger band, got {}",
            sp.max_imbalance()
        );
        // A benign follow-up batch must not re-trigger refinement.
        let refinements_before = sp.telemetry().refinements;
        let mut benign = UpdateBatch::new();
        benign.add_edge(0, 1);
        let report = sp.ingest(&benign).unwrap();
        assert!(
            !report.refined,
            "steady state must not re-trigger refinement"
        );
        assert_eq!(sp.telemetry().refinements, refinements_before);
    }

    #[test]
    fn from_partition_validates_shapes() {
        let (g, w) = community(100, 6);
        let p = Partition::new(vec![0; 100], 2);
        let cfg = fast_cfg(4, 0.1);
        assert!(
            StreamingPartitioner::from_partition(g, w, &p, cfg).is_err(),
            "k mismatch must be rejected"
        );
    }
}
