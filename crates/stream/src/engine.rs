//! [`StreamingPartitioner`]: the staged ingest pipeline
//! `validate → split → speculative placement → conflict repair → commit →
//! refine`.
//!
//! The engine owns the [`DynamicGraph`], the serving-side
//! [`PartitionStore`], and the refinement machinery. Per batch it
//!
//! 1. **validates** the whole batch against the current state (plus a
//!    simulation of the ids the batch itself will create or recycle), so
//!    ingestion is all-or-nothing;
//! 2. **splits** the batch: updates apply to the graph in order —
//!    tombstoning removed edges/vertices, releasing their capacity — but
//!    arrivals are only collected, not placed
//!    (`pipeline::SplitOutcome`); every decision is made serially against
//!    a mutation overlay while the O(deg) adjacency splices buffer into
//!    per-vertex net lists, flushed concurrently by vertex range at the
//!    end of the stage;
//! 3. **places speculatively**: fixed-size chunks of arrivals are scored
//!    concurrently on the worker pool against a frozen load snapshot, each
//!    chunk holding its own capacity reservations
//!    (`pipeline::speculative_place`);
//! 4. **repairs conflicts**: oversubscribed `(part, dimension)` slots are
//!    detected after merging the chunk reservations, and the losers are
//!    re-placed in stable arrival order (`pipeline::conflict_repair`) —
//!    large loser sets through bounded speculative repair rounds of
//!    concurrent arrival-order chunks, small remainders serially — so
//!    `threads = 1` and `threads = N` produce byte-identical partitions
//!    by construction;
//! 5. **commits** the assignments into the store — the serial walk does
//!    the scalar accounting while the rebalance-heap pushes are staged
//!    and replayed concurrently per heap in serial order — and settles
//!    the deferred edge accounting;
//! 6. compacts once the churn outgrows the base CSR (a purge remaps ids;
//!    the map is surfaced in [`BatchReport::remap`]), checks the drift
//!    telemetry, and — when ε is threatened or a scheduled interval
//!    elapses — runs **incremental refinement**: a greedy multi-constraint
//!    rebalance (restores ε-feasibility, in the spirit of Maas-style
//!    greedy repartitioning) followed by warm-started pairwise GD
//!    ([`GdPartitioner::refine_pair`]) that re-optimizes locality around
//!    the churn with all untouched vertices frozen.
//!
//! Per-stage wall-clocks are reported in [`BatchReport::timings`];
//! placement conflicts and repair passes land in both the report and the
//! lifetime [`StreamTelemetry`].
//!
//! The drift trigger reads the **live** totals of the store, so removals
//! register in both directions: weight leaving an overloaded part relaxes
//! the pressure (no spurious refinement), while draining one part shrinks
//! the per-part average and surfaces every other part's relative overload
//! (refinement fires even though no load was added anywhere).
//!
//! The result is that a batch of updates costs a parallel placement sweep
//! plus a few cheap GD iterations over the affected pairs, instead of a
//! full from-scratch solve.

use crate::delta::{StreamUpdate, UpdateBatch};
use crate::dynamic::DynamicGraph;
use crate::pipeline::{
    conflict_repair, speculative_place, DeferredEffect, PendingArrival, SplitOutcome, StageTimings,
};
use crate::store::PartitionStore;
use crate::TOMBSTONE;
use mdbgp_core::{parallel, GdConfig, GdPartitioner, GdWorkspace, PairOutcome};
use mdbgp_graph::{Graph, Partition, PartitionError, Partitioner, VertexId, VertexWeights};
use mdbgp_obs::{MetricsRegistry, SpanNode, SpanTree};
use std::time::Instant;

/// Every metric name the engine records — the registry allowlist that
/// [`mdbgp_obs::validate_dump`] checks dumps against, so a typo'd name
/// fails CI instead of silently forking a new time series. Span-derived
/// `span.<path>_us` histograms are validated structurally (against the
/// dump's own span section) and are not listed here. Keep sorted.
pub const METRIC_ALLOWLIST: &[&str] = &[
    "core.gd.frontier_mean",
    "core.gd.grad_delta_iters",
    "core.gd.grad_full_recomputes",
    "core.gd.grad_norm_decay_pct",
    "core.gd.last_grad_norm_first",
    "core.gd.last_grad_norm_last",
    "core.gd.pairs_applied",
    "core.gd.pairs_degenerate",
    "core.gd.pairs_rejected_balance",
    "core.gd.pairs_rejected_cut",
    "core.gd.refine_iterations",
    "stream.balance.edge_locality",
    "stream.balance.max_imbalance",
    "stream.compact.merges",
    "stream.compact.parallel_ms",
    "stream.compact.purges",
    "stream.ingest.arrivals",
    "stream.ingest.batches",
    "stream.ingest.edges_added",
    "stream.ingest.edges_removed",
    "stream.ingest.removals",
    "stream.ingest.weight_updates",
    "stream.log.bytes",
    "stream.log.records",
    "stream.log.rotations",
    "stream.place.conflicts",
    "stream.place.repair_passes",
    "stream.refine.drift_triggers",
    "stream.refine.full_scans",
    "stream.refine.gd_moves",
    "stream.refine.passes",
    "stream.refine.rebalance_moves",
    "stream.refine.schedule_triggers",
    "stream.repair.spec_rounds",
    "stream.replica.batches_replayed",
    "stream.replica.divergence_checks",
    "stream.snapshot.restores",
    "stream.snapshot.saves",
    "stream.split.parallel_ranges",
    "stream.store.heap_pops",
    "stream.store.live_vertices",
    "stream.store.lookup_us",
    "stream.store.lookups",
    "stream.store.stale_epoch_reads",
    "stream.store.view_swaps",
];

/// Configuration of the streaming subsystem.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Number of shards `k`.
    pub k: usize,
    /// Balance tolerance ε maintained across every weight dimension.
    pub epsilon: f64,
    /// GD configuration template (bootstrap and refinement inherit
    /// everything except `epsilon` and, for refinement, `iterations`).
    pub gd: GdConfig,
    /// GD iterations per warm-started pair refinement — the paper uses 100
    /// for a cold solve; a warm start needs far fewer.
    pub refine_iterations: usize,
    /// Maximum part pairs re-bisected per refinement pass.
    pub max_refine_pairs: usize,
    /// Compact the delta once it exceeds this fraction of base edges.
    pub compact_slack: f64,
    /// Refine every this many batches even without drift (0 = drift-only).
    pub refine_every: usize,
    /// Drift trigger: refine when `max_imbalance > drift_headroom · ε`.
    pub drift_headroom: f64,
    /// Upper bound on greedy rebalance moves per refinement pass.
    pub max_rebalance_moves: usize,
    /// Seed for bootstrap and refinement (incremented per refinement).
    pub seed: u64,
    /// Worker threads for the parallel paths (1 = fully serial): the
    /// bootstrap/refinement GD mat-vec, the pairwise refinement rounds
    /// (part-disjoint pairs run concurrently), and the LDG placement
    /// scoring sweep for large `k`. Overrides [`GdConfig::threads`] on the
    /// embedded GD configuration.
    pub threads: usize,
}

impl StreamConfig {
    /// Defaults tuned for social-graph streams: drift-triggered refinement
    /// with 15 warm GD iterations over at most 4 pairs.
    pub fn new(k: usize, epsilon: f64) -> Self {
        Self {
            k,
            epsilon,
            gd: GdConfig::with_epsilon(epsilon),
            refine_iterations: 15,
            max_refine_pairs: 4,
            compact_slack: 0.15,
            refine_every: 0,
            drift_headroom: 0.9,
            max_rebalance_moves: 256,
            seed: 42,
            threads: 1,
        }
    }

    /// Sets the worker-thread count (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn validate(&self) -> Result<(), PartitionError> {
        if self.k == 0 {
            return Err(PartitionError::Config("k must be positive".into()));
        }
        if self.threads == 0 {
            return Err(PartitionError::Config("threads must be positive".into()));
        }
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(PartitionError::Config(format!(
                "epsilon must be in (0, 1), got {}",
                self.epsilon
            )));
        }
        if self.refine_iterations == 0 {
            return Err(PartitionError::Config(
                "refine_iterations must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Lifetime counters exposed for dashboards and tests.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StreamTelemetry {
    pub batches: usize,
    pub vertices_placed: usize,
    pub vertices_removed: usize,
    pub edges_added: usize,
    pub edges_removed: usize,
    pub weight_updates: usize,
    /// Compactions that actually merged churn into the base CSR — both
    /// slack-triggered ones and the unconditional pre-refinement ones.
    pub compactions: usize,
    /// The subset of `compactions` that purged tombstoned vertices and
    /// remapped ids.
    pub remaps: usize,
    pub refinements: usize,
    pub rebalance_moves: usize,
    /// Rebalance moves whose candidate came from a full membership rescan
    /// because every heap candidate overshot (rare; the common path pops
    /// O(log n) candidates off the per-part heaps).
    pub rebalance_full_scans: usize,
    pub refine_moves: usize,
    /// Speculative placements evicted by the conflict-repair stage because
    /// concurrent chunks oversubscribed a `(part, dimension)` slot. High
    /// counts mean the batch's arrivals fight for the same parts (e.g. one
    /// hot community) — placement quality degrades toward balance-only for
    /// the losers.
    pub placement_conflicts: usize,
    /// Repair passes that actually evicted and re-placed arrivals (0 for a
    /// conflict-free batch; almost always 1 otherwise).
    pub repair_passes: usize,
    /// Wall-clock seconds of the most recent refinement pass.
    pub last_refine_secs: f64,
}

/// Per-batch outcome returned by [`StreamingPartitioner::ingest`].
///
/// Equality **intentionally ignores** [`Self::spans`] (and therefore the
/// [`Self::timings`] view over it): wall-clocks are measurement, never
/// reproducible, while everything else is outcome — so tests can assert
/// that two engines — e.g. `threads = 1` vs `threads = 4` — produced
/// semantically identical batches. A unit test
/// (`batch_report_equality_ignores_spans`) pins this contract.
#[derive(Clone, Debug)]
pub struct BatchReport {
    pub vertices_added: usize,
    pub vertices_removed: usize,
    pub edges_added: usize,
    pub edges_removed: usize,
    pub weight_updates: usize,
    /// Whether a refinement pass ran after this batch.
    pub refined: bool,
    pub rebalance_moves: usize,
    pub refine_moves: usize,
    /// Speculative placements the conflict-repair stage evicted and
    /// re-placed this batch.
    pub placement_conflicts: usize,
    /// Repair passes this batch (0 = the speculative placement was
    /// conflict-free).
    pub repair_passes: usize,
    /// How many of those passes re-placed their losers speculatively
    /// (concurrent arrival-order chunks) instead of serially. Determined
    /// entirely by the batch (loser-set sizes against
    /// [`crate::pipeline::REPAIR_SERIAL_THRESHOLD`]), never by the thread
    /// count.
    pub repair_spec_rounds: usize,
    /// Post-batch (post-refinement) imbalance.
    pub max_imbalance: f64,
    /// Post-batch (post-refinement) edge locality.
    pub edge_locality: f64,
    /// Old→new vertex-id map if a compaction purged tombstoned vertices
    /// during this batch (`remap[old]` is the new id, [`crate::TOMBSTONE`]
    /// for dropped ids). Callers holding vertex ids **must** rewrite them;
    /// ids are stable whenever this is `None`. Two purges in one batch
    /// arrive pre-composed into a single map.
    pub remap: Option<Vec<VertexId>>,
    /// The engine id of every `AddVertex` in this batch, in batch order,
    /// already expressed in the **final** id space of this report (i.e.
    /// post-[`Self::remap`]); [`crate::TOMBSTONE`] for an arrival the same
    /// batch removed again. Under churn ids are **recycled** from purged
    /// slots, so callers must read the assigned ids from here instead of
    /// predicting `previous id-space size + offset`.
    pub arrival_ids: Vec<VertexId>,
    /// Span tree of this ingest (excluded from equality): the root
    /// `"ingest"` node with one child per pipeline stage and the
    /// refinement sub-spans nested under `"refine"`.
    pub spans: SpanNode,
}

impl BatchReport {
    /// Per-stage wall-clocks of this ingest — a view derived from
    /// [`Self::spans`], so the flat timings and the span tree can never
    /// drift apart.
    pub fn timings(&self) -> StageTimings {
        StageTimings::from_spans(&self.spans)
    }
}

impl PartialEq for BatchReport {
    fn eq(&self, other: &Self) -> bool {
        // Everything except `spans`, which is measurement, not outcome.
        self.vertices_added == other.vertices_added
            && self.vertices_removed == other.vertices_removed
            && self.edges_added == other.edges_added
            && self.edges_removed == other.edges_removed
            && self.weight_updates == other.weight_updates
            && self.refined == other.refined
            && self.rebalance_moves == other.rebalance_moves
            && self.refine_moves == other.refine_moves
            && self.placement_conflicts == other.placement_conflicts
            && self.repair_passes == other.repair_passes
            && self.repair_spec_rounds == other.repair_spec_rounds
            && self.max_imbalance == other.max_imbalance
            && self.edge_locality == other.edge_locality
            && self.remap == other.remap
            && self.arrival_ids == other.arrival_ids
    }
}

impl std::fmt::Debug for StreamingPartitioner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingPartitioner")
            .field("k", &self.cfg.k)
            .field("dims", &self.graph.weights().dims())
            .field("num_vertices", &self.graph.num_vertices())
            .field("num_edges", &self.graph.num_edges())
            .field("id_epoch", &self.id_epoch)
            .field("batches", &self.telemetry.batches)
            .finish_non_exhaustive()
    }
}

/// The online partitioning engine.
pub struct StreamingPartitioner {
    cfg: StreamConfig,
    graph: DynamicGraph,
    store: PartitionStore,
    /// Vertices touched since the last refinement (new, re-weighted, or
    /// endpoint of an added/removed edge) — the refinement active set
    /// grows a 1-hop halo around these.
    dirty: Vec<bool>,
    /// Composed old→new id map of every purging compaction since the last
    /// [`Self::take_remap`] (drained into [`BatchReport::remap`] by
    /// `ingest`).
    pending_remap: Option<Vec<VertexId>>,
    /// Like `pending_remap`, but drained at every **view publication**
    /// instead of every report: the old→new map composed since the
    /// previous published view, carried by the next one so readers can
    /// translate pinned ids across the purge. The two drains happen at
    /// different times, hence two composition chains over the same maps.
    view_remap: Option<Vec<VertexId>>,
    telemetry: StreamTelemetry,
    batches_since_refine: usize,
    refine_seed: u64,
    /// Number of purging compactions this engine's id space has gone
    /// through — the version external id holders must match (see
    /// [`Self::id_epoch`]).
    id_epoch: u64,
    /// Metrics / span / journal sink. **Not** serialized into snapshots —
    /// observability counters restart from zero on restore (a restored
    /// engine immediately journals a `snapshot.restore` event, so dumps
    /// are self-describing about the reset).
    obs: MetricsRegistry,
    /// Per-worker GD iterate storage, reused across every pair of every
    /// disjoint refine round and across batches (grown on demand to the
    /// round's worker count). Pure scratch — **not** serialized into
    /// snapshots; a restored engine re-grows an empty pool and produces
    /// byte-identical results because a [`GdWorkspace`] carries no state
    /// between solves.
    workspaces: Vec<GdWorkspace>,
}

impl StreamingPartitioner {
    /// Partitions `graph` from scratch with the paper's GD and starts
    /// streaming on top of the result.
    pub fn bootstrap(
        graph: Graph,
        weights: VertexWeights,
        cfg: StreamConfig,
    ) -> Result<Self, PartitionError> {
        cfg.validate()?;
        let mut gd_cfg = cfg.gd.clone();
        gd_cfg.epsilon = cfg.epsilon;
        gd_cfg.threads = cfg.threads;
        let partition = GdPartitioner::new(gd_cfg).partition(&graph, &weights, cfg.k, cfg.seed)?;
        Self::from_partition(graph, weights, &partition, cfg)
    }

    /// Starts streaming on top of an existing partition (e.g. one loaded
    /// from a snapshot).
    pub fn from_partition(
        graph: Graph,
        weights: VertexWeights,
        partition: &Partition,
        cfg: StreamConfig,
    ) -> Result<Self, PartitionError> {
        cfg.validate()?;
        let n = graph.num_vertices();
        if partition.num_vertices() != n || weights.num_vertices() != n {
            return Err(PartitionError::DimensionMismatch {
                weights_n: weights.num_vertices(),
                graph_n: n,
            });
        }
        if partition.num_parts() != cfg.k {
            return Err(PartitionError::Config(format!(
                "partition has {} parts but config wants k = {}",
                partition.num_parts(),
                cfg.k
            )));
        }
        let mut store = PartitionStore::new(partition, &weights);
        store.rebuild_edge_stats(graph.edges());
        store.set_threads(cfg.threads);
        let mut graph = DynamicGraph::new(graph, weights);
        graph.set_threads(cfg.threads);
        let refine_seed = cfg.seed;
        Ok(Self {
            cfg,
            graph,
            store,
            dirty: vec![false; n],
            pending_remap: None,
            view_remap: None,
            telemetry: StreamTelemetry::default(),
            batches_since_refine: 0,
            refine_seed,
            id_epoch: 0,
            obs: MetricsRegistry::new(),
            workspaces: Vec::new(),
        })
    }

    /// Cold start: no vertices yet, everything arrives on the stream.
    pub fn empty(dims: usize, cfg: StreamConfig) -> Result<Self, PartitionError> {
        cfg.validate()?;
        let refine_seed = cfg.seed;
        let k = cfg.k;
        let mut graph = DynamicGraph::empty(dims);
        graph.set_threads(cfg.threads);
        let mut store = PartitionStore::new(
            &Partition::new(Vec::new(), k),
            &VertexWeights::from_vectors(vec![Vec::new(); dims]),
        );
        store.set_threads(cfg.threads);
        Ok(Self {
            cfg,
            graph,
            store,
            dirty: Vec::new(),
            pending_remap: None,
            view_remap: None,
            telemetry: StreamTelemetry::default(),
            batches_since_refine: 0,
            refine_seed,
            id_epoch: 0,
            obs: MetricsRegistry::new(),
            workspaces: Vec::new(),
        })
    }

    /// The serving-side store (O(1) `shard_of`, loads, locality).
    pub fn store(&self) -> &PartitionStore {
        &self.store
    }

    /// The evolving graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Lifetime telemetry.
    pub fn telemetry(&self) -> &StreamTelemetry {
        &self.telemetry
    }

    /// The metrics registry, with the store-owned mirrors (lookup counts,
    /// heap pops, live balance gauges) synced to the current moment.
    /// `&mut self` precisely because of that sync; use
    /// [`Self::metrics_mut`] to toggle or record from outside the engine.
    pub fn metrics(&mut self) -> &MetricsRegistry {
        self.sync_store_metrics();
        &self.obs
    }

    /// Mutable access to the metrics registry (e.g.
    /// [`MetricsRegistry::set_enabled`]), mirrors synced as in
    /// [`Self::metrics`].
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        self.sync_store_metrics();
        &mut self.obs
    }

    /// Enables or disables metrics recording. Disabled recording calls are
    /// early-return no-ops; already-recorded state is kept.
    pub fn set_metrics_enabled(&mut self, on: bool) {
        self.obs.set_enabled(on);
    }

    /// Pulls the externally-maintained monotone counters (store) and the
    /// live balance gauges into the registry so dumps are current.
    fn sync_store_metrics(&mut self) {
        if !self.obs.enabled() {
            return;
        }
        self.obs
            .counter_set("stream.store.lookups", self.store.lookup_count());
        self.obs
            .counter_set("stream.store.view_swaps", self.store.view_swap_count());
        self.obs.counter_set(
            "stream.store.stale_epoch_reads",
            self.store.stale_epoch_read_count(),
        );
        let lookup_us = self.store.lookup_latency();
        if lookup_us.count() > 0 {
            self.obs.histogram_set("stream.store.lookup_us", &lookup_us);
        }
        self.obs
            .counter_set("stream.store.heap_pops", self.store.heap_pop_count());
        self.obs.counter_set(
            "stream.store.live_vertices",
            self.store.num_assigned() as u64,
        );
        self.obs
            .gauge_set("stream.balance.max_imbalance", self.store.max_imbalance());
        self.obs
            .gauge_set("stream.balance.edge_locality", self.store.edge_locality());
    }

    /// O(1) shard lookup ([`crate::TOMBSTONE`] for a removed vertex).
    /// Served through the store's counting wrapper so query volume shows
    /// up in `stream.store.lookups`.
    pub fn shard_of(&self, v: VertexId) -> u32 {
        self.store.shard_of_counted(v)
    }

    /// A [`crate::ReadHandle`] pinned to the latest published view — the
    /// entry point for serving threads: handles answer lock-free lookups
    /// concurrently with `ingest` and stay valid (on their pinned view)
    /// even if the engine drops.
    pub fn reader(&self) -> crate::ReadHandle {
        self.store.reader()
    }

    /// The latest published [`crate::ReadView`] (one `Arc` clone).
    pub fn read_view(&self) -> std::sync::Arc<crate::ReadView> {
        self.store.read_view()
    }

    /// Current partition snapshot (O(n)). Panics while removed-but-unpurged
    /// vertices exist; call [`Self::purge`] first under churn.
    pub fn partition(&self) -> Partition {
        self.store.to_partition()
    }

    /// Current maximum imbalance across dimensions (live totals).
    pub fn max_imbalance(&self) -> f64 {
        self.store.max_imbalance()
    }

    /// Drains the composed old→new id map of any purging compaction since
    /// the last drain (`ingest` does this automatically into
    /// [`BatchReport::remap`]; call this after a direct
    /// [`Self::refine_now`] under churn).
    pub fn take_remap(&mut self) -> Option<Vec<VertexId>> {
        self.pending_remap.take()
    }

    /// Forces a compaction that purges tombstoned vertices, returning the
    /// old→new id map if ids changed. After this, [`Self::partition`] is
    /// safe to call again.
    pub fn purge(&mut self) -> Option<Vec<VertexId>> {
        self.compact_graph();
        // The purge renumbered the id space out-of-band of any batch:
        // publish immediately so readers never pin a pre-purge assignment
        // longer than necessary (the view carries the composed remap).
        self.publish_view();
        self.take_remap()
    }

    /// The engine's **id epoch**: how many purging compactions have
    /// renumbered its vertex ids. Ids are stable within an epoch; an
    /// external id holder (a router, a replay harness) that has applied
    /// `E` remaps is at epoch `E` and can only adopt a snapshot recorded
    /// at the same epoch — pass the expectation to
    /// [`Self::restore_expecting`].
    pub fn id_epoch(&self) -> u64 {
        self.id_epoch
    }

    /// The configuration the engine runs with.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Re-sizes the worker pool (e.g. after restoring a snapshot recorded
    /// on a machine with a different core count). Thread count never
    /// affects results — every parallel section is deterministic by
    /// construction — so this is safe mid-stream.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn set_threads(&mut self, threads: usize) {
        assert!(threads > 0, "threads must be positive");
        self.cfg.threads = threads;
        self.graph.set_threads(threads);
        self.store.set_threads(threads);
    }

    /// Serializes the engine's full state into `w` in the versioned
    /// snapshot format (see [`crate::snapshot`] for the layout): the
    /// dynamic graph (base CSR, delta, tombstones, free list, weights),
    /// the store's accounting (verbatim floats), the configuration, and
    /// the refinement bookkeeping. The rebalance heaps are *not*
    /// serialized — they are rebuilt on restore — and to keep the saver
    /// bitwise in lockstep with any future restorer, this call
    /// **canonicalizes** the live engine's heaps (re-keys every entry at
    /// the current totals; `&mut self` for exactly this reason). A
    /// snapshot may be taken at any batch boundary, including mid-churn
    /// with tombstoned-but-unpurged vertices pending.
    pub fn save_snapshot<W: std::io::Write>(
        &mut self,
        w: &mut W,
    ) -> Result<crate::SnapshotInfo, crate::SnapshotError> {
        use crate::snapshot::{self, PayloadWriter};
        self.store.rebuild_heaps(self.graph.weights());
        let mut pw = PayloadWriter::new();
        // The id epoch is echoed as the payload's first bytes: the header
        // copy (used for cheap pre-parse expectation checks) is outside
        // the checksum, so restore cross-validates it against this
        // checksummed copy — a corrupted header epoch cannot slip an
        // engine into the wrong id space.
        pw.put_u64(self.id_epoch);
        pw.put_section(snapshot::SEC_CONFIG);
        snapshot::encode_config(&mut pw, &self.cfg);
        pw.put_section(snapshot::SEC_GRAPH);
        self.graph.encode_snapshot(&mut pw);
        pw.put_section(snapshot::SEC_STORE);
        self.store.encode_snapshot(&mut pw);
        pw.put_section(snapshot::SEC_ENGINE);
        pw.put_vec_bool(&self.dirty);
        pw.put_bool(self.pending_remap.is_some());
        if let Some(map) = &self.pending_remap {
            pw.put_vec_u32(map);
        }
        encode_telemetry(&mut pw, &self.telemetry);
        pw.put_usize(self.batches_since_refine);
        pw.put_u64(self.refine_seed);
        pw.put_section(snapshot::SEC_END);
        let info = snapshot::write_snapshot(
            w,
            self.id_epoch,
            self.cfg.k,
            self.graph.weights().dims(),
            &pw.buf,
        )?;
        self.obs.counter_add("stream.snapshot.saves", 1);
        self.obs.journal_event(
            "snapshot.save",
            &[
                ("epoch", self.id_epoch as f64),
                ("payload_bytes", info.payload_bytes as f64),
            ],
        );
        Ok(info)
    }

    /// Re-keys the rebalance heaps at the current totals — the same
    /// canonicalization [`Self::save_snapshot`] applies to the saver.
    /// Canonicalizing is semantically neutral (the heaps are a candidate
    /// queue over the same state) but changes *which equivalent* queue
    /// the engine holds, and rebalance pops in queue order; a replication
    /// follower therefore calls this when it adopts a new log segment, so
    /// its queue matches the leader's post-rotation one and heap-driven
    /// refinement stays bitwise in lockstep ([`crate::replica`]).
    /// Idempotent.
    pub fn canonicalize_heaps(&mut self) {
        self.store.rebuild_heaps(self.graph.weights());
    }

    /// Rebuilds an engine from a [`Self::save_snapshot`] stream with no
    /// expectations beyond internal consistency. Equivalent to
    /// [`Self::restore_expecting`] with a default
    /// [`crate::SnapshotExpectation`].
    pub fn restore<R: std::io::Read>(r: R) -> Result<Self, crate::SnapshotError> {
        Self::restore_expecting(r, &crate::SnapshotExpectation::default())
    }

    /// Rebuilds an engine from a snapshot, first checking the header
    /// against the caller's expectation (`k`, dimension count, id epoch —
    /// each mismatch fails with its named [`crate::SnapshotError`]
    /// variant), then validating checksum and payload. All-or-nothing: an
    /// `Err` constructs no state. The restored engine continues ingesting
    /// with byte-identical [`BatchReport`]s to the engine that saved.
    pub fn restore_expecting<R: std::io::Read>(
        r: R,
        expect: &crate::SnapshotExpectation,
    ) -> Result<Self, crate::SnapshotError> {
        use crate::snapshot::{self, PayloadReader, SnapshotError};
        let (info, payload) = snapshot::read_snapshot(r)?;
        expect.check(&info)?;
        let mut pr = PayloadReader::new(&payload);

        // The header's epoch is unchecksummed; the payload's echo is the
        // authority. A mismatch means the header byte rotted — and the
        // expectation above may have passed against the corrupt value, so
        // this must fail before any state is adopted.
        let payload_epoch = pr.get_u64("payload id epoch")?;
        if payload_epoch != info.id_epoch {
            return Err(SnapshotError::Corrupt(format!(
                "header id epoch {} does not match the checksummed payload epoch {payload_epoch}",
                info.id_epoch
            )));
        }

        pr.expect_section(snapshot::SEC_CONFIG)?;
        let cfg = snapshot::decode_config(&mut pr)?;
        cfg.validate()
            .map_err(|e| SnapshotError::Corrupt(format!("configuration invalid: {e}")))?;
        pr.expect_section(snapshot::SEC_GRAPH)?;
        let mut graph = DynamicGraph::decode_snapshot(&mut pr)?;
        graph.set_threads(cfg.threads);
        pr.expect_section(snapshot::SEC_STORE)?;
        let mut store = PartitionStore::decode_snapshot(&mut pr, graph.weights())?;
        store.set_threads(cfg.threads);
        pr.expect_section(snapshot::SEC_ENGINE)?;
        let dirty = pr.get_vec_bool("engine.dirty")?;
        let pending_remap = if pr.get_bool("engine.pending_remap flag")? {
            Some(pr.get_vec_u32("engine.pending_remap")?)
        } else {
            None
        };
        let telemetry = decode_telemetry(&mut pr)?;
        let batches_since_refine = pr.get_usize("engine.batches_since_refine")?;
        let refine_seed = pr.get_u64("engine.refine_seed")?;
        pr.expect_section(snapshot::SEC_END)?;
        if !pr.finished() {
            return Err(SnapshotError::Corrupt(
                "trailing bytes after the END section".into(),
            ));
        }

        // Cross-section consistency: the header, config, graph and store
        // must all agree on the shape before the engine is assembled.
        let n = graph.num_vertices();
        if cfg.k != info.k || store.num_parts() != info.k {
            return Err(SnapshotError::Corrupt(format!(
                "part counts disagree: header {}, config {}, store {}",
                info.k,
                cfg.k,
                store.num_parts()
            )));
        }
        if graph.weights().dims() != info.dims {
            return Err(SnapshotError::Corrupt(format!(
                "dimension counts disagree: header {}, weights {}",
                info.dims,
                graph.weights().dims()
            )));
        }
        if store.num_vertices() != n || dirty.len() != n {
            return Err(SnapshotError::Corrupt(format!(
                "id spaces disagree: graph {n}, store {}, dirty {}",
                store.num_vertices(),
                dirty.len()
            )));
        }
        // A tombstoned graph slot must be released in the store and vice
        // versa — the alignment every ingest stage depends on.
        for v in 0..n as VertexId {
            if graph.is_live(v) != (store.shard_of(v) != TOMBSTONE) {
                return Err(SnapshotError::Corrupt(format!(
                    "graph and store disagree about the liveness of vertex {v}"
                )));
            }
        }

        let mut obs = MetricsRegistry::new();
        obs.counter_add("stream.snapshot.restores", 1);
        obs.journal_event(
            "snapshot.restore",
            &[("epoch", info.id_epoch as f64), ("n", n as f64)],
        );
        let mut engine = Self {
            cfg,
            graph,
            store,
            dirty,
            pending_remap,
            // A restored engine publishes a fresh view #0 below; whatever
            // remap the *saving* engine had pending belongs to report
            // consumers (`pending_remap`), not to view readers — their
            // handles died with the saving process.
            view_remap: None,
            telemetry,
            batches_since_refine,
            refine_seed,
            id_epoch: info.id_epoch,
            obs,
            workspaces: Vec::new(),
        };
        // Restore publishes view #0 of this process: readers attaching to
        // the restored engine immediately see the restored assignment at
        // the restored `(id_epoch, batch_seq)` stamp.
        engine.publish_view();
        Ok(engine)
    }

    /// Publishes the current store state as an immutable [`crate::ReadView`]
    /// stamped with the engine's id epoch and batch count, carrying the
    /// purge remap composed since the previous published view. Called at
    /// every batch boundary (end of `ingest`, after `refine_now`, after
    /// `purge`) and once on restore.
    fn publish_view(&mut self) {
        let epoch = crate::ViewEpoch {
            id_epoch: self.id_epoch,
            batch_seq: self.telemetry.batches as u64,
        };
        let remap = self.view_remap.take();
        self.store.publish_view(epoch, remap);
    }

    /// Compacts the dynamic graph and, when the compaction purged
    /// tombstoned vertices, applies the id remap to every structure the
    /// engine owns (store, dirty set) and composes it into
    /// [`Self::pending_remap`] for the caller.
    fn compact_graph(&mut self) {
        // Count every compaction that actually merges (the trigger path
        // and the unconditional one at the top of refine_now both land
        // here), so `remaps` stays a subset of `compactions`.
        let will_merge = self.graph.delta_edge_count() > 0
            || self.graph.tombstoned_edge_count() > 0
            || self.graph.num_tombstoned() > 0
            || self.graph.csr().num_vertices() != self.graph.num_vertices();
        if will_merge {
            self.telemetry.compactions += 1;
            self.obs.counter_add("stream.compact.merges", 1);
        }
        // Lifetime wall-clock of the parallel delta-merge (and, on purges,
        // the remap application) — a `_ms` gauge, so it stays out of the
        // deterministic dump subset the CI thread-count diff compares.
        let compact_start = Instant::now();
        let record_compact_ms = |obs: &mut MetricsRegistry, start: Instant| {
            let cur = obs.gauge("stream.compact.parallel_ms").unwrap_or(0.0);
            obs.gauge_set(
                "stream.compact.parallel_ms",
                cur + start.elapsed().as_secs_f64() * 1e3,
            );
        };
        let Some(map) = self.graph.compact() else {
            if will_merge {
                record_compact_ms(&mut self.obs, compact_start);
            }
            return;
        };
        let n_new = self.graph.num_vertices();
        let mut dirty = vec![false; n_new];
        for (old, &new) in map.iter().enumerate() {
            if new != TOMBSTONE {
                dirty[new as usize] = self.dirty[old];
            }
        }
        self.dirty = dirty;
        self.store.apply_remap(&map, self.graph.weights());
        record_compact_ms(&mut self.obs, compact_start);
        self.telemetry.remaps += 1;
        self.id_epoch += 1;
        self.obs.counter_add("stream.compact.purges", 1);
        self.obs.journal_event(
            "compact.purge",
            &[("live", n_new as f64), ("epoch", self.id_epoch as f64)],
        );
        // Compose old→mid→new when several purges happened since a drain.
        let compose = |prev: Option<Vec<VertexId>>| -> Vec<VertexId> {
            match prev {
                None => map.clone(),
                Some(prev) => prev
                    .iter()
                    .map(|&mid| {
                        if mid == TOMBSTONE {
                            TOMBSTONE
                        } else {
                            map[mid as usize]
                        }
                    })
                    .collect(),
            }
        };
        // Two independent chains over the same maps: reports drain at
        // `take_remap`, views at `publish_view` — different boundaries.
        self.pending_remap = Some(compose(self.pending_remap.take()));
        self.view_remap = Some(compose(self.view_remap.take()));
    }

    /// Stage 1 — validates a whole batch against the current state without
    /// applying anything, so `ingest` is all-or-nothing: an `Err` means no
    /// update was applied. Simulates the id assignment the batch will make
    /// — arrivals recycle tombstoned ids off the free list (most recently
    /// freed first, including ids the batch itself frees) before extending
    /// the id space — so updates may reference vertices added earlier in
    /// the batch, but not ones already removed by it.
    fn validate_batch(&self, batch: &UpdateBatch) -> Result<(), PartitionError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Sim {
            /// Created (or revived) by an earlier update in this batch.
            Live,
            /// Removed by an earlier update in this batch.
            RemovedHere,
        }
        let dims = self.graph.weights().dims();
        let positive = |w: f64| w.is_finite() && w > 0.0;
        let n0 = self.graph.num_vertices() as u64;
        let mut n = n0;
        let mut sim_free: Vec<VertexId> = self.graph.free_ids().to_vec();
        let mut sim: std::collections::HashMap<VertexId, Sim> = std::collections::HashMap::new();
        // Why vertex `v` cannot be referenced at this point of the batch,
        // if it cannot: distinguishes "never existed" from "removed" so
        // the error names the actual upstream mistake.
        let rejection = |v: VertexId, n: u64, sim: &std::collections::HashMap<VertexId, Sim>| {
            if v as u64 >= n {
                return Some(format!("is not a known vertex (stream has {n} so far)"));
            }
            match sim.get(&v) {
                Some(Sim::Live) => None,
                Some(Sim::RemovedHere) => Some("was removed earlier in this batch".to_string()),
                None if (v as u64) < n0 && !self.graph.is_live(v) => {
                    Some("was removed by an earlier batch".to_string())
                }
                None => None,
            }
        };
        for (i, update) in batch.updates.iter().enumerate() {
            match update {
                StreamUpdate::AddVertex { weights, .. } => {
                    if weights.len() != dims {
                        return Err(PartitionError::Config(format!(
                            "update {i}: arriving vertex has {} weights, stream has {dims} \
                             dimensions",
                            weights.len()
                        )));
                    }
                    if let Some(&w) = weights.iter().find(|&&w| !positive(w)) {
                        return Err(PartitionError::Config(format!(
                            "update {i}: vertex weight {w} must be positive finite"
                        )));
                    }
                    // Mirror the split stage's id assignment exactly.
                    let id = sim_free.pop().unwrap_or_else(|| {
                        n += 1;
                        (n - 1) as VertexId
                    });
                    sim.insert(id, Sim::Live);
                }
                StreamUpdate::AddEdge { u, v } | StreamUpdate::RemoveEdge { u, v } => {
                    // Name the offending endpoint, not just the pair — in a
                    // 10k-update batch that's the difference between a
                    // one-line fix upstream and a bisection session.
                    let verb = if matches!(update, StreamUpdate::AddEdge { .. }) {
                        "edge"
                    } else {
                        "edge removal"
                    };
                    for endpoint in [u, v] {
                        if let Some(why) = rejection(*endpoint, n, &sim) {
                            return Err(PartitionError::Config(format!(
                                "update {i}: {verb} ({u}, {v}): endpoint {endpoint} {why}"
                            )));
                        }
                    }
                }
                StreamUpdate::RemoveVertex { v } => {
                    if let Some(why) = rejection(*v, n, &sim) {
                        return Err(PartitionError::Config(format!(
                            "update {i}: vertex removal targets {v}, which {why}"
                        )));
                    }
                    sim.insert(*v, Sim::RemovedHere);
                    sim_free.push(*v);
                }
                StreamUpdate::SetWeight { v, dim, value } => {
                    if let Some(why) = rejection(*v, n, &sim) {
                        return Err(PartitionError::Config(format!(
                            "update {i}: weight update targets vertex {v}, which {why}"
                        )));
                    }
                    if *dim >= dims {
                        return Err(PartitionError::Config(format!(
                            "update {i}: weight update on vertex {v} names dimension {dim}, \
                             stream has {dims} dimensions"
                        )));
                    }
                    if !positive(*value) {
                        return Err(PartitionError::Config(format!(
                            "update {i}: weight {value} must be positive finite"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Applies one batch through the staged pipeline: validate → split →
    /// speculative placement → conflict repair → commit → (compaction,
    /// drift check, refinement). All-or-nothing: the batch is validated up
    /// front, and an `Err` leaves the engine untouched.
    pub fn ingest(&mut self, batch: &UpdateBatch) -> Result<BatchReport, PartitionError> {
        let spans = SpanTree::new();
        let root = spans.span("ingest");

        {
            let _s = spans.span("validate");
            self.validate_batch(batch)?;
        }

        let split = {
            let _s = spans.span("split");
            self.stage_split(batch)
        };

        let (mut parts, reservations, snapshot, caps) = {
            let _s = spans.span("place");
            // Fetched through the store's cache: on a pure-topology batch
            // this is the allocation the last published view already
            // shares, not a rebuild.
            let snapshot = self.store.load_snapshot();
            speculative_place(
                &self.graph,
                &self.store,
                &split,
                snapshot,
                self.cfg.epsilon,
                self.cfg.threads,
            )
        };

        let (placement_conflicts, repair_passes, repair_spec_rounds) = {
            let _s = spans.span("repair");
            conflict_repair(
                &self.graph,
                &self.store,
                &split,
                reservations,
                &snapshot,
                &caps,
                &mut parts,
                self.cfg.epsilon,
                self.cfg.threads,
            )
        };

        {
            let _s = spans.span("commit");
            self.stage_commit(&split, &parts);
        }

        self.telemetry.batches += 1;
        self.telemetry.edges_added += split.edges_added;
        self.telemetry.edges_removed += split.edges_removed;
        self.telemetry.vertices_removed += split.vertices_removed;
        self.telemetry.weight_updates += split.weight_updates;
        self.telemetry.placement_conflicts += placement_conflicts;
        self.telemetry.repair_passes += repair_passes;
        self.batches_since_refine += 1;

        self.obs.counter_add("stream.ingest.batches", 1);
        self.obs
            .counter_add("stream.ingest.arrivals", split.vertices_added as u64);
        self.obs
            .counter_add("stream.ingest.removals", split.vertices_removed as u64);
        self.obs
            .counter_add("stream.ingest.edges_added", split.edges_added as u64);
        self.obs
            .counter_add("stream.ingest.edges_removed", split.edges_removed as u64);
        self.obs
            .counter_add("stream.ingest.weight_updates", split.weight_updates as u64);
        self.obs
            .counter_add("stream.place.conflicts", placement_conflicts as u64);
        self.obs
            .counter_add("stream.place.repair_passes", repair_passes as u64);
        self.obs
            .counter_add("stream.repair.spec_rounds", repair_spec_rounds as u64);
        if placement_conflicts > 0 {
            self.obs.journal_event(
                "place.repair",
                &[
                    ("conflicts", placement_conflicts as f64),
                    ("passes", repair_passes as f64),
                    ("spec_rounds", repair_spec_rounds as f64),
                ],
            );
        }

        // The drift check, any triggered compaction and the refinement all
        // bill to the "refine" stage, matching the pre-span accounting.
        let (drift_trigger, schedule_trigger, rebalance_moves, refine_moves) = {
            let _s = spans.span("refine");
            if self.graph.needs_compaction(self.cfg.compact_slack) {
                self.compact_graph(); // counts itself in telemetry.compactions
            }

            // Drift telemetry: refine when ε is threatened, or on schedule.
            // The live totals make this sensitive to removals in both
            // directions (see the module docs).
            let imbalance = self.max_imbalance();
            let drift_trigger = imbalance > self.cfg.drift_headroom * self.cfg.epsilon;
            let schedule_trigger =
                self.cfg.refine_every > 0 && self.batches_since_refine >= self.cfg.refine_every;
            if drift_trigger {
                self.obs.counter_add("stream.refine.drift_triggers", 1);
                self.obs
                    .journal_event("refine.drift_trigger", &[("imbalance", imbalance)]);
            }
            if schedule_trigger {
                self.obs.counter_add("stream.refine.schedule_triggers", 1);
            }
            let (rebalance_moves, refine_moves) = if drift_trigger || schedule_trigger {
                self.refine_with_spans(&spans)?
            } else {
                (0, 0)
            };
            (
                drift_trigger,
                schedule_trigger,
                rebalance_moves,
                refine_moves,
            )
        };

        // Commit + refine are done: publish this batch's view. Readers
        // re-pinning from here on see the post-batch assignment (stamped
        // with this batch's sequence number) atomically — never the
        // intermediate states the stages above moved through.
        self.publish_view();

        // Arrival ids, expressed in the final id space of this report: a
        // purge during this ingest (compaction or refinement) renumbered
        // them along with everything else.
        let arrival_ids: Vec<VertexId> = split
            .arrivals
            .iter()
            .map(|a| match (&self.pending_remap, a.dead) {
                (_, true) => TOMBSTONE,
                (Some(map), false) => map[a.id as usize],
                (None, false) => a.id,
            })
            .collect();

        drop(root);
        let spans_root = spans.snapshot().into_iter().next().unwrap_or_default();
        self.obs.absorb_spans(&spans_root);
        self.sync_store_metrics();

        Ok(BatchReport {
            vertices_added: split.vertices_added,
            vertices_removed: split.vertices_removed,
            edges_added: split.edges_added,
            edges_removed: split.edges_removed,
            weight_updates: split.weight_updates,
            refined: drift_trigger || schedule_trigger,
            rebalance_moves,
            refine_moves,
            placement_conflicts,
            repair_passes,
            repair_spec_rounds,
            max_imbalance: self.max_imbalance(),
            edge_locality: self.store.edge_locality(),
            remap: self.pending_remap.take(),
            arrival_ids,
            spans: spans_root,
        })
    }

    /// Stage 2 — applies the batch's structural mutations to the graph in
    /// update order, deferring everything that needs a placement decision:
    /// arrivals are collected as [`PendingArrival`]s (their adjacency *is*
    /// materialized, so the placement stage can score affinity), and store
    /// effects touching a pending arrival are parked in the deferred
    /// ledger. Effects between already-assigned vertices apply immediately,
    /// exactly as the pre-pipeline engine did.
    fn stage_split(&mut self, batch: &UpdateBatch) -> SplitOutcome {
        let dims = self.graph.weights().dims();
        let mut out = SplitOutcome::default();
        // Adjacency splices are deferred into per-vertex net lists while
        // the loop makes every decision serially against the overlay; the
        // flush at the end applies them in parallel by vertex range. The
        // range count depends only on the batch (touched vertices / fixed
        // chunk), so the counter is safe for the deterministic dump diff.
        self.graph.begin_deferred();
        for update in &batch.updates {
            match update {
                StreamUpdate::AddVertex { weights, neighbors } => {
                    // May recycle a tombstoned id (free list, LIFO) — the
                    // report's `arrival_ids` tells callers what it got.
                    let v = self.graph.add_vertex(weights);
                    if (v as usize) < self.dirty.len() {
                        self.dirty[v as usize] = true;
                    } else {
                        self.dirty.push(true);
                    }
                    out.vertices_added += 1;
                    // Materialize the adjacency now; placement reads it
                    // through `graph.neighbors`. Removed, out-of-range and
                    // duplicate endpoints are skipped; with recycled ids a
                    // neighbour may legitimately carry a *higher* id.
                    for &u in neighbors {
                        if u != v
                            && (u as usize) < self.graph.num_vertices()
                            && self.graph.is_live(u)
                            && self.graph.add_edge(v, u)
                        {
                            self.dirty[u as usize] = true;
                            out.edges_added += 1;
                            out.ledger.push(DeferredEffect::EdgeAdded(v, u));
                        }
                    }
                    out.arrival_of.insert(v, out.arrivals.len());
                    out.arrivals.push(PendingArrival {
                        id: v,
                        row: weights.clone(),
                        dead: false,
                    });
                }
                StreamUpdate::AddEdge { u, v } => {
                    if self.graph.add_edge(*u, *v) {
                        self.dirty[*u as usize] = true;
                        self.dirty[*v as usize] = true;
                        out.edges_added += 1;
                        if out.arrival_of.contains_key(u) || out.arrival_of.contains_key(v) {
                            out.ledger.push(DeferredEffect::EdgeAdded(*u, *v));
                        } else {
                            self.store.on_edge_added(*u, *v);
                        }
                    }
                }
                StreamUpdate::RemoveEdge { u, v } => {
                    if self.graph.remove_edge(*u, *v) {
                        self.dirty[*u as usize] = true;
                        self.dirty[*v as usize] = true;
                        out.edges_removed += 1;
                        if out.arrival_of.contains_key(u) || out.arrival_of.contains_key(v) {
                            out.ledger.push(DeferredEffect::EdgeRemoved(*u, *v));
                        } else {
                            self.store.on_edge_removed(*u, *v);
                        }
                    }
                }
                StreamUpdate::RemoveVertex { v } => {
                    out.vertices_removed += 1;
                    if let Some(idx) = out.arrival_of.remove(v) {
                        // An arrival leaving inside its own batch is never
                        // placed; every store effect of its edges already
                        // sits in the ledger, where the removals cancel
                        // the adds.
                        for u in self.graph.remove_vertex(*v) {
                            self.dirty[u as usize] = true;
                            out.edges_removed += 1;
                            out.ledger.push(DeferredEffect::EdgeRemoved(*v, u));
                        }
                        out.arrivals[idx].dead = true;
                        self.dirty[*v as usize] = false;
                        continue;
                    }
                    let row: Vec<f64> = (0..dims)
                        .map(|j| self.graph.weights().weight(j, *v))
                        .collect();
                    // Settle per-edge stats while both endpoints still
                    // resolve, then release the capacity.
                    for u in self.graph.remove_vertex(*v) {
                        self.dirty[u as usize] = true;
                        out.edges_removed += 1;
                        if out.arrival_of.contains_key(&u) {
                            out.ledger.push(DeferredEffect::EdgeRemoved(*v, u));
                        } else {
                            self.store.on_edge_removed(*v, u);
                        }
                    }
                    self.store.release_vertex(*v, &row);
                    // The tombstoned id must never seed the refinement
                    // active set — its (former) neighbours carry the churn.
                    self.dirty[*v as usize] = false;
                }
                StreamUpdate::SetWeight { v, dim, value } => {
                    let old = self.graph.weights().weight(*dim, *v);
                    self.graph.set_weight(*v, *dim, *value);
                    self.dirty[*v as usize] = true;
                    out.weight_updates += 1;
                    // A pending arrival has no store slot yet; commit
                    // pushes its *final* row, which already folds every
                    // drift of this batch in.
                    if !out.arrival_of.contains_key(v) {
                        let row: Vec<f64> = (0..dims)
                            .map(|j| self.graph.weights().weight(j, *v))
                            .collect();
                        self.store.apply_weight_change(*v, *dim, old, &row);
                    }
                }
            }
        }
        let ranges = self.graph.flush_deferred();
        self.obs
            .counter_add("stream.split.parallel_ranges", ranges as u64);
        out
    }

    /// Stage 5 — commits the repaired placements into the store (in
    /// arrival order, which is id-assignment order, so fresh ids append in
    /// sequence) and settles the deferred edge accounting against the
    /// now-final parts. The serial walk does every scalar accounting step
    /// (loads, stamps, slot growth) but stages the rebalance-heap entries
    /// in a [`crate::store::HeapSink`]; `apply_heap_entries` then replays
    /// them onto the per-`(part, dim)` heaps concurrently — each heap's
    /// pushes land in the exact serial order, so the heap layout is
    /// byte-identical at any thread count.
    fn stage_commit(&mut self, split: &SplitOutcome, parts: &[u32]) {
        let dims = self.graph.weights().dims();
        let mut sink = self.store.heap_sink();
        for (arrival, &part) in split.arrivals.iter().zip(parts) {
            if arrival.dead {
                if (arrival.id as usize) >= self.store.num_vertices() {
                    // A fresh id that died in its own batch still occupies
                    // a graph slot until the next purge; mirror it so
                    // store and graph id spaces stay aligned.
                    self.store.push_tombstone();
                    debug_assert_eq!(self.store.num_vertices(), arrival.id as usize + 1);
                }
                continue;
            }
            // The final row (weight drift later in the batch included).
            let row: Vec<f64> = (0..dims)
                .map(|j| self.graph.weights().weight(j, arrival.id))
                .collect();
            if (arrival.id as usize) < self.store.num_vertices() {
                self.store
                    .assign_slot_collect(arrival.id, part, &row, &mut sink);
            } else {
                self.store.push_assignment_collect(part, &row, &mut sink);
                debug_assert_eq!(self.store.num_vertices(), arrival.id as usize + 1);
            }
            self.telemetry.vertices_placed += 1;
        }
        self.store.apply_heap_entries(sink);
        for effect in &split.ledger {
            match *effect {
                DeferredEffect::EdgeAdded(u, v) => self.store.on_edge_added(u, v),
                DeferredEffect::EdgeRemoved(u, v) => self.store.on_edge_removed(u, v),
            }
        }
    }

    /// Runs a refinement pass unconditionally. Returns
    /// `(rebalance_moves, refine_moves)`.
    ///
    /// The pass compacts first; under churn that purge can remap vertex
    /// ids — drain [`Self::take_remap`] afterwards when calling this
    /// directly (`ingest` surfaces the map in [`BatchReport::remap`]).
    pub fn refine_now(&mut self) -> Result<(usize, usize), PartitionError> {
        let spans = SpanTree::new();
        let result = {
            let _root = spans.span("refine");
            self.refine_with_spans(&spans)
        };
        for root in spans.snapshot() {
            self.obs.absorb_spans(&root);
        }
        // A direct refinement is a batch boundary of its own: readers get
        // the refined assignment (and any purge remap) atomically.
        self.publish_view();
        result
    }

    /// The refinement pass body, with its sub-stages (`compact`,
    /// `rebalance`, `gd`, `recount`) recorded as children of whatever span
    /// is currently open on `spans` — `"ingest.refine"` when called from
    /// [`Self::ingest`], `"refine"` from [`Self::refine_now`].
    fn refine_with_spans(&mut self, spans: &SpanTree) -> Result<(usize, usize), PartitionError> {
        let started = Instant::now();
        // Purge tombstones before anything downstream sees the graph: the
        // rebalance, the pair ranking and the GD all assume every id is a
        // live vertex with a live weight row.
        {
            let _s = spans.span("compact");
            self.compact_graph();
        }

        let mut rebalance_moves = {
            let _s = spans.span("rebalance");
            self.greedy_rebalance(self.cfg.max_rebalance_moves)
        };

        // Active set: dirty vertices (including any the rebalance just
        // moved) plus their 1-hop halo — the GD pass may move exactly
        // these; everything else is frozen.
        let n = self.graph.num_vertices();
        let mut active = self.dirty.clone();
        for v in 0..n as VertexId {
            if self.dirty[v as usize] {
                for u in self.graph.neighbors(v) {
                    active[u as usize] = true;
                }
            }
        }

        // Warm-started pairwise GD around the churn. The graph was just
        // compacted, so the immutable `csr()` view is the full graph.
        //
        // Pairs are scheduled into rounds of part-disjoint pairs
        // ([`GdPartitioner::plan_disjoint_rounds`]): within a round no part
        // is touched twice, so each `refine_pair` reads a disjoint vertex
        // set of the shared partition snapshot and the round runs
        // concurrently on the configured worker threads; the accepted
        // moves are applied at the round barrier.
        let mut refine_moves = 0usize;
        if n > 0 {
            let _s = spans.span("gd");
            let mut partition = self.partition();
            let frozen: Vec<bool> = active.iter().map(|&a| !a).collect();
            let mut gd_cfg = self.cfg.gd.clone();
            gd_cfg.epsilon = self.cfg.epsilon;
            gd_cfg.iterations = self.cfg.refine_iterations;
            gd_cfg.track_history = false;

            let pairs = GdPartitioner::rank_pairs_by_active_cut(
                self.graph.csr(),
                &partition,
                &active,
                self.cfg.max_refine_pairs,
            );
            for round in GdPartitioner::plan_disjoint_rounds(&pairs) {
                // Threads left idle by a small round (common when one hot
                // part appears in every ranked pair, making every round a
                // singleton) drop down into the pair's own GD mat-vec —
                // the mat-vec splits rows deterministically, so the result
                // is still thread-count independent.
                gd_cfg.threads = (self.cfg.threads / round.len()).max(1);
                let gd = GdPartitioner::new(gd_cfg.clone());
                let seeds: Vec<u64> = round
                    .iter()
                    .map(|_| {
                        self.refine_seed = self
                            .refine_seed
                            .wrapping_mul(0x9E3779B97F4A7C15)
                            .wrapping_add(1);
                        self.refine_seed
                    })
                    .collect();
                let graph = self.graph.csr();
                let weights = self.graph.weights();
                // One reusable GD workspace per worker: pairs of a round
                // are claimed work-stealing style, each solve running in
                // the claiming worker's workspace. Which worker serves
                // which pair is scheduling-dependent, but a workspace
                // carries no state between solves, so results (and hence
                // BatchReports) stay thread-count independent.
                let workers = self.cfg.threads.min(round.len()).max(1);
                if self.workspaces.len() < workers {
                    self.workspaces.resize_with(workers, GdWorkspace::default);
                }
                let outcomes = parallel::par_map_with(
                    &round,
                    &mut self.workspaces[..workers],
                    |ws, i, &pair| {
                        gd.refine_pair_with(ws, graph, weights, &partition, pair, &frozen, seeds[i])
                    },
                );
                for outcome in outcomes {
                    let outcome = outcome?;
                    // Recorded at the deterministic round barrier (par_map
                    // preserves round order), so the GD histograms are
                    // identical for threads = 1 and threads = N.
                    self.obs
                        .observe("core.gd.refine_iterations", outcome.gd.iterations as u64);
                    self.obs.counter_add(
                        "core.gd.grad_full_recomputes",
                        outcome.gd.full_recomputes as u64,
                    );
                    self.obs.counter_add(
                        "core.gd.grad_delta_iters",
                        outcome.gd.delta_iterations as u64,
                    );
                    // Mean frontier size of the run — the histogram of
                    // these means shows how much of each pair the
                    // delta path actually had to touch.
                    if let Some(mean) = outcome.gd.frontier_sum.checked_div(outcome.gd.iterations) {
                        self.obs.observe("core.gd.frontier_mean", mean as u64);
                    }
                    let outcome_counter = match outcome.outcome {
                        PairOutcome::Applied => "core.gd.pairs_applied",
                        PairOutcome::RejectedCut => "core.gd.pairs_rejected_cut",
                        PairOutcome::RejectedBalance => "core.gd.pairs_rejected_balance",
                        PairOutcome::Degenerate => "core.gd.pairs_degenerate",
                    };
                    self.obs.counter_add(outcome_counter, 1);
                    if let (Some(&first), Some(&last)) =
                        (outcome.gd.grad_norms.first(), outcome.gd.grad_norms.last())
                    {
                        self.obs.gauge_set("core.gd.last_grad_norm_first", first);
                        self.obs.gauge_set("core.gd.last_grad_norm_last", last);
                        if first > 0.0 {
                            let decay_pct = (last / first * 100.0).round().clamp(0.0, 1e9);
                            self.obs
                                .observe("core.gd.grad_norm_decay_pct", decay_pct as u64);
                        }
                    }
                    for &(v, part) in &outcome.moves {
                        let row: Vec<f64> = (0..self.graph.weights().dims())
                            .map(|j| self.graph.weights().weight(j, v))
                            .collect();
                        self.store.move_vertex(v, part, &row);
                        partition.assign(v, part);
                        refine_moves += 1;
                    }
                }
            }
        }

        // This pass has consumed the churn; reset the dirty set *before*
        // the touch-up below so vertices the touch-up moves stay marked
        // and the next refinement's GD pass repairs their locality.
        self.dirty.iter_mut().for_each(|d| *d = false);

        // The GD acceptance rule enforces only the global ε, so a pair
        // refinement may legally land back inside the trigger band; touch
        // up so steady state always ends below it (a no-op Φ check when
        // the GD pass behaved — the heaps make the occasional extra move
        // O(log n)). The touch-up spends whatever is left of the pass's
        // move budget, keeping `max_rebalance_moves` a true per-pass cap.
        rebalance_moves += {
            let _s = spans.span("rebalance"); // merges with the first pass
            self.greedy_rebalance(self.cfg.max_rebalance_moves.saturating_sub(rebalance_moves))
        };

        // Locality counters are cheapest to rebuild wholesale after moves;
        // the recount folds over CSR row ranges of equal *edge* count
        // (each undirected edge counted at its lower endpoint) so the
        // O(m) sweep scales with the worker pool too and a hub row cannot
        // serialize it.
        let (intra, cut) = {
            let _s = spans.span("recount");
            let csr = self.graph.csr();
            let offsets = csr.raw_offsets();
            let targets = csr.raw_targets();
            let store = &self.store;
            parallel::fold_prefix_ranges(offsets, self.cfg.threads, 16384, |range| {
                let (mut intra, mut cut) = (0usize, 0usize);
                for v in range {
                    let pv = store.shard_of(v as VertexId);
                    for &u in &targets[offsets[v]..offsets[v + 1]] {
                        if (u as usize) > v {
                            if store.shard_of(u) == pv {
                                intra += 1;
                            } else {
                                cut += 1;
                            }
                        }
                    }
                }
                (intra, cut)
            })
            .into_iter()
            .fold((0, 0), |(a, b), (i, c)| (a + i, b + c))
        };
        self.store.set_edge_stats(intra, cut);
        self.batches_since_refine = 0;
        self.telemetry.refinements += 1;
        self.telemetry.rebalance_moves += rebalance_moves;
        self.telemetry.refine_moves += refine_moves;
        self.telemetry.last_refine_secs = started.elapsed().as_secs_f64();
        self.obs.counter_add("stream.refine.passes", 1);
        self.obs
            .counter_add("stream.refine.rebalance_moves", rebalance_moves as u64);
        self.obs
            .counter_add("stream.refine.gd_moves", refine_moves as u64);
        self.obs.journal_event(
            "refine.pass",
            &[
                ("rebalance_moves", rebalance_moves as f64),
                ("gd_moves", refine_moves as f64),
                ("wall_secs", self.telemetry.last_refine_secs),
            ],
        );
        Ok((rebalance_moves, refine_moves))
    }

    /// Greedy multi-constraint rebalance toward the drift-trigger
    /// threshold.
    ///
    /// Minimizes the potential `Φ = Σ_{p,j} max(0, load_ratio(p,j) − t)²`
    /// with `t = drift_headroom · ε` (sum of squared per-part
    /// per-dimension violations of the *trigger* threshold, not ε itself —
    /// repairing only to ε would leave the imbalance inside the trigger
    /// band and re-run refinement on every subsequent batch): each step
    /// applies the single vertex move — or, when every single move is
    /// blocked by a cross-dimension deadlock, the best vertex *swap* —
    /// that decreases Φ the most. Squared violations make the pass handle
    /// ties at the maximum (where a strict max-decrease rule stalls) and
    /// guarantee monotone progress; Φ = 0 restores slack below the
    /// trigger. Locality is repaired afterwards by the pairwise GD pass.
    ///
    /// Candidates come off the [`PartitionStore`] rebalance heaps (the
    /// Maas-style prioritized per-block move queues): the overloaded
    /// part's binding dimension names a heap whose top entries are the
    /// moves with the largest relief, so a move costs
    /// O(C·k·d + d·log n) with C = [`Self::REBALANCE_CANDIDATES`] instead
    /// of a full O(n·k·d) rescan. A full rescan survives only as a
    /// fallback for the rare step where every heavy candidate overshoots
    /// (counted in [`StreamTelemetry::rebalance_full_scans`]). Moves at
    /// most `max_moves` vertices (the caller splits
    /// [`StreamConfig::max_rebalance_moves`] across the pre-GD pass and
    /// the post-GD touch-up so the config stays a true per-pass cap);
    /// returns the number moved.
    fn greedy_rebalance(&mut self, max_moves: usize) -> usize {
        let target = self.cfg.epsilon * self.cfg.drift_headroom.min(1.0);
        let k = self.cfg.k;
        let dims = self.graph.weights().dims();
        let mut moves = 0usize;
        while moves < max_moves {
            // Live totals: released weight is already gone. A drained
            // dimension (no live weight at all) can never violate the
            // trigger; an infinite average zeroes all its ratios.
            let avgs: Vec<f64> = (0..dims)
                .map(|j| {
                    let total = self.store.total(j);
                    if total > 0.0 {
                        total / k as f64
                    } else {
                        f64::INFINITY
                    }
                })
                .collect();
            // Per-part potential contribution.
            let part_phi = |store: &PartitionStore, p: u32| -> f64 {
                (0..dims)
                    .map(|j| {
                        let viol = (store.load(p, j) / avgs[j] - 1.0 - target).max(0.0);
                        viol * viol
                    })
                    .sum()
            };
            let phis: Vec<f64> = (0..k as u32).map(|p| part_phi(&self.store, p)).collect();
            let phi_total: f64 = phis.iter().sum();
            if phi_total <= 0.0 {
                break; // below the trigger threshold in every dimension
            }
            // Work on the worst offender; its most violated dimension
            // names the candidate heap (and steers swap pooling below).
            // Unwraps are invariants: Φ sums validated-finite weights so
            // `partial_cmp` never sees NaN, and `k >= 1` keeps the range
            // non-empty.
            let src = (0..k as u32)
                .max_by(|&a, &b| phis[a as usize].partial_cmp(&phis[b as usize]).unwrap())
                .unwrap();
            let dim = self.binding_dimension(src, &avgs);

            // Prioritized move queue: heaviest-in-`dim` members of `src`.
            let candidates = self.store.top_movable(src, dim, Self::REBALANCE_CANDIDATES);
            // Exact membership check — `len == limit` would misread a part
            // of exactly `limit` members as truncated and rescan the same
            // candidate set.
            let truncated = candidates.len() < self.store.part_size(src);
            let mut best_move =
                self.best_single_move(&candidates, src, target, &avgs, &phis, phi_total);
            if best_move.is_none() && truncated {
                // Every heavy candidate overshoots; the improving move (if
                // any) is a light vertex the heap order deprioritizes.
                // Rescan the full membership once — rare, and counted.
                self.telemetry.rebalance_full_scans += 1;
                self.obs.counter_add("stream.refine.full_scans", 1);
                self.obs.journal_event(
                    "rebalance.full_scan",
                    &[("kind", 0.0), ("part", src as f64)],
                );
                let members: Vec<VertexId> = (0..self.store.num_vertices() as VertexId)
                    .filter(|&v| self.store.shard_of(v) == src)
                    .collect();
                best_move = self.best_single_move(&members, src, target, &avgs, &phis, phi_total);
            }
            if let Some((v, dst, _, _)) = best_move {
                let weights = self.graph.weights();
                let row: Vec<f64> = (0..dims).map(|j| weights.weight(j, v)).collect();
                self.store.move_vertex(v, dst, &row);
                self.dirty[v as usize] = true;
                moves += 1;
                continue;
            }

            // Cross-dimension deadlock (e.g. the only part with headroom in
            // `dim` is itself pinned in another dimension): look for swaps
            // that shed `dim` outbound and relieve the partner's own
            // binding dimension inbound. Pools come off the heaps: the
            // src pool is heavy in `dim`, each dst pool heavy in that
            // part's binding dimension.
            let (mut best_swap, pools_truncated) =
                self.best_swap_from_pools(&candidates, src, dim, target, &avgs, &phis);
            if best_swap.is_none() && pools_truncated {
                // Heap pools missed members that exist; full membership
                // fallback (rare). When the pools already covered every
                // member, a rescan provably finds nothing new.
                self.telemetry.rebalance_full_scans += 1;
                self.obs.counter_add("stream.refine.full_scans", 1);
                self.obs.journal_event(
                    "rebalance.full_scan",
                    &[("kind", 1.0), ("part", src as f64)],
                );
                best_swap = self.best_swap_full_scan(src, dim, target, &avgs, &phis);
            }
            let Some((v, u, dst, _)) = best_swap else {
                break; // genuinely stuck — the pass is best-effort
            };
            let weights = self.graph.weights();
            let row_v: Vec<f64> = (0..dims).map(|j| weights.weight(j, v)).collect();
            let row_u: Vec<f64> = (0..dims).map(|j| weights.weight(j, u)).collect();
            self.store.move_vertex(v, dst, &row_v);
            self.store.move_vertex(u, src, &row_u);
            self.dirty[v as usize] = true;
            self.dirty[u as usize] = true;
            moves += 2;
        }
        moves
    }

    /// Heap candidates evaluated per rebalance step before falling back to
    /// a full rescan. Large enough that the fallback fires only on
    /// pathological weight distributions (every heavy vertex overshoots).
    const REBALANCE_CANDIDATES: usize = 32;

    /// The dimension in which part `p` is most loaded relative to average.
    fn binding_dimension(&self, p: u32, avgs: &[f64]) -> usize {
        // Unwraps are invariants: loads sum validated-finite weights and
        // the rebalance loop only calls this with positive per-dimension
        // averages, so the ratios are never NaN; `dims >= 1` keeps the
        // range non-empty.
        (0..avgs.len())
            .max_by(|&a, &b| {
                let ra = self.store.load(p, a) / avgs[a];
                let rb = self.store.load(p, b) / avgs[b];
                ra.partial_cmp(&rb).unwrap()
            })
            .unwrap()
    }

    /// Post-move Φ of the `(src, dst)` pair, given the signed weight delta
    /// `dv[j]` leaving `src` for `dst`.
    fn pair_phi_after(&self, src: u32, dst: u32, dv: &[f64], target: f64, avgs: &[f64]) -> f64 {
        let mut phi = 0.0;
        for (j, &d) in dv.iter().enumerate() {
            let s = ((self.store.load(src, j) - d) / avgs[j] - 1.0 - target).max(0.0);
            let t = ((self.store.load(dst, j) + d) / avgs[j] - 1.0 - target).max(0.0);
            phi += s * s + t * t;
        }
        phi
    }

    /// Best Φ-decreasing single move among `candidates` (all in `src`),
    /// ties broken on locality gain.
    fn best_single_move(
        &self,
        candidates: &[VertexId],
        src: u32,
        target: f64,
        avgs: &[f64],
        phis: &[f64],
        phi_total: f64,
    ) -> Option<(VertexId, u32, f64, i64)> {
        let weights = self.graph.weights();
        let dims = avgs.len();
        let k = self.cfg.k;
        let mut dv = vec![0.0f64; dims];
        let mut best: Option<(VertexId, u32, f64, i64)> = None;
        for &v in candidates {
            for (j, slot) in dv.iter_mut().enumerate() {
                *slot = weights.weight(j, v);
            }
            for dst in (0..k as u32).filter(|&q| q != src) {
                let pair_before = phis[src as usize] + phis[dst as usize];
                let delta = self.pair_phi_after(src, dst, &dv, target, avgs) - pair_before;
                if delta >= -1e-18 {
                    continue;
                }
                let new_phi = phi_total + delta;
                let gain = self.locality_gain(v, src, dst);
                let better = match best {
                    None => true,
                    Some((_, _, bp, bg)) => {
                        new_phi < bp - 1e-15 || (new_phi < bp + 1e-15 && gain > bg)
                    }
                };
                if better {
                    best = Some((v, dst, new_phi, gain));
                }
            }
        }
        best
    }

    /// Best Φ-decreasing swap with candidate pools popped off the
    /// rebalance heaps (`src_pool` is the step's already-fetched
    /// heavy-in-`dim` queue of `src`; each dst pool is heavy in that
    /// part's binding dimension), re-ranked by the cross-dimension relief
    /// scores. The second return is whether any pool left members unseen —
    /// only then can the full-membership fallback find anything the pools
    /// could not.
    fn best_swap_from_pools(
        &mut self,
        src_pool: &[VertexId],
        src: u32,
        dim: usize,
        target: f64,
        avgs: &[f64],
        phis: &[f64],
    ) -> (Option<(VertexId, VertexId, u32, f64)>, bool) {
        let k = self.cfg.k;
        let mut truncated = src_pool.len() < self.store.part_size(src);
        let mut best: Option<(VertexId, VertexId, u32, f64)> = None;
        for dst in (0..k as u32).filter(|&q| q != src) {
            let binding = self.binding_dimension(dst, avgs);
            let dst_pool = self
                .store
                .top_movable(dst, binding, Self::REBALANCE_CANDIDATES);
            truncated |= dst_pool.len() < self.store.part_size(dst);
            self.scan_swap_pairs(
                src, dst, dim, binding, src_pool, &dst_pool, 16, target, avgs, phis, &mut best,
            );
        }
        (best, truncated)
    }

    /// Swap fallback over the full membership lists — exhaustive, no
    /// relief-score pruning. The pruned pools rank candidates by how much
    /// they relieve the two binding dimensions, which misses the swaps
    /// churn makes load-bearing: when every part near its cap differs in
    /// *which* dimension binds (e.g. removals drained one part's degree
    /// load while drift filled its unit load), the improving exchange
    /// pairs a heavy src vertex with a *light* dst vertex that scores at
    /// the bottom of every relief ranking. Rare (counted in
    /// `rebalance_full_scans`), so the O(|src|·|dst|·d) sweep is
    /// acceptable where leaving ε violated is not.
    fn best_swap_full_scan(
        &self,
        src: u32,
        dim: usize,
        target: f64,
        avgs: &[f64],
        phis: &[f64],
    ) -> Option<(VertexId, VertexId, u32, f64)> {
        let k = self.cfg.k;
        let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); k];
        for v in 0..self.store.num_vertices() as VertexId {
            let p = self.store.shard_of(v);
            if p != TOMBSTONE {
                members[p as usize].push(v);
            }
        }
        let mut best: Option<(VertexId, VertexId, u32, f64)> = None;
        for dst in (0..k as u32).filter(|&q| q != src) {
            let binding = self.binding_dimension(dst, avgs);
            self.scan_swap_pairs(
                src,
                dst,
                dim,
                binding,
                &members[src as usize],
                &members[dst as usize],
                usize::MAX,
                target,
                avgs,
                phis,
                &mut best,
            );
        }
        best
    }

    /// Evaluates the top `pool_cap`×`pool_cap` swap pairs of the given
    /// pools (ranked by the cross-dimension relief scores; `usize::MAX`
    /// disables the pruning) against Φ, updating `best`.
    #[allow(clippy::too_many_arguments)]
    fn scan_swap_pairs(
        &self,
        src: u32,
        dst: u32,
        dim: usize,
        binding: usize,
        src_pool: &[VertexId],
        dst_pool: &[VertexId],
        pool_cap: usize,
        target: f64,
        avgs: &[f64],
        phis: &[f64],
        best: &mut Option<(VertexId, VertexId, u32, f64)>,
    ) {
        let weights = self.graph.weights();
        let dims = avgs.len();
        let pair_before = phis[src as usize] + phis[dst as usize];
        let phi_rest: f64 = phis.iter().sum::<f64>() - pair_before;
        let out_score = |v: VertexId| {
            weights.weight(dim, v) / avgs[dim] - weights.weight(binding, v) / avgs[binding]
        };
        let in_score = |u: VertexId| {
            weights.weight(binding, u) / avgs[binding] - weights.weight(dim, u) / avgs[dim]
        };
        let src_out = top_by(src_pool, pool_cap, out_score);
        let dst_in = top_by(dst_pool, pool_cap, in_score);
        let mut dv = vec![0.0f64; dims];
        for &v in &src_out {
            for &u in &dst_in {
                for (j, slot) in dv.iter_mut().enumerate() {
                    *slot = weights.weight(j, v) - weights.weight(j, u);
                }
                let delta = self.pair_phi_after(src, dst, &dv, target, avgs) - pair_before;
                if delta >= -1e-18 {
                    continue;
                }
                let new_phi = phi_rest + pair_before + delta;
                if best.as_ref().is_none_or(|&(_, _, _, bp)| new_phi < bp) {
                    *best = Some((v, u, dst, new_phi));
                }
            }
        }
    }

    /// Net intra-edge change if `v` moved from `src` to `dst`.
    fn locality_gain(&self, v: VertexId, src: u32, dst: u32) -> i64 {
        let mut gain = 0i64;
        for u in self.graph.neighbors(v) {
            let pu = self.store.shard_of(u);
            if pu == dst {
                gain += 1;
            } else if pu == src {
                gain -= 1;
            }
        }
        gain
    }
}

fn encode_telemetry(w: &mut crate::snapshot::PayloadWriter, t: &StreamTelemetry) {
    for count in [
        t.batches,
        t.vertices_placed,
        t.vertices_removed,
        t.edges_added,
        t.edges_removed,
        t.weight_updates,
        t.compactions,
        t.remaps,
        t.refinements,
        t.rebalance_moves,
        t.rebalance_full_scans,
        t.refine_moves,
        t.placement_conflicts,
        t.repair_passes,
    ] {
        w.put_usize(count);
    }
    w.put_f64(t.last_refine_secs);
}

fn decode_telemetry(
    r: &mut crate::snapshot::PayloadReader,
) -> Result<StreamTelemetry, crate::SnapshotError> {
    Ok(StreamTelemetry {
        batches: r.get_usize("telemetry.batches")?,
        vertices_placed: r.get_usize("telemetry.vertices_placed")?,
        vertices_removed: r.get_usize("telemetry.vertices_removed")?,
        edges_added: r.get_usize("telemetry.edges_added")?,
        edges_removed: r.get_usize("telemetry.edges_removed")?,
        weight_updates: r.get_usize("telemetry.weight_updates")?,
        compactions: r.get_usize("telemetry.compactions")?,
        remaps: r.get_usize("telemetry.remaps")?,
        refinements: r.get_usize("telemetry.refinements")?,
        rebalance_moves: r.get_usize("telemetry.rebalance_moves")?,
        rebalance_full_scans: r.get_usize("telemetry.rebalance_full_scans")?,
        refine_moves: r.get_usize("telemetry.refine_moves")?,
        placement_conflicts: r.get_usize("telemetry.placement_conflicts")?,
        repair_passes: r.get_usize("telemetry.repair_passes")?,
        last_refine_secs: r.get_f64("telemetry.last_refine_secs")?,
    })
}

/// The `limit` highest-scoring vertices of `list` (O(p) selection, order
/// within the result unspecified).
fn top_by(list: &[VertexId], limit: usize, score: impl Fn(VertexId) -> f64) -> Vec<VertexId> {
    let mut v = list.to_vec();
    if v.len() > limit {
        // Invariant: every score is a sum/ratio of validated-finite
        // weights, so `partial_cmp` never sees NaN.
        v.select_nth_unstable_by(limit - 1, |&a, &b| score(b).partial_cmp(&score(a)).unwrap());
        v.truncate(limit);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbgp_graph::gen;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn community(n: usize, seed: u64) -> (Graph, VertexWeights) {
        let cg = gen::community_graph(
            &gen::CommunityGraphConfig::social(n),
            &mut StdRng::seed_from_u64(seed),
        );
        let w = VertexWeights::vertex_edge(&cg.graph);
        (cg.graph, w)
    }

    fn fast_cfg(k: usize, eps: f64) -> StreamConfig {
        let mut cfg = StreamConfig::new(k, eps);
        cfg.gd = GdConfig {
            iterations: 40,
            ..GdConfig::with_epsilon(eps)
        };
        cfg
    }

    #[test]
    fn bootstrap_and_serve() {
        let (g, w) = community(800, 1);
        let sp = StreamingPartitioner::bootstrap(g, w, fast_cfg(4, 0.05)).unwrap();
        assert!(sp.max_imbalance() <= 0.05 + 1e-9);
        assert!(sp.store().edge_locality() > 0.25);
        assert!(sp.shard_of(0) < 4);
    }

    #[test]
    fn ingest_places_arrivals_within_epsilon() {
        let (g, w) = community(600, 2);
        let mut sp = StreamingPartitioner::bootstrap(g, w, fast_cfg(4, 0.05)).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5 {
            let mut batch = UpdateBatch::new();
            for _ in 0..30 {
                let n = 600; // conservative: attach to bootstrap vertices
                let nbrs: Vec<u32> = (0..4).map(|_| rng.gen_range(0..n as u32)).collect();
                batch.add_vertex(vec![1.0, nbrs.len() as f64], nbrs);
            }
            let report = sp.ingest(&batch).unwrap();
            assert!(
                report.max_imbalance <= 0.05 + 1e-9,
                "imbalance {} after batch",
                report.max_imbalance
            );
        }
        assert_eq!(sp.graph().num_vertices(), 750);
        assert_eq!(sp.telemetry().vertices_placed, 150);
    }

    #[test]
    fn weight_drift_triggers_refinement_and_recovers_epsilon() {
        let (g, w) = community(600, 3);
        let mut cfg = fast_cfg(4, 0.05);
        cfg.max_rebalance_moves = 1024;
        let mut sp = StreamingPartitioner::bootstrap(g, w, cfg).unwrap();
        // Drift: inflate the unit weight of one shard's vertices 3x.
        let victims: Vec<u32> = (0..600u32).filter(|&v| sp.shard_of(v) == 0).collect();
        let mut batch = UpdateBatch::new();
        for &v in &victims {
            batch.set_weight(v, 0, 3.0);
        }
        let report = sp.ingest(&batch).unwrap();
        assert!(report.refined, "drift must trigger refinement");
        assert!(
            report.max_imbalance <= 0.05 + 1e-9,
            "refinement must restore ε, got {}",
            report.max_imbalance
        );
        assert!(sp.telemetry().refinements >= 1);
    }

    #[test]
    fn edge_stream_between_existing_vertices() {
        let (g, w) = community(400, 4);
        let m0 = g.num_edges();
        let mut sp = StreamingPartitioner::bootstrap(g, w, fast_cfg(2, 0.05)).unwrap();
        let mut batch = UpdateBatch::new();
        batch.add_edge(0, 200).add_edge(1, 300).add_edge(0, 200); // dup ignored
        let report = sp.ingest(&batch).unwrap();
        assert!(report.edges_added <= 2);
        assert!(sp.graph().num_edges() <= m0 + 2);
    }

    #[test]
    fn cold_start_streams_from_nothing() {
        let mut cfg = fast_cfg(2, 0.3);
        cfg.refine_every = 0;
        let mut sp = StreamingPartitioner::empty(1, cfg).unwrap();
        let mut batch = UpdateBatch::new();
        for i in 0..40u32 {
            let nbrs = if i == 0 { vec![] } else { vec![i - 1] };
            batch.add_vertex(vec![1.0], nbrs);
        }
        sp.ingest(&batch).unwrap();
        assert_eq!(sp.graph().num_vertices(), 40);
        assert_eq!(sp.graph().num_edges(), 39);
        assert!(sp.max_imbalance() <= 0.3 + 1e-9, "{}", sp.max_imbalance());
    }

    #[test]
    fn rejects_malformed_updates() {
        let (g, w) = community(100, 5);
        let mut sp = StreamingPartitioner::bootstrap(g, w, fast_cfg(2, 0.1)).unwrap();
        let mut bad_arity = UpdateBatch::new();
        bad_arity.add_vertex(vec![1.0], vec![]);
        assert!(sp.ingest(&bad_arity).is_err(), "dims mismatch");
        let mut bad_edge = UpdateBatch::new();
        bad_edge.add_edge(0, 10_000);
        assert!(sp.ingest(&bad_edge).is_err());
        let mut bad_weight = UpdateBatch::new();
        bad_weight.set_weight(0, 7, 1.0);
        assert!(sp.ingest(&bad_weight).is_err());
        // Non-positive / non-finite weight values are Err, not panics.
        let mut zero_weight = UpdateBatch::new();
        zero_weight.set_weight(0, 0, 0.0);
        assert!(sp.ingest(&zero_weight).is_err());
        let mut nan_vertex = UpdateBatch::new();
        nan_vertex.add_vertex(vec![1.0, f64::NAN], vec![]);
        assert!(sp.ingest(&nan_vertex).is_err());
    }

    #[test]
    fn rejection_names_the_offending_update() {
        // All-or-nothing rejection is only operable if the error says
        // *which* update sank the batch (and, for edges, which endpoint).
        let (g, w) = community(100, 8);
        let mut sp = StreamingPartitioner::bootstrap(g, w, fast_cfg(2, 0.1)).unwrap();
        let mut batch = UpdateBatch::new();
        batch.add_edge(0, 1); // fine
        batch.add_edge(2, 3); // fine
        batch.add_edge(4, 50_000); // index 2, endpoint 50000
        let msg = sp.ingest(&batch).unwrap_err().to_string();
        assert!(msg.contains("update 2"), "missing update index: {msg}");
        assert!(msg.contains("50000"), "missing offending endpoint: {msg}");

        let mut batch = UpdateBatch::new();
        batch.set_weight(5, 9, 1.0);
        let msg = sp.ingest(&batch).unwrap_err().to_string();
        assert!(msg.contains("update 0"), "{msg}");
        assert!(msg.contains("dimension 9"), "{msg}");

        let mut batch = UpdateBatch::new();
        batch.add_vertex(vec![1.0, 1.0], vec![]);
        batch.add_vertex(vec![1.0], vec![]); // index 1, wrong arity
        let msg = sp.ingest(&batch).unwrap_err().to_string();
        assert!(msg.contains("update 1"), "{msg}");
    }

    #[test]
    fn ingest_is_all_or_nothing() {
        // A bad update anywhere in the batch must leave the engine
        // untouched — callers may retry a corrected batch safely.
        let (g, w) = community(100, 7);
        let mut sp = StreamingPartitioner::bootstrap(g, w, fast_cfg(2, 0.1)).unwrap();
        let before_n = sp.graph().num_vertices();
        let before_m = sp.graph().num_edges();
        let before_t = sp.telemetry().clone();
        let mut batch = UpdateBatch::new();
        batch.add_vertex(vec![1.0, 2.0], vec![0, 1]);
        batch.add_edge(0, 50_000); // invalid mid-batch
        assert!(sp.ingest(&batch).is_err());
        assert_eq!(
            sp.graph().num_vertices(),
            before_n,
            "vertex leaked from failed batch"
        );
        assert_eq!(sp.graph().num_edges(), before_m);
        assert_eq!(
            sp.telemetry(),
            &before_t,
            "telemetry advanced on failed batch"
        );
        // An edge referencing a vertex added earlier in the same batch is
        // valid.
        let mut ok = UpdateBatch::new();
        ok.add_vertex(vec![1.0, 1.0], vec![0]);
        ok.add_edge(100, 5);
        let report = sp.ingest(&ok).unwrap();
        assert_eq!(report.vertices_added, 1);
        assert_eq!(report.edges_added, 2);
    }

    #[test]
    fn drift_trigger_clears_after_refinement() {
        // Rebalance must repair below the trigger threshold
        // (drift_headroom·ε), not merely to ε, or every subsequent batch
        // re-runs a full refinement pass.
        let (g, w) = community(600, 9);
        let mut cfg = fast_cfg(4, 0.05);
        cfg.max_rebalance_moves = 2048;
        let mut sp = StreamingPartitioner::bootstrap(g, w, cfg.clone()).unwrap();
        let victims: Vec<u32> = (0..600u32).filter(|&v| sp.shard_of(v) == 0).collect();
        let mut batch = UpdateBatch::new();
        for &v in &victims {
            batch.set_weight(v, 0, 3.0);
        }
        let report = sp.ingest(&batch).unwrap();
        assert!(report.refined);
        assert!(
            sp.max_imbalance() <= cfg.drift_headroom * cfg.epsilon + 1e-9,
            "rebalance must clear the trigger band, got {}",
            sp.max_imbalance()
        );
        // A benign follow-up batch must not re-trigger refinement.
        let refinements_before = sp.telemetry().refinements;
        let mut benign = UpdateBatch::new();
        benign.add_edge(0, 1);
        let report = sp.ingest(&benign).unwrap();
        assert!(
            !report.refined,
            "steady state must not re-trigger refinement"
        );
        assert_eq!(sp.telemetry().refinements, refinements_before);
    }

    #[test]
    fn removals_release_capacity_and_hold_epsilon() {
        let (g, w) = community(600, 12);
        let mut cfg = fast_cfg(4, 0.05);
        cfg.max_rebalance_moves = 2048;
        let mut sp = StreamingPartitioner::bootstrap(g, w, cfg).unwrap();
        let before_n = sp.graph().num_live_vertices();
        let before_m = sp.graph().num_edges();
        // Concentrate removals on one shard so the *relative* overload of
        // the others crosses the trigger — no weight is added anywhere.
        let victims: Vec<u32> = (0..600u32)
            .filter(|&v| sp.shard_of(v) == 0)
            .take(80)
            .collect();
        let mut batch = UpdateBatch::new();
        for &v in &victims {
            batch.remove_vertex(v);
        }
        let report = sp.ingest(&batch).unwrap();
        assert_eq!(report.vertices_removed, 80);
        assert!(report.edges_removed > 0, "victims had edges");
        assert!(
            report.refined,
            "draining a shard must register as drift (imbalance {})",
            report.max_imbalance
        );
        assert!(
            report.max_imbalance <= 0.05 + 1e-9,
            "refinement must restore ε after removals, got {}",
            report.max_imbalance
        );
        assert_eq!(sp.graph().num_live_vertices(), before_n - 80);
        assert!(sp.graph().num_edges() < before_m);
        // Refinement compacts, so the purge already happened: ids remapped.
        let map = report.remap.expect("refinement purges tombstones");
        for &v in &victims {
            assert_eq!(map[v as usize], crate::TOMBSTONE);
        }
        assert_eq!(sp.store().num_vertices(), before_n - 80);
        assert_eq!(sp.store().num_assigned(), before_n - 80);
    }

    #[test]
    fn drift_trigger_sees_removals_in_both_directions() {
        // Deterministic loads: path of 6 unit vertices split 4/2.
        // Initial imbalance 4/3 − 1 = 1/3, below the 0.45 trigger.
        let g = gen::path(6);
        let w = VertexWeights::unit(6);
        let part = Partition::new(vec![0, 0, 0, 0, 1, 1], 2);
        let mut cfg = fast_cfg(2, 0.5);
        cfg.compact_slack = 0.45; // keep the mid-test purge out of the way
        let mut sp = StreamingPartitioner::from_partition(g, w, &part, cfg).unwrap();
        assert!((sp.max_imbalance() - 1.0 / 3.0).abs() < 1e-12);

        // Relax direction: removing from the heavier part lowers the
        // imbalance (3 / 2.5 − 1 = 0.2) — no refinement.
        let mut batch = UpdateBatch::new();
        batch.remove_vertex(0);
        let report = sp.ingest(&batch).unwrap();
        assert!(!report.refined, "relief must not trigger refinement");
        assert!((report.max_imbalance - 0.2).abs() < 1e-12);
        assert_eq!(sp.shard_of(0), crate::TOMBSTONE);

        // Tighten direction: removing from the *lighter* part shrinks the
        // average, so the heavy part's relative overload crosses the
        // trigger (3 / 2 − 1 = 0.5 > 0.45) with no weight added anywhere.
        let mut batch = UpdateBatch::new();
        batch.remove_vertex(5);
        let report = sp.ingest(&batch).unwrap();
        assert!(report.refined, "relative overload must trigger refinement");
        assert!(
            report.max_imbalance <= 0.5 + 1e-9,
            "got {}",
            report.max_imbalance
        );
    }

    #[test]
    fn purge_remap_preserves_assignments() {
        let (g, w) = community(400, 11);
        // Unreachable drift trigger so nothing refines (and no moves
        // muddy the check); low slack so the dead fraction forces a purge
        // at batch end.
        let mut cfg = fast_cfg(4, 0.05);
        cfg.drift_headroom = 50.0;
        cfg.compact_slack = 0.05;
        let mut sp = StreamingPartitioner::bootstrap(g, w, cfg).unwrap();
        let shards_before: Vec<u32> = (0..400u32).map(|v| sp.shard_of(v)).collect();
        let mut batch = UpdateBatch::new();
        for v in 0..30u32 {
            batch.remove_vertex(v * 13);
        }
        let report = sp.ingest(&batch).unwrap();
        assert!(!report.refined, "loose ε keeps refinement off");
        let map = report.remap.expect("dead fraction must force a purge");
        assert_eq!(map.len(), 400);
        let mut live = 0usize;
        for v in 0..400u32 {
            if v % 13 == 0 && v / 13 < 30 {
                assert_eq!(map[v as usize], crate::TOMBSTONE);
            } else {
                let new = map[v as usize];
                assert_ne!(new, crate::TOMBSTONE);
                assert_eq!(
                    sp.shard_of(new),
                    shards_before[v as usize],
                    "remap moved vertex {v} between shards"
                );
                live += 1;
            }
        }
        assert_eq!(sp.graph().num_vertices(), live);
        assert_eq!(sp.graph().num_tombstoned(), 0);
        // The counters must agree exactly with a rebuild from the
        // post-purge edge set.
        let mut oracle = sp.store().clone();
        oracle.rebuild_edge_stats(sp.graph().csr().edges());
        assert_eq!(sp.store().cut_edges(), oracle.cut_edges());
        assert!((sp.store().edge_locality() - oracle.edge_locality()).abs() < 1e-12);
        // Ids are stable again: a follow-up batch reports no remap.
        let mut benign = UpdateBatch::new();
        benign.add_edge(0, 1);
        assert!(sp.ingest(&benign).unwrap().remap.is_none());
    }

    #[test]
    fn duplicate_heavy_batch_keeps_edge_stats_exact() {
        // Regression: re-reported edges (base duplicates, in-batch
        // duplicates, remove + re-add cycles) must not drift the
        // incremental intra/cut counters away from the graph. The oracle
        // is a wholesale rebuild from the live edge set.
        let (g, w) = community(300, 14);
        let (u0, v0) = g.edges().next().unwrap();
        // A pair guaranteed absent from the base graph.
        let far = (8..300u32).find(|&x| !g.has_edge(7, x)).unwrap();
        let mut sp = StreamingPartitioner::bootstrap(g, w, fast_cfg(2, 0.1)).unwrap();
        let mut batch = UpdateBatch::new();
        batch.add_edge(u0, v0); // duplicates a base edge
        batch.add_edge(u0, v0); // twice
        batch.add_edge(7, far).add_edge(7, far); // in-batch duplicate
        batch.remove_edge(u0, v0); // tombstone a base edge...
        batch.add_edge(v0, u0); // ...and resurrect it
        batch.remove_edge(7, far); // drop the fresh delta edge
        batch.remove_edge(7, far); // removing it twice is a no-op
        batch.add_vertex(vec![1.0, 3.0], vec![3, 3, 9]); // duplicate nbr
        let report = sp.ingest(&batch).unwrap();
        assert_eq!(report.edges_added, 4, "dup adds must not count");
        assert_eq!(report.edges_removed, 2);
        let live_edges: Vec<(u32, u32)> = sp.graph().snapshot().edges().collect();
        let mut oracle = sp.store().clone();
        oracle.rebuild_edge_stats(live_edges.into_iter());
        assert_eq!(sp.store().cut_edges(), oracle.cut_edges());
        assert!(
            (sp.store().edge_locality() - oracle.edge_locality()).abs() < 1e-12,
            "incremental locality {} drifted from rebuilt {}",
            sp.store().edge_locality(),
            oracle.edge_locality()
        );
    }

    #[test]
    fn removal_validation_names_the_offending_update() {
        let (g, w) = community(100, 15);
        // Unreachable trigger: no refinement, hence no purge, hence the
        // cross-batch "was removed" case below keeps its id.
        let mut cfg = fast_cfg(2, 0.1);
        cfg.drift_headroom = 50.0;
        let mut sp = StreamingPartitioner::bootstrap(g, w, cfg).unwrap();

        let mut batch = UpdateBatch::new();
        batch.remove_vertex(5);
        batch.remove_vertex(5); // index 1: removed earlier in this batch
        let msg = sp.ingest(&batch).unwrap_err().to_string();
        assert!(msg.contains("update 1"), "{msg}");
        assert!(msg.contains("removed earlier in this batch"), "{msg}");

        let mut batch = UpdateBatch::new();
        batch.remove_vertex(50_000);
        let msg = sp.ingest(&batch).unwrap_err().to_string();
        assert!(msg.contains("update 0") && msg.contains("50000"), "{msg}");

        let mut batch = UpdateBatch::new();
        batch.remove_vertex(7);
        batch.remove_edge(7, 8); // index 1, endpoint 7 just removed
        let msg = sp.ingest(&batch).unwrap_err().to_string();
        assert!(msg.contains("update 1"), "{msg}");
        assert!(msg.contains("endpoint 7"), "{msg}");

        // Failed batches are all-or-nothing: vertex 5 and 7 still live.
        assert!(sp.graph().is_live(5) && sp.graph().is_live(7));
        assert_eq!(sp.telemetry().vertices_removed, 0);

        // Cross-batch: a vertex removed by an earlier batch is named as
        // such, not as unknown.
        let mut ok = UpdateBatch::new();
        ok.remove_vertex(9);
        sp.ingest(&ok).unwrap();
        let mut bad = UpdateBatch::new();
        bad.set_weight(9, 0, 2.0);
        let msg = sp.ingest(&bad).unwrap_err().to_string();
        assert!(msg.contains("removed by an earlier batch"), "{msg}");
    }

    #[test]
    fn capacity_conflicts_are_repaired_within_epsilon() {
        // Tiny slack and every arrival pulled toward the same part: each
        // speculative chunk fits its own arrivals under the slab, but the
        // merged reservations oversubscribe part 0 — the repair stage must
        // evict the losers and land the batch within ε without any help
        // from refinement (disabled via an unreachable trigger).
        const EPS: f64 = 0.05;
        let n = 200;
        let g = gen::path(n);
        let w = VertexWeights::unit(n);
        let labels: Vec<u32> = (0..n as u32)
            .map(|v| (v as usize / (n / 2)) as u32)
            .collect();
        let part = Partition::new(labels, 2);
        let build = |threads: usize| {
            let mut cfg = fast_cfg(2, EPS).with_threads(threads);
            cfg.drift_headroom = 50.0;
            StreamingPartitioner::from_partition(g.clone(), w.clone(), &part, cfg).unwrap()
        };
        let mut batch = UpdateBatch::new();
        let arrivals = 320usize; // > 2 × SPECULATIVE_CHUNK: several chunks
        for i in 0..arrivals as u32 {
            // Three neighbours, all in part 0 (ids 0..100).
            let nbrs = vec![i % 100, (i * 7 + 13) % 100, (i * 3 + 29) % 100];
            batch.add_vertex(vec![1.0], nbrs);
        }
        let mut serial = build(1);
        let report = serial.ingest(&batch).unwrap();
        assert!(!report.refined, "repair alone must absorb the batch");
        assert!(
            report.placement_conflicts > 0,
            "chunks fighting for part 0 must conflict"
        );
        assert!(report.repair_passes >= 1);
        assert!(
            report.max_imbalance <= EPS + 1e-9,
            "repair must restore ε, got {}",
            report.max_imbalance
        );
        assert_eq!(
            serial.telemetry().placement_conflicts,
            report.placement_conflicts
        );
        assert_eq!(serial.telemetry().repair_passes, report.repair_passes);
        // Stable eviction order: the earliest arrivals keep the preferred
        // part; the losers are the latest.
        let first = report.arrival_ids[0];
        let last = *report.arrival_ids.last().unwrap();
        assert_eq!(serial.shard_of(first), 0);
        assert_eq!(serial.shard_of(last), 1);
        // Thread count is invisible: identical report, identical partition.
        let mut threaded = build(4);
        let report4 = threaded.ingest(&batch).unwrap();
        assert_eq!(report, report4);
        assert_eq!(serial.store().as_slice(), threaded.store().as_slice());
    }

    #[test]
    fn speculative_repair_cascades_across_rounds_deterministically() {
        // Affinity ladder: every arrival has two neighbours in part 0 and
        // one in part 1. Stage 3 sends the whole batch to part 0; repair
        // evicts the overflow, whose re-score prefers part 1 — every
        // speculative chunk fills it concurrently, oversubscribing it in
        // turn — so a second speculative round must fire before the
        // remainder settles in part 2.
        const EPS: f64 = 0.05;
        let g = Graph::empty(3);
        let w = VertexWeights::unit(3);
        let part = Partition::new(vec![0, 0, 1], 3);
        let build = |threads: usize| {
            let mut cfg = fast_cfg(3, EPS).with_threads(threads);
            cfg.drift_headroom = 50.0; // repair alone must absorb the batch
            StreamingPartitioner::from_partition(g.clone(), w.clone(), &part, cfg).unwrap()
        };
        let mut batch = UpdateBatch::new();
        for _ in 0..900 {
            batch.add_vertex(vec![1.0], vec![0, 1, 2]);
        }
        let mut serial = build(1);
        let report = serial.ingest(&batch).unwrap();
        assert!(!report.refined);
        assert!(
            report.repair_spec_rounds >= 2,
            "the cascade must take at least two speculative rounds, got {}",
            report.repair_spec_rounds
        );
        assert!(report.repair_passes >= report.repair_spec_rounds);
        assert!(
            report.placement_conflicts > 2 * crate::pipeline::REPAIR_SERIAL_THRESHOLD,
            "both rounds must be above the serial threshold"
        );
        assert!(
            report.max_imbalance <= EPS + 1e-9,
            "repair must restore ε, got {}",
            report.max_imbalance
        );
        assert_eq!(serial.telemetry().repair_passes, report.repair_passes);
        // Thread count is invisible: identical report (speculative round
        // count included), identical partition.
        let mut threaded = build(4);
        assert_eq!(report, threaded.ingest(&batch).unwrap());
        assert_eq!(serial.store().as_slice(), threaded.store().as_slice());
    }

    #[test]
    fn arrival_ids_are_recycled_and_reported() {
        let (g, w) = community(100, 21);
        let mut cfg = fast_cfg(4, 0.1);
        cfg.drift_headroom = 50.0; // no refinement → no purge → stable ids
        cfg.compact_slack = 0.9;
        let mut sp = StreamingPartitioner::bootstrap(g, w, cfg).unwrap();

        // Free two ids; the next arrivals recycle them LIFO, then extend.
        let mut batch = UpdateBatch::new();
        batch.remove_vertex(10).remove_vertex(20);
        let report = sp.ingest(&batch).unwrap();
        assert!(report.arrival_ids.is_empty());
        assert_eq!(sp.shard_of(10), crate::TOMBSTONE);

        let mut batch = UpdateBatch::new();
        for _ in 0..3 {
            batch.add_vertex(vec![1.0, 1.0], vec![0, 1]);
        }
        let report = sp.ingest(&batch).unwrap();
        assert_eq!(report.arrival_ids, vec![20, 10, 100]);
        assert_eq!(report.vertices_added, 3);
        assert_eq!(report.edges_added, 6);
        assert_eq!(sp.graph().num_vertices(), 101, "id space grew by one");
        for &v in &report.arrival_ids {
            assert!(sp.shard_of(v) < 4, "recycled id {v} must be assigned");
            assert!(sp.graph().is_live(v));
        }

        // An arrival removed inside its own batch: the (fresh) id 101 is
        // reported as TOMBSTONE, and store/graph id spaces stay aligned.
        let mut batch = UpdateBatch::new();
        batch.add_vertex(vec![1.0, 1.0], vec![0]);
        batch.remove_vertex(101);
        let report = sp.ingest(&batch).unwrap();
        assert_eq!(report.arrival_ids, vec![crate::TOMBSTONE]);
        assert_eq!(report.vertices_added, 1);
        assert_eq!(report.vertices_removed, 1);
        assert_eq!(sp.store().num_vertices(), sp.graph().num_vertices());
        assert_eq!(sp.shard_of(101), crate::TOMBSTONE);

        // ...and the next arrival recycles that id.
        let mut batch = UpdateBatch::new();
        batch.add_vertex(vec![2.0, 3.0], vec![]);
        // Weight drift on a pending arrival commits with the final row.
        batch.set_weight(101, 1, 7.0);
        let report = sp.ingest(&batch).unwrap();
        assert_eq!(report.arrival_ids, vec![101]);
        assert_eq!(sp.graph().weights().weight(1, 101), 7.0);
        let p = sp.shard_of(101);
        let oracle = {
            let mut clone = sp.store().clone();
            clone.rebuild_loads(sp.graph().weights());
            clone.load(p, 1)
        };
        assert!(
            (sp.store().load(p, 1) - oracle).abs() < 1e-9,
            "committed row must match the final weights"
        );
    }

    #[test]
    fn from_partition_validates_shapes() {
        let (g, w) = community(100, 6);
        let p = Partition::new(vec![0; 100], 2);
        let cfg = fast_cfg(4, 0.1);
        assert!(
            StreamingPartitioner::from_partition(g, w, &p, cfg).is_err(),
            "k mismatch must be rejected"
        );
    }

    /// `BatchReport` equality intentionally ignores the span tree: spans
    /// carry wall-clock, and wall-clock differs run-to-run on identical
    /// work. Everything the determinism suites compare must stay inside
    /// `PartialEq`; everything timing-valued must stay out.
    #[test]
    fn batch_report_equality_ignores_spans() {
        let (g, w) = community(400, 11);
        let mut sp = StreamingPartitioner::bootstrap(g, w, fast_cfg(4, 0.05)).unwrap();
        let mut batch = UpdateBatch::new();
        for _ in 0..10 {
            batch.add_vertex(vec![1.0, 2.0], vec![0, 1]);
        }
        let a = sp.ingest(&batch).unwrap();

        // Same report with a perturbed span tree: still equal.
        let mut b = a.clone();
        b.spans.total_ms += 123.456;
        for child in &mut b.spans.children {
            child.total_ms *= 3.0;
        }
        assert_eq!(a, b, "PartialEq must ignore span timings");
        b.spans = SpanNode::default();
        assert_eq!(a, b, "PartialEq must ignore a missing span tree too");

        // But a semantic field difference still breaks equality.
        b.vertices_added += 1;
        assert_ne!(a, b);

        // The timings() view is derived from the span children, so the
        // legacy per-stage accessors keep working on top of the tree.
        let timings = a.timings();
        assert!((timings.validate_ms - a.spans.child_ms("validate")).abs() < 1e-12);
        assert!((timings.place_ms - a.spans.child_ms("place")).abs() < 1e-12);
        assert!((timings.refine_ms - a.spans.child_ms("refine")).abs() < 1e-12);
        assert_eq!(a.spans.name, "ingest");
        assert!(
            a.spans.child_ms("commit") > 0.0,
            "commit stage must be timed"
        );
    }

    /// End-to-end instrumentation check on a churn+drift workload: the
    /// registry's counters must agree with the engine's own telemetry,
    /// the GD iteration histogram and journal must be populated, and the
    /// full dump must pass the CI validator against [`METRIC_ALLOWLIST`]
    /// — which doubles as the allowlist-coverage test (an instrumentation
    /// site emitting an unlisted name fails here, not in dashboards).
    #[test]
    fn metrics_registry_tracks_engine_activity() {
        let (g, w) = community(600, 12);
        let mut cfg = fast_cfg(4, 0.05);
        cfg.max_rebalance_moves = 1024;
        let mut sp = StreamingPartitioner::bootstrap(g, w, cfg).unwrap();

        // Arrivals + removals, then a drift batch that forces refinement.
        let mut rng = StdRng::seed_from_u64(21);
        let mut batch = UpdateBatch::new();
        for _ in 0..30 {
            let nbrs: Vec<u32> = (0..4).map(|_| rng.gen_range(0..600u32)).collect();
            batch.add_vertex(vec![1.0, nbrs.len() as f64], nbrs);
        }
        for v in 0..10u32 {
            batch.remove_vertex(v);
        }
        sp.ingest(&batch).unwrap();
        let victims: Vec<u32> = (10..600u32).filter(|&v| sp.shard_of(v) == 0).collect();
        let mut drift = UpdateBatch::new();
        for &v in &victims {
            drift.set_weight(v, 0, 3.0);
        }
        let report = sp.ingest(&drift).unwrap();
        assert!(report.refined, "drift workload must exercise refinement");
        let _ = sp.shard_of(0); // exercise the counted lookup path
        let _ = sp.reader().lookup(0); // and the published-view path

        let t = sp.telemetry().clone();
        let m = sp.metrics();
        assert_eq!(m.counter("stream.ingest.batches"), t.batches as u64);
        assert_eq!(
            m.counter("stream.ingest.arrivals"),
            t.vertices_placed as u64
        );
        assert_eq!(
            m.counter("stream.ingest.removals"),
            t.vertices_removed as u64
        );
        assert_eq!(m.counter("stream.refine.passes"), t.refinements as u64);
        assert_eq!(m.counter("stream.refine.gd_moves"), t.refine_moves as u64);
        assert!(m.counter("stream.store.lookups") >= 2);
        assert!(m.counter("stream.store.heap_pops") >= 1);
        assert_eq!(m.counter("stream.store.view_swaps"), t.batches as u64);
        assert_eq!(m.counter("stream.store.stale_epoch_reads"), 0);
        let lookup_us = m.summary("stream.store.lookup_us").expect("histogram");
        assert!(lookup_us.count >= 1);

        // GD convergence trace: refinement ran, so the iteration
        // histogram has observations and the grad-norm gauges are set.
        let iters = m.summary("core.gd.refine_iterations").expect("histogram");
        assert!(iters.count >= 1);
        assert!(iters.p99 >= iters.p50);
        assert!(m.gauge("core.gd.last_grad_norm_first").is_some());

        // Journal carries the refine pass and the drift trigger.
        let kinds: Vec<&str> = m.events().map(|e| e.event).collect();
        assert!(kinds.contains(&"refine.pass"), "{kinds:?}");
        assert!(kinds.contains(&"refine.drift_trigger"), "{kinds:?}");
        let seqs: Vec<u64> = m.events().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "seqs monotone");

        // The rendered dump passes the exact validator CI runs.
        let stats = mdbgp_obs::validate_dump(&m.render_json(), METRIC_ALLOWLIST)
            .expect("dump must satisfy the allowlist + schema validator");
        assert!(stats.histograms >= 1);
        assert!(stats.spans >= 1);
        assert!(stats.journal_events >= 2);

        // Spans from both entry points nest under their own roots.
        assert!(m.span_stat("ingest").is_some());
        assert!(m.span_stat("ingest.place").is_some());

        // A disabled registry stays empty under the same traffic.
        let (g2, w2) = community(200, 13);
        let mut quiet = StreamingPartitioner::bootstrap(g2, w2, fast_cfg(2, 0.1)).unwrap();
        quiet.set_metrics_enabled(false);
        let mut b2 = UpdateBatch::new();
        b2.add_vertex(vec![1.0, 1.0], vec![0]);
        quiet.ingest(&b2).unwrap();
        assert_eq!(quiet.metrics().counter("stream.ingest.batches"), 0);
        assert_eq!(quiet.metrics().journal_len(), 0);
    }

    #[test]
    fn views_publish_per_batch_and_edge_batches_reuse_the_snapshot() {
        let (g, w) = community(400, 30);
        let mut sp = StreamingPartitioner::bootstrap(g, w, fast_cfg(2, 0.05)).unwrap();
        // Bootstrap seeds an uncounted view at (0, 0).
        let seed = sp.read_view();
        assert_eq!(seed.epoch(), crate::ViewEpoch::default());
        assert_eq!(sp.store().view_swap_count(), 0);
        let mut h = sp.reader();

        let mut batch = UpdateBatch::new();
        batch.add_vertex(vec![1.0, 2.0], vec![0, 1]);
        let report = sp.ingest(&batch).unwrap();
        assert_eq!(sp.store().view_swap_count(), 1);
        assert!(h.refresh(), "ingest published a new view");
        let v1 = h.view().clone();
        assert_eq!(
            v1.epoch(),
            crate::ViewEpoch {
                id_epoch: 0,
                batch_seq: 1
            }
        );
        // The published view is exactly the post-batch assignment.
        assert_eq!(v1.as_slice(), sp.store().as_slice());
        let arrival = report.arrival_ids[0];
        assert_eq!(h.lookup(arrival), Some(sp.shard_of(arrival)));
        assert!(v1.verify_checksum());

        // Regression (the per-batch reallocation bug): a batch that only
        // touches topology — loads unchanged — must publish without
        // rebuilding the LoadSnapshot allocation.
        let rebuilds = sp.store().snapshot_rebuild_count();
        let mut edges = UpdateBatch::new();
        edges.add_edge(2, 3).add_edge(5, 9);
        sp.ingest(&edges).unwrap();
        assert_eq!(
            sp.store().snapshot_rebuild_count(),
            rebuilds,
            "edge-only batch rebuilt the load snapshot"
        );
        h.refresh();
        assert!(
            h.view().load_snapshot().shares_storage(v1.load_snapshot()),
            "consecutive views over unchanged loads must share one allocation"
        );
        assert_eq!(h.view().epoch().batch_seq, 2);
    }

    #[test]
    fn purge_publishes_a_view_carrying_the_composed_remap() {
        let (g, w) = community(300, 31);
        let mut cfg = fast_cfg(2, 0.1);
        cfg.compact_slack = 10.0; // no automatic compaction
        let mut sp = StreamingPartitioner::bootstrap(g, w, cfg).unwrap();
        let mut h = sp.reader();
        let mut batch = UpdateBatch::new();
        for v in 0..20u32 {
            batch.remove_vertex(v);
        }
        sp.ingest(&batch).unwrap();
        h.refresh();
        assert!(!h.needs_adoption(), "no purge yet: same id epoch");
        assert_eq!(h.lookup(5), None, "tombstoned id answers None");

        let remap = sp.purge().expect("tombstones pending, purge must remap");
        h.refresh();
        assert!(h.needs_adoption(), "purge crossed an id epoch");
        assert_eq!(h.view().epoch().id_epoch, 1);
        assert_eq!(
            h.view().remap().expect("purge view carries its remap"),
            remap.as_slice(),
            "view remap and report remap are the same map"
        );
        h.adopt();
        // Translated ids answer the engine's own assignment.
        let old = 25u32;
        let new = remap[old as usize];
        assert_ne!(new, TOMBSTONE);
        assert_eq!(h.lookup(new), Some(sp.shard_of(new)));
        assert_eq!(sp.store().stale_epoch_read_count(), 0);

        // The next plain batch publishes without a remap again.
        let mut b2 = UpdateBatch::new();
        b2.add_edge(1, 2);
        sp.ingest(&b2).unwrap();
        h.refresh();
        assert!(h.view().remap().is_none());
        assert!(!h.needs_adoption());
    }
}
