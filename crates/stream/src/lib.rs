//! # mdbgp-stream — online streaming ingestion + incremental partition
//! maintenance
//!
//! The paper's GD partitioner is offline: it assumes the whole graph up
//! front. The production setting it targets — social-network sharding —
//! sees a continuous stream of new vertices, edges and weight drift. This
//! crate keeps a partition valid and high-quality as the graph evolves,
//! without rerunning GD from scratch:
//!
//! * [`DynamicGraph`] — a base CSR plus delta adjacency with periodic
//!   compaction, so reads stay cheap and refinement always runs on plain
//!   CSR ([`dynamic`]);
//! * [`UpdateBatch`] / [`StreamUpdate`] — the stream language: vertex
//!   arrivals (with adjacency), edge insertions, weight drift ([`delta`]);
//! * [`LdgPlacer`] — multi-dimensional linear-deterministic-greedy
//!   placement of arriving vertices under per-dimension `(1+ε)` capacity
//!   slabs ([`placement`]);
//! * [`StreamingPartitioner`] — the engine: ingest, drift telemetry, and
//!   **incremental refinement** — greedy multi-constraint rebalancing plus
//!   warm-started pairwise GD (`mdbgp_core::bipartition_warm` /
//!   `GdPartitioner::refine_pair`) with unchanged vertices frozen, so a
//!   batch of updates is absorbed by a few cheap iterations ([`engine`]);
//! * [`PartitionStore`] — the serving layer: O(1) vertex→shard lookups,
//!   per-part multi-dimensional loads, live imbalance / locality telemetry
//!   — plus the per-`(part, dimension)` **rebalance heaps** that give the
//!   greedy rebalance its O(log n)-per-move candidate queue ([`store`]).
//!
//! ## Threading model
//!
//! [`StreamConfig::threads`] sizes one logical worker pool; `threads = 1`
//! (the default) is fully serial. Parallelism is **scoped and
//! deterministic** — every parallel section spawns `std::thread::scope`
//! workers over disjoint data (no shared mutable state, no locks on the
//! serving path) via [`mdbgp_core::parallel`], and every reduction is
//! order-preserving, so the partition produced is bitwise identical for
//! any thread count (property-tested in `proptest_refine_parallel`).
//! Three sections engage the pool:
//!
//! 1. **GD mat-vec** — bootstrap gradient iterations split CSR rows into
//!    equal-edge-count chunks ([`mdbgp_core::matvec::matvec_parallel`]);
//! 2. **pairwise refinement rounds** — the ranked part pairs are scheduled
//!    into rounds of part-disjoint pairs
//!    (`GdPartitioner::plan_disjoint_rounds`, a maximal matching per
//!    round), each round's `refine_pair` calls run concurrently against
//!    one immutable partition snapshot, and the accepted moves are applied
//!    at the round barrier;
//! 3. **LDG placement sweep** — the per-part scoring loop folds over
//!    disjoint part ranges (only engaged for large `k`, where it
//!    amortizes the spawn).
//!
//! The serving path ([`PartitionStore::shard_of`] etc.) is untouched by
//! all of this: reads stay plain O(1) loads with no synchronization.
//!
//! ## Quickstart
//!
//! ```
//! use mdbgp_stream::{StreamConfig, StreamingPartitioner, UpdateBatch};
//! use mdbgp_graph::gen::{community_graph, CommunityGraphConfig};
//! use mdbgp_graph::VertexWeights;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // Bootstrap on the current graph...
//! let cg = community_graph(
//!     &CommunityGraphConfig::social(1000),
//!     &mut StdRng::seed_from_u64(1),
//! );
//! let weights = VertexWeights::vertex_edge(&cg.graph);
//! let mut sp = StreamingPartitioner::bootstrap(
//!     cg.graph,
//!     weights,
//!     StreamConfig::new(4, 0.05),
//! )
//! .unwrap();
//!
//! // ...then absorb updates online.
//! let mut batch = UpdateBatch::new();
//! batch.add_vertex(vec![1.0, 2.0], vec![3, 17]); // arrives with 2 edges
//! batch.add_edge(5, 900);
//! let report = sp.ingest(&batch).unwrap();
//! assert!(report.max_imbalance <= 0.05 + 1e-9);
//! assert!(sp.shard_of(1000) < 4); // O(1) lookup for the new vertex
//! ```

pub mod delta;
pub mod dynamic;
pub mod engine;
pub mod placement;
pub mod store;

pub use delta::{StreamUpdate, UpdateBatch};
pub use dynamic::DynamicGraph;
pub use engine::{BatchReport, StreamConfig, StreamTelemetry, StreamingPartitioner};
pub use placement::LdgPlacer;
pub use store::PartitionStore;
